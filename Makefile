# Developer entry points.  pytest's addopts carry `-m "not bench"`, so
# plain `make test` never runs benchmarks; the bench targets override
# the marker expression (the last `-m` on the command line wins).

PYTHON ?= python
export PYTHONPATH := src:.

.PHONY: test bench bench-sweep

test:  ## tier-1: the full fast suite
	$(PYTHON) -m pytest -x -q

bench:  ## all benchmarks (writes benchmarks/artifacts/)
	$(PYTHON) -m pytest benchmarks -m bench -q -s

bench-sweep:  ## just the sweep-engine perf gate
	$(PYTHON) -m pytest benchmarks/test_bench_perf_sweep.py -m bench -q -s
