# Developer entry points.  pytest's addopts carry `-m "not bench"`, so
# plain `make test` never runs benchmarks; the bench targets override
# the marker expression (the last `-m` on the command line wins).

PYTHON ?= python
export PYTHONPATH := src:.

.PHONY: check test test-faults bench bench-sweep bench-runtime bench-pipeline bench-serve bench-serve-smoke bench-packed bench-update bench-classify bench-classify-smoke serve-smoke serve-smoke-fleet update-faults

check: test serve-smoke serve-smoke-fleet bench-serve-smoke bench-classify-smoke  ## the pre-merge gate: tier-1 + both serve smokes + fast serve/classify benches
	@echo "check: all gates passed"

test:  ## tier-1: the full fast suite
	$(PYTHON) -m pytest -x -q

test-faults:  ## the fault-injection suite (runtime resilience + misuse modes)
	$(PYTHON) -m pytest tests/test_runtime_resilience.py tests/test_failure_injection.py -q

bench:  ## all benchmarks (writes benchmarks/artifacts/)
	$(PYTHON) -m pytest benchmarks -m bench -q -s

bench-sweep:  ## just the sweep-engine perf gate
	$(PYTHON) -m pytest benchmarks/test_bench_perf_sweep.py -m bench -q -s

bench-runtime:  ## the resilient-runtime overhead gate (<10% on fault-free sweeps)
	$(PYTHON) -m pytest benchmarks/test_bench_perf_runtime.py -m bench -q -s

bench-pipeline:  ## the artifact-pipeline gates (warm >= 5x cold, cold overhead < 10%)
	$(PYTHON) -m pytest benchmarks/test_bench_perf_pipeline.py -m bench -q -s

bench-serve:  ## the serving-layer gates (cached >= 50x rebuild, batch >= 5x singles, fleet scaling/p99/memory)
	$(PYTHON) -m pytest benchmarks/test_bench_perf_serve.py -m bench -q -s

bench-serve-smoke:  ## the same serving gates under a seconds-long load (functional contracts only)
	BENCH_SERVE_SMOKE=1 $(PYTHON) -m pytest benchmarks/test_bench_perf_serve.py -m bench -q

bench-packed:  ## the packed-snapshot gates (uncached match <= 5.87 µs, resident cut >= 5x)
	$(PYTHON) -m pytest benchmarks/test_bench_perf_packed.py -m bench -q -s

bench-update:  ## the update-loop gates (swap propagation < 250ms, SLO gauges exact vs journal)
	$(PYTHON) -m pytest benchmarks/test_bench_perf_update.py -m bench -q -s

bench-classify:  ## the bulk-classify gates (throughput >= 60k records/s, peak RSS <= 512 MiB, resume >= 3x)
	$(PYTHON) -m pytest benchmarks/test_bench_perf_classify.py -m bench -q -s

bench-classify-smoke:  ## the same classify gates on a seconds-long log (throughput/memory contracts only)
	BENCH_CLASSIFY_SMOKE=1 $(PYTHON) -m pytest benchmarks/test_bench_perf_classify.py -m bench -q

serve-smoke:  ## start psl-serve on an ephemeral port, hit every endpoint, assert JSON shapes
	$(PYTHON) -m repro.serve.cli --smoke

serve-smoke-fleet:  ## the same smoke against a 4-worker pre-fork fleet (epoch agreement included)
	$(PYTHON) -m repro.serve.cli --smoke --workers 4 --packed

update-faults:  ## the full fault-plan soak: every upstream failure mode under live client load
	$(PYTHON) -m repro.update.cli --soak
