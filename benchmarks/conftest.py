"""Benchmark fixtures.

Two worlds (DESIGN.md section 7):

* **tables** — ``harm_scale=1.0``: Tables 2/3 and the headline must be
  paper-exact, so the calibrated populations are not scaled;
* **figures** — ``harm_scale=0.1, bulk_scale=1.0``: restores the real
  dataset's proportions (the affected hostnames are a sliver of the
  web), which is what gives Figures 5-7 the paper's curve shapes.

World construction is excluded from every timing: the benchmarks time
the *analysis* steps, never the synthesis.  Each bench also prints the
regenerated rows (run with ``-s`` to see them) and writes them to
``benchmarks/artifacts/``.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.context import get_context
from repro.webgraph.synthesis import SnapshotConfig

BENCH_SEED = 20230701
ARTIFACT_DIR = os.path.join(os.path.dirname(__file__), "artifacts")


def pytest_collection_modifyitems(items):
    """Everything under benchmarks/ is ``bench``-marked.

    Tier-1 (``pytest`` with the default ``-m "not bench"`` addopts)
    never runs these; ``make bench`` selects them back in.
    """
    for item in items:
        item.add_marker(pytest.mark.bench)


def save_artifact(name: str, text: str) -> None:
    """Persist a regenerated table/figure for inspection."""
    os.makedirs(ARTIFACT_DIR, exist_ok=True)
    with open(os.path.join(ARTIFACT_DIR, name), "w", encoding="utf-8") as handle:
        handle.write(text + "\n")


@pytest.fixture(scope="session")
def tables_world():
    """Paper-exact harm populations, slim background."""
    return get_context(
        BENCH_SEED, SnapshotConfig(seed=BENCH_SEED, harm_scale=1.0, bulk_scale=0.25)
    )


@pytest.fixture(scope="session")
def figures_world():
    """Real-world-proportioned populations for the figure shapes."""
    return get_context(
        BENCH_SEED, SnapshotConfig(seed=BENCH_SEED, harm_scale=0.1, bulk_scale=1.0)
    )


@pytest.fixture(scope="session")
def tables_sweep(tables_world):
    return tables_world.sweep_result()


@pytest.fixture(scope="session")
def figures_sweep(figures_world):
    return figures_world.sweep_result()


@pytest.fixture(scope="session")
def tables_harm(tables_world, tables_sweep):
    from repro.analysis.harm import harm_analysis

    return harm_analysis(tables_world, tables_sweep)
