"""Ablation — what kind of rules drive each growth phase.

Extends Figure 2 with the paper's Section 3 IANA categorization: the
early list is ccTLD structure, the 2012 burst is country-code
geographic rules, and the 2013-2016 growth phase is private domains
plus the new-gTLD program.
"""

from benchmarks.conftest import save_artifact
from repro.analysis.categories import final_breakdown, growth_attribution


def test_bench_ablation_category_attribution(benchmark, tables_world):
    store = tables_world.store

    def attribute():
        return {
            "2007-2011": growth_attribution(store, 2007, 2011),
            "2012": growth_attribution(store, 2012, 2012),
            "2013-2016": growth_attribution(store, 2013, 2016),
            "2017-2022": growth_attribution(store, 2017, 2022),
            "final": final_breakdown(store),
        }

    result = benchmark.pedantic(attribute, rounds=1, iterations=1)

    lines = []
    for phase, counts in result.items():
        parts = ", ".join(f"{k}: {v:+d}" if phase != "final" else f"{k}: {v}"
                          for k, v in sorted(counts.items(), key=lambda kv: -abs(kv[1])))
        lines.append(f"{phase:10s} {parts}")
    text = "\n".join(lines)
    print("\n" + text)
    save_artifact("ablation_categories.txt", text)

    assert result["2012"]["country-code"] > 1500          # the JP burst
    assert result["2013-2016"]["private"] > 100           # PRIVATE growth phase
    assert result["2017-2022"]["private"] > 800           # the calibrated schedule
    assert result["final"]["private"] > 1000
