"""Ablation — robustness of the reproduction to the world seed.

The calibrated quantities (headline, Table 2 columns, medians) must be
invariant across synthetic worlds: they are pinned by the paper's
constraints, not by any particular random draw.  This bench rebuilds
the world under different seeds and asserts the invariants; the
timing quantifies full-world construction cost.
"""

from benchmarks.conftest import save_artifact
from repro.analysis.boundaries import run_sweep
from repro.analysis.context import get_context
from repro.analysis.harm import harm_analysis
from repro.data import paper
from repro.webgraph.synthesis import SnapshotConfig

ALTERNATE_SEEDS = (7, 99)


def _world_headline(seed: int) -> tuple[int, int]:
    context = get_context(
        seed, SnapshotConfig(seed=seed, harm_scale=1.0, bulk_scale=0.05)
    )
    sweep = run_sweep(context.store, context.snapshot)
    result = harm_analysis(context, sweep)
    return result.missing_etld_count, result.affected_hostname_count


def test_bench_ablation_seed_sensitivity(benchmark):
    def rebuild_all():
        return {seed: _world_headline(seed) for seed in ALTERNATE_SEEDS}

    results = benchmark.pedantic(rebuild_all, rounds=1, iterations=1)

    lines = ["seed      missing eTLDs   affected hostnames"]
    for seed, (etlds, hostnames) in results.items():
        lines.append(f"{seed:<8d} {etlds:>12d} {hostnames:>20d}")
    text = "\n".join(lines)
    print("\n" + text)
    save_artifact("ablation_seed_sensitivity.txt", text)

    for seed, (etlds, hostnames) in results.items():
        assert etlds == paper.MISSING_ETLD_COUNT, seed
        assert hostnames == paper.AFFECTED_HOSTNAME_COUNT, seed
