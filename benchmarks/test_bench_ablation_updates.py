"""Ablation — update-strategy staleness model (DESIGN.md extension).

Quantifies the paper's qualitative risk ordering of the *updated*
sub-strategies (user < build < server < fixed) across fetch-failure
rates, and benches the simulation itself.
"""

from benchmarks.conftest import save_artifact
from repro.analysis.updates import compare_strategies


def test_bench_ablation_update_strategies(benchmark):
    outcomes = benchmark(compare_strategies)

    lines = ["strategy              mean age   p95 age   worst   failed/attempted"]
    for outcome in outcomes:
        lines.append(
            f"{outcome.strategy:20s} {outcome.mean_age_days:8.1f} {outcome.p95_age_days:9.1f} "
            f"{outcome.worst_age_days:7d}   {outcome.refreshes_failed}/{outcome.refreshes_attempted}"
        )
    text = "\n".join(lines)
    print("\n" + text)
    save_artifact("ablation_update_strategies.txt", text)

    order = [outcome.strategy for outcome in outcomes]
    assert order == ["updated/user", "updated/build", "updated/server", "fixed"]


def test_bench_ablation_failure_sensitivity(benchmark):
    """Sweep the fetch-failure probability: even at high failure rates,
    any refresh strategy beats fixed — the paper's central advice."""

    def sweep():
        rows = []
        for failure in (0.0, 0.25, 0.5, 0.75, 0.95):
            outcomes = {
                o.strategy: o.mean_age_days
                for o in compare_strategies(failure_probability=failure)
            }
            rows.append((failure, outcomes))
        return rows

    rows = benchmark(sweep)
    for failure, outcomes in rows:
        assert outcomes["updated/user"] < outcomes["fixed"], failure
