"""Ablation — residual harm under refresh policies (extension).

Turns the paper's "update your list" recommendation into a dose-response
curve: the measured misclassified-hostname count for a project
complying with each maximum-list-age policy.
"""

from benchmarks.conftest import save_artifact
from repro.analysis.whatif import policy_curve, render_policy_curve


def test_bench_ablation_refresh_policies(benchmark, tables_sweep):
    outcomes = benchmark(policy_curve, tables_sweep)

    text = render_policy_curve(outcomes)
    print("\n" + text)
    save_artifact("ablation_refresh_policies.txt", text)

    by_age = {outcome.max_age_days: outcome for outcome in outcomes}
    assert by_age[30].removal_fraction > 0.99
    assert by_age[365].removal_fraction > 0.8
    assert by_age[2070].removed_misclassified_hostnames == 0
