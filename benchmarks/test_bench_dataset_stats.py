"""Dataset description — the numbers a measurement paper's data
section reports, computed for both world presets, plus the pairwise
exposure extension table.
"""

from benchmarks.conftest import save_artifact
from repro.analysis.exposure import corpus_exposure, render_exposure
from repro.webgraph.stats import render_statistics, snapshot_statistics


def test_bench_dataset_statistics(benchmark, tables_world, figures_world):
    def describe():
        return (
            snapshot_statistics(tables_world.snapshot),
            snapshot_statistics(figures_world.snapshot),
        )

    tables_stats, figures_stats = benchmark.pedantic(describe, rounds=1, iterations=1)

    text = (
        "tables preset (harm exact):\n"
        + render_statistics(tables_stats)
        + "\n\nfigures preset (real-world proportions):\n"
        + render_statistics(figures_stats)
    )
    print("\n" + text)
    save_artifact("dataset_statistics.txt", text)

    assert tables_stats.hostnames > 50_750  # harm populations + background
    assert figures_stats.hostnames > tables_stats.hostnames / 2
    assert tables_stats.distinct_tlds > 100


def test_bench_dataset_exposure(benchmark, tables_world, tables_sweep):
    reports = benchmark.pedantic(
        corpus_exposure, args=(tables_world,), rounds=1, iterations=1
    )

    text = render_exposure(reports, limit=12)
    print("\n" + text)
    save_artifact("dataset_exposure.txt", text)

    assert len(reports) == 43
    assert reports[0].autofill_pairs > 10_000_000
