"""FIG1 — the illustrative example, computed from real list versions.

Paper text: "PSL v1 creates 3 sites (with an average of 1.33 domains
in each site), while PSL v2 creates 4 sites (with 1 domain in each)".
"""

from benchmarks.conftest import save_artifact
from repro.analysis.figure1 import (
    PAPER_V1_RULES,
    PAPER_V2_RULES,
    figure1,
    render_figure1,
)
from repro.psl.parser import parse_psl


def test_bench_fig1_illustration(benchmark):
    v1 = parse_psl(PAPER_V1_RULES)
    v2 = parse_psl(PAPER_V2_RULES)

    panels = benchmark(figure1, v1, v2)

    text = render_figure1(panels)
    print("\n" + text)
    save_artifact("fig1_illustration.txt", text)

    old, new = panels
    assert old.site_count == 3
    assert round(old.mean_domains_per_site, 2) == 1.33
    assert new.site_count == 4
    assert new.mean_domains_per_site == 1.0
