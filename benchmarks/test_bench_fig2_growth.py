"""FIG2 — growth of the Public Suffix List over time.

Paper values: 2,447 rules (2007-03-22) -> 8,062 (2017) -> 9,368
(2022-10-20) over 1,142 versions; component mix 17% / 57.5% / 25.3% /
~0.1%; a ~1,623-rule burst in mid-2012.
"""

from benchmarks.conftest import save_artifact
from repro.analysis import growth, report
from repro.data import paper


def test_bench_fig2_growth(benchmark, tables_world):
    store = tables_world.store

    def regenerate():
        return growth.summarize(store), growth.figure2_series(store)

    summary, series = benchmark(regenerate)

    text = report.render_figure2(summary, series)
    print("\n" + text)
    save_artifact("fig2_growth.txt", text)

    assert summary.first_rule_count == paper.FIRST_RULE_COUNT
    assert summary.final_rule_count == paper.FINAL_RULE_COUNT
    assert summary.version_count == paper.HISTORY_VERSION_COUNT
    assert abs(summary.rule_count_2017 - paper.RULE_COUNT_2017) <= 25
    assert summary.largest_spike[0].year == paper.JP_SPIKE_YEAR
    assert abs(summary.largest_spike[1] - paper.JP_SPIKE_SIZE) <= 25
    for bucket, share in enumerate((0.17, 0.575, 0.253)):
        assert abs(summary.final_component_share[bucket] - share) < 0.01
