"""FIG3 — age of vendored lists per integration strategy.

Paper values (days, at t = 2022-12-08): median 871 across all datable
repositories, 915 for the updated strategy, 825 for fixed.
"""

from benchmarks.conftest import save_artifact
from repro.analysis import report
from repro.analysis.age import age_distributions
from repro.data import paper


def test_bench_fig3_age(benchmark, tables_world):
    # Dating every vendored list is the expensive step; prime the
    # context caches outside the timing, then time the distribution
    # computation over them (the paper's Figure 3 aggregation).
    _ = tables_world.datings

    distributions = benchmark(age_distributions, tables_world)

    text = report.render_figure3(distributions)
    print("\n" + text)
    save_artifact("fig3_age.txt", text)

    assert distributions.median("fixed") == paper.MEDIAN_AGE_FIXED
    assert distributions.median("updated") == paper.MEDIAN_AGE_UPDATED
    assert distributions.median() == paper.MEDIAN_AGE_ALL
    assert distributions.datable_counts() == {"fixed": 47, "updated": 23, "dependency": 81}
