"""FIG4 — list age vs. project activity vs. popularity.

Paper values: stars/forks Pearson = 0.96 over the Table 3
repositories; of the 43 fixed/production projects only 5 have 500+
stars, median 60; bitwarden/server (10,959 stars) tops the scatter.
"""

from benchmarks.conftest import save_artifact
from repro.analysis import report
from repro.analysis.popularity import popularity
from repro.data import paper


def test_bench_fig4_popularity(benchmark, tables_world):
    _ = tables_world.datings  # prime caches outside the timing

    result = benchmark(popularity, tables_world)

    text = report.render_figure4(result)
    print("\n" + text)
    save_artifact("fig4_popularity.txt", text)

    assert round(result.stars_forks_pearson, 2) == paper.STARS_FORKS_PEARSON
    assert result.production_star_median == 60
    assert result.production_500_plus == 5
    assert result.points[0].repository == "ClickHouse/ClickHouse"
    production = [point for point in result.points if point.subtype == "production"]
    assert production[0].repository == "bitwarden/server"
