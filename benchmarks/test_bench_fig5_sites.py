"""FIG5 — number of sites formed under each list version.

Paper shape: broadly flat through the early years, rapid growth
2013-2016, plateau after; the newest list forms 359,966 more sites
than the first (at the paper's 498M-request scale — the measured
value scales with the snapshot, the *shape* is asserted here).
"""

from benchmarks.conftest import save_artifact
from repro.analysis import report
from repro.analysis.boundaries import run_sweep


def test_bench_fig5_sites(benchmark, figures_world):
    store = figures_world.store
    snapshot = figures_world.snapshot

    sweep = benchmark.pedantic(run_sweep, args=(store, snapshot), rounds=1, iterations=1)

    text = report.render_figure5(sweep)
    print("\n" + text)
    save_artifact("fig5_sites.txt", text)

    by_year = {point.date.year: point.site_count for point in sweep.yearly()}
    # Latest forms strictly more sites than the first version.
    assert sweep.additional_sites_latest_vs_first > 0
    # Broadly flat early: 2007-2012 movement is small relative to the
    # 2013-2016 growth phase.
    early = abs(by_year[2012] - by_year[2007])
    growth_phase = by_year[2016] - by_year[2013]
    assert growth_phase > 3 * max(early, 1)
    # Plateau: the post-2016 increase is well below the growth phase.
    late = by_year[2022] - by_year[2016]
    assert late < growth_phase / 2
