"""FIG6 — requests classified third-party under each list version.

Paper shape: a significant early drop (the list formalizes ownership
boundaries, removing misclassified third parties), a plateau, then a
steady rise from 2014 through 2022 as subdomain-hosting suffixes keep
being added.
"""

from benchmarks.conftest import save_artifact
from repro.analysis import report


def test_bench_fig6_thirdparty(benchmark, figures_world, figures_sweep):
    sweep = figures_sweep

    def series():
        return [(point.date, point.third_party_requests) for point in sweep.yearly()]

    benchmark(series)

    text = report.render_figure6(sweep)
    print("\n" + text)
    save_artifact("fig6_thirdparty.txt", text)

    by_year = {point.date.year: point.third_party_requests for point in sweep.yearly()}
    # Early drop: the wildcard-era refinements reduce the count.
    assert by_year[2013] < by_year[2007]
    # Steady rise 2014 -> 2022.
    assert by_year[2018] > by_year[2014]
    assert by_year[2022] > by_year[2018]
