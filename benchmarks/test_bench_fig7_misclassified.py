"""FIG7 — hostnames grouped into different sites than the newest list.

Paper shape: the older the list, the more hostnames sit in the wrong
site; the significant rule additions land 2007-2016, with smaller
shifts in recent years; the curve reaches zero at the newest version.
"""

from benchmarks.conftest import save_artifact
from repro.analysis import report


def test_bench_fig7_misclassified(benchmark, figures_sweep):
    sweep = figures_sweep

    def series():
        return [(point.date, point.diff_vs_latest) for point in sweep.yearly()]

    benchmark(series)

    text = report.render_figure7(sweep)
    print("\n" + text)
    save_artifact("fig7_misclassified.txt", text)

    values = [point.diff_vs_latest for point in sweep.yearly()]
    assert values[-1] == 0
    assert values[0] >= 0.95 * max(values)
    # Most of the shift happens before 2017.
    by_year = {point.date.year: point.diff_vs_latest for point in sweep.yearly()}
    drop_early = by_year[2007] - by_year[2016]
    drop_late = by_year[2016] - by_year[2022]
    assert drop_early > drop_late
