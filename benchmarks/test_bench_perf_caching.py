"""PERF ablation — memoized vs. raw lookups on a crawl-shaped workload.

Snapshot processing revisits the same hostnames constantly (request
targets recur across pages); the caching matcher turns repeat lookups
into one dict probe.  The bench replays the tables snapshot's request
stream both ways.
"""

import pytest

from repro.psl.caching import CachingMatcher


@pytest.fixture(scope="module")
def request_stream(tables_world):
    pairs = list(tables_world.snapshot.iter_request_pairs())[:20_000]
    hosts = [host for pair in pairs for host in pair]
    return tables_world.store.checkout(-1), hosts


def test_bench_lookup_raw(benchmark, request_stream):
    psl, hosts = request_stream

    def run():
        for host in hosts:
            psl.match(host)

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_bench_lookup_cached(benchmark, request_stream):
    psl, hosts = request_stream
    matcher = CachingMatcher(psl, capacity=100_000)

    def run():
        for host in hosts:
            matcher.match(host)

    benchmark.pedantic(run, rounds=3, iterations=1)
    assert matcher.hit_rate > 0.5  # crawl workloads repeat hostnames


def test_cached_results_equal_raw(request_stream):
    psl, hosts = request_stream
    matcher = CachingMatcher(psl)
    for host in hosts[:500]:
        assert matcher.match(host) == psl.match(host)
