"""PERF — the bulk classify engine's throughput/memory/resume gates.

The acceptance bars for ``repro.classify``:

* **throughput** — the single-worker engine sustains at least the
  recorded floor (records x versions per wall second) on a 1M-record
  synthetic log classified under every version of a packed history
  cross-section;
* **memory** — peak RSS of the whole classify process tree stays under
  a fixed cap: the engine streams chunks and merges spills version-at-
  a-time, so memory must not scale with records x versions;
* **resume** — a warm re-run over the same run directory (all chunks
  checkpointed) finishes at least 3x faster than the cold run, which
  is what makes kill/resume economical at HTTP-Archive scale.

Each probe is a fresh ``psl-classify`` subprocess so the RSS number is
honest (no inherited fixture memory).  ``BENCH_CLASSIFY_SMOKE=1``
shrinks the log so ``make check`` can run the same contracts in
seconds; the full gate is ``make bench-classify``.  Numbers are
persisted to ``benchmarks/artifacts/perf_classify.txt`` and summarized
in EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

import pytest

from benchmarks.conftest import BENCH_SEED, save_artifact
from repro.history.synthesis import SynthesisConfig, synthesize_history
from repro.psl.packed import pack_history

pytestmark = pytest.mark.bench

SMOKE = os.environ.get("BENCH_CLASSIFY_SMOKE") == "1"

RECORDS = 131_072 if SMOKE else 1_048_576
#: Floor in records/s; measured ~143k on the 1-core reference host, so
#: these hold >2x headroom for slower machines and noisy neighbours.
THROUGHPUT_FLOOR = 30_000.0 if SMOKE else 60_000.0
#: Peak RSS cap in MiB; measured ~120 MiB (the engine is O(chunk) +
#: O(one version's site table), never O(records x versions)).
PEAK_RSS_CAP_MB = 512.0
RESUME_SPEEDUP = 3.0


@pytest.fixture(scope="module")
def packed_path(tmp_path_factory):
    """A cheap-to-pack cross-section of the synthesized history."""
    store = synthesize_history(SynthesisConfig(seed=BENCH_SEED))
    subset = sorted(set(range(0, len(store), 120)) | {len(store) - 1})
    path = tmp_path_factory.mktemp("packed") / "packed.bin"
    path.write_bytes(pack_history(store, indexes=subset))
    return str(path)


def run_classify(packed_path: str, run_dir: str, stats_path: str, *extra: str) -> float:
    root = os.path.join(os.path.dirname(__file__), os.pardir)
    env = dict(
        os.environ,
        PYTHONPATH=os.pathsep.join([os.path.join(root, "src"), root]),
    )
    command = [
        sys.executable, "-m", "repro.classify.cli",
        "--packed", packed_path,
        "--records", str(RECORDS),
        "--versions", "1000",  # i.e. every version in the cross-section
        "--run-dir", run_dir,
        "--json", stats_path,
        "--quiet",
        *extra,
    ]
    begin = time.perf_counter()
    completed = subprocess.run(command, env=env)
    wall = time.perf_counter() - begin
    assert completed.returncode == 0, f"psl-classify exited {completed.returncode}"
    return wall


def test_bench_classify_throughput_memory_and_resume(packed_path, tmp_path):
    run_dir = str(tmp_path / "run")
    stats_path = str(tmp_path / "stats.json")

    cold_wall = run_classify(packed_path, run_dir, stats_path)
    with open(stats_path, encoding="utf-8") as handle:
        cold = json.load(handle)

    warm_wall = run_classify(packed_path, run_dir, stats_path, "--resume")
    with open(stats_path, encoding="utf-8") as handle:
        warm = json.load(handle)

    assert warm["resumed_chunks"] == cold["chunks"]  # the warm run reused everything
    assert warm["rows"] == cold["rows"]  # and reproduced the cold rows exactly

    save_artifact(
        "perf_classify.txt",
        "\n".join(
            [
                f"smoke               {SMOKE}",
                f"records             {cold['records']:,}",
                f"versions            {len(cold['rows'])}",
                f"chunks              {cold['chunks']}",
                f"cold wall           {cold_wall:8.3f} s",
                f"cold records/s      {cold['records_per_second']:12,.0f}",
                f"cold peak rss       {cold['peak_rss_mb']:8.1f} MiB",
                f"warm (resume) wall  {warm_wall:8.3f} s",
                f"resume speedup      {cold_wall / warm_wall:8.1f} x",
            ]
        ),
    )

    assert cold["records_per_second"] >= THROUGHPUT_FLOOR, (
        f"classify throughput {cold['records_per_second']:,.0f} records/s "
        f"below the {THROUGHPUT_FLOOR:,.0f} floor"
    )
    assert cold["peak_rss_mb"] <= PEAK_RSS_CAP_MB, (
        f"classify peak RSS {cold['peak_rss_mb']:.0f} MiB exceeds the "
        f"{PEAK_RSS_CAP_MB:.0f} MiB cap"
    )
    if not SMOKE:
        # Interpreter start-up dominates the seconds-long smoke run, so
        # the wall-clock speedup claim is only meaningful at full size.
        assert cold_wall / warm_wall >= RESUME_SPEEDUP, (
            f"warm resume only {cold_wall / warm_wall:.1f}x faster than cold "
            f"({warm_wall:.2f}s vs {cold_wall:.2f}s)"
        )
