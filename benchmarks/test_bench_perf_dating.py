"""PERF ablation — digest dating vs. nearest-match probing.

DESIGN.md design-choice 3: exact dating is one XOR-digest lookup;
locally modified lists fall back to anchored nearest-match probing.
This bench shows the cost gap and why the digest index exists at all
(the paper dated hundreds of vendored copies).
"""

import datetime

import pytest

from repro.data import paper
from repro.psl.serialize import serialize_rules
from repro.repos.dating import ListDater


@pytest.fixture(scope="module")
def dating_workload(tables_world):
    store = tables_world.store
    dater = ListDater(store)
    version = store.version_at_date(paper.MEASUREMENT_DATE - datetime.timedelta(days=900))
    pristine = serialize_rules(store.rules_at(version.index))
    modified = pristine + "intranet.example\n"
    # Prime the dater's probe cache so the bench measures steady state.
    dater.date_text(modified)
    return dater, pristine, modified, version.index


def test_bench_dating_exact_digest(benchmark, dating_workload):
    dater, pristine, _, expected_index = dating_workload
    result = benchmark(dater.date_text, pristine)
    assert result.is_exact and result.version_index == expected_index


def test_bench_dating_nearest_match(benchmark, dating_workload):
    dater, _, modified, expected_index = dating_workload
    result = benchmark(dater.date_text, modified)
    assert not result.is_exact
    assert abs(result.version_index - expected_index) <= 8


def test_bench_dating_cold_corpus(benchmark, tables_world):
    """Dating the full 273-repository corpus from a cold dater."""
    store = tables_world.store
    corpus = tables_world.corpus
    texts = [repo.files[repo.psl_paths()[0]] for repo in corpus]

    def run():
        dater = ListDater(store)
        return sum(
            1 for text in texts
            if (result := dater.date_text(text)) is not None and result.is_exact
        )

    exact = benchmark.pedantic(run, rounds=1, iterations=1)
    assert exact == 151
