"""PERF — PSL engine micro-benchmarks.

Parse/serialize throughput on the full 9,368-rule list and the cost of
the core lookup operations, so downstream users know what a hot-path
``registrable_domain`` call costs.
"""

import pytest

from repro.psl.parser import parse_psl
from repro.psl.serialize import serialize_psl


@pytest.fixture(scope="module")
def full_list_text(tables_world):
    return serialize_psl(tables_world.store.checkout(-1))


@pytest.fixture(scope="module")
def full_psl(tables_world):
    return tables_world.store.checkout(-1)


def test_bench_parse_full_list(benchmark, full_list_text):
    psl = benchmark(parse_psl, full_list_text)
    assert len(psl) == 9368


def test_bench_serialize_full_list(benchmark, full_psl):
    text = benchmark(serialize_psl, full_psl)
    assert text.count("\n") > 9000


def test_bench_registrable_domain(benchmark, full_psl):
    def run():
        return (
            full_psl.registrable_domain("www.amazon.co.uk"),
            full_psl.registrable_domain("tenant.myshopify.com"),
            full_psl.registrable_domain("a.b.c.unknown-zone"),
        )

    results = benchmark(run)
    assert results[0] == "amazon.co.uk"


def test_bench_same_site(benchmark, full_psl):
    def run():
        return full_psl.same_site("a.github.io", "b.github.io")

    assert benchmark(run) is False


def test_bench_build_trie(benchmark, tables_world):
    rules = tables_world.store.rules_at(-1)
    from repro.psl.trie import SuffixTrie

    trie = benchmark(SuffixTrie, rules)
    assert len(trie) == 9368
