"""PERF ablation — incremental regrouping vs. full recompute.

DESIGN.md design-choice 2: the Figures 5-7 sweep applies 1,141 deltas.
Recomputing the full grouping per version costs |hostnames| lookups
each time; the incremental grouper re-examines only hostnames under
the touched rules.  The sweep over the whole history is only feasible
incrementally — this bench shows the per-version gap.
"""

import pytest

from repro.psl.list import PublicSuffixList
from repro.webgraph.sites import IncrementalGrouper, group_sites


@pytest.fixture(scope="module")
def sweep_segment(tables_world):
    """A mid-history segment of 20 versions plus the hostname universe."""
    store = tables_world.store
    start = len(store) // 2
    versions = store.versions[start + 1 : start + 21]
    return store, start, versions, tables_world.snapshot.hostnames


def test_bench_incremental_regroup(benchmark, sweep_segment):
    store, start, versions, hostnames = sweep_segment
    initial_rules = store.rules_at(start)

    def run():
        grouper = IncrementalGrouper(initial_rules, hostnames)
        for version in versions:
            grouper.apply(version.delta)
        return grouper.site_count

    benchmark.pedantic(run, rounds=2, iterations=1)


def test_bench_full_recompute(benchmark, sweep_segment):
    store, start, versions, hostnames = sweep_segment
    subset = versions[:3]  # full recompute per version is the slow path

    def run():
        counts = []
        for version in subset:
            psl = PublicSuffixList(store.rules_at(version.index))
            counts.append(len(set(group_sites(psl, hostnames).values())))
        return counts

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_incremental_matches_full_recompute(sweep_segment):
    store, start, versions, hostnames = sweep_segment
    grouper = IncrementalGrouper(store.rules_at(start), hostnames)
    for version in versions:
        grouper.apply(version.delta)
    final = group_sites(
        PublicSuffixList(store.rules_at(versions[-1].index)), hostnames
    )
    assert dict(grouper.assignment) == final
