"""PERF ablation — suffix trie vs. naive rule scan.

DESIGN.md design-choice 1: the two matchers are correctness-equivalent
(the property tests prove it); this bench quantifies why the trie is
the default.  On the full 9,368-rule list the naive scan is orders of
magnitude slower per lookup.
"""

import random

import pytest

from repro.psl.trie import SuffixTrie, naive_prevailing


@pytest.fixture(scope="module")
def lookup_workload(tables_world):
    rules = list(tables_world.store.rules_at(-1))
    rng = random.Random(7)
    hostnames = rng.sample(tables_world.snapshot.hostnames, 500)
    reversed_labels = [tuple(reversed(host.split("."))) for host in hostnames]
    return rules, reversed_labels


def test_bench_lookup_trie(benchmark, lookup_workload):
    rules, workload = lookup_workload
    trie = SuffixTrie(rules)

    def run():
        for labels in workload:
            trie.prevailing(labels)

    benchmark(run)


def test_bench_lookup_naive_scan(benchmark, lookup_workload):
    rules, workload = lookup_workload
    small = workload[:20]  # the naive scan is too slow for the full set

    def run():
        for labels in small:
            naive_prevailing(rules, labels)

    benchmark(run)


def test_trie_and_naive_agree_on_workload(lookup_workload):
    rules, workload = lookup_workload
    trie = SuffixTrie(rules)
    for labels in workload[:100]:
        assert trie.prevailing(labels) == naive_prevailing(rules, labels)
