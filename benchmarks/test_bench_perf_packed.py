"""PERF — packed zero-copy snapshots: the two gates plus mmap fan-out.

Three claims guard the ``repro.psl.packed`` encoding:

* **lookup gate** — an *uncached* packed match must come in at or
  under 5.87 µs/hostname, the measured cost of the previous serving
  path (dict trie behind the per-hostname LRU).  The packed trie walks
  flat offset arrays through ``memoryview`` with no per-hostname cache
  in front of it.
* **resident gate** — holding the full 1,142-version history resident
  as one packed buffer must cut memory at least 5x against the same
  residency as dict tries (extrapolated from a sampled subset; building
  all 1,142 dict tries would need gigabytes).
* **fan-out** — N reader processes ``mmap`` one packed artifact file
  and answer bit-identically to each other and to the dict oracle;
  the OS shares the physical pages, so process count stops multiplying
  resident cost.

``make bench-packed`` runs exactly this file.
"""

from __future__ import annotations

import hashlib
import json
import random
import subprocess
import sys
import time

import pytest

from benchmarks.conftest import save_artifact
from repro.psl.list import PublicSuffixList
from repro.psl.packed import (
    PackedHistory,
    dict_trie_bytes,
    pack_history,
    pack_rules,
)

pytestmark = pytest.mark.bench

GATE_MATCH_US = 5.87        # the old cached-LRU path, µs per hostname
GATE_RESIDENT_RATIO = 5.0   # packed full history vs dict tries
TRIALS = 7
DICT_SAMPLE = 25            # versions measured to extrapolate dict cost
WORKERS = 4
PROBES_PER_VERSION = 13


@pytest.fixture(scope="module")
def packed_blob(tables_world):
    """The full history packed once for every test in this file."""
    return pack_history(tables_world.store)


def _workload(tables_world, count: int = 500) -> list[str]:
    rng = random.Random(7)
    return rng.sample(tables_world.snapshot.hostnames, count)


def _best_per_host_us(psl: PublicSuffixList, hosts: list[str]) -> float:
    best = float("inf")
    for _ in range(TRIALS):
        begin = time.perf_counter()
        for host in hosts:
            psl.match(host)
        best = min(best, time.perf_counter() - begin)
    return best / len(hosts) * 1e6


def test_bench_packed_match_gate(tables_world):
    rules = list(tables_world.store.rules_at(-1))
    packed = PackedHistory.from_buffer(pack_rules(rules))
    packed_psl = PublicSuffixList.from_packed(packed.trie(0))
    dict_psl = tables_world.store.checkout(-1)
    hosts = _workload(tables_world)

    # Same answers first, then the stopwatch.
    for host in hosts[:100]:
        assert packed_psl.match(host) == dict_psl.match(host), host

    packed_us = _best_per_host_us(packed_psl, hosts)
    dict_us = _best_per_host_us(dict_psl, hosts)

    lines = [
        f"packed uncached match:     {packed_us:6.2f} µs/hostname "
        f"(best of {TRIALS} trials; gate: <= {GATE_MATCH_US} µs, {len(rules)} rules)",
        f"dict uncached match:       {dict_us:6.2f} µs/hostname",
        f"packed/dict ratio:         {packed_us / dict_us:6.2f}x",
    ]
    print()
    print("\n".join(lines))
    save_artifact("bench_perf_packed_match.txt", "\n".join(lines))
    assert packed_us <= GATE_MATCH_US


def test_bench_packed_resident_gate(tables_world, packed_blob):
    store = tables_world.store
    versions = len(store)
    packed_mb = len(packed_blob) / 1e6

    # Extrapolate the dict cost from an evenly spaced sample: measuring
    # all versions would itself need the gigabytes the gate forbids.
    step = max(1, versions // DICT_SAMPLE)
    sampled = list(range(0, versions, step))[:DICT_SAMPLE]
    measured = [dict_trie_bytes(store.checkout(i)._trie) for i in sampled]
    dict_total_mb = sum(measured) / len(measured) * versions / 1e6

    ratio = dict_total_mb / packed_mb
    lines = [
        f"packed blob ({versions} versions):  {packed_mb:8.2f} MB "
        f"({len(packed_blob) / versions / 1e3:.1f} kB/version amortized)",
        f"dict tries (extrapolated):     {dict_total_mb:8.2f} MB "
        f"({len(sampled)} versions sampled)",
        f"resident-set ratio:            {ratio:8.1f}x   "
        f"(gate: >= {GATE_RESIDENT_RATIO:.0f}x)",
    ]
    print()
    print("\n".join(lines))
    save_artifact("bench_perf_packed_resident.txt", "\n".join(lines))
    assert ratio >= GATE_RESIDENT_RATIO


_READER = """
import hashlib, json, sys, time
from repro.psl.packed import PackedHistory
from repro.psl.list import PublicSuffixList

path, probes = sys.argv[1], json.loads(sys.argv[2])
begin = time.perf_counter()
history = PackedHistory.load(path)
load_seconds = time.perf_counter() - begin
digest = hashlib.sha256()
answered = 0
for index in range(len(history)):
    psl = PublicSuffixList.from_packed(history.trie(index))
    for host in probes:
        digest.update(psl.match(host).site.encode())
        answered += 1
print(json.dumps({
    "digest": digest.hexdigest(),
    "answered": answered,
    "mmap_shared": history.mmap_shared,
    "load_seconds": load_seconds,
}))
"""


def test_bench_packed_multiprocess_fanout(tables_world, packed_blob, tmp_path):
    path = tmp_path / "history.pslpak"
    path.write_bytes(packed_blob)
    probes = _workload(tables_world, PROBES_PER_VERSION)

    begin = time.perf_counter()
    readers = [
        subprocess.Popen(
            [sys.executable, "-c", _READER, str(path), json.dumps(probes)],
            stdout=subprocess.PIPE,
            cwd="/root/repo",
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        for _ in range(WORKERS)
    ]
    results = []
    for reader in readers:
        out, _ = reader.communicate(timeout=560)
        assert reader.returncode == 0
        results.append(json.loads(out))
    wall = time.perf_counter() - begin

    digests = {result["digest"] for result in results}
    assert len(digests) == 1, "readers disagree"
    assert all(result["mmap_shared"] for result in results)
    versions = len(tables_world.store)
    assert results[0]["answered"] == versions * PROBES_PER_VERSION

    # The shared digest must also be the dict oracle's digest.
    oracle = hashlib.sha256()
    history = PackedHistory.from_buffer(packed_blob)
    for index in range(versions):
        psl = PublicSuffixList.from_packed(history.trie(index))
        for host in probes:
            oracle.update(psl.match(host).site.encode())
    for index in (0, versions // 2, versions - 1):
        dict_psl = tables_world.store.checkout(index)
        packed_psl = PublicSuffixList.from_packed(history.trie(index))
        for host in probes:
            assert packed_psl.match(host) == dict_psl.match(host), (index, host)
    assert oracle.hexdigest() == digests.pop()

    lines = [
        f"{WORKERS} forked readers over one mmap'd blob "
        f"({len(packed_blob) / 1e6:.2f} MB)",
        f"verified {versions * PROBES_PER_VERSION} probes across all "
        f"{versions} versions each, in {wall:.1f}s wall",
        "bit-identical to the dict SuffixTrie: yes (all workers agree)",
    ]
    print()
    print("\n".join(lines))
    save_artifact("bench_perf_packed_multiprocess.txt", "\n".join(lines))
