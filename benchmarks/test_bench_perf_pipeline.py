"""PERF — the artifact pipeline: warm speedup and cold abstraction cost.

Two gates guard the ``repro.pipeline`` refactor:

* **warm >= 5x cold** — a second full render over a populated
  ``--cache-dir`` store must load every stage from disk and beat the
  cold build by at least 5x end to end;
* **cold overhead < 10%** — on the default (memory-store) path the DAG
  plumbing — fingerprinting, report bookkeeping, input threading — must
  cost < 10% over calling the synthesis and render functions directly,
  i.e. the pre-pipeline code path.

Both run on slim worlds: the gates measure the pipeline layer, not the
synthesis workload.
"""

import datetime
import time

import pytest

from benchmarks.conftest import BENCH_SEED, save_artifact
from repro.analysis import growth, report, taxonomy
from repro.analysis.boundaries import run_sweep
from repro.analysis.context import world_stages
from repro.analysis.pipeline import TERMINALS, paper_pipeline
from repro.history.synthesis import SynthesisConfig, synthesize_history
from repro.pipeline import ArtifactStore, Pipeline
from repro.repos.classifier import classify
from repro.repos.corpus import CorpusConfig, build_corpus
from repro.repos.dating import ListDater
from repro.webgraph.synthesis import SnapshotConfig, synthesize_snapshot

pytestmark = pytest.mark.bench

TABLES_CFG = SnapshotConfig(seed=BENCH_SEED, harm_scale=0.2, bulk_scale=0.02)
FIGURES_CFG = SnapshotConfig(seed=BENCH_SEED, harm_scale=0.1, bulk_scale=0.04)
MIN_WARM_SPEEDUP = 5.0
MAX_COLD_OVERHEAD = 0.10
WARM_ROUNDS = 3


def _render_everything(paper):
    # The export terminal writes ./release as a side effect and is
    # cache=False by design; the timing gates cover the cached DAG.
    return {
        name: paper.render(name) for name in TERMINALS if name != "export"
    }


def test_bench_warm_store_speedup(tmp_path):
    cache_dir = str(tmp_path / "store")

    def assemble():
        return paper_pipeline(
            BENCH_SEED,
            store=ArtifactStore(cache_dir),
            tables=TABLES_CFG,
            figures=FIGURES_CFG,
        )

    begin = time.perf_counter()
    cold_paper = assemble()
    cold_outputs = _render_everything(cold_paper)
    cold_seconds = time.perf_counter() - begin

    warm_seconds = float("inf")
    warm_outputs = None
    for _ in range(WARM_ROUNDS):
        begin = time.perf_counter()
        warm_paper = assemble()  # fresh store instance: disk path only
        warm_outputs = _render_everything(warm_paper)
        warm_seconds = min(warm_seconds, time.perf_counter() - begin)
    assert warm_outputs == cold_outputs  # same answer first
    assert not warm_paper.report.computed_stages()

    speedup = cold_seconds / warm_seconds
    save_artifact(
        "perf_pipeline_warm.txt",
        "\n".join(
            [
                f"date           {datetime.date.today().isoformat()}",
                f"terminals      {len(cold_outputs)}",
                f"cold build     {cold_seconds:8.3f} s",
                f"warm reload    {warm_seconds:8.3f} s",
                f"speedup        {speedup:8.1f} x",
            ]
        ),
    )
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm store only {speedup:.1f}x faster than cold "
        f"({warm_seconds:.3f}s vs {cold_seconds:.3f}s)"
    )


def _direct_world():
    """The pre-pipeline code path: call everything by hand."""
    history = synthesize_history(SynthesisConfig(seed=BENCH_SEED))
    corpus = build_corpus(history, CorpusConfig(seed=BENCH_SEED))
    rule_names = {
        rule.name for version in history for rule in version.delta.added
    }
    snapshot = synthesize_snapshot(
        TABLES_CFG, forbidden_suffixes=frozenset(rule_names)
    )
    classifications = {}
    for repo in corpus:
        verdict = classify(repo)
        if verdict is not None:
            classifications[repo.name] = verdict
    dater = ListDater(history)
    datings = {}
    for repo in corpus:
        paths = repo.psl_paths()
        datings[repo.name] = dater.date_text(repo.files[paths[0]]) if paths else None
    sweep = run_sweep(history, snapshot)
    return {
        "fig2": report.render_figure2(
            growth.summarize(history), growth.figure2_series(history)
        ),
        "tab1": report.render_table1(taxonomy.table1(corpus)),
        "fig5": report.render_figure5(sweep),
    }


def _pipelined_world():
    """The identical work through the DAG (fresh memory-only store)."""
    pipeline = Pipeline(
        world_stages(BENCH_SEED, TABLES_CFG), store=ArtifactStore()
    )
    for name in ("classifications", "datings"):
        pipeline.build(name)
    history = pipeline.build("history")
    return {
        "fig2": report.render_figure2(
            growth.summarize(history), growth.figure2_series(history)
        ),
        "tab1": report.render_table1(taxonomy.table1(pipeline.build("corpus"))),
        "fig5": report.render_figure5(pipeline.build("sweep")),
    }


def test_bench_cold_abstraction_overhead():
    direct_seconds = float("inf")
    pipelined_seconds = float("inf")
    direct_outputs = pipelined_outputs = None
    for _ in range(2):  # interleaved best-of-2 shaves scheduler noise
        begin = time.perf_counter()
        direct_outputs = _direct_world()
        direct_seconds = min(direct_seconds, time.perf_counter() - begin)
        begin = time.perf_counter()
        pipelined_outputs = _pipelined_world()
        pipelined_seconds = min(pipelined_seconds, time.perf_counter() - begin)

    assert pipelined_outputs == direct_outputs  # same answer first
    overhead = pipelined_seconds / direct_seconds - 1.0
    save_artifact(
        "perf_pipeline_cold.txt",
        "\n".join(
            [
                f"date           {datetime.date.today().isoformat()}",
                f"direct calls   {direct_seconds:8.3f} s",
                f"via pipeline   {pipelined_seconds:8.3f} s ({overhead:+6.1%})",
            ]
        ),
    )
    assert overhead < MAX_COLD_OVERHEAD, (
        f"pipeline plumbing costs {overhead:.1%} on a cold build "
        f"({pipelined_seconds:.3f}s vs {direct_seconds:.3f}s direct)"
    )
