"""PERF — the resilient runtime wrapper on a fault-free sweep.

The runtime layer (retries, quarantine, checkpoint hooks) must be
free when nothing fails: the gate asserts the wrapped serial sweep
costs < 10% over the raw pre-resilience path (``resilience=None``)
on a >= 200-version segment.  Checkpointed overhead is measured and
persisted for EXPERIMENTS.md but not gated — spilling partials does
real I/O by design.

Timings are best-of-3 to shave scheduler noise; both strategies run
the identical task list through the identical merges, so the compared
work differs only by the runtime wrapper itself.
"""

import datetime
import time

import pytest

from benchmarks.conftest import save_artifact
from repro.history.store import VersionStore
from repro.sweep import SweepEngine

pytestmark = pytest.mark.bench

SEGMENT_VERSIONS = 220
UNIVERSE_SIZE = 3000
ROUNDS = 3
MAX_OVERHEAD = 0.10


@pytest.fixture(scope="module")
def runtime_world(tables_world):
    """A >= 200-version sub-history plus a fixed hostname sample."""
    store = tables_world.store
    start = len(store) // 3
    segment = VersionStore(snapshot_interval=64)
    initial = store.rules_at(start)
    segment.commit_rules(store.versions[start].date, added=sorted(initial, key=lambda r: r.text))
    for version in store.versions[start + 1 : start + SEGMENT_VERSIONS]:
        segment.commit(version.date, version.delta)
    hostnames = tables_world.snapshot.hostnames[:UNIVERSE_SIZE]
    assert len(segment) >= 200
    return segment, hostnames


def _best_of(rounds, run):
    best = float("inf")
    result = None
    for _ in range(rounds):
        begin = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - begin)
    return best, result


def test_bench_runtime_wrapper_overhead(runtime_world, tmp_path):
    store, hostnames = runtime_world

    raw_seconds, raw_counts = _best_of(
        ROUNDS, lambda: SweepEngine(store, resilience=None).sweep_sites(hostnames)
    )
    wrapped_seconds, wrapped_counts = _best_of(
        ROUNDS, lambda: SweepEngine(store).sweep_sites(hostnames)
    )
    checkpointed_seconds, checkpointed_counts = _best_of(
        ROUNDS,
        lambda: SweepEngine(
            store, checkpoint_dir=str(tmp_path / "spill"), resume=False
        ).sweep_sites(hostnames),
    )

    assert wrapped_counts == raw_counts == checkpointed_counts  # same answer first
    overhead = wrapped_seconds / raw_seconds - 1.0
    checkpoint_overhead = checkpointed_seconds / raw_seconds - 1.0

    save_artifact(
        "perf_runtime.txt",
        "\n".join(
            [
                f"date                 {datetime.date.today().isoformat()}",
                f"versions             {len(store)}",
                f"hostnames            {len(hostnames)}",
                f"raw pool (bypass)    {raw_seconds:8.3f} s",
                f"resilient runtime    {wrapped_seconds:8.3f} s ({overhead:+6.1%})",
                f"with checkpointing   {checkpointed_seconds:8.3f} s ({checkpoint_overhead:+6.1%})",
            ]
        ),
    )
    assert overhead < MAX_OVERHEAD, (
        f"runtime wrapper costs {overhead:.1%} on a fault-free sweep "
        f"({wrapped_seconds:.3f}s vs {raw_seconds:.3f}s raw)"
    )
