"""PERF — the serving layer: caching, batch amortization, fleet scaling.

Gates guarding ``repro.serve`` (ISSUE 5 + ISSUE 9 acceptance):

* **cached singles >= 50x uncached rebuild** — a cached engine lookup
  must beat the naive no-snapshot service design (checkout the rule
  set and rebuild the trie per request, i.e.
  ``PublicSuffixList(rules).match(host)``) by at least 50x per
  lookup.  This is the whole point of immutable resident snapshots:
  the trie build is paid once per version, not once per request.
* **batch >= 5x singles per hostname** — over real HTTP on an
  ephemeral port, answering N hostnames through one ``/batch`` POST
  must cost at most 1/5th per hostname of N separate ``/site`` GETs.
  Request framing dominates single lookups; the batch API exists to
  amortize it.
* **fleet throughput and latency** — Zipf-shaped load from
  :mod:`repro.serve.loadgen` against a real 4-worker pre-fork fleet,
  gating zero failed requests and p99 under budget.  The >= 2.5x
  single-worker scaling gate only binds on hosts with >= 4 CPU cores:
  worker processes cannot multiply throughput past the physical core
  count, so on smaller hosts the gate degrades (honestly) to a
  bounded-overhead check — the fleet must still deliver a stated
  fraction of single-worker throughput.
* **fleet resident memory < 2x single-worker** — the whole point of
  the mmap-shared ``PSLPAK1`` buffer: four processes over one blob
  must not cost four times the memory.  Measured as summed
  proportional-set-size (Pss) from ``/proc/<pid>/smaps_rollup``, which
  counts shared pages once across the fleet.

``BENCH_SERVE_SMOKE=1`` shrinks the load so ``make check`` can run the
fleet path in seconds; the scaling ratio is then too noisy to gate, so
smoke mode asserts only the functional contracts (zero failures, p99
budget, memory sharing).
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
import urllib.request

import pytest

from benchmarks.conftest import BENCH_SEED, save_artifact
from repro.history.synthesis import SynthesisConfig, synthesize_history
from repro.psl.list import PublicSuffixList
from repro.serve.engine import QueryEngine
from repro.serve.http import PslServer
from repro.serve.snapshots import SnapshotRegistry

pytestmark = pytest.mark.bench

MIN_CACHED_VS_REBUILD = 50.0
MIN_BATCH_VS_SINGLES = 5.0

SMOKE = os.environ.get("BENCH_SERVE_SMOKE") == "1"

CACHED_LOOKUPS = 2_000 if SMOKE else 20_000
REBUILD_LOOKUPS = 2 if SMOKE else 5
HTTP_SINGLES = 50 if SMOKE else 150
HTTP_BATCH_ROUNDS = 2 if SMOKE else 5

# -- fleet gates -------------------------------------------------------------
FLEET_WORKERS = 4
LOAD_REQUESTS = 600 if SMOKE else 6_000
LOAD_CONCURRENCY = 8
#: p99 budget for a /site lookup over loopback HTTP (generous: the
#: steady state measures ~2-11 ms under 8-way concurrency on one
#: core).  Smoke runs issue so few requests that the p99 lands inside
#: the connection-establishment burst, so the budget widens there.
P99_BUDGET_MS = 250.0 if SMOKE else 50.0
#: Binds when the host has >= FLEET_WORKERS cores (the ISSUE 9 gate).
MIN_FLEET_SCALING = 2.5
#: Binds everywhere else: on a core-starved host N workers cannot beat
#: one, but the fleet machinery must not cost more than half the
#: single-worker throughput either.
MIN_FLEET_FRACTION = 0.5
MAX_FLEET_MEMORY_RATIO = 2.0


@pytest.fixture(scope="module")
def history():
    return synthesize_history(SynthesisConfig(seed=BENCH_SEED))


@pytest.fixture(scope="module")
def hostnames(history):
    """Zipf-repeating traffic over suffixes the final list really has."""
    psl = history.checkout(-1)
    suffixes = [rule.name for rule in psl.rules if "*" not in rule.text][:2_000]
    rng = random.Random(BENCH_SEED)
    distinct = [
        f"www{index}.site{index % 97}.{rng.choice(suffixes)}"
        for index in range(2_000)
    ]
    # Zipf-ish: heavy repetition of a small head, long sparse tail.
    traffic = []
    for position in range(CACHED_LOOKUPS):
        if position % 10 < 8:
            traffic.append(distinct[position % 100])
        else:
            traffic.append(distinct[position % len(distinct)])
    return traffic


def test_bench_cached_lookup_vs_trie_rebuild(history, hostnames):
    registry = SnapshotRegistry(history)
    engine = QueryEngine(registry, cache_capacity=65_536)
    rules = history.rules_at(-1)

    # Warm the cache with one pass, then time the cached steady state.
    for host in hostnames[:2_000]:
        engine.site(host)
    started = time.perf_counter()
    for host in hostnames:
        engine.site(host)
    cached_per = (time.perf_counter() - started) / len(hostnames)

    # The no-snapshot baseline: every request rebuilds the trie.
    started = time.perf_counter()
    for host in hostnames[:REBUILD_LOOKUPS]:
        PublicSuffixList(rules).match(host)
    rebuild_per = (time.perf_counter() - started) / REBUILD_LOOKUPS

    speedup = rebuild_per / cached_per
    stats = engine.stats()
    lines = [
        f"cached engine lookup:   {cached_per * 1e6:8.2f} µs/hostname "
        f"(hit rate {stats.hit_rate:.1%}, {stats.entries} entries)",
        f"rebuild-per-request:    {rebuild_per * 1e3:8.2f} ms/hostname "
        f"({len(rules)} rules)",
        f"speedup:                {speedup:8.0f}x   (gate: >= {MIN_CACHED_VS_REBUILD:.0f}x)",
    ]
    print()
    for line in lines:
        print("  " + line)
    save_artifact("bench_perf_serve_cached.txt", "\n".join(lines) + "\n")
    assert speedup >= MIN_CACHED_VS_REBUILD


def test_bench_batch_amortizes_http_overhead(history, hostnames):
    registry = SnapshotRegistry(history)
    engine = QueryEngine(registry, cache_capacity=65_536)
    server = PslServer(("127.0.0.1", 0), registry, engine=engine, max_inflight=64)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        base = server.url
        batch_hosts = hostnames[:HTTP_SINGLES]

        def get(path: str) -> None:
            with urllib.request.urlopen(base + path, timeout=30) as response:
                response.read()

        def post_batch(hosts: list[str]) -> None:
            payload = json.dumps({"hostnames": hosts}).encode()
            request = urllib.request.Request(
                base + "/batch", data=payload,
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=30) as response:
                response.read()

        # Warm: sockets, caches, code paths.
        get(f"/site?host={batch_hosts[0]}")
        post_batch(batch_hosts)

        started = time.perf_counter()
        for host in batch_hosts:
            get(f"/site?host={host}")
        singles_per = (time.perf_counter() - started) / len(batch_hosts)

        started = time.perf_counter()
        for _ in range(HTTP_BATCH_ROUNDS):
            post_batch(batch_hosts)
        batch_per = (time.perf_counter() - started) / (
            HTTP_BATCH_ROUNDS * len(batch_hosts)
        )
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)

    advantage = singles_per / batch_per
    lines = [
        f"single /site over HTTP: {singles_per * 1e6:8.1f} µs/hostname "
        f"({HTTP_SINGLES} requests)",
        f"/batch over HTTP:       {batch_per * 1e6:8.1f} µs/hostname "
        f"({HTTP_BATCH_ROUNDS} x {len(batch_hosts)}-hostname batches)",
        f"batch advantage:        {advantage:8.1f}x   (gate: >= {MIN_BATCH_VS_SINGLES:.0f}x)",
    ]
    print()
    for line in lines:
        print("  " + line)
    save_artifact("bench_perf_serve_batch.txt", "\n".join(lines) + "\n")
    assert advantage >= MIN_BATCH_VS_SINGLES


# ---------------------------------------------------------------------------
# Fleet gates (ISSUE 9): throughput scaling, p99, shared resident memory
# ---------------------------------------------------------------------------

def _pss_bytes(pid: int) -> int | None:
    """Proportional set size of one process, or None off-Linux.

    Pss charges each shared page 1/N to each of its N mappers, so the
    *sum* over the fleet counts the shared packed blob (and every
    still-COW interpreter page) exactly once — the honest measure of
    what the fleet costs the machine.
    """
    try:
        with open(f"/proc/{pid}/smaps_rollup", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("Pss:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        return None
    return None


@pytest.fixture(scope="module")
def packed_world(history, tmp_path_factory):
    """The packed history as an mmap-loadable blob on disk."""
    from repro.psl.packed import PackedHistory, pack_history

    path = tmp_path_factory.mktemp("fleet") / "history.pslpak"
    path.write_bytes(pack_history(history))
    return history, str(path)


@pytest.fixture(scope="module")
def load_hosts(hostnames):
    """A de-duplicated population for the Zipf sampler (it re-skews)."""
    seen: dict[str, None] = {}
    for host in hostnames:
        seen.setdefault(host)
    return list(seen)


def _start_fleet(history, blob_path: str, workers: int, run_dir: str):
    from repro.psl.packed import PackedHistory
    from repro.serve.cli import wait_until_up
    from repro.serve.fleet import FleetConfig, FleetSupervisor

    supervisor = FleetSupervisor(
        history,
        config=FleetConfig(
            workers=workers,
            port=0,
            run_dir=run_dir,
            drain_deadline=5.0,
            cache_capacity=65_536,
        ),
        packed=PackedHistory.load(blob_path),
    )
    supervisor.start()
    assert wait_until_up(supervisor.url, timeout=20)
    return supervisor


def _drive(url: str, population: list[str], *, requests: int):
    from repro.serve.loadgen import run_load

    # One warm pass for sockets and caches, then the measured run.
    run_load(url, population, requests=max(50, requests // 10),
             concurrency=LOAD_CONCURRENCY, seed=BENCH_SEED)
    return run_load(url, population, requests=requests,
                    concurrency=LOAD_CONCURRENCY, seed=BENCH_SEED + 1)


def test_bench_fleet_throughput_and_latency(packed_world, load_hosts, tmp_path):
    from repro.psl.packed import PackedHistory
    from repro.serve.fleet import fork_available

    if not fork_available():  # pragma: no cover - POSIX-only fleet
        pytest.skip("fleet requires os.fork")
    history, blob_path = packed_world

    # Single-worker baseline: the plain threaded server over the same
    # mmap-loaded blob.
    registry = SnapshotRegistry(history, packed=PackedHistory.load(blob_path))
    engine = QueryEngine(registry, cache_capacity=65_536)
    single_server = PslServer(("127.0.0.1", 0), registry, engine=engine, max_inflight=64)
    accept = threading.Thread(target=single_server.serve_forever, daemon=True)
    accept.start()
    try:
        single = _drive(single_server.url, load_hosts, requests=LOAD_REQUESTS)
    finally:
        single_server.shutdown()
        single_server.server_close()
        accept.join(timeout=5)

    supervisor = _start_fleet(
        history, blob_path, FLEET_WORKERS, str(tmp_path / "run")
    )
    try:
        fleet = _drive(supervisor.url, load_hosts, requests=LOAD_REQUESTS)
    finally:
        assert supervisor.drain()

    cores = os.cpu_count() or 1
    scaling = fleet.throughput_rps / max(single.throughput_rps, 1e-9)
    lines = [
        f"single worker:   {single.throughput_rps:8,.0f} req/s   "
        f"p50 {single.p50_ms:6.2f} ms   p99 {single.p99_ms:6.2f} ms   "
        f"({single.requests} reqs, {single.failures} failed)",
        f"{FLEET_WORKERS}-worker fleet:  {fleet.throughput_rps:8,.0f} req/s   "
        f"p50 {fleet.p50_ms:6.2f} ms   p99 {fleet.p99_ms:6.2f} ms   "
        f"({fleet.requests} reqs, {fleet.failures} failed)",
        f"scaling:         {scaling:8.2f}x on {cores} CPU core(s)"
        + (
            f"   (gate: >= {MIN_FLEET_SCALING}x)"
            if cores >= FLEET_WORKERS
            else f"   (core-starved host: gate degrades to >= {MIN_FLEET_FRACTION}x)"
        ),
        f"p99 budget:      {fleet.p99_ms:8.2f} ms   (gate: <= {P99_BUDGET_MS:.0f} ms)",
    ]
    print()
    for line in lines:
        print("  " + line)
    save_artifact("bench_perf_serve_fleet.txt", "\n".join(lines) + "\n")

    assert single.failures == 0 and fleet.failures == 0
    assert fleet.p99_ms <= P99_BUDGET_MS
    if not SMOKE:
        if cores >= FLEET_WORKERS:
            assert scaling >= MIN_FLEET_SCALING
        else:
            assert scaling >= MIN_FLEET_FRACTION


def test_bench_fleet_memory_shares_the_packed_blob(packed_world, load_hosts, tmp_path):
    from repro.serve.fleet import fork_available

    if not fork_available():  # pragma: no cover - POSIX-only fleet
        pytest.skip("fleet requires os.fork")
    history, blob_path = packed_world

    def measured_fleet(workers: int, tag: str) -> int | None:
        supervisor = _start_fleet(
            history, blob_path, workers, str(tmp_path / f"run-{tag}")
        )
        try:
            # Touch every worker with real traffic so the measurement
            # reflects serving state, not a freshly forked blank.
            _drive(supervisor.url, load_hosts, requests=max(200, LOAD_REQUESTS // 10))
            sizes = [_pss_bytes(pid) for pid in supervisor.alive_pids()]
            if any(size is None for size in sizes):
                return None
            return sum(sizes)  # type: ignore[arg-type]
        finally:
            assert supervisor.drain()

    single_pss = measured_fleet(1, "single")
    fleet_pss = measured_fleet(FLEET_WORKERS, "fleet")
    if single_pss is None or fleet_pss is None:
        pytest.skip("/proc/<pid>/smaps_rollup unavailable (non-Linux host)")

    ratio = fleet_pss / max(single_pss, 1)
    lines = [
        f"1-worker resident (Pss):          {single_pss / 1e6:8.1f} MB",
        f"{FLEET_WORKERS}-worker fleet resident (sum Pss): {fleet_pss / 1e6:8.1f} MB",
        f"ratio: {ratio:5.2f}x   (gate: < {MAX_FLEET_MEMORY_RATIO:.0f}x — "
        f"the packed blob and COW pages are shared, not copied)",
    ]
    print()
    for line in lines:
        print("  " + line)
    save_artifact("bench_perf_serve_fleet_memory.txt", "\n".join(lines) + "\n")
    assert ratio < MAX_FLEET_MEMORY_RATIO
