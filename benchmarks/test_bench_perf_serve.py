"""PERF — the serving layer: snapshot caching and batch amortization.

Two gates guard ``repro.serve`` (ISSUE 5 acceptance):

* **cached singles >= 50x uncached rebuild** — a cached engine lookup
  must beat the naive no-snapshot service design (checkout the rule
  set and rebuild the trie per request, i.e.
  ``PublicSuffixList(rules).match(host)``) by at least 50x per
  lookup.  This is the whole point of immutable resident snapshots:
  the trie build is paid once per version, not once per request.
* **batch >= 5x singles per hostname** — over real HTTP on an
  ephemeral port, answering N hostnames through one ``/batch`` POST
  must cost at most 1/5th per hostname of N separate ``/site`` GETs.
  Request framing dominates single lookups; the batch API exists to
  amortize it.

Both run against the full synthesized history (the 9,368-rule final
version), Zipf-shaped hostname traffic (real consumers repeat names).
"""

from __future__ import annotations

import json
import random
import threading
import time
import urllib.request

import pytest

from benchmarks.conftest import BENCH_SEED, save_artifact
from repro.history.synthesis import SynthesisConfig, synthesize_history
from repro.psl.list import PublicSuffixList
from repro.serve.engine import QueryEngine
from repro.serve.http import PslServer
from repro.serve.snapshots import SnapshotRegistry

pytestmark = pytest.mark.bench

MIN_CACHED_VS_REBUILD = 50.0
MIN_BATCH_VS_SINGLES = 5.0

CACHED_LOOKUPS = 20_000
REBUILD_LOOKUPS = 5
HTTP_SINGLES = 150
HTTP_BATCH_ROUNDS = 5


@pytest.fixture(scope="module")
def history():
    return synthesize_history(SynthesisConfig(seed=BENCH_SEED))


@pytest.fixture(scope="module")
def hostnames(history):
    """Zipf-repeating traffic over suffixes the final list really has."""
    psl = history.checkout(-1)
    suffixes = [rule.name for rule in psl.rules if "*" not in rule.text][:2_000]
    rng = random.Random(BENCH_SEED)
    distinct = [
        f"www{index}.site{index % 97}.{rng.choice(suffixes)}"
        for index in range(2_000)
    ]
    # Zipf-ish: heavy repetition of a small head, long sparse tail.
    traffic = []
    for position in range(CACHED_LOOKUPS):
        if position % 10 < 8:
            traffic.append(distinct[position % 100])
        else:
            traffic.append(distinct[position % len(distinct)])
    return traffic


def test_bench_cached_lookup_vs_trie_rebuild(history, hostnames):
    registry = SnapshotRegistry(history)
    engine = QueryEngine(registry, cache_capacity=65_536)
    rules = history.rules_at(-1)

    # Warm the cache with one pass, then time the cached steady state.
    for host in hostnames[:2_000]:
        engine.site(host)
    started = time.perf_counter()
    for host in hostnames:
        engine.site(host)
    cached_per = (time.perf_counter() - started) / len(hostnames)

    # The no-snapshot baseline: every request rebuilds the trie.
    started = time.perf_counter()
    for host in hostnames[:REBUILD_LOOKUPS]:
        PublicSuffixList(rules).match(host)
    rebuild_per = (time.perf_counter() - started) / REBUILD_LOOKUPS

    speedup = rebuild_per / cached_per
    stats = engine.stats()
    lines = [
        f"cached engine lookup:   {cached_per * 1e6:8.2f} µs/hostname "
        f"(hit rate {stats.hit_rate:.1%}, {stats.entries} entries)",
        f"rebuild-per-request:    {rebuild_per * 1e3:8.2f} ms/hostname "
        f"({len(rules)} rules)",
        f"speedup:                {speedup:8.0f}x   (gate: >= {MIN_CACHED_VS_REBUILD:.0f}x)",
    ]
    print()
    for line in lines:
        print("  " + line)
    save_artifact("bench_perf_serve_cached.txt", "\n".join(lines) + "\n")
    assert speedup >= MIN_CACHED_VS_REBUILD


def test_bench_batch_amortizes_http_overhead(history, hostnames):
    registry = SnapshotRegistry(history)
    engine = QueryEngine(registry, cache_capacity=65_536)
    server = PslServer(("127.0.0.1", 0), registry, engine=engine, max_inflight=64)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        base = server.url
        batch_hosts = hostnames[:HTTP_SINGLES]

        def get(path: str) -> None:
            with urllib.request.urlopen(base + path, timeout=30) as response:
                response.read()

        def post_batch(hosts: list[str]) -> None:
            payload = json.dumps({"hostnames": hosts}).encode()
            request = urllib.request.Request(
                base + "/batch", data=payload,
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=30) as response:
                response.read()

        # Warm: sockets, caches, code paths.
        get(f"/site?host={batch_hosts[0]}")
        post_batch(batch_hosts)

        started = time.perf_counter()
        for host in batch_hosts:
            get(f"/site?host={host}")
        singles_per = (time.perf_counter() - started) / len(batch_hosts)

        started = time.perf_counter()
        for _ in range(HTTP_BATCH_ROUNDS):
            post_batch(batch_hosts)
        batch_per = (time.perf_counter() - started) / (
            HTTP_BATCH_ROUNDS * len(batch_hosts)
        )
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)

    advantage = singles_per / batch_per
    lines = [
        f"single /site over HTTP: {singles_per * 1e6:8.1f} µs/hostname "
        f"({HTTP_SINGLES} requests)",
        f"/batch over HTTP:       {batch_per * 1e6:8.1f} µs/hostname "
        f"({HTTP_BATCH_ROUNDS} x {len(batch_hosts)}-hostname batches)",
        f"batch advantage:        {advantage:8.1f}x   (gate: >= {MIN_BATCH_VS_SINGLES:.0f}x)",
    ]
    print()
    for line in lines:
        print("  " + line)
    save_artifact("bench_perf_serve_batch.txt", "\n".join(lines) + "\n")
    assert advantage >= MIN_BATCH_VS_SINGLES
