"""PERF — the delta-driven sweep engine vs. rebuild-per-version.

The acceptance bar for the sweep subsystem:

* the delta-driven engine is >= 5x faster than rebuilding a trie and
  regrouping the universe at every version, measured over a >= 200
  version history segment;
* parallel (``workers=2``) output is bit-identical to serial, and on a
  multi-core host the parallel run is also faster (the identity is
  asserted everywhere; the speed claim only where the hardware can
  deliver it).

Timing uses ``time.perf_counter`` directly rather than the
``benchmark`` fixture because the assertions compare *two* strategies
inside one test; the measured numbers are persisted to
``benchmarks/artifacts/perf_sweep.txt`` and summarized in
EXPERIMENTS.md.
"""

import datetime
import os
import time

import pytest

from benchmarks.conftest import save_artifact
from repro.history.store import VersionStore
from repro.psl.list import PublicSuffixList
from repro.sweep import SweepEngine
from repro.webgraph.sites import group_sites

pytestmark = pytest.mark.bench

SEGMENT_VERSIONS = 220
UNIVERSE_SIZE = 3000


@pytest.fixture(scope="module")
def sweep_world(tables_world):
    """A >= 200-version sub-history plus a fixed hostname sample."""
    store = tables_world.store
    start = len(store) // 3
    segment = VersionStore(snapshot_interval=64)
    initial = store.rules_at(start)
    segment.commit_rules(store.versions[start].date, added=sorted(initial, key=lambda r: r.text))
    for version in store.versions[start + 1 : start + SEGMENT_VERSIONS]:
        segment.commit(version.date, version.delta)
    hostnames = tables_world.snapshot.hostnames[:UNIVERSE_SIZE]
    assert len(segment) >= 200
    return segment, hostnames


def _rebuild_per_version(store, hostnames):
    """The old strategy: fresh trie + full regroup at every version."""
    counts = []
    for version in store.versions:
        psl = PublicSuffixList(store.rules_at(version.index))
        counts.append(len(set(group_sites(psl, hostnames).values())))
    return tuple(counts)


def test_bench_delta_sweep_vs_rebuild(sweep_world):
    store, hostnames = sweep_world

    begin = time.perf_counter()
    engine_counts = SweepEngine(store).sweep_sites(hostnames)
    engine_seconds = time.perf_counter() - begin

    begin = time.perf_counter()
    rebuild_counts = _rebuild_per_version(store, hostnames)
    rebuild_seconds = time.perf_counter() - begin

    assert engine_counts == rebuild_counts  # same answer first
    speedup = rebuild_seconds / engine_seconds
    per_version_ms = engine_seconds / len(store) * 1000.0

    save_artifact(
        "perf_sweep.txt",
        "\n".join(
            [
                f"date                {datetime.date.today().isoformat()}",
                f"versions            {len(store)}",
                f"hostnames           {len(hostnames)}",
                f"rebuild-per-version {rebuild_seconds:8.3f} s",
                f"delta-driven sweep  {engine_seconds:8.3f} s",
                f"speedup             {speedup:8.1f} x",
                f"amortized per-version cost {per_version_ms:8.3f} ms",
            ]
        ),
    )
    assert speedup >= 5.0, (
        f"delta-driven sweep only {speedup:.1f}x faster "
        f"({engine_seconds:.3f}s vs {rebuild_seconds:.3f}s)"
    )


def test_bench_parallel_scaling(sweep_world):
    store, hostnames = sweep_world

    begin = time.perf_counter()
    serial = SweepEngine(store, workers=1).sweep(hostnames)
    serial_seconds = time.perf_counter() - begin

    begin = time.perf_counter()
    parallel = SweepEngine(store, workers=2).sweep(hostnames)
    parallel_seconds = time.perf_counter() - begin

    assert parallel == serial  # bit-identical on any hardware

    save_artifact(
        "perf_sweep_parallel.txt",
        "\n".join(
            [
                f"cpu_count {os.cpu_count()}",
                f"workers=1 {serial_seconds:8.3f} s",
                f"workers=2 {parallel_seconds:8.3f} s",
            ]
        ),
    )
    if (os.cpu_count() or 1) > 1:
        # Only a multi-core host can make fan-out pay for fork+pickle.
        assert parallel_seconds < serial_seconds, (
            f"workers=2 ({parallel_seconds:.3f}s) did not beat "
            f"workers=1 ({serial_seconds:.3f}s) on {os.cpu_count()} cores"
        )
