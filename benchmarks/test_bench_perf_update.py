"""PERF — the update loop: swap propagation latency + SLO exactness.

Two gates guard ``repro.update`` (ISSUE 8 acceptance):

* **swap propagation < 250 ms** — from the moment the watcher's poll
  returns (a new version validated, committed, and hot-swapped), a
  client issuing a ``/site`` request over real HTTP must observe the
  new version within 250 ms (measured as the latency of the first
  request that reflects it; the swap itself is an atomic reference
  assignment, so this is effectively one HTTP round-trip).
* **staleness gauges exactly match the journal** — every
  ``psl_serve_update_*`` gauge scraped from ``/metrics`` must equal
  the value *implied by the ingest journal* (accepted/resynced/
  quarantined counts, poll count, failed polls, versions behind, and
  the active version's age derived from the last accepted record).
  The journal is the ground truth of the run; a gauge that drifts
  from it is lying to the operator.
"""

from __future__ import annotations

import datetime
import json
import time
import threading
import urllib.request

import pytest

from benchmarks.conftest import BENCH_SEED, save_artifact
from repro.history.store import VersionStore
from repro.history.synthesis import SynthesisConfig, synthesize_history
from repro.runtime.executor import RetryPolicy
from repro.serve.http import PslServer
from repro.serve.snapshots import SnapshotRegistry
from repro.update.slo import SloPolicy
from repro.update.upstream import (
    ALWAYS,
    SyntheticUpstream,
    UpstreamFault,
    UpstreamFaultKind,
    UpstreamFaultPlan,
    patch_key,
)
from repro.update.watcher import Watcher, WatcherConfig

pytestmark = pytest.mark.bench

MAX_SWAP_PROPAGATION_SECONDS = 0.250
SWAP_ROUNDS = 6


@pytest.fixture(scope="module")
def history():
    return synthesize_history(SynthesisConfig(seed=BENCH_SEED))


def prefix(full: VersionStore, count: int) -> VersionStore:
    store = VersionStore()
    for version in full.versions[:count]:
        store.commit(version.date, version.delta, message=version.message)
    return store


def get(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=10) as response:
        return json.loads(response.read())


def test_bench_swap_propagation_latency(history):
    behind = SWAP_ROUNDS
    local = prefix(history, len(history) - behind)
    registry = SnapshotRegistry(local)
    server = PslServer(("127.0.0.1", 0), registry)
    upstream = SyntheticUpstream(
        history, published=len(local) - 1, sleep=lambda _: None
    )
    today = history.latest.date + datetime.timedelta(days=1)
    watcher = Watcher(
        registry,
        upstream,
        config=WatcherConfig(poll_interval=0.05, retry=RetryPolicy(backoff_base=0.0)),
        sleep=lambda _: None,
        today=lambda: today,
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        latencies = []
        for _ in range(SWAP_ROUNDS):
            expected = upstream.publish_next()
            watcher.poll_once()
            started = time.perf_counter()
            answer = get(server.url + "/site?host=www.example.com")
            elapsed = time.perf_counter() - started
            assert answer["version"] == expected, "client did not observe the swap"
            latencies.append(elapsed)
        worst = max(latencies)
        mean = sum(latencies) / len(latencies)
        rows = [
            "swap propagation: poll_once returns -> client-visible over HTTP",
            f"rounds          {SWAP_ROUNDS}",
            f"mean latency    {mean * 1000:8.2f} ms",
            f"worst latency   {worst * 1000:8.2f} ms",
            f"gate            {MAX_SWAP_PROPAGATION_SECONDS * 1000:8.2f} ms",
        ]
        print("\n" + "\n".join(rows))
        save_artifact("bench_update_swap.txt", "\n".join(rows))
        assert worst < MAX_SWAP_PROPAGATION_SECONDS, (
            f"swap propagation {worst * 1000:.1f} ms breaches the "
            f"{MAX_SWAP_PROPAGATION_SECONDS * 1000:.0f} ms gate"
        )
    finally:
        assert server.drain(deadline=5.0)
        thread.join(timeout=5)


def test_bench_staleness_gauges_match_the_journal_exactly(history):
    behind = 8
    local = prefix(history, len(history) - behind)
    pending = list(range(len(local), len(history)))
    plan = UpstreamFaultPlan(
        faults={
            patch_key(pending[1]): UpstreamFault(UpstreamFaultKind.TRUNCATE, attempts=1),
            patch_key(pending[3]): UpstreamFault(
                UpstreamFaultKind.CORRUPT_PATCH, attempts=ALWAYS
            ),
            patch_key(pending[5]): UpstreamFault(
                UpstreamFaultKind.BAD_CHECKSUM, attempts=ALWAYS
            ),
        }
    )
    registry = SnapshotRegistry(local)
    server = PslServer(("127.0.0.1", 0), registry)
    upstream = SyntheticUpstream(history, plan=plan, sleep=lambda _: None)
    today = history.latest.date + datetime.timedelta(days=1)
    watcher = Watcher(
        registry,
        upstream,
        config=WatcherConfig(
            poll_interval=0.05,
            retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
            slo=SloPolicy(max_age_days=365),
        ),
        sleep=lambda _: None,
        today=lambda: today,
    )
    server.attach_watcher(watcher)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        polls = 3
        for _ in range(polls):
            watcher.poll_once()

        with urllib.request.urlopen(server.url + "/metrics", timeout=10) as response:
            text = response.read().decode()
        scraped = {
            line.split(" ")[0]: float(line.split(" ")[1])
            for line in text.splitlines()
            if line.startswith("psl_serve_update_") and not line.startswith("# ")
        }

        # Ground truth derived ONLY from the journal.
        journal = watcher.journal
        counts = journal.counts()
        last_ingested = [
            r for r in journal.records if r.action in ("accepted", "resynced")
        ][-1]
        active_date = datetime.date.fromisoformat(last_ingested.date)
        expected = {
            "psl_serve_update_accepted_total": counts.get("accepted", 0),
            "psl_serve_update_resynced_total": counts.get("resynced", 0),
            "psl_serve_update_quarantined_total": counts.get("quarantined", 0),
            "psl_serve_update_polls_total": polls,
            "psl_serve_update_failed_polls": 0,
            "psl_serve_update_versions_behind": 0,
            "psl_serve_update_active_age_days": (today - active_date).days,
            'psl_serve_update_health{state="fresh"}': 1,
            'psl_serve_update_health{state="stale"}': 0,
            'psl_serve_update_health{state="degraded"}': 0,
        }
        mismatches = {
            name: (scraped.get(name), value)
            for name, value in expected.items()
            if scraped.get(name) != value
        }
        rows = ["staleness gauge exactness (scraped vs journal-derived):"]
        for name, value in sorted(expected.items()):
            rows.append(f"{name:48s} {scraped.get(name)!s:>8} == {value}")
        print("\n" + "\n".join(rows))
        save_artifact("bench_update_slo.txt", "\n".join(rows))
        assert not mismatches, f"gauges drifted from the journal: {mismatches}"
    finally:
        assert server.drain(deadline=5.0)
        thread.join(timeout=5)
