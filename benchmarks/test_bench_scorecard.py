"""The reproduction scorecard — every paper-vs-measured row, live.

This is the machine-checked version of EXPERIMENTS.md: the bench
fails if any row regresses to MISMATCH.
"""

from benchmarks.conftest import save_artifact
from repro.analysis.scorecard import build_scorecard, render_scorecard


def test_bench_scorecard(benchmark, tables_world, tables_harm, figures_sweep):
    rows = benchmark.pedantic(
        build_scorecard,
        args=(tables_world, tables_harm, figures_sweep),
        rounds=1,
        iterations=1,
    )

    text = render_scorecard(rows)
    print("\n" + text)
    save_artifact("scorecard.txt", text)

    assert not [row for row in rows if row.verdict == "MISMATCH"], text
    assert sum(1 for row in rows if row.verdict == "exact") >= 15
    assert sum(1 for row in rows if row.verdict == "shape") == 3
