"""TAB1 — projects using the PSL by usage type.

Paper values: 273 projects; fixed 68 (24.9%) with 43 production / 24
test / 1 other; updated 35 (12.8%) with 24 build / 8 user / 3 server;
dependency 170 (62.3%) led by the bundled JRE (113).
"""

from benchmarks.conftest import save_artifact
from repro.analysis import report, taxonomy
from repro.data import paper


def test_bench_tab1_taxonomy(benchmark, tables_world):
    corpus = tables_world.corpus

    result = benchmark(taxonomy.table1, corpus)

    text = report.render_table1(result)
    print("\n" + text)
    save_artifact("tab1_taxonomy.txt", text)

    assert result.total == paper.REPOSITORY_COUNT
    for strategy, subtypes in paper.TABLE1.items():
        assert result.count_of(strategy) == sum(subtypes.values())
        for subtype, expected in subtypes.items():
            assert result.count_of(strategy, subtype) == expected
