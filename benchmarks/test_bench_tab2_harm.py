"""TAB2 — the largest missing eTLDs and the headline harm estimate.

Paper values, reproduced exactly: 1,313 eTLDs affecting 50,750
hostnames; the top-15 table from myshopify.com (7,848 hostnames; 44 D /
23 Prd. / 7 T-O / 13 U) down to sc.gov.br (714; 13 / 2 / 0 / 2).
"""

from benchmarks.conftest import save_artifact
from repro.analysis import report
from repro.analysis.harm import harm_analysis
from repro.data import paper


def test_bench_tab2_harm(benchmark, tables_world, tables_sweep):
    result = benchmark.pedantic(
        harm_analysis, args=(tables_world, tables_sweep), rounds=1, iterations=1
    )

    text = report.render_table2(result)
    print("\n" + text)
    save_artifact("tab2_harm.txt", text)

    assert result.missing_etld_count == paper.MISSING_ETLD_COUNT
    assert result.affected_hostname_count == paper.AFFECTED_HOSTNAME_COUNT
    published = {row.etld: row for row in paper.TABLE2}
    assert {row.etld for row in result.table2} == set(published)
    for measured in result.table2:
        expected = published[measured.etld]
        assert (
            measured.hostnames,
            measured.dependency,
            measured.fixed_production,
            measured.fixed_test_other,
            measured.updated,
        ) == (
            expected.hostnames,
            expected.dependency,
            expected.fixed_production,
            expected.fixed_test_other,
            expected.updated,
        ), measured.etld
