"""TAB3 — fixed-usage repositories: ages and missing hostnames.

Paper appendix, reproduced on every jointly consistent axis: all 47
repository names, star/fork counts and list ages verbatim; the
missing-hostname column matches the paper on its 21 monotone anchor
rows (the remaining published rows mix list variants and contradict
Table 2 — see EXPERIMENTS.md).
"""

from benchmarks.conftest import save_artifact
from repro.analysis import report
from repro.calibrate.suffixes import ANCHORS
from repro.data import paper


def test_bench_tab3_repos(benchmark, tables_world, tables_sweep, tables_harm):
    result = tables_harm

    def lookup_all():
        return {row.name: row.missing_hostnames for row in result.table3}

    measured = benchmark(lookup_all)

    text = report.render_table3(result)
    print("\n" + text)
    save_artifact("tab3_repos.txt", text)

    published_by_name = {row.name: row for row in paper.TABLE3}
    assert set(published_by_name) <= set(measured)

    anchors = dict(ANCHORS)
    anchor_hits = 0
    for row in result.table3:
        published = published_by_name.get(row.name)
        if published is None:
            continue
        assert row.stars == published.stars, row.name
        assert row.forks == published.forks, row.name
        expected_missing = anchors.get(published.age_days)
        if expected_missing is not None:
            assert row.missing_hostnames == expected_missing, row.name
            anchor_hits += 1
    assert anchor_hits >= 20
