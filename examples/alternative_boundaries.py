"""The paper's proposed way out: DNS-advertised boundaries (DBOUND).

The conclusion argues the staleness harms are "inherent to any
list-based approach" and points at integrating boundaries into the DNS
(draft-sullivan-dbound).  This example walks that migration:

1. publish ``_bound`` records equivalent to the current PSL and show
   record-derived boundaries agree with list-derived ones over a real
   hostname sample;
2. replay the *staleness* scenario: a consumer with a three-year-old
   list vs. a consumer resolving records live — the record consumer has
   zero drift because there is nothing to vendor;
3. show the operator-side fix latency: one record publish vs. waiting
   for every vendored list in the world to update.

Also demonstrates the DMARC use case from Section 2 under both designs.

Run: ``python examples/alternative_boundaries.py``
"""

import datetime

from repro.data import paper
from repro.dbound.compare import compare_boundaries
from repro.dbound.records import Assertion, BoundaryZone
from repro.dbound.resolver import BoundaryResolver
from repro.history.synthesis import synthesize_history
from repro.privacy.dmarc import TxtZone, discover_policy


def main() -> None:
    print("synthesizing history…")
    store = synthesize_history()
    current = store.checkout(-1)
    stale = store.checkout_date(
        paper.MEASUREMENT_DATE - datetime.timedelta(days=1100)
    )

    # 1. Migration fidelity over a hostname sample.
    hosts = [
        "www.example.com", "maps.google.com", "amazon.co.uk",
        "alice.github.io", "bob.github.io", "tenant.myshopify.com",
        "foo.bar.ck", "www.ck", "shop.kyoto.jp", "a.b.cloudfront.net",
    ]
    zone = BoundaryZone.from_psl(current)
    agreement = compare_boundaries(current, hosts, zone=zone)
    print(f"\n1. migrated zone: {len(zone)} _bound records; "
          f"agreement with the PSL on {len(hosts)} hosts: {agreement.agreement_rate:.0%}")

    # 2. Staleness: list consumer vs. record consumer.
    resolver = BoundaryResolver(zone)
    print("\n2. the staleness harm, side by side "
          f"(list consumer is {1100} days stale):")
    for first, second in [
        ("alice.myshopify.com", "bob.myshopify.com"),
        ("a.digitaloceanspaces.com", "b.digitaloceanspaces.com"),
    ]:
        stale_says = stale.same_site(first, second)
        records_say = resolver.same_site(first, second)
        print(f"   {first} vs {second}:")
        print(f"     stale list : same site = {stale_says}   <- tracking possible")
        print(f"     _bound DNS : same site = {records_say}")

    # 3. Fix latency: a new operator appears.
    print("\n3. a brand-new hosting provider, newhost.example, opens "
          "tenant registrations today:")
    fresh = BoundaryZone.from_psl(current)
    print("     before publishing:",
          BoundaryResolver(fresh).same_site("a.newhost.example", "b.newhost.example"))
    fresh.publish("newhost.example", Assertion.BOUNDARY)
    print("     after one record publish:",
          BoundaryResolver(fresh).same_site("a.newhost.example", "b.newhost.example"),
          "(every consumer fixed instantly; the PSL route waits on "
          "43+ vendored copies)")

    # 4. DMARC under both designs.
    txt = TxtZone()
    txt.add("_dmarc.myshopify.com", "v=DMARC1; p=none")
    result = discover_policy(stale, txt, "mail.shop.myshopify.com")
    print("\n4. DMARC fallback for mail.shop.myshopify.com under the stale list:")
    print(f"     org domain computed: {result.organizational_domain} "
          f"(another organization's policy {'APPLIES' if result.found else 'does not apply'})")
    answer = resolver.resolve("mail.shop.myshopify.com")
    print(f"     org domain via _bound records: {answer.site}")


if __name__ == "__main__":
    main()
