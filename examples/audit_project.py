"""Audit a source tree for stale vendored Public Suffix Lists.

Builds a realistic fake project (a vendored three-year-old list under
``third_party/``, plus a renamed copy the filename search would miss),
then runs the psl-doctor scanner and prints the diagnosis — the
workflow the paper implies every one of its 43 flagged projects should
adopt.

Run: ``python examples/audit_project.py``
"""

import datetime
import tempfile
from pathlib import Path

from repro.data import paper
from repro.history.synthesis import synthesize_history
from repro.psl.serialize import serialize_rules
from repro.psltool.doctor import diagnose
from repro.psltool.scanner import scan_tree
from repro.repos.dating import ListDater


def build_fake_project(root: Path, store) -> None:
    """A project vendoring two stale list copies (one renamed)."""
    old_version = store.version_at_date(
        paper.MEASUREMENT_DATE - datetime.timedelta(days=1100)
    )
    old_text = serialize_rules(store.rules_at(old_version.index))

    (root / "third_party" / "psl").mkdir(parents=True)
    (root / "third_party" / "psl" / "public_suffix_list.dat").write_text(old_text)

    # A renamed copy: filename search alone would miss this one.
    (root / "src" / "resources").mkdir(parents=True)
    (root / "src" / "resources" / "domain_rules.dat").write_text(old_text)

    (root / "src" / "main.py").write_text(
        "RULES = open('resources/domain_rules.dat').read().splitlines()\n"
    )


def main() -> None:
    print("synthesizing the 1,142-version history…")
    store = synthesize_history()
    dater = ListDater(store)

    with tempfile.TemporaryDirectory(prefix="psl-audit-") as workdir:
        root = Path(workdir)
        build_fake_project(root, store)

        print(f"scanning {root} …\n")
        found = scan_tree(str(root))
        for item in found:
            report = diagnose(store, item, dater=dater)
            print(f"[{item.detection:8s}] {report.summary}")
            if report.stale_examples:
                print("           missing, e.g.:", ", ".join(report.stale_examples))
        print(f"\n{len(found)} embedded list(s) found "
              f"(1 by filename, {sum(1 for f in found if f.detection == 'content')} by content fingerprint)")


if __name__ == "__main__":
    main()
