"""Simulate the paper's Section 2 harms with real list versions.

Recreates the *bitwarden* situation from Table 3: a password manager
(and a browser cookie jar) running a 1,596-day-old list, visited by
two tenants of a subdomain-hosting operator the stale list does not
know about.  Shows the autofill leak, the cookie leak, and a
trace-level tracking report — then the same scenario under the
current list, where every leak disappears.

Run: ``python examples/privacy_harm_sim.py``
"""

import datetime

from repro.data import paper
from repro.history.synthesis import synthesize_history
from repro.privacy.autofill import AutofillEngine, Credential
from repro.privacy.cookies import CookieJar, SuperCookieError
from repro.privacy.tracking import TrackingSimulator

BITWARDEN_LIST_AGE = 1596  # days, from the paper's Table 3


def main() -> None:
    print("synthesizing history…")
    store = synthesize_history()
    stale = store.checkout_date(
        paper.MEASUREMENT_DATE - datetime.timedelta(days=BITWARDEN_LIST_AGE)
    )
    current = store.checkout(-1)
    print(f"stale list: {len(stale)} rules; current list: {len(current)} rules\n")

    good = "good-shop.myshopify.com"
    bad = "bad-shop.myshopify.com"

    # -- password manager ---------------------------------------------------
    print(f"== autofill: credentials saved on {good} ==")
    for label, psl in (("stale", stale), ("current", current)):
        engine = AutofillEngine(psl)
        engine.save(Credential(origin_host=good, username="alice"))
        decisions = engine.decisions_for(bad)
        for decision in decisions:
            verdict = "OFFERED (leak!)" if decision.offered else "withheld"
            print(f"  [{label:7s}] visiting {bad}: {verdict} — {decision.reason}")

    # -- cookie jar -----------------------------------------------------------
    print(f"\n== cookies: {good} sets Domain=myshopify.com ==")
    for label, psl in (("stale", stale), ("current", current)):
        jar = CookieJar(psl)
        try:
            jar.set_cookie(good, "session", "s3cret", domain="myshopify.com")
            leaked = jar.readable_by(good, bad)
            print(f"  [{label:7s}] cookie accepted; readable by {bad}: {bool(leaked)}")
        except SuperCookieError as error:
            print(f"  [{label:7s}] rejected as a supercookie ({error.domain})")

    # -- tracking over a browsing trace ---------------------------------------
    trace = [
        good, bad, "third-shop.myshopify.com",
        "www.example.com", "cdn.example.com",
        "alice.github.io", "bob.github.io",
    ]
    print("\n== tracking report over a 7-host trace ==")
    report = TrackingSimulator(stale, current).replay(trace)
    print(f"  pairs sharing state only under the stale list: {len(report.leaks)}")
    for leak in report.leaks:
        print(f"    {leak.first_host} <-> {leak.second_host} "
              f"(both '{leak.shared_site_under_outdated}' when stale)")
    clean = TrackingSimulator(current, current).replay(trace)
    print(f"  under the current list: {len(clean.leaks)} leaking pairs")


if __name__ == "__main__":
    main()
