"""Analyze a crawl snapshot with the columnar query layer.

The HTTP-Archive-style workflow: build (or load) a snapshot, flatten
it into tables, and answer measurement questions declaratively —
plus the streaming path for datasets that would not fit in memory.

Run: ``python examples/query_snapshot.py``
"""

from repro.history.synthesis import synthesize_history
from repro.webgraph.sites import group_sites
from repro.webgraph.stats import render_statistics, site_size_fit, snapshot_statistics
from repro.webgraph.stream import count_sites_streaming
from repro.webgraph.synthesis import SnapshotConfig, synthesize_snapshot
from repro.webgraph.tables import requests_table, sites_table


def main() -> None:
    print("building a small world…")
    store = synthesize_history()
    snapshot = synthesize_snapshot(SnapshotConfig(harm_scale=0.05, bulk_scale=0.1))
    psl = store.checkout(-1)

    print("\n== dataset description ==")
    print(render_statistics(snapshot_statistics(snapshot)))

    # -- declarative analysis ------------------------------------------------
    assignment = group_sites(psl, snapshot.hostnames)
    sites = sites_table(snapshot, assignment)
    requests = requests_table(snapshot)

    print("\n== top sites by hostname count (GROUP BY site) ==")
    top = (
        sites.group_by("site").count("hostnames")
        .order_by("hostnames", descending=True)
        .limit(5)
    )
    for row in top.to_dicts():
        print(f"  {row['site']:35s} {row['hostnames']:>6d} hostnames")

    print("\n== busiest third-party hosts (JOIN + WHERE) ==")
    classified = (
        requests
        .with_column("page_site", lambda r: assignment[r["page_host"]])
        .with_column("request_site", lambda r: assignment[r["request_host"]])
        .where(lambda r: r["page_site"] != r["request_site"])
    )
    busiest = (
        classified.group_by("request_host").count()
        .order_by("count", descending=True)
        .limit(5)
    )
    for row in busiest.to_dicts():
        print(f"  {row['request_host']:45s} {row['count']:>5d} third-party requests")

    print("\n== site-size distribution ==")
    fit = site_size_fit(assignment)
    print(f"  largest site: {fit.sizes.maximum} hostnames; "
          f"singletons: {fit.singleton_share:.0%}; "
          f"Zipf exponent: {fit.zipf_exponent and round(fit.zipf_exponent, 2)}")

    # -- the streaming path ----------------------------------------------------
    print("\n== streaming (constant-memory) cross-check ==")
    streamed = count_sites_streaming(psl, iter(snapshot.hostnames))
    print(f"  streamed: {streamed.sites} sites over {streamed.hostnames} hostnames "
          f"(in-memory grouping agrees: {streamed.sites == len(set(assignment.values()))})")


if __name__ == "__main__":
    main()
