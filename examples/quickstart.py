"""Quickstart: the PSL engine in five minutes.

Parses a small list, asks the questions browsers ask (public suffix,
registrable domain, same-site), and shows what changes when the list
gains a rule — the core mechanic behind the paper's harm model.

Run: ``python examples/quickstart.py``
"""

from repro import PublicSuffixList, Rule, parse_psl
from repro.psl.diff import diff_rules

LIST_TEXT = """\
// ===BEGIN ICANN DOMAINS===
com
co.uk
*.ck
!www.ck
// ===END ICANN DOMAINS===
// ===BEGIN PRIVATE DOMAINS===
github.io
// ===END PRIVATE DOMAINS===
"""


def main() -> None:
    psl = parse_psl(LIST_TEXT)
    print(f"parsed {len(psl)} rules\n")

    for hostname in (
        "www.example.com",
        "maps.google.com",
        "amazon.co.uk",
        "alice.github.io",
        "bob.github.io",
        "something.www.ck",
        "unknown.tldxyz",
    ):
        match = psl.match(hostname)
        print(
            f"{hostname:22s} suffix={match.public_suffix:12s} "
            f"site={match.site:22s} rule={match.rule.text if match.rule else '* (default)'}"
        )

    print()
    print("same site?  maps.google.com vs www.google.com:",
          psl.same_site("maps.google.com", "www.google.com"))
    print("same site?  alice.github.io vs bob.github.io:",
          psl.same_site("alice.github.io", "bob.github.io"))

    # Now pretend the list is older: github.io has not been added yet.
    outdated = PublicSuffixList(
        rule for rule in psl.rules if rule.name != "github.io"
    )
    print("\nunder an outdated list missing github.io:")
    print("same site?  alice.github.io vs bob.github.io:",
          outdated.same_site("alice.github.io", "bob.github.io"),
          " <- the privacy harm")

    delta = diff_rules(outdated, psl)
    print(f"\nthe update that fixes it: +{[r.text for r in delta.added]}")

    # Rules can also be built programmatically.
    custom = PublicSuffixList([Rule.parse("com"), Rule.parse("dev")])
    print("\ncustom list:", custom.registrable_domain("api.myapp.dev"))


if __name__ == "__main__":
    main()
