"""Regenerate every table and figure of the paper in one run.

This is the end-to-end pipeline: synthesize the 1,142-version history,
the 273-repository corpus, and the crawl snapshot; then print each
artifact next to the paper's published value.  Every output renders
through the content-addressed artifact DAG (``repro.analysis.pipeline``):
within the run, Figures 5-7 and Tables 2-3 share one sweep per world,
and because the store below is on disk, a *second* run of this script
loads every stage instead of recomputing it.  Expect a few minutes of
CPU on the first run, and seconds on the next.

Run: ``python examples/reproduce_paper.py``
"""

from repro.analysis.pipeline import TERMINALS, paper_pipeline
from repro.data import paper
from repro.pipeline import ArtifactStore

CACHE_DIR = ".psl-repro-cache"


def main() -> None:
    print("Reproduction of 'A First Look at the Privacy Harms of the "
          "Public Suffix List' (IMC 2023)")
    print(f"Paper headline: {paper.MISSING_ETLD_COUNT} missing eTLDs, "
          f"{paper.AFFECTED_HOSTNAME_COUNT} affected hostnames\n")
    repro = paper_pipeline(20230701, store=ArtifactStore(CACHE_DIR))
    for name, description in TERMINALS.items():
        print("=" * 72)
        print(f"{name}: {description}\n")
        print(repro.render(name))
        print()
    print("=" * 72)
    print(repro.report.render())
    print(f"\nArtifacts cached under ./{CACHE_DIR} — rerun to load them.")


if __name__ == "__main__":
    main()
