"""Regenerate every table and figure of the paper in one run.

This is the end-to-end pipeline: synthesize the 1,142-version history,
the 273-repository corpus, and the crawl snapshot; then print each
artifact next to the paper's published value.  Expect a few minutes of
CPU on first run (results are cached in-process).

Run: ``python examples/reproduce_paper.py``
"""

from repro.analysis.cli import EXPERIMENTS
from repro.data import paper


def main() -> None:
    print("Reproduction of 'A First Look at the Privacy Harms of the "
          "Public Suffix List' (IMC 2023)")
    print(f"Paper headline: {paper.MISSING_ETLD_COUNT} missing eTLDs, "
          f"{paper.AFFECTED_HOSTNAME_COUNT} affected hostnames\n")
    for name in sorted(EXPERIMENTS):
        description, runner = EXPERIMENTS[name]
        print("=" * 72)
        print(f"{name}: {description}\n")
        print(runner(20230701))
        print()


if __name__ == "__main__":
    main()
