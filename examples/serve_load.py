"""Load-test a local multi-worker PSL fleet with Zipf-shaped traffic.

Boots a pre-fork fleet (4 worker processes sharing one port and one
packed snapshot buffer), then drives it with the
:mod:`repro.serve.loadgen` generator — head-heavy Zipf hostname
traffic, the shape top-list studies show real services receive — and
prints a p50/p99/throughput table for the fleet next to a
single-process baseline.  Along the way it shows the fleet surface:
per-worker heartbeats, `/healthz` epoch agreement, and a live `/swap`
observed by every worker.

Run: ``python examples/serve_load.py``
"""

from __future__ import annotations

import json
import threading
import urllib.request

from repro.history.synthesis import SynthesisConfig, synthesize_history
from repro.psl.packed import PackedHistory, pack_history
from repro.serve.cli import wait_until_up
from repro.serve.engine import QueryEngine
from repro.serve.fleet import FleetConfig, FleetSupervisor, fork_available
from repro.serve.http import PslServer
from repro.serve.loadgen import ZipfSampler, run_load
from repro.serve.snapshots import SnapshotRegistry

WORKERS = 4
REQUESTS = 3000
CONCURRENCY = 8


def get_json(url: str, *, data: dict | None = None) -> dict:
    request = urllib.request.Request(
        url,
        data=json.dumps(data).encode() if data is not None else None,
        headers={"Content-Type": "application/json"} if data is not None else {},
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.loads(response.read())


def build_population(store) -> list[str]:
    """Hostnames over suffixes the synthesized list really contains."""
    psl = store.checkout(-1)
    suffixes = [rule.name for rule in psl.rules if "*" not in rule.text][:500]
    return [
        f"host{i}.site{i % 89}.{suffixes[i % len(suffixes)]}"
        for i in range(2_000)
    ]


def main() -> None:
    if not fork_available():
        raise SystemExit("this example needs os.fork (POSIX)")

    print("synthesizing the history and packing the snapshot buffer…")
    store = synthesize_history(SynthesisConfig(seed=20230701))
    blob = pack_history(store)
    packed = PackedHistory.from_buffer(blob)
    population = build_population(store)
    sampler = ZipfSampler(population)
    print(
        f"  {len(store)} versions, packed buffer {len(blob) / 1e6:.1f} MB; "
        f"Zipf traffic: top-10 hostnames get {sampler.head_share(10):.0%} of requests"
    )

    # -- single-process baseline ---------------------------------------------
    registry = SnapshotRegistry(store, packed=PackedHistory.from_buffer(blob))
    engine = QueryEngine(registry)
    single = PslServer(("127.0.0.1", 0), registry, engine=engine, max_inflight=64)
    accept = threading.Thread(target=single.serve_forever, daemon=True)
    accept.start()
    print(f"\nsingle-process server on {single.url} — {REQUESTS} Zipf lookups…")
    try:
        baseline = run_load(
            single.url, population, requests=REQUESTS, concurrency=CONCURRENCY
        )
    finally:
        single.shutdown()
        single.server_close()
        accept.join(timeout=5)

    # -- the pre-fork fleet ---------------------------------------------------
    supervisor = FleetSupervisor(
        store,
        config=FleetConfig(workers=WORKERS, port=0),
        packed=packed,
    )
    supervisor.start()
    mode = "SO_REUSEPORT" if supervisor.reuse_port else "inherited parent fd"
    print(f"\nfleet of {WORKERS} workers on {supervisor.url} ({mode})")
    try:
        wait_until_up(supervisor.url)
        fleet = run_load(
            supervisor.url, population, requests=REQUESTS, concurrency=CONCURRENCY
        )

        # -- the p50/p99/throughput table ------------------------------------
        print(f"\n{'':14s}  {'throughput':>12s}  {'p50':>9s}  {'p99':>9s}  {'failures':>8s}")
        for label, result in (("single", baseline), (f"{WORKERS} workers", fleet)):
            print(
                f"{label:14s}  {result.throughput_rps:>9,.0f} rps"
                f"  {result.p50_ms:>6.2f} ms  {result.p99_ms:>6.2f} ms"
                f"  {result.failures:>8d}"
            )

        # -- the fleet surface: heartbeats, epochs, a live swap --------------
        print("\n== per-worker heartbeats (from /healthz fleet block) ==")
        health = get_json(supervisor.url + "/healthz")
        for row in health["fleet"]["workers"]:
            print(
                f"  worker {row['worker']} (pid {row['pid']}): epoch {row['epoch']}, "
                f"active v{row['active_index']}, {row['requests_total']:.0f} requests"
            )

        print("\n== fleet-wide hot-swap ==")
        swap = get_json(supervisor.url + "/swap?version=0", data={})
        print(f"  POST /swap -> active v{swap['active']['index']}, epoch {swap['epoch']}")
        import time

        for _ in range(100):
            view = supervisor.view()
            if view["agreement"]:
                break
            time.sleep(0.05)
        view = supervisor.view()
        print(
            f"  agreement={view['agreement']} at published epoch "
            f"{view['published_epoch']} across {view['reporting']} workers"
        )
        answer = get_json(supervisor.url + "/site?host=www.example.co.uk")
        print(f"  lookups now answer from v{answer['version']}")
    finally:
        drained = supervisor.drain()
    print(f"\nfleet drained cleanly: {drained}")


if __name__ == "__main__":
    main()
