"""Drive the PSL query service as a client: lookups, batches, hot-swaps.

Boots a `PslServer` on an ephemeral port against a small synthesized
history, then talks to it the way a deployment would — over HTTP with
`urllib` — to show single lookups, version pinning, the batch API, the
misclassification probe, a live hot-swap, and the metrics scrape.

Run: ``python examples/serve_queries.py``
"""

from __future__ import annotations

import json
import threading
import urllib.request

from repro.history.synthesis import SynthesisConfig, synthesize_history
from repro.serve.engine import QueryEngine
from repro.serve.http import PslServer
from repro.serve.snapshots import SnapshotRegistry


def get_json(url: str, *, data: dict | None = None) -> dict:
    request = urllib.request.Request(
        url,
        data=json.dumps(data).encode() if data is not None else None,
        headers={"Content-Type": "application/json"} if data is not None else {},
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.loads(response.read())


def main() -> None:
    print("synthesizing a small history and starting the server…")
    store = synthesize_history(SynthesisConfig(seed=20230701))
    registry = SnapshotRegistry(store, resident_capacity=4)
    engine = QueryEngine(registry)
    server = PslServer(("127.0.0.1", 0), registry, engine=engine)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = server.url
    print(f"serving {len(store)} versions at {base}")

    try:
        # -- single lookups, optionally pinned to an old version ----------
        print("\n== /site ==")
        for query in ("/site?host=www.shop.example.000webhostapp.com",
                      "/site?host=www.shop.example.000webhostapp.com&version=0"):
            answer = get_json(base + query)
            print(f"  v{answer['version']:>4}: {answer['hostname']}"
                  f"  site={answer['site']}  suffix={answer['public_suffix']}")

        # -- the batch API: one POST, one pinned snapshot -----------------
        print("\n== /batch ==")
        hosts = ["a.example.com", "b.github.io", "bad..name", "www.example.co.uk"]
        batch = get_json(base + "/batch", data={"hostnames": hosts})
        print(f"  {batch['count']} answers ({batch['errors']} rejected), "
              f"all pinned to v{batch['version']}")
        for item in batch["answers"]:
            if "error" in item:
                print(f"    {item['hostname']!r:28} -> 400 {item['error']['reason']}")
            else:
                print(f"    {item['hostname']!r:28} -> {item['site']}")

        # -- the misclassification probe ----------------------------------
        print("\n== /compare (old list vs. latest) ==")
        probe = get_json(base + "/compare?host=www.shop.example.000webhostapp.com&old=0")
        verdict = "DIVERGES" if probe["diverges"] else "stable"
        print(f"  {probe['hostname']}: v{probe['old']['version']} says "
              f"{probe['old']['site']}, v{probe['new']['version']} says "
              f"{probe['new']['site']}  [{verdict}]")

        # -- a live hot-swap: readers never notice ------------------------
        print("\n== /swap ==")
        swapped = get_json(base + "/swap?version=100", data={})
        print(f"  active is now v{swapped['active']['index']} "
              f"({swapped['active']['date']}, {swapped['active']['rule_count']} rules)")
        answer = get_json(base + "/site?host=www.shop.example.000webhostapp.com")
        print(f"  unpinned lookup now answers from v{answer['version']}: "
              f"site={answer['site']}")
        get_json(base + "/swap?version=latest", data={})

        # -- what the monitoring stack would scrape -----------------------
        print("\n== /metrics (excerpt) ==")
        with urllib.request.urlopen(base + "/metrics", timeout=10) as response:
            text = response.read().decode()
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            if line.startswith(("psl_serve_requests_total",
                                "psl_serve_cache_hit_ratio",
                                "psl_serve_snapshot_index",
                                "psl_serve_snapshot_swaps_total")):
                print("  " + line)
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
    print("\nserver stopped.")


if __name__ == "__main__":
    main()
