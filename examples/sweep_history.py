"""Sweep a hostname universe across a full list history.

The paper's Figures 5-7 ask one question 1,142 times: "how does this
web snapshot look under list version v?".  The sweep engine answers
all versions in one delta-driven pass — this example runs it over the
synthetic history and shows the two performance knobs:

* ``workers`` — process count.  ``1`` (default) runs serially; any
  value produces bit-identical results, so parallelism is purely a
  wall-clock decision (use > 1 only on multi-core hosts).
* ``chunk_size`` — hostnames/request pairs per worker task.  The
  default (4096, auto-shrunk so a parallel run has chunks to balance)
  is right for almost everyone; shrink it for very lumpy universes.

The same engine backs ``psl-repro fig5`` etc. — pass ``--workers N``
there to get the pool without writing code.

Run: ``python examples/sweep_history.py``
"""

import time

from repro.history.synthesis import synthesize_history
from repro.sweep import SweepEngine
from repro.webgraph.synthesis import SnapshotConfig, synthesize_snapshot


def main() -> None:
    seed = 20230701
    store = synthesize_history()
    snapshot = synthesize_snapshot(
        SnapshotConfig(seed=seed, harm_scale=0.1, bulk_scale=0.25)
    )
    hostnames = snapshot.hostnames
    pairs = tuple(snapshot.iter_request_pairs())
    print(f"history: {len(store)} versions   universe: {len(hostnames):,} "
          f"hostnames, {len(pairs):,} requests\n")

    # The combined sweep: all three per-version series in one fan-out.
    engine = SweepEngine(store, workers=1)  # try workers=4 on a big box
    begin = time.perf_counter()
    series = engine.sweep(hostnames, pairs)
    elapsed = time.perf_counter() - begin
    print(f"swept {series.version_count} versions in {elapsed:.2f}s "
          f"({elapsed / series.version_count * 1000:.2f} ms/version amortized)\n")

    print("version   date         sites   3rd-party   diff-vs-latest")
    step = max(1, len(store) // 10)
    for version in store.versions[::step]:
        index = version.index
        print(f"{index:7d}   {version.date}   {series.site_counts[index]:6,d}  "
              f"{series.third_party[index]:9,d}   {series.divergence[index]:8,d}")

    # The narrow entry points answer one figure at a time; a custom
    # chunk size just changes the fan-out granularity, never the
    # numbers.
    shredded = SweepEngine(store, chunk_size=512).sweep_sites(hostnames)
    assert shredded == series.site_counts
    print("\nchunk_size=512 reproduces the identical series — "
          "tune freely, results never move")


if __name__ == "__main__":
    main()
