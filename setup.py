"""Legacy setup shim.

The execution environment has no ``wheel`` package, so PEP 660 editable
installs (``pip install -e .``) cannot build the editable wheel.  This
shim lets ``python setup.py develop`` provide the same editable install
offline.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
