"""Reproduction of "A First Look at the Privacy Harms of the Public Suffix List".

This package reimplements, end to end, the measurement pipeline of the
IMC 2023 paper by McQuistin, Snyder, Perkins, Haddadi, and Tyson: a full
Public Suffix List (PSL) engine, a versioned PSL history, a repository
corpus with usage-type classification, a web-traffic snapshot substrate,
and the analyses that regenerate every table and figure in the paper.

Subpackages
-----------
``repro.psl``
    The PSL engine: ``.dat`` parsing, rule semantics, suffix matching,
    IDNA/Punycode, diffing.
``repro.net``
    Hostname and URL primitives used across the project.
``repro.history``
    Content-addressed version store and the synthetic PSL history.
``repro.repos``
    Repository corpus, search, usage classification, and list dating.
``repro.webgraph``
    HTTP-Archive-like snapshot model, synthesis, and site grouping.
``repro.iana``
    Offline IANA root zone database with TLD categories.
``repro.analysis``
    The paper's experiments (Figures 2-7, Tables 1-3).
``repro.privacy``
    Cookie-jar / autofill / tracking demonstrators of PSL misuse harms.
``repro.psltool``
    ``psl-doctor``: detect and assess outdated vendored PSL copies.
``repro.dbound``
    Prototype of DNS-advertised administrative boundaries (DBOUND).
"""

from repro.psl.list import PublicSuffixList
from repro.psl.parser import parse_psl
from repro.psl.rules import Rule, RuleKind, Section

__version__ = "1.0.0"

__all__ = [
    "PublicSuffixList",
    "parse_psl",
    "Rule",
    "RuleKind",
    "Section",
    "__version__",
]
