"""The paper's experiments.

One module per published artifact:

========  ============================================  =======================
Artifact  Quantity                                      Module
========  ============================================  =======================
Figure 2  PSL growth and component mix over time        :mod:`.growth`
Table 1   Projects by usage type                        :mod:`.taxonomy`
Figure 3  Age of vendored lists per strategy            :mod:`.age`
Figure 4  List age vs. activity vs. popularity          :mod:`.popularity`
Figure 5  Sites formed per list version                 :mod:`.boundaries`
Figure 6  Third-party requests per list version         :mod:`.boundaries`
Figure 7  Hostnames regrouped vs. the newest list       :mod:`.boundaries`
Table 2   Largest missing eTLDs with project counts     :mod:`.harm`
Table 3   Fixed-usage repositories                      :mod:`.harm`
========  ============================================  =======================

:mod:`.context` builds and caches the shared world (history, corpus,
snapshot); :mod:`.report` renders results as text; :mod:`.cli` exposes
everything as the ``psl-repro`` command.
"""

from repro.analysis.context import ExperimentContext, get_context

__all__ = ["ExperimentContext", "get_context"]
