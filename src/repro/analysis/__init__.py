"""The paper's experiments.

One module per published artifact:

========  ============================================  =======================
Artifact  Quantity                                      Module
========  ============================================  =======================
Figure 2  PSL growth and component mix over time        :mod:`.growth`
Table 1   Projects by usage type                        :mod:`.taxonomy`
Figure 3  Age of vendored lists per strategy            :mod:`.age`
Figure 4  List age vs. activity vs. popularity          :mod:`.popularity`
Figure 5  Sites formed per list version                 :mod:`.boundaries`
Figure 6  Third-party requests per list version         :mod:`.boundaries`
Figure 7  Hostnames regrouped vs. the newest list       :mod:`.boundaries`
Table 2   Largest missing eTLDs with project counts     :mod:`.harm`
Table 3   Fixed-usage repositories                      :mod:`.harm`
========  ============================================  =======================

:mod:`.context` builds the shared world (history, corpus, snapshot) as
stages of the content-addressed artifact DAG; :mod:`.pipeline`
assembles the full paper DAG with one terminal stage per output;
:mod:`.report` renders results as text; :mod:`.cli` exposes everything
as the ``psl-repro`` command.
"""

from repro.analysis.context import ExperimentContext, SweepSettings, get_context
from repro.analysis.pipeline import PaperPipeline, paper_pipeline

__all__ = [
    "ExperimentContext",
    "PaperPipeline",
    "SweepSettings",
    "get_context",
    "paper_pipeline",
]
