"""Figure 3: age of vendored lists per integration strategy.

For every discovered repository whose vendored list matches a history
version exactly, the list's age is its version's distance from the
measurement date (t = 2022-12-08).  The paper reports the medians —
871 days across all repositories, 915 for the updated strategy, 825
for fixed — and plots the per-strategy CDFs.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.analysis.context import ExperimentContext
from repro.repos.model import Strategy


@dataclass(frozen=True, slots=True)
class AgeDistributions:
    """Exact-dated list ages, grouped by strategy."""

    by_strategy: dict[str, tuple[int, ...]]

    @property
    def all_ages(self) -> tuple[int, ...]:
        """Every datable age across strategies."""
        merged: list[int] = []
        for ages in self.by_strategy.values():
            merged.extend(ages)
        return tuple(sorted(merged))

    def median(self, strategy: str | None = None) -> float:
        """Median age for one strategy, or across all repositories."""
        ages = self.by_strategy.get(strategy, ()) if strategy else self.all_ages
        if not ages:
            raise ValueError(f"no datable repositories for {strategy!r}")
        return statistics.median(ages)

    def cdf(self, strategy: str) -> list[tuple[int, float]]:
        """(age, cumulative fraction) points — Figure 3's curves."""
        ages = sorted(self.by_strategy.get(strategy, ()))
        total = len(ages)
        return [(age, (position + 1) / total) for position, age in enumerate(ages)]

    def datable_counts(self) -> dict[str, int]:
        """How many repositories per strategy could be dated at all."""
        return {strategy: len(ages) for strategy, ages in self.by_strategy.items()}


def age_distributions(context: ExperimentContext) -> AgeDistributions:
    """Compute Figure 3's distributions from a context."""
    by_strategy: dict[str, list[int]] = {
        Strategy.FIXED.value: [],
        Strategy.UPDATED.value: [],
        Strategy.DEPENDENCY.value: [],
    }
    for repo in context.corpus:
        verdict = context.classifications.get(repo.name)
        dating = context.datings.get(repo.name)
        if verdict is None or dating is None or not dating.is_exact:
            continue
        by_strategy[verdict.label.strategy.value].append(dating.age_at())
    return AgeDistributions(
        by_strategy={key: tuple(sorted(values)) for key, values in by_strategy.items()}
    )
