"""Figures 5-7: the version sweep over the web snapshot.

One forward pass over the history drives all three figures at once:

* **Figure 5** — the number of sites the snapshot's hostnames form
  under each version;
* **Figure 6** — the number of requests classified third-party under
  each version;
* **Figure 7** — the number of hostnames whose site differs from their
  site under the newest version.

The pass is delta-driven (only hostnames under rules a delta touched
are re-examined) and runs on the :class:`repro.sweep.SweepEngine`,
which keeps one trie per worker across the whole history and can fan
the universe out over a process pool — that is what makes evaluating
all 1,142 versions against hundreds of thousands of hostnames take
seconds instead of hours.  The per-version ``diff_vs_latest`` record
doubles as the lookup table for Table 3's "# of missing hostnames"
column: a repository vendoring version *v* misclassifies exactly the
hostnames that differ between *v* and the newest list.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

from repro.history.store import VersionStore
from repro.runtime import FaultPlan, RetryPolicy
from repro.sweep import SweepEngine, SweepFailureReport
from repro.webgraph.archive import Snapshot


@dataclass(frozen=True, slots=True)
class SweepPoint:
    """The three figures' y-values at one list version."""

    index: int
    date: datetime.date
    site_count: int
    third_party_requests: int
    diff_vs_latest: int


@dataclass(frozen=True, slots=True)
class SweepResult:
    """The full version sweep."""

    points: tuple[SweepPoint, ...]
    total_hostnames: int
    total_requests: int
    #: Resilience outcome of the underlying engine run; ``degraded``
    #: means quarantined chunks were excluded from every series here.
    failure_report: SweepFailureReport | None = None

    @property
    def first(self) -> SweepPoint:
        return self.points[0]

    @property
    def latest(self) -> SweepPoint:
        return self.points[-1]

    @property
    def additional_sites_latest_vs_first(self) -> int:
        """Figure 5's headline: extra sites under the newest list."""
        return self.latest.site_count - self.first.site_count

    def at_date(self, date: datetime.date) -> SweepPoint:
        """The sweep point of the newest version on or before ``date``."""
        chosen = self.points[0]
        for point in self.points:
            if point.date > date:
                break
            chosen = point
        return chosen

    def yearly(self) -> list[SweepPoint]:
        """Last point of each year — plot-friendly sampling."""
        picked: dict[int, SweepPoint] = {}
        for point in self.points:
            picked[point.date.year] = point
        return [picked[year] for year in sorted(picked)]


def run_sweep(
    store: VersionStore,
    snapshot: Snapshot,
    *,
    workers: int = 1,
    chunk_size: int | None = None,
    checkpoint_dir: str | None = None,
    resume: bool = True,
    resilience: RetryPolicy | None = RetryPolicy(),
    fault_plan: FaultPlan | None = None,
    fingerprint: str | None = None,
) -> SweepResult:
    """Evaluate the snapshot under every version of the history.

    ``workers``/``chunk_size`` tune the underlying
    :class:`~repro.sweep.SweepEngine` fan-out; the default is the
    serial path, which produces bit-identical results to any parallel
    configuration.  ``checkpoint_dir`` spills completed chunks so a
    killed sweep re-run with ``resume=True`` restarts from the last
    completed chunk; the returned result carries the engine's
    :class:`~repro.sweep.SweepFailureReport` so callers can detect a
    degraded (quarantined-chunk) run.  ``fingerprint`` optionally
    identifies the (store, snapshot) universe by an already-computed
    digest — the pipeline's sweep stage passes its own artifact
    fingerprint here, so checkpoint manifests and pipeline artifacts
    share one keying scheme.
    """
    engine = SweepEngine(
        store,
        workers=workers,
        chunk_size=chunk_size,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        resilience=resilience,
        fault_plan=fault_plan,
    )
    series = engine.sweep(
        snapshot.hostnames,
        tuple(snapshot.iter_request_pairs()),
        universe_fingerprint=fingerprint,
    )
    points = tuple(
        SweepPoint(
            index=version.index,
            date=version.date,
            site_count=series.site_counts[position],
            third_party_requests=series.third_party[position],
            diff_vs_latest=series.divergence[position],
        )
        for position, version in enumerate(store.versions)
    )
    return SweepResult(
        points=points,
        total_hostnames=len(snapshot.hostnames),
        total_requests=snapshot.request_count,
        failure_report=engine.last_failure_report,
    )
