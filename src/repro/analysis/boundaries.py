"""Figures 5-7: the version sweep over the web snapshot.

One forward pass over the history drives all three figures at once:

* **Figure 5** — the number of sites the snapshot's hostnames form
  under each version;
* **Figure 6** — the number of requests classified third-party under
  each version;
* **Figure 7** — the number of hostnames whose site differs from their
  site under the newest version.

The pass is incremental (only hostnames under rules a delta touched
are re-examined — see :class:`repro.webgraph.sites.IncrementalGrouper`),
which is what makes evaluating all 1,142 versions against hundreds of
thousands of hostnames take seconds instead of hours.  The per-version
``diff_vs_latest`` record doubles as the lookup table for Table 3's
"# of missing hostnames" column: a repository vendoring version *v*
misclassifies exactly the hostnames that differ between *v* and the
newest list.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

from repro.history.store import VersionStore
from repro.webgraph.archive import Snapshot
from repro.webgraph.sites import IncrementalGrouper, group_sites
from repro.webgraph.thirdparty import ThirdPartyCounter


@dataclass(frozen=True, slots=True)
class SweepPoint:
    """The three figures' y-values at one list version."""

    index: int
    date: datetime.date
    site_count: int
    third_party_requests: int
    diff_vs_latest: int


@dataclass(frozen=True, slots=True)
class SweepResult:
    """The full version sweep."""

    points: tuple[SweepPoint, ...]
    total_hostnames: int
    total_requests: int

    @property
    def first(self) -> SweepPoint:
        return self.points[0]

    @property
    def latest(self) -> SweepPoint:
        return self.points[-1]

    @property
    def additional_sites_latest_vs_first(self) -> int:
        """Figure 5's headline: extra sites under the newest list."""
        return self.latest.site_count - self.first.site_count

    def at_date(self, date: datetime.date) -> SweepPoint:
        """The sweep point of the newest version on or before ``date``."""
        chosen = self.points[0]
        for point in self.points:
            if point.date > date:
                break
            chosen = point
        return chosen

    def yearly(self) -> list[SweepPoint]:
        """Last point of each year — plot-friendly sampling."""
        picked: dict[int, SweepPoint] = {}
        for point in self.points:
            picked[point.date.year] = point
        return [picked[year] for year in sorted(picked)]


def run_sweep(store: VersionStore, snapshot: Snapshot) -> SweepResult:
    """Evaluate the snapshot under every version of the history."""
    hostnames = snapshot.hostnames
    final_assignment = group_sites(store.checkout(-1), hostnames)

    grouper = IncrementalGrouper(store.rules_at(0), hostnames)
    third_party = ThirdPartyCounter(grouper.assignment, snapshot)
    differs: dict[str, bool] = {
        host: grouper.site_of(host) != final_assignment[host] for host in hostnames
    }
    diff_vs_latest = sum(differs.values())

    first_version = store.version(0)
    points: list[SweepPoint] = [
        SweepPoint(
            index=first_version.index,
            date=first_version.date,
            site_count=grouper.site_count,
            third_party_requests=third_party.count,
            diff_vs_latest=diff_vs_latest,
        )
    ]

    for version in store.versions[1:]:
        changed = grouper.apply(version.delta)
        if changed:
            third_party.update(grouper.assignment, changed)
            # Only hosts whose site changed can flip their
            # differs-from-final status.
            for host in changed:
                now = grouper.site_of(host) != final_assignment[host]
                if now != differs[host]:
                    diff_vs_latest += 1 if now else -1
                    differs[host] = now
        points.append(
            SweepPoint(
                index=version.index,
                date=version.date,
                site_count=grouper.site_count,
                third_party_requests=third_party.count,
                diff_vs_latest=diff_vs_latest,
            )
        )
    return SweepResult(
        points=tuple(points),
        total_hostnames=len(hostnames),
        total_requests=snapshot.request_count,
    )
