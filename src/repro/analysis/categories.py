"""Suffix categorization over time (paper Section 3, IANA labels).

The paper labels suffix entries as generic / country-code / sponsored /
infrastructure TLD rules or private domains using the IANA Root Zone
Database.  This module tracks those category populations across the
history — an extension of Figure 2 that shows *what kind* of rules
drive each growth phase (ccTLD second-level early, the JP geographic
burst, then the PRIVATE division).
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

from repro.history.store import VersionStore
from repro.iana.rootzone import RootZoneDatabase


@dataclass(frozen=True, slots=True)
class CategoryPoint:
    """Category populations at one version."""

    index: int
    date: datetime.date
    counts: dict[str, int]

    @property
    def total(self) -> int:
        return sum(self.counts.values())


def category_series(
    store: VersionStore, database: RootZoneDatabase | None = None
) -> list[CategoryPoint]:
    """One :class:`CategoryPoint` per version, computed incrementally."""
    database = database or RootZoneDatabase()
    counts: dict[str, int] = {}
    points: list[CategoryPoint] = []
    for version in store:
        for rule in version.delta.removed:
            label = database.categorize_rule(rule)
            counts[label] = counts.get(label, 0) - 1
        for rule in version.delta.added:
            label = database.categorize_rule(rule)
            counts[label] = counts.get(label, 0) + 1
        points.append(
            CategoryPoint(index=version.index, date=version.date, counts=dict(counts))
        )
    return points


def final_breakdown(store: VersionStore) -> dict[str, int]:
    """Category counts for the newest version."""
    return category_series(store)[-1].counts


def growth_attribution(store: VersionStore, start_year: int, end_year: int) -> dict[str, int]:
    """Net rule change per category within [start_year, end_year].

    Answers "what drove the 2013-2016 growth phase?" — in the paper's
    real data (and this reproduction) the answer is private domains
    plus new-program generic TLDs.
    """
    database = RootZoneDatabase()
    deltas: dict[str, int] = {}
    for version in store:
        if not start_year <= version.date.year <= end_year:
            continue
        for rule in version.delta.removed:
            label = database.categorize_rule(rule)
            deltas[label] = deltas.get(label, 0) - 1
        for rule in version.delta.added:
            label = database.categorize_rule(rule)
            deltas[label] = deltas.get(label, 0) + 1
    return deltas
