"""Terminal charts: the figures as figures.

The paper's artifacts are plots; the benchmark harness prints their
series as tables, and this module renders the same series as compact
Unicode charts so the *shape* claims are visible at a glance in any
terminal:

* :func:`sparkline` — one-line bar-height summary of a series;
* :func:`line_chart` — a fixed-size dot-matrix plot with axis labels;
* :func:`render_series` — titled chart + first/last annotations.

Pure text, no dependencies; used by ``psl-repro`` and the benches.
"""

from __future__ import annotations

from typing import Sequence

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One character per value, height-coded.

    >>> sparkline([0, 5, 10])
    '▁▄█'
    """
    if not values:
        return ""
    low = min(values)
    high = max(values)
    if high == low:
        return _SPARK_LEVELS[0] * len(values)
    span = high - low
    chars = []
    for value in values:
        index = int((value - low) / span * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[index])
    return "".join(chars)


def _resample(values: Sequence[float], width: int) -> list[float]:
    """Average-pool a series down (or index-stretch it up) to ``width``."""
    if len(values) <= width:
        return list(values)
    pooled = []
    for column in range(width):
        start = column * len(values) // width
        end = max(start + 1, (column + 1) * len(values) // width)
        window = values[start:end]
        pooled.append(sum(window) / len(window))
    return pooled


def line_chart(
    values: Sequence[float],
    *,
    width: int = 64,
    height: int = 10,
    y_label_width: int = 10,
) -> str:
    """A dot-matrix plot with a y-axis.

    The series is average-pooled to ``width`` columns; each column gets
    one mark at its scaled height.  Rows print top-down with min/max
    labels on the first and last rows.
    """
    if not values:
        return "(empty series)"
    series = _resample(values, width)
    low = min(series)
    high = max(series)
    span = high - low or 1.0
    # row index per column, 0 = bottom
    rows_for = [int((value - low) / span * (height - 1)) for value in series]

    lines: list[str] = []
    for row in range(height - 1, -1, -1):
        if row == height - 1:
            label = f"{high:,.0f}".rjust(y_label_width)
        elif row == 0:
            label = f"{low:,.0f}".rjust(y_label_width)
        else:
            label = " " * y_label_width
        cells = "".join("•" if rows_for[col] == row else " " for col in range(len(series)))
        lines.append(f"{label} ┤{cells}")
    lines.append(" " * y_label_width + " └" + "─" * len(series))
    return "\n".join(lines)


def render_series(
    title: str,
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 64,
    height: int = 10,
) -> str:
    """A titled chart with endpoint annotations.

    ``labels`` must parallel ``values``; the first and last are shown
    under the x-axis.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must be parallel")
    chart = line_chart(values, width=width, height=height)
    footer = ""
    if labels:
        left = str(labels[0])
        right = str(labels[-1])
        pad = max(1, width - len(left) - len(right))
        footer = "\n" + " " * 12 + left + " " * pad + right
    return f"{title}\n{chart}{footer}"
