"""The ``psl-repro`` command: regenerate any table or figure.

Usage::

    psl-repro list                 # what can be regenerated
    psl-repro fig2                 # growth of the list
    psl-repro tab2                 # the harm table + headline
    psl-repro all                  # everything, in paper order
    psl-repro tab2 --seed 7        # a different synthetic world
    psl-repro all --cache-dir .psl-cache --explain

Every output renders through the artifact DAG of
:mod:`repro.analysis.pipeline`: within one invocation Figures 5-7 and
Tables 2-3 share one sweep per world, and with ``--cache-dir`` the
content-addressed store makes ``psl-repro fig5 && psl-repro tab2``
share it across *processes* too.  ``--explain`` prints the per-stage
hit/miss/wall-time report.

Figures 5-7 default to the figures preset (real-world proportions);
tables use the paper-exact harm populations.  See EXPERIMENTS.md for
the preset definitions.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.analysis import boundaries
from repro.analysis.pipeline import TERMINALS, PaperPipeline, SweepSettings, paper_pipeline
from repro.pipeline import ArtifactStore

# Sweep-engine and store knobs set per process by ``psl-repro`` flags:
# ``--workers`` (results are bit-identical at any value),
# ``--checkpoint-dir`` (chunk-granular spill directory),
# ``--resume`` (reuse spills from a killed run instead of clearing),
# ``--cache-dir`` (the persistent artifact store).
_SWEEP_WORKERS = 1
_SWEEP_CHECKPOINT_DIR: str | None = None
_SWEEP_RESUME = False
_CACHE_DIR: str | None = None

#: Sweeps computed by this process, in order — the degraded-run check
#: reads the tail this invocation appended.
_SWEEP_SINK: list[boundaries.SweepResult] = []

#: Assembled DAGs, keyed by (seed, knobs) — replaces the old
#: ``id(context)``-keyed sweep cache, whose keys could be reused after
#: garbage collection and returned the wrong sweep.
_PIPELINES: dict[tuple, PaperPipeline] = {}

#: Exit status when a sweep completed degraded (quarantined chunks).
EXIT_DEGRADED = 3


def _paper(seed: int) -> PaperPipeline:
    """The (memoized) paper DAG for ``seed`` under the current knobs."""
    key = (seed, _SWEEP_WORKERS, _SWEEP_CHECKPOINT_DIR, _SWEEP_RESUME, _CACHE_DIR)
    if key not in _PIPELINES:
        store = ArtifactStore(_CACHE_DIR) if _CACHE_DIR is not None else None
        _PIPELINES[key] = paper_pipeline(
            seed,
            store=store,
            sweep=SweepSettings(
                workers=_SWEEP_WORKERS,
                checkpoint_dir=_SWEEP_CHECKPOINT_DIR,
                resume=_SWEEP_RESUME,
                on_result=_SWEEP_SINK.append,
            ),
        )
    return _PIPELINES[key]


def _diagnose_degraded(results: list[boundaries.SweepResult]) -> str | None:
    """One-line diagnosis when any sweep ran degraded, else None.

    Persists the full failure report as JSON (next to the checkpoints
    when ``--checkpoint-dir`` was given, else in the working directory)
    so the quarantined chunk identities survive the process.
    """
    import json
    import os

    degraded = [
        result.failure_report
        for result in results
        if result.failure_report is not None and result.failure_report.degraded
    ]
    if not degraded:
        return None
    payload = {"sweeps": [report.to_json() for report in degraded]}
    directory = _SWEEP_CHECKPOINT_DIR or "."
    path = os.path.join(directory, "sweep_failure_report.json")
    try:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
    except OSError:
        path = "<unwritable>"
    chunk_ids = sorted({chunk for report in degraded for chunk in report.quarantined_chunks})
    return (
        f"sweep degraded: quarantined chunks [{', '.join(chunk_ids)}] "
        f"excluded from the series; failure report at {path}"
    )


def _runner(name: str) -> Callable[[int], str]:
    def run(seed: int) -> str:
        return _paper(seed).render(name)

    run.__name__ = f"run_{name.replace('-', '_')}"
    run.__doc__ = f"Render the {name!r} terminal stage of the paper DAG."
    return run


EXPERIMENTS: dict[str, tuple[str, Callable[[int], str]]] = {
    name: (description, _runner(name)) for name, description in TERMINALS.items()
}

# The historical per-experiment entry points, still importable.
run_fig1 = EXPERIMENTS["fig1"][1]
run_fig2 = EXPERIMENTS["fig2"][1]
run_tab1 = EXPERIMENTS["tab1"][1]
run_fig3 = EXPERIMENTS["fig3"][1]
run_fig4 = EXPERIMENTS["fig4"][1]
run_fig5 = EXPERIMENTS["fig5"][1]
run_fig6 = EXPERIMENTS["fig6"][1]
run_fig7 = EXPERIMENTS["fig7"][1]
run_tab2 = EXPERIMENTS["tab2"][1]
run_tab3 = EXPERIMENTS["tab3"][1]
run_categories = EXPERIMENTS["ext-categories"][1]
run_updates = EXPERIMENTS["ext-updates"][1]
run_notify = EXPERIMENTS["ext-notify"][1]
run_exposure = EXPERIMENTS["ext-exposure"][1]
run_forecast = EXPERIMENTS["ext-forecast"][1]
run_whatif = EXPERIMENTS["ext-whatif"][1]
run_scorecard = EXPERIMENTS["scorecard"][1]
run_export = EXPERIMENTS["export"][1]


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``psl-repro``."""
    parser = argparse.ArgumentParser(
        prog="psl-repro",
        description="Regenerate the tables and figures of the PSL privacy-harms paper.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "list"],
        help="which artifact to regenerate",
    )
    parser.add_argument("--seed", type=int, default=20230701, help="world seed")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process count for the Figure 5-7 version sweep (1 = serial)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        help="spill completed sweep chunks here so a killed run can resume",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="reuse checkpoints from a previous run in --checkpoint-dir",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="persistent artifact store: later invocations reuse every "
        "stage (history, snapshot, sweep, rendered outputs) that is "
        "bit-identical to what they would compute",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="print the per-stage pipeline report (hit/miss, bytes, seconds)",
    )
    arguments = parser.parse_args(argv)
    if arguments.workers < 1:
        parser.error("--workers must be positive")
    if arguments.resume and arguments.checkpoint_dir is None:
        parser.error("--resume requires --checkpoint-dir")
    global _SWEEP_WORKERS, _SWEEP_CHECKPOINT_DIR, _SWEEP_RESUME, _CACHE_DIR
    _SWEEP_WORKERS = arguments.workers
    _SWEEP_CHECKPOINT_DIR = arguments.checkpoint_dir
    _SWEEP_RESUME = arguments.resume
    _CACHE_DIR = arguments.cache_dir

    if arguments.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print(f"{name:6s} {EXPERIMENTS[name][0]}")
        return 0

    paper = _paper(arguments.seed)
    pipeline_report = paper.reset_report()
    sink_mark = len(_SWEEP_SINK)
    names = list(EXPERIMENTS) if arguments.experiment == "all" else [arguments.experiment]
    for position, name in enumerate(names):
        if position:
            print("\n" + "=" * 72 + "\n")
        print(EXPERIMENTS[name][1](arguments.seed))

    if arguments.explain:
        print("\n" + "=" * 72 + "\n")
        print(pipeline_report.render())
    if _CACHE_DIR is not None:
        import os

        try:
            pipeline_report.save(os.path.join(_CACHE_DIR, "pipeline_report.json"))
        except OSError:
            pass

    # A degraded sweep must not masquerade as a clean run: diagnose the
    # sweeps this invocation produced and exit nonzero.
    diagnosis = _diagnose_degraded(_SWEEP_SINK[sink_mark:])
    if diagnosis is not None:
        print(diagnosis, file=sys.stderr)
        return EXIT_DEGRADED
    return 0


if __name__ == "__main__":
    sys.exit(main())
