"""The ``psl-repro`` command: regenerate any table or figure.

Usage::

    psl-repro list                 # what can be regenerated
    psl-repro fig2                 # growth of the list
    psl-repro tab2                 # the harm table + headline
    psl-repro all                  # everything, in paper order
    psl-repro tab2 --seed 7        # a different synthetic world

Figures 5-7 default to the figures preset (real-world proportions);
tables use the paper-exact harm populations.  See EXPERIMENTS.md for
the preset definitions.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.analysis import age as age_mod
from repro.analysis import boundaries, growth, harm, popularity, report, taxonomy
from repro.analysis.context import ExperimentContext, figures_context, tables_context

_SWEEP_CACHE: dict[int, boundaries.SweepResult] = {}

# Sweep-engine knobs set per process by ``psl-repro`` flags:
# ``--workers`` (results are bit-identical at any value),
# ``--checkpoint-dir`` (chunk-granular spill directory), and
# ``--resume`` (reuse spills from a killed run instead of clearing).
_SWEEP_WORKERS = 1
_SWEEP_CHECKPOINT_DIR: str | None = None
_SWEEP_RESUME = False

#: Exit status when a sweep completed degraded (quarantined chunks).
EXIT_DEGRADED = 3


def _sweep_for(context: ExperimentContext) -> boundaries.SweepResult:
    key = id(context)
    if key not in _SWEEP_CACHE:
        _SWEEP_CACHE[key] = boundaries.run_sweep(
            context.store,
            context.snapshot,
            workers=_SWEEP_WORKERS,
            checkpoint_dir=_SWEEP_CHECKPOINT_DIR,
            resume=_SWEEP_RESUME,
        )
    return _SWEEP_CACHE[key]


def _diagnose_degraded(results: list[boundaries.SweepResult]) -> str | None:
    """One-line diagnosis when any sweep ran degraded, else None.

    Persists the full failure report as JSON (next to the checkpoints
    when ``--checkpoint-dir`` was given, else in the working directory)
    so the quarantined chunk identities survive the process.
    """
    import json
    import os

    degraded = [
        result.failure_report
        for result in results
        if result.failure_report is not None and result.failure_report.degraded
    ]
    if not degraded:
        return None
    payload = {"sweeps": [report.to_json() for report in degraded]}
    directory = _SWEEP_CHECKPOINT_DIR or "."
    path = os.path.join(directory, "sweep_failure_report.json")
    try:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
    except OSError:
        path = "<unwritable>"
    chunk_ids = sorted({chunk for report in degraded for chunk in report.quarantined_chunks})
    return (
        f"sweep degraded: quarantined chunks [{', '.join(chunk_ids)}] "
        f"excluded from the series; failure report at {path}"
    )


def run_fig2(seed: int) -> str:
    context = tables_context(seed)
    series = growth.figure2_series(context.store)
    return report.render_figure2(growth.summarize(context.store), series)


def run_tab1(seed: int) -> str:
    return report.render_table1(taxonomy.table1(tables_context(seed).corpus))


def run_fig3(seed: int) -> str:
    return report.render_figure3(age_mod.age_distributions(tables_context(seed)))


def run_fig4(seed: int) -> str:
    return report.render_figure4(popularity.popularity(tables_context(seed)))


def run_fig5(seed: int) -> str:
    return report.render_figure5(_sweep_for(figures_context(seed)))


def run_fig6(seed: int) -> str:
    return report.render_figure6(_sweep_for(figures_context(seed)))


def run_fig7(seed: int) -> str:
    return report.render_figure7(_sweep_for(figures_context(seed)))


def run_tab2(seed: int) -> str:
    context = tables_context(seed)
    return report.render_table2(harm.harm_analysis(context, _sweep_for(context)))


def run_tab3(seed: int) -> str:
    context = tables_context(seed)
    return report.render_table3(harm.harm_analysis(context, _sweep_for(context)))


def run_categories(seed: int) -> str:
    from repro.analysis.categories import final_breakdown, growth_attribution

    store = tables_context(seed).store
    lines = ["Extension — suffix categories (IANA labels)", ""]
    breakdown = final_breakdown(store)
    lines.append("Final list: " + ", ".join(f"{k}={v}" for k, v in sorted(breakdown.items())))
    for phase in ((2007, 2011), (2012, 2012), (2013, 2016), (2017, 2022)):
        deltas = growth_attribution(store, *phase)
        top = sorted(deltas.items(), key=lambda kv: -abs(kv[1]))[:3]
        lines.append(
            f"{phase[0]}-{phase[1]}: " + ", ".join(f"{k} {v:+d}" for k, v in top)
        )
    return "\n".join(lines)


def run_updates(seed: int) -> str:
    from repro.analysis.updates import compare_strategies

    lines = ["Extension — update-failure staleness model (10% fetch failures)", ""]
    for outcome in compare_strategies(seed=seed):
        lines.append(
            f"{outcome.strategy:16s} mean age {outcome.mean_age_days:7.1f}d  "
            f"p95 {outcome.p95_age_days:7.1f}d  worst {outcome.worst_age_days}d"
        )
    return "\n".join(lines)


def run_notify(seed: int) -> str:
    from repro.analysis.notifications import render_campaign, run_campaign

    context = tables_context(seed)
    summary = run_campaign(context, _sweep_for(context))
    return render_campaign(summary, preview=1)


def run_exposure(seed: int) -> str:
    from repro.analysis.exposure import corpus_exposure, render_exposure

    context = tables_context(seed)
    _ = _sweep_for(context)  # warms the caches the exposure run shares
    reports = corpus_exposure(context)
    return (
        "Extension — pairwise autofill/cookie exposure (fixed/production)\n\n"
        + render_exposure(reports, limit=12)
    )


def run_whatif(seed: int) -> str:
    from repro.analysis.whatif import policy_curve, render_policy_curve

    context = tables_context(seed)
    curve = policy_curve(_sweep_for(context))
    return (
        "Extension — residual harm under refresh policies\n\n"
        + render_policy_curve(curve)
    )


def run_forecast(seed: int) -> str:
    from repro.analysis.forecast import fit_growth, forecast

    store = tables_context(seed).store
    fits = fit_growth(store)
    lines = ["Extension — list-growth models (holdout on the last 20%)", ""]
    for name, fit in sorted(fits.items()):
        lines.append(f"{name:9s} holdout MAPE {fit.holdout_mape:6.1%}")
    lines.append("")
    for years in (1, 5, 10):
        predictions = forecast(store, years_ahead=years)
        rendered = ", ".join(f"{k} {v:,.0f}" for k, v in sorted(predictions.items()))
        lines.append(f"+{years:>2d}y: {rendered} rules")
    return "\n".join(lines)


def run_scorecard(seed: int) -> str:
    from repro.analysis.harm import harm_analysis
    from repro.analysis.scorecard import build_scorecard, render_scorecard

    context = tables_context(seed)
    tables_sweep = _sweep_for(context)
    figures_sweep = _sweep_for(figures_context(seed))
    rows = build_scorecard(context, harm_analysis(context, tables_sweep), figures_sweep)
    return render_scorecard(rows)


def run_export(seed: int) -> str:
    from repro.analysis.harm import harm_analysis
    from repro.analysis.release import export_release

    context = tables_context(seed)
    sweep = _sweep_for(context)
    counts = export_release(context, sweep, harm_analysis(context, sweep), "release")
    lines = ["Artifact release written to ./release:"]
    lines.extend(f"  {name}: {rows} rows" for name, rows in counts.items())
    return "\n".join(lines)


EXPERIMENTS: dict[str, tuple[str, Callable[[int], str]]] = {
    "fig2": ("Growth of the PSL and suffix components over time", run_fig2),
    "tab1": ("Projects using the PSL by usage type", run_tab1),
    "fig3": ("Age of lists stored in GitHub projects", run_fig3),
    "fig4": ("List age vs. activity vs. popularity", run_fig4),
    "fig5": ("Sites formed by different PSL versions", run_fig5),
    "fig6": ("Third-party requests by PSL version", run_fig6),
    "fig7": ("Hostnames regrouped vs. the newest PSL", run_fig7),
    "tab2": ("Largest missing eTLDs and the harm headline", run_tab2),
    "tab3": ("Fixed-usage repositories", run_tab3),
    "ext-categories": ("Extension: suffix categories over time", run_categories),
    "ext-updates": ("Extension: update-failure staleness model", run_updates),
    "ext-notify": ("Extension: maintainer notification campaign", run_notify),
    "ext-exposure": ("Extension: pairwise autofill/cookie exposure", run_exposure),
    "ext-forecast": ("Extension: list-growth models and forecasts", run_forecast),
    "ext-whatif": ("Extension: residual harm under refresh policies", run_whatif),
    "export": ("Write the paper's release bundle (CSV datasets) to ./release", run_export),
    "scorecard": ("The full paper-vs-measured scorecard (builds both worlds)", run_scorecard),
}


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``psl-repro``."""
    parser = argparse.ArgumentParser(
        prog="psl-repro",
        description="Regenerate the tables and figures of the PSL privacy-harms paper.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "list"],
        help="which artifact to regenerate",
    )
    parser.add_argument("--seed", type=int, default=20230701, help="world seed")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process count for the Figure 5-7 version sweep (1 = serial)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        help="spill completed sweep chunks here so a killed run can resume",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="reuse checkpoints from a previous run in --checkpoint-dir",
    )
    arguments = parser.parse_args(argv)
    if arguments.workers < 1:
        parser.error("--workers must be positive")
    if arguments.resume and arguments.checkpoint_dir is None:
        parser.error("--resume requires --checkpoint-dir")
    global _SWEEP_WORKERS, _SWEEP_CHECKPOINT_DIR, _SWEEP_RESUME
    _SWEEP_WORKERS = arguments.workers
    _SWEEP_CHECKPOINT_DIR = arguments.checkpoint_dir
    _SWEEP_RESUME = arguments.resume

    if arguments.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print(f"{name:6s} {EXPERIMENTS[name][0]}")
        return 0

    cached_before = set(_SWEEP_CACHE)
    names = sorted(EXPERIMENTS) if arguments.experiment == "all" else [arguments.experiment]
    for position, name in enumerate(names):
        if position:
            print("\n" + "=" * 72 + "\n")
        print(EXPERIMENTS[name][1](arguments.seed))

    # A degraded sweep must not masquerade as a clean run: diagnose the
    # sweeps this invocation produced and exit nonzero.
    produced = [
        result for key, result in _SWEEP_CACHE.items() if key not in cached_before
    ]
    diagnosis = _diagnose_degraded(produced)
    if diagnosis is not None:
        print(diagnosis, file=sys.stderr)
        return EXIT_DEGRADED
    return 0


if __name__ == "__main__":
    sys.exit(main())
