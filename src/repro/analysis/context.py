"""Shared experiment context, backed by the artifact pipeline.

Synthesizing the world (1,142-version history, 273-repository corpus,
multi-hundred-thousand-hostname snapshot) takes seconds; every
experiment needs some subset of it.  Each world component is a
:class:`repro.pipeline.Stage` — ``history``, ``corpus``, ``snapshot``,
``classifications``, ``datings``, plus the Figures 5-7 ``sweep`` — so
contexts are thin views over a content-addressed
:class:`~repro.pipeline.ArtifactStore`: within a process every context
with the same configuration shares one world (the store's memory
layer), and a context built over a disk store reuses worlds across
*processes* too.

Two presets matter:

* :func:`tables_context` — ``harm_scale=1.0``: the populations under
  the calibrated missing eTLDs are paper-exact, which Tables 2 and 3
  require.
* :func:`figures_context` — a larger background web and scaled-down
  harm populations, restoring the *proportions* of the real dataset
  (where the 50,750 affected hostnames are a sliver of the whole);
  the Figure 5-7 curve shapes match the paper under this preset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional

from repro.analysis.boundaries import SweepResult, run_sweep
from repro.history.store import VersionStore
from repro.history.synthesis import SynthesisConfig, synthesize_history
from repro.pipeline import Pipeline, Stage, StageContext, memory_store
from repro.psl.packed import pack_history
from repro.repos.classifier import Classification, classify
from repro.repos.corpus import CorpusConfig, build_corpus
from repro.repos.dating import DatingResult, ListDater
from repro.repos.model import Repository
from repro.webgraph.archive import Snapshot
from repro.webgraph.synthesis import SnapshotConfig, synthesize_snapshot

DEFAULT_SEED = 20230701

#: The stage roles every world pipeline provides.
WORLD_STAGES = (
    "history",
    "corpus",
    "snapshot",
    "classifications",
    "datings",
    "sweep",
    "packed",
)


@dataclass(frozen=True, slots=True)
class SweepSettings:
    """Execution knobs for the sweep stage.

    Only ``workers`` is fingerprint material (the ISSUE of record for a
    sweep); ``checkpoint_dir``/``resume`` change *how* a sweep executes
    and recovers, never what it computes, so they stay out of the key.
    ``on_result`` observes every freshly computed sweep (the CLI uses
    it to catch degraded runs).
    """

    workers: int = 1
    checkpoint_dir: str | None = None
    resume: bool = False
    on_result: Callable[[SweepResult], None] | None = None


def world_stages(
    seed: int,
    snapshot_config: SnapshotConfig,
    sweep: SweepSettings = SweepSettings(),
) -> tuple[Stage, ...]:
    """The six world stages for one (seed, snapshot configuration).

    Stage versions are bumped only when the synthesis itself changes
    meaning; parameter changes (seed, scales) re-key automatically.
    """

    def build_history(inputs: Mapping[str, Any], ctx: StageContext) -> VersionStore:
        return synthesize_history(SynthesisConfig(seed=seed))

    def build_corpus_stage(
        inputs: Mapping[str, Any], ctx: StageContext
    ) -> list[Repository]:
        return build_corpus(inputs["history"], CorpusConfig(seed=seed))

    def build_snapshot(inputs: Mapping[str, Any], ctx: StageContext) -> Snapshot:
        store: VersionStore = inputs["history"]
        rule_names: set[str] = set()
        for version in store:
            for rule in version.delta.added:
                rule_names.add(rule.name)
        return synthesize_snapshot(
            snapshot_config, forbidden_suffixes=frozenset(rule_names)
        )

    def build_classifications(
        inputs: Mapping[str, Any], ctx: StageContext
    ) -> dict[str, Classification]:
        results: dict[str, Classification] = {}
        for repo in inputs["corpus"]:
            verdict = classify(repo)
            if verdict is not None:
                results[repo.name] = verdict
        return results

    def build_datings(
        inputs: Mapping[str, Any], ctx: StageContext
    ) -> dict[str, DatingResult | None]:
        dater = ListDater(inputs["history"])
        results: dict[str, DatingResult | None] = {}
        for repo in inputs["corpus"]:
            paths = repo.psl_paths()
            results[repo.name] = (
                dater.date_text(repo.files[paths[0]]) if paths else None
            )
        return results

    def build_sweep(inputs: Mapping[str, Any], ctx: StageContext) -> SweepResult:
        # The stage's own fingerprint keys the runtime checkpoint
        # manifest too — artifact store and checkpoint spills can never
        # disagree about what "the same sweep" is.
        result = run_sweep(
            inputs["history"],
            inputs["snapshot"],
            workers=sweep.workers,
            checkpoint_dir=sweep.checkpoint_dir,
            resume=sweep.resume,
            fingerprint=ctx.fingerprint,
        )
        if sweep.on_result is not None:
            sweep.on_result(result)
        return result

    def sweep_is_clean(result: SweepResult) -> bool:
        report = result.failure_report
        return report is None or not report.degraded

    def build_packed(inputs: Mapping[str, Any], ctx: StageContext) -> bytes:
        return pack_history(inputs["history"])

    return (
        Stage(
            name="history",
            build=build_history,
            params={"seed": seed},
        ),
        Stage(
            name="corpus",
            build=build_corpus_stage,
            upstream=("history",),
            params={"seed": seed},
        ),
        Stage(
            name="snapshot",
            build=build_snapshot,
            upstream=("history",),
            params={"config": snapshot_config},
        ),
        Stage(
            name="classifications",
            build=build_classifications,
            upstream=("corpus",),
        ),
        Stage(
            name="datings",
            build=build_datings,
            upstream=("history", "corpus"),
        ),
        Stage(
            name="sweep",
            build=build_sweep,
            upstream=("history", "snapshot"),
            params={
                "workers": sweep.workers,
                "sites": True,
                "divergence": True,
                "baseline": -1,
            },
            # A degraded sweep (quarantined chunks) must never seed a
            # later run from disk; it stays memory-only.
            persist=sweep_is_clean,
        ),
        Stage(
            name="packed",
            build=build_packed,
            upstream=("history",),
            # Raw bytes on disk: the serving layer mmaps the artifact
            # file itself (ArtifactStore.payload_path) so N server
            # processes share one physical copy of the whole history.
            raw=True,
        ),
    )


@dataclass
class ExperimentContext:
    """A view over the world stages of one pipeline.

    Constructed bare (``ExperimentContext(seed=...)``) it wires its own
    single-world pipeline over the process-wide memory store;
    :func:`repro.analysis.pipeline.paper_pipeline` instead hands every
    context one merged DAG plus a ``stage_names`` alias map (the
    figures world's stages carry an ``@figures`` suffix there).
    """

    seed: int = DEFAULT_SEED
    snapshot_config: SnapshotConfig = field(default_factory=SnapshotConfig)
    pipeline: Optional[Pipeline] = field(default=None, repr=False)
    stage_names: Mapping[str, str] = field(default_factory=dict, repr=False)

    _dater: Optional[ListDater] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.pipeline is None:
            self.pipeline = Pipeline(
                world_stages(self.seed, self.snapshot_config), store=memory_store()
            )

    def _build(self, role: str) -> Any:
        return self.pipeline.build(self.stage_names.get(role, role))

    def stage_fingerprint(self, role: str) -> str:
        """The pipeline fingerprint of one of this context's stages."""
        return self.pipeline.fingerprint_of(self.stage_names.get(role, role))

    @property
    def store(self) -> VersionStore:
        """The synthetic 1,142-version history."""
        return self._build("history")

    @property
    def corpus(self) -> list[Repository]:
        """The 273-repository corpus."""
        return self._build("corpus")

    @property
    def snapshot(self) -> Snapshot:
        """The synthetic crawl snapshot, paired with this history.

        Every rule name the history ever carried is excluded from the
        generated background domains, so only the intended populations
        sit under suffix rules.
        """
        return self._build("snapshot")

    @property
    def dater(self) -> ListDater:
        """A list dater bound to this context's history."""
        if self._dater is None:
            self._dater = ListDater(self.store)
        return self._dater

    @property
    def classifications(self) -> dict[str, Classification]:
        """Repository name -> classifier verdict, for the whole corpus."""
        return self._build("classifications")

    @property
    def datings(self) -> dict[str, "DatingResult | None"]:
        """Repository name -> dating of its (first) vendored list."""
        return self._build("datings")

    def sweep_result(self) -> SweepResult:
        """The Figures 5-7 version sweep for this world, through the
        pipeline — the artifact replaces the old ``id()``-keyed module
        cache (whose keys could be reused after garbage collection)."""
        return self._build("sweep")


def get_context(
    seed: int = DEFAULT_SEED, snapshot_config: SnapshotConfig | None = None
) -> ExperimentContext:
    """A context for a (seed, snapshot configuration) pair.

    Contexts themselves are cheap; the expensive world components are
    shared by fingerprint through the process-wide memory store, so two
    calls with equal configuration reuse one world.
    """
    config = snapshot_config or SnapshotConfig(seed=seed)
    return ExperimentContext(seed=seed, snapshot_config=config)


def tables_config(seed: int = DEFAULT_SEED) -> SnapshotConfig:
    """Snapshot preset for Tables 2-3: paper-exact harm populations."""
    return SnapshotConfig(seed=seed, harm_scale=1.0, bulk_scale=0.25)


def figures_config(seed: int = DEFAULT_SEED) -> SnapshotConfig:
    """Snapshot preset for Figures 5-7: real-world proportions."""
    return SnapshotConfig(seed=seed, harm_scale=0.15, bulk_scale=2.0)


def tables_context(seed: int = DEFAULT_SEED) -> ExperimentContext:
    """Preset for Tables 2-3: paper-exact harm populations."""
    return get_context(seed, tables_config(seed))


def figures_context(seed: int = DEFAULT_SEED) -> ExperimentContext:
    """Preset for Figures 5-7: real-world-proportioned populations."""
    return get_context(seed, figures_config(seed))
