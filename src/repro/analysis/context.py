"""Shared, cached experiment context.

Synthesizing the world (1,142-version history, 273-repository corpus,
multi-hundred-thousand-hostname snapshot) takes seconds; every
experiment needs some subset of it.  :func:`get_context` memoizes fully
constructed contexts per configuration so benchmarks, examples, and
the CLI all reuse one world.

Two presets matter:

* :func:`tables_context` — ``harm_scale=1.0``: the populations under
  the calibrated missing eTLDs are paper-exact, which Tables 2 and 3
  require.
* :func:`figures_context` — a larger background web and scaled-down
  harm populations, restoring the *proportions* of the real dataset
  (where the 50,750 affected hostnames are a sliver of the whole);
  the Figure 5-7 curve shapes match the paper under this preset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.history.store import VersionStore
from repro.history.synthesis import SynthesisConfig, synthesize_history
from repro.repos.classifier import Classification, classify
from repro.repos.corpus import CorpusConfig, build_corpus
from repro.repos.dating import DatingResult, ListDater
from repro.repos.model import Repository
from repro.webgraph.archive import Snapshot
from repro.webgraph.synthesis import SnapshotConfig, synthesize_snapshot

DEFAULT_SEED = 20230701


@dataclass
class ExperimentContext:
    """Lazily constructed shared world for the experiments."""

    seed: int = DEFAULT_SEED
    snapshot_config: SnapshotConfig = field(default_factory=SnapshotConfig)

    _store: Optional[VersionStore] = field(default=None, repr=False)
    _corpus: Optional[list[Repository]] = field(default=None, repr=False)
    _snapshot: Optional[Snapshot] = field(default=None, repr=False)
    _dater: Optional[ListDater] = field(default=None, repr=False)
    _classifications: Optional[dict[str, Classification]] = field(default=None, repr=False)
    _datings: Optional[dict[str, DatingResult | None]] = field(default=None, repr=False)

    @property
    def store(self) -> VersionStore:
        """The synthetic 1,142-version history."""
        if self._store is None:
            self._store = synthesize_history(SynthesisConfig(seed=self.seed))
        return self._store

    @property
    def corpus(self) -> list[Repository]:
        """The 273-repository corpus."""
        if self._corpus is None:
            self._corpus = build_corpus(self.store, CorpusConfig(seed=self.seed))
        return self._corpus

    @property
    def snapshot(self) -> Snapshot:
        """The synthetic crawl snapshot, paired with this history.

        Every rule name the history ever carried is excluded from the
        generated background domains, so only the intended populations
        sit under suffix rules.
        """
        if self._snapshot is None:
            rule_names: set[str] = set()
            for version in self.store:
                for rule in version.delta.added:
                    rule_names.add(rule.name)
            self._snapshot = synthesize_snapshot(
                self.snapshot_config, forbidden_suffixes=frozenset(rule_names)
            )
        return self._snapshot

    @property
    def dater(self) -> ListDater:
        """A list dater bound to this context's history."""
        if self._dater is None:
            self._dater = ListDater(self.store)
        return self._dater

    @property
    def classifications(self) -> dict[str, Classification]:
        """Repository name -> classifier verdict, for the whole corpus."""
        if self._classifications is None:
            results: dict[str, Classification] = {}
            for repo in self.corpus:
                verdict = classify(repo)
                if verdict is not None:
                    results[repo.name] = verdict
            self._classifications = results
        return self._classifications

    @property
    def datings(self) -> dict[str, "DatingResult | None"]:
        """Repository name -> dating of its (first) vendored list."""
        if self._datings is None:
            results: dict[str, DatingResult | None] = {}
            for repo in self.corpus:
                paths = repo.psl_paths()
                results[repo.name] = (
                    self.dater.date_text(repo.files[paths[0]]) if paths else None
                )
            self._datings = results
        return self._datings


_CACHE: dict[tuple, ExperimentContext] = {}


def get_context(
    seed: int = DEFAULT_SEED, snapshot_config: SnapshotConfig | None = None
) -> ExperimentContext:
    """Memoized context for a (seed, snapshot configuration) pair."""
    config = snapshot_config or SnapshotConfig(seed=seed)
    key = (seed,) + tuple(
        getattr(config, name) for name in sorted(SnapshotConfig.__dataclass_fields__)
    )
    if key not in _CACHE:
        _CACHE[key] = ExperimentContext(seed=seed, snapshot_config=config)
    return _CACHE[key]


def tables_context(seed: int = DEFAULT_SEED) -> ExperimentContext:
    """Preset for Tables 2-3: paper-exact harm populations."""
    return get_context(seed, SnapshotConfig(seed=seed, harm_scale=1.0, bulk_scale=0.25))


def figures_context(seed: int = DEFAULT_SEED) -> ExperimentContext:
    """Preset for Figures 5-7: real-world-proportioned populations."""
    return get_context(seed, SnapshotConfig(seed=seed, harm_scale=0.15, bulk_scale=2.0))
