"""Loading a published release bundle (the consumer side).

:mod:`repro.analysis.release` writes the artifact bundle; this module
reads it back into typed records and re-verifies the manifest, so a
downstream user can audit a release without building the world.  The
tests round-trip export → load and check the numbers survive.
"""

from __future__ import annotations

import csv
import datetime
import json
import os
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class RepositoryRecord:
    """One row of ``repositories.csv``."""

    repository: str
    stars: int
    forks: int
    days_since_commit: int
    strategy: str
    subtype: str
    datable: bool
    list_age_days: int | None
    missing_hostnames: int | None


@dataclass(frozen=True, slots=True)
class SuffixRecord:
    """One row of ``suffix_schedule.csv``."""

    suffix: str
    section: str
    addition_date: datetime.date
    age_days: int
    hostnames: int
    in_table2: bool


@dataclass(frozen=True, slots=True)
class ReleaseBundle:
    """A fully loaded release."""

    repositories: tuple[RepositoryRecord, ...]
    suffixes: tuple[SuffixRecord, ...]
    manifest: dict

    def verify(self) -> list[str]:
        """Cross-check the loaded data against its manifest."""
        problems: list[str] = []
        rows = self.manifest.get("rows", {})
        if rows.get("repositories.csv") != len(self.repositories):
            problems.append("repositories.csv row count differs from manifest")
        if rows.get("suffix_schedule.csv") != len(self.suffixes):
            problems.append("suffix_schedule.csv row count differs from manifest")
        headline = self.manifest.get("headline", {})
        if headline.get("missing_etlds") != len(self.suffixes):
            problems.append("suffix count differs from manifest headline")
        total = sum(record.hostnames for record in self.suffixes)
        if headline.get("affected_hostnames") != total:
            problems.append("hostname total differs from manifest headline")
        return problems


def _optional_int(value: str) -> int | None:
    return int(value) if value != "" else None


def load_release(directory: str) -> ReleaseBundle:
    """Load a bundle written by :func:`repro.analysis.release.export_release`."""
    with open(os.path.join(directory, "MANIFEST.json"), encoding="utf-8") as handle:
        manifest = json.load(handle)

    repositories: list[RepositoryRecord] = []
    with open(os.path.join(directory, "repositories.csv"), newline="", encoding="utf-8") as handle:
        for row in csv.DictReader(handle):
            repositories.append(
                RepositoryRecord(
                    repository=row["repository"],
                    stars=int(row["stars"]),
                    forks=int(row["forks"]),
                    days_since_commit=int(row["days_since_commit"]),
                    strategy=row["strategy"],
                    subtype=row["subtype"],
                    datable=row["datable"] == "1",
                    list_age_days=_optional_int(row["list_age_days"]),
                    missing_hostnames=_optional_int(row["missing_hostnames"]),
                )
            )

    suffixes: list[SuffixRecord] = []
    with open(os.path.join(directory, "suffix_schedule.csv"), newline="", encoding="utf-8") as handle:
        for row in csv.DictReader(handle):
            suffixes.append(
                SuffixRecord(
                    suffix=row["suffix"],
                    section=row["section"],
                    addition_date=datetime.date.fromisoformat(row["addition_date"]),
                    age_days=int(row["age_days"]),
                    hostnames=int(row["hostnames"]),
                    in_table2=row["in_table2"] == "1",
                )
            )

    return ReleaseBundle(
        repositories=tuple(repositories),
        suffixes=tuple(suffixes),
        manifest=manifest,
    )
