"""Application-level exposure: autofill and cookie pair counts.

Table 3 counts the *hostnames* a stale list misgroups; what a user
experiences is pairwise: a password manager offers credentials saved
on one tenant when visiting another, a cookie set by one tenant is
readable by another.  For a suffix with *n* misgrouped hostnames the
stale list wrongly merges them into one site, creating ``n·(n−1)``
ordered cross-organization (credential-origin, visited-host) pairs.

This module turns the calibrated populations into those pair counts
per repository — the "how bad is bitwarden's 1,596-day list, in
autofill terms" number — using the closed form rather than enumerating
pairs (the counts are quadratic and run into the hundreds of millions).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.context import ExperimentContext
from repro.analysis.harm import suffix_populations
from repro.repos.dating import extract_rule_lines


@dataclass(frozen=True, slots=True)
class ExposureReport:
    """Pairwise exposure for one repository's vendored list."""

    repository: str
    merged_suffixes: int
    misgrouped_hostnames: int
    autofill_pairs: int  # ordered (credential origin, visited host) pairs

    @property
    def cookie_pairs(self) -> int:
        """Unordered state-sharing pairs (cookies flow both ways)."""
        return self.autofill_pairs // 2


def exposure_for_text(
    repository: str, list_text: str, populations: dict[str, int]
) -> ExposureReport:
    """Exposure of one vendored list against measured populations.

    A suffix contributes when the list lacks its rule: all ``n``
    hostnames under it share one site, plus the operator apex — the
    pair count uses the tenant population only, the conservative
    figure (apex pages are the operator's own).
    """
    vendored = set(extract_rule_lines(list_text))
    merged = 0
    hostnames = 0
    pairs = 0
    for suffix, population in populations.items():
        if suffix in vendored:
            continue
        merged += 1
        hostnames += population
        pairs += population * (population - 1)
    return ExposureReport(
        repository=repository,
        merged_suffixes=merged,
        misgrouped_hostnames=hostnames,
        autofill_pairs=pairs,
    )


def corpus_exposure(
    context: ExperimentContext, *, subtype: str = "production"
) -> list[ExposureReport]:
    """Exposure reports for every fixed repository of one sub-type,
    sorted worst first."""
    populations = suffix_populations(context)
    reports: list[ExposureReport] = []
    for repo in context.corpus:
        verdict = context.classifications.get(repo.name)
        if verdict is None or verdict.label.subtype != subtype:
            continue
        if verdict.label.strategy.value != "fixed":
            continue
        paths = repo.psl_paths()
        reports.append(
            exposure_for_text(repo.name, repo.files[paths[0]], populations)
        )
    reports.sort(key=lambda report: -report.autofill_pairs)
    return reports


def render_exposure(reports: list[ExposureReport], *, limit: int = 10) -> str:
    """The worst offenders as a small table."""
    lines = ["repository                      merged eTLDs   hostnames   autofill pairs"]
    for report in reports[:limit]:
        lines.append(
            f"{report.repository:30s} {report.merged_suffixes:>12,d} "
            f"{report.misgrouped_hostnames:>11,d} {report.autofill_pairs:>16,d}"
        )
    return "\n".join(lines)
