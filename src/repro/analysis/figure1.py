"""Figure 1: the paper's illustrative example, computed.

Figure 1 shows how *PSL v1* (missing the ``example.co.uk`` rule) groups
``example.co.uk``, ``good.example.co.uk`` and ``bad.example.co.uk``
into one site while *PSL v2* separates them.  The paper draws it by
hand; here the diagram is *computed* from two actual list versions, so
it works for any hostname set and any pair of lists — and the text in
the paper ("PSL v1 creates 3 sites with an average of 1.33 domains …
PSL v2 creates 4 sites with 1 domain each") is asserted by the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.psl.list import PublicSuffixList


@dataclass(frozen=True, slots=True)
class GroupingIllustration:
    """Site grouping of one hostname set under one list."""

    label: str
    sites: dict[str, tuple[str, ...]]

    @property
    def site_count(self) -> int:
        return len(self.sites)

    @property
    def domain_count(self) -> int:
        return sum(len(hosts) for hosts in self.sites.values())

    @property
    def mean_domains_per_site(self) -> float:
        if not self.sites:
            return 0.0
        return self.domain_count / self.site_count


# Four domains: two unrelated sites plus the two example.co.uk tenants
# the missing rule merges — v1 groups them into 3 sites (mean 1.33),
# v2 into 4 (mean 1.0), the numbers the paper quotes.
PAPER_HOSTNAMES: tuple[str, ...] = (
    "foo.com",
    "shop.co.uk",
    "good.example.co.uk",
    "bad.example.co.uk",
)

PAPER_V1_RULES = "com\nco.uk\nuk\n"
PAPER_V2_RULES = "com\nco.uk\nuk\nexample.co.uk\n"


def illustrate(
    psl: PublicSuffixList, hostnames: tuple[str, ...], label: str
) -> GroupingIllustration:
    """Group ``hostnames`` under ``psl`` into the Figure 1 boxes."""
    sites: dict[str, list[str]] = {}
    for host in hostnames:
        sites.setdefault(psl.site_of(host), []).append(host)
    return GroupingIllustration(
        label=label,
        sites={site: tuple(hosts) for site, hosts in sorted(sites.items())},
    )


def figure1(
    old: PublicSuffixList,
    new: PublicSuffixList,
    hostnames: tuple[str, ...] = PAPER_HOSTNAMES,
) -> tuple[GroupingIllustration, GroupingIllustration]:
    """Both panels of Figure 1 for an arbitrary list pair."""
    return (
        illustrate(old, hostnames, "PSL v1"),
        illustrate(new, hostnames, "PSL v2"),
    )


def render_figure1(panels: tuple[GroupingIllustration, GroupingIllustration]) -> str:
    """The two panels as side-by-side text boxes."""
    def panel_lines(panel: GroupingIllustration) -> list[str]:
        lines = [
            f"{panel.label}: {panel.site_count} sites, "
            f"{panel.mean_domains_per_site:.2f} domains/site"
        ]
        for site, hosts in panel.sites.items():
            lines.append(f"  ┌─ site {site}")
            for host in hosts:
                lines.append(f"  │   {host}")
            lines.append("  └─")
        return lines

    left, right = (panel_lines(panel) for panel in panels)
    width = max(len(line) for line in left) + 4
    height = max(len(left), len(right))
    left += [""] * (height - len(left))
    right += [""] * (height - len(right))
    return "\n".join(
        f"{left_line.ljust(width)}{right_line}"
        for left_line, right_line in zip(left, right)
    )
