"""List-growth modelling and forecasting (extension).

Figure 2 shows the list's growth saturating; the paper's conclusion
argues the list-based approach has structural limits.  This module
fits saturating growth models to the version history (scipy
``curve_fit``) and extrapolates — the quantitative footnote to that
argument: at the fitted pace, how many rules the list carries in N
years, and how long the backlog-style growth of the PRIVATE division
keeps outrunning the ICANN division.

Fits are evaluated by holdout: train on the history's first 80%,
score on the rest.  The logistic model's holdout error on the
synthetic history is a few percent; the linear baseline's is worse —
mirroring the real list's visible saturation.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

import numpy as np
from scipy.optimize import curve_fit

from repro.history.store import VersionStore
from repro.history.timeline import growth_series


def _logistic(t: np.ndarray, capacity: float, midpoint: float, rate: float) -> np.ndarray:
    return capacity / (1.0 + np.exp(-rate * (t - midpoint)))


@dataclass(frozen=True, slots=True)
class GrowthFit:
    """One fitted growth model."""

    model: str  # "logistic" | "linear"
    parameters: tuple[float, ...]
    holdout_mape: float  # mean absolute percentage error on the holdout

    def predict(self, days_since_start: float) -> float:
        """Predicted rule count ``days_since_start`` after the first version."""
        if self.model == "logistic":
            capacity, midpoint, rate = self.parameters
            return float(_logistic(np.asarray([days_since_start]), capacity, midpoint, rate)[0])
        slope, intercept = self.parameters
        return slope * days_since_start + intercept


def _series(store: VersionStore) -> tuple[np.ndarray, np.ndarray, datetime.date]:
    points = growth_series(store)
    start = points[0].date
    days = np.asarray([(point.date - start).days for point in points], dtype=np.float64)
    totals = np.asarray([point.total for point in points], dtype=np.float64)
    return days, totals, start


def fit_growth(store: VersionStore, *, train_fraction: float = 0.8) -> dict[str, GrowthFit]:
    """Fit logistic and linear models; returns both with holdout errors."""
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    days, totals, _ = _series(store)
    split = max(2, int(len(days) * train_fraction))
    train_days, train_totals = days[:split], totals[:split]
    test_days, test_totals = days[split:], totals[split:]

    fits: dict[str, GrowthFit] = {}

    slope, intercept = np.polyfit(train_days, train_totals, 1)
    linear_prediction = slope * test_days + intercept
    fits["linear"] = GrowthFit(
        model="linear",
        parameters=(float(slope), float(intercept)),
        holdout_mape=_mape(test_totals, linear_prediction),
    )

    initial = (float(totals.max()) * 1.2, float(days.mean()), 1e-3)
    try:
        parameters, _ = curve_fit(
            _logistic, train_days, train_totals, p0=initial, maxfev=20_000
        )
        logistic_prediction = _logistic(test_days, *parameters)
        fits["logistic"] = GrowthFit(
            model="logistic",
            parameters=tuple(float(p) for p in parameters),
            holdout_mape=_mape(test_totals, logistic_prediction),
        )
    except RuntimeError:
        # Non-convergence: report only the baseline rather than a junk fit.
        pass
    return fits


def _mape(actual: np.ndarray, predicted: np.ndarray) -> float:
    if actual.size == 0:
        return 0.0
    return float(np.mean(np.abs((predicted - actual) / actual)))


def forecast(store: VersionStore, *, years_ahead: int = 5) -> dict[str, float]:
    """Rule-count forecasts at ``years_ahead`` from the last version.

    Returns per-model predictions; the spread between the saturating
    and linear views brackets the plausible range.
    """
    days, _, start = _series(store)
    horizon = float(days[-1]) + 365.25 * years_ahead
    return {
        name: fit.predict(horizon) for name, fit in fit_growth(store).items()
    }
