"""Figure 2: growth of the Public Suffix List over time.

The paper plots the list's total size and its breakdown by number of
suffix components across all 1,142 versions, and calls out the
creation size (2,447), the 2017 size (8,062), the final size (9,368),
the component mix, and the mid-2012 Japanese registration spike.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

from repro.history.store import VersionStore
from repro.history.timeline import GrowthPoint, growth_series, spike_versions


@dataclass(frozen=True, slots=True)
class GrowthSummary:
    """The headline quantities of Figure 2."""

    first_date: datetime.date
    last_date: datetime.date
    version_count: int
    first_rule_count: int
    final_rule_count: int
    rule_count_2017: int
    final_component_share: tuple[float, ...]
    largest_spike: tuple[datetime.date, int] | None


def yearly_points(series: list[GrowthPoint]) -> list[GrowthPoint]:
    """The last point of each calendar year — the plot's x-axis ticks."""
    picked: dict[int, GrowthPoint] = {}
    for point in series:
        picked[point.date.year] = point
    return [picked[year] for year in sorted(picked)]


def summarize(store: VersionStore) -> GrowthSummary:
    """Compute the Figure 2 summary for one history."""
    series = growth_series(store)
    first = series[0]
    last = series[-1]
    at_2017 = first
    for point in series:
        if point.date >= datetime.date(2017, 1, 1):
            break
        at_2017 = point
    spikes = spike_versions(store, threshold=200)
    # Ignore the initial import, which is trivially the largest delta.
    real_spikes = [spike for spike in spikes if spike[0] != first.date]
    largest = max(real_spikes, key=lambda spike: spike[1]) if real_spikes else None
    return GrowthSummary(
        first_date=first.date,
        last_date=last.date,
        version_count=len(series),
        first_rule_count=first.total,
        final_rule_count=last.total,
        rule_count_2017=at_2017.total,
        final_component_share=last.component_share,
        largest_spike=largest,
    )


def figure2_series(store: VersionStore) -> list[GrowthPoint]:
    """The full per-version series behind Figure 2."""
    return growth_series(store)
