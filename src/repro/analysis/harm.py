"""Tables 2 and 3 and the headline harm estimate.

The paper's estimation (Section 5): combine the repository corpus with
the web snapshot by checking, for every suffix rule in the newest
list, which projects' vendored lists lack it and how many snapshot
hostnames sit under it.

* **Table 2** — the 15 largest such eTLDs (by impacted hostnames) that
  at least one fixed/production project is missing, with per-taxonomy
  project counts;
* **headline** — the total count of such eTLDs (1,313) and hostnames
  (50,750);
* **Table 3** — per fixed-usage repository: list age and the number of
  hostnames its vendored version assigns to a different site than the
  newest list does (read off the version sweep).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.boundaries import SweepResult
from repro.analysis.context import ExperimentContext
from repro.data import paper
from repro.psl.rules import RuleKind
from repro.psl.trie import SuffixTrie
from repro.repos.dating import extract_rule_lines
from repro.repos.model import Strategy
from repro.webgraph.sites import reversed_labels_of


@dataclass(frozen=True, slots=True)
class Table2MeasuredRow:
    """One measured Table 2 row."""

    etld: str
    hostnames: int
    dependency: int
    fixed_production: int
    fixed_test_other: int
    updated: int


@dataclass(frozen=True, slots=True)
class Table3MeasuredRow:
    """One measured Table 3 row."""

    name: str
    subtype: str
    stars: int
    forks: int
    age_days: int
    missing_hostnames: int


@dataclass(frozen=True, slots=True)
class HarmResult:
    """Everything Section 5 reports."""

    missing_etld_count: int
    affected_hostname_count: int
    table2: tuple[Table2MeasuredRow, ...]
    table3: tuple[Table3MeasuredRow, ...]


def suffix_populations(context: ExperimentContext) -> dict[str, int]:
    """Snapshot hostnames per public suffix, under the newest list.

    A suffix's population counts the hostnames *registered under* it
    (the suffix hostname itself is excluded: it is not misgrouped by
    the suffix's absence, as its site string is unchanged).
    """
    trie = SuffixTrie(context.store.rules_at(-1))
    populations: dict[str, int] = {}
    for host in context.snapshot.hostnames:
        rlabels = reversed_labels_of(host)
        rule = trie.prevailing(rlabels)
        if rule is None:
            length = 1
        elif rule.kind is RuleKind.EXCEPTION:
            length = rule.component_count - 1
        else:
            length = rule.component_count
        if length < len(rlabels):
            suffix = ".".join(rlabels[length - 1 :: -1])
            populations[suffix] = populations.get(suffix, 0) + 1
    return populations


def _taxonomy_buckets(context: ExperimentContext) -> dict[str, str]:
    """Repository name -> Table 2 column key."""
    buckets: dict[str, str] = {}
    for name, verdict in context.classifications.items():
        label = verdict.label
        if label.strategy is Strategy.DEPENDENCY:
            buckets[name] = "dependency"
        elif label.strategy is Strategy.UPDATED:
            buckets[name] = "updated"
        elif label.subtype == "production":
            buckets[name] = "fixed_production"
        else:
            buckets[name] = "fixed_test_other"
    return buckets


def harm_analysis(context: ExperimentContext, sweep: SweepResult) -> HarmResult:
    """Regenerate Table 2, Table 3, and the headline estimate."""
    populations = suffix_populations(context)
    candidates = sorted(populations)
    candidate_set = set(candidates)
    buckets = _taxonomy_buckets(context)

    # Which candidate suffixes is each repository missing?
    missing_by_suffix: dict[str, dict[str, int]] = {
        suffix: {"dependency": 0, "fixed_production": 0, "fixed_test_other": 0, "updated": 0}
        for suffix in candidates
    }
    for repo in context.corpus:
        bucket = buckets.get(repo.name)
        if bucket is None:
            continue
        paths = repo.psl_paths()
        if not paths:
            continue
        present = candidate_set & set(extract_rule_lines(repo.files[paths[0]]))
        for suffix in candidate_set - present:
            missing_by_suffix[suffix][bucket] += 1

    # Headline: suffixes missing from at least one fixed/production
    # project, and the hostnames under them.
    harmful = [
        suffix
        for suffix in candidates
        if missing_by_suffix[suffix]["fixed_production"] > 0
    ]
    affected = sum(populations[suffix] for suffix in harmful)

    # Table 2: top 15 harmful suffixes by impacted hostnames.
    top = sorted(harmful, key=lambda suffix: (-populations[suffix], suffix))[:15]
    table2 = tuple(
        Table2MeasuredRow(
            etld=suffix,
            hostnames=populations[suffix],
            dependency=missing_by_suffix[suffix]["dependency"],
            fixed_production=missing_by_suffix[suffix]["fixed_production"],
            fixed_test_other=missing_by_suffix[suffix]["fixed_test_other"],
            updated=missing_by_suffix[suffix]["updated"],
        )
        for suffix in top
    )

    # Table 3: the datable fixed repositories with their measured
    # missing-hostname counts (site assignment at their version vs. the
    # newest version, straight off the sweep).
    table3: list[Table3MeasuredRow] = []
    for repo in context.corpus:
        verdict = context.classifications.get(repo.name)
        dating = context.datings.get(repo.name)
        if verdict is None or dating is None or not dating.is_exact:
            continue
        if verdict.label.strategy is not Strategy.FIXED:
            continue
        table3.append(
            Table3MeasuredRow(
                name=repo.name,
                subtype=verdict.label.subtype,
                stars=repo.stars,
                forks=repo.forks,
                age_days=dating.age_at(paper.MEASUREMENT_DATE),
                missing_hostnames=sweep.points[dating.version_index].diff_vs_latest,
            )
        )
    table3.sort(key=lambda row: (row.subtype, -row.stars, row.name))

    return HarmResult(
        missing_etld_count=len(harmful),
        affected_hostname_count=affected,
        table2=table2,
        table3=tuple(table3),
    )
