"""The notification campaign (paper Section 3).

"We sought to notify the maintainers of those projects of our
findings" — this module assembles that campaign end to end: pick the
affected projects from the measured harm results, compute each one's
concrete exposure (list age, missing eTLDs with live traffic, affected
hostnames), render the per-project notification, and summarize the
campaign the way a real disclosure write-up would.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.boundaries import SweepResult
from repro.analysis.context import ExperimentContext
from repro.data import paper
from repro.repos.dating import extract_rule_lines
from repro.repos.model import Strategy
from repro.repos.notify import Notification, build_notification


@dataclass(frozen=True, slots=True)
class CampaignSummary:
    """Aggregate view of one notification campaign."""

    notifications: tuple[Notification, ...]
    by_severity: dict[str, int]

    @property
    def total(self) -> int:
        return len(self.notifications)


def _exposure(context: ExperimentContext, repo_name: str, suffix_populations: dict[str, int]) -> tuple[int, int]:
    """(missing eTLDs with traffic, affected hostnames) for one repo."""
    repo = next(r for r in context.corpus if r.name == repo_name)
    vendored = set(extract_rule_lines(repo.files[repo.psl_paths()[0]]))
    missing = [
        suffix for suffix in suffix_populations if suffix not in vendored
    ]
    return len(missing), sum(suffix_populations[suffix] for suffix in missing)


def run_campaign(
    context: ExperimentContext,
    sweep: SweepResult,
    *,
    include_test_usage: bool = False,
) -> CampaignSummary:
    """Build notifications for every harmfully-classified project.

    By default this targets the paper's 43 fixed/production projects;
    ``include_test_usage`` widens it to the full fixed set.
    """
    from repro.analysis.harm import suffix_populations

    populations = suffix_populations(context)
    notifications: list[Notification] = []
    severity_counts: dict[str, int] = {}

    for repo in context.corpus:
        verdict = context.classifications.get(repo.name)
        if verdict is None or verdict.label.strategy is not Strategy.FIXED:
            continue
        if verdict.label.subtype != "production" and not include_test_usage:
            continue
        dating = context.datings.get(repo.name)
        missing_etlds, missing_hostnames = _exposure(context, repo.name, populations)
        note = build_notification(
            repo,
            verdict,
            dating if dating is not None and dating.is_exact else None,
            missing_etlds=missing_etlds,
            missing_hostnames=missing_hostnames,
        )
        notifications.append(note)
        severity_counts[note.severity] = severity_counts.get(note.severity, 0) + 1

    notifications.sort(key=lambda note: (note.severity != "high", note.repository))
    return CampaignSummary(
        notifications=tuple(notifications), by_severity=severity_counts
    )


def render_campaign(summary: CampaignSummary, *, preview: int = 3) -> str:
    """Human summary plus the first few notification bodies."""
    lines = [
        f"Notification campaign: {summary.total} projects "
        f"(paper: {paper.HARMFUL_PROJECT_COUNT} fixed/production projects)",
        "By severity: "
        + ", ".join(f"{count} {severity}" for severity, count in sorted(summary.by_severity.items())),
        "",
    ]
    for note in summary.notifications[:preview]:
        lines.append(f"--- {note.repository} [{note.severity}] {note.title}")
        lines.append(note.body)
        lines.append("")
    return "\n".join(lines)
