"""The paper's artifact DAG: one pipeline under every output.

This module assembles the whole reproduction as a single
:class:`repro.pipeline.Pipeline`:

* the **tables world** under its plain stage names (``history``,
  ``corpus``, ``snapshot``, ``classifications``, ``datings``,
  ``sweep``, plus the derived ``harm`` result);
* the **figures world** sharing ``history``/``corpus`` with the tables
  world (same fingerprints) and adding ``snapshot@figures`` /
  ``sweep@figures``;
* a **terminal stage per paper output** — ``fig1`` … ``fig7``,
  ``tab1`` … ``tab3``, every ``ext-*`` ablation, the ``scorecard`` and
  the release ``export`` — whose artifact *is* the rendered text.

Because every terminal hangs off the same content-addressed store,
``psl-repro fig5 && psl-repro tab2`` over a warm ``--cache-dir`` share
the sweep instead of running it twice, and ``psl-repro all`` builds
each non-terminal stage at most once — per process *and* across
processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.analysis import age as age_mod
from repro.analysis import growth, harm, popularity, report, taxonomy
from repro.analysis.boundaries import SweepResult
from repro.analysis.context import (
    ExperimentContext,
    SweepSettings,
    figures_config,
    tables_config,
    world_stages,
)
from repro.pipeline import ArtifactStore, Pipeline, PipelineReport, Stage, StageContext, memory_store

__all__ = [
    "FIGURES_SUFFIX",
    "PaperPipeline",
    "SweepSettings",
    "TERMINALS",
    "paper_pipeline",
]

#: Stage-name suffix distinguishing the figures world inside the DAG.
FIGURES_SUFFIX = "@figures"

#: Terminal stage name -> one-line description, in paper order.
TERMINALS: dict[str, str] = {
    "fig1": "The illustrative grouping example, computed",
    "fig2": "Growth of the PSL and suffix components over time",
    "tab1": "Projects using the PSL by usage type",
    "fig3": "Age of lists stored in GitHub projects",
    "fig4": "List age vs. activity vs. popularity",
    "fig5": "Sites formed by different PSL versions",
    "fig6": "Third-party requests by PSL version",
    "fig7": "Hostnames regrouped vs. the newest PSL",
    "tab2": "Largest missing eTLDs and the harm headline",
    "tab3": "Fixed-usage repositories",
    "ext-categories": "Extension: suffix categories over time",
    "ext-updates": "Extension: update-failure staleness model",
    "ext-notify": "Extension: maintainer notification campaign",
    "ext-exposure": "Extension: pairwise autofill/cookie exposure",
    "ext-forecast": "Extension: list-growth models and forecasts",
    "ext-whatif": "Extension: residual harm under refresh policies",
    "export": "Write the paper's release bundle (CSV datasets) to ./release",
    "scorecard": "The full paper-vs-measured scorecard (builds both worlds)",
}


@dataclass
class PaperPipeline:
    """The assembled DAG plus its two world views."""

    seed: int
    pipeline: Pipeline
    tables: ExperimentContext
    figures: ExperimentContext

    @property
    def report(self) -> PipelineReport:
        return self.pipeline.report

    def reset_report(self) -> PipelineReport:
        """Swap in a fresh report (one per CLI invocation)."""
        self.pipeline.report = PipelineReport()
        return self.pipeline.report

    def render(self, name: str) -> str:
        """The rendered text of one terminal stage."""
        if name not in TERMINALS:
            raise KeyError(f"unknown terminal stage {name!r}")
        return self.pipeline.build(name)

    def sweep_results(self) -> list[SweepResult]:
        """Every sweep this process has materialized for this DAG —
        used by the CLI to refuse to exit 0 after a degraded sweep."""
        results = []
        for stage in ("sweep", f"sweep{FIGURES_SUFFIX}"):
            value = self.pipeline.peek(stage)
            if value is not None:
                results.append(value)
        return results


def _terminal_stages(
    seed: int, holder: dict[str, ExperimentContext]
) -> tuple[Stage, ...]:
    """Terminal (and derived) stages; contexts resolved via ``holder``
    after the pipeline exists."""

    def tables_ctx() -> ExperimentContext:
        return holder["tables"]

    def figures_ctx() -> ExperimentContext:
        return holder["figures"]

    def build_harm(inputs: Mapping[str, Any], ctx: StageContext) -> harm.HarmResult:
        return harm.harm_analysis(tables_ctx(), inputs["sweep"])

    def build_fig1(inputs: Mapping[str, Any], ctx: StageContext) -> str:
        from repro.analysis.figure1 import (
            PAPER_HOSTNAMES,
            PAPER_V1_RULES,
            PAPER_V2_RULES,
            figure1,
            render_figure1,
        )
        from repro.psl.parser import parse_psl

        panels = figure1(
            parse_psl(PAPER_V1_RULES), parse_psl(PAPER_V2_RULES), PAPER_HOSTNAMES
        )
        return render_figure1(panels)

    def build_fig2(inputs: Mapping[str, Any], ctx: StageContext) -> str:
        store = inputs["history"]
        return report.render_figure2(
            growth.summarize(store), growth.figure2_series(store)
        )

    def build_tab1(inputs: Mapping[str, Any], ctx: StageContext) -> str:
        return report.render_table1(taxonomy.table1(inputs["corpus"]))

    def build_fig3(inputs: Mapping[str, Any], ctx: StageContext) -> str:
        return report.render_figure3(age_mod.age_distributions(tables_ctx()))

    def build_fig4(inputs: Mapping[str, Any], ctx: StageContext) -> str:
        return report.render_figure4(popularity.popularity(tables_ctx()))

    def build_fig5(inputs: Mapping[str, Any], ctx: StageContext) -> str:
        return report.render_figure5(inputs[f"sweep{FIGURES_SUFFIX}"])

    def build_fig6(inputs: Mapping[str, Any], ctx: StageContext) -> str:
        return report.render_figure6(inputs[f"sweep{FIGURES_SUFFIX}"])

    def build_fig7(inputs: Mapping[str, Any], ctx: StageContext) -> str:
        return report.render_figure7(inputs[f"sweep{FIGURES_SUFFIX}"])

    def build_tab2(inputs: Mapping[str, Any], ctx: StageContext) -> str:
        return report.render_table2(inputs["harm"])

    def build_tab3(inputs: Mapping[str, Any], ctx: StageContext) -> str:
        return report.render_table3(inputs["harm"])

    def build_categories(inputs: Mapping[str, Any], ctx: StageContext) -> str:
        from repro.analysis.categories import final_breakdown, growth_attribution

        store = inputs["history"]
        lines = ["Extension — suffix categories (IANA labels)", ""]
        breakdown = final_breakdown(store)
        lines.append(
            "Final list: " + ", ".join(f"{k}={v}" for k, v in sorted(breakdown.items()))
        )
        for phase in ((2007, 2011), (2012, 2012), (2013, 2016), (2017, 2022)):
            deltas = growth_attribution(store, *phase)
            top = sorted(deltas.items(), key=lambda kv: -abs(kv[1]))[:3]
            lines.append(
                f"{phase[0]}-{phase[1]}: " + ", ".join(f"{k} {v:+d}" for k, v in top)
            )
        return "\n".join(lines)

    def build_updates(inputs: Mapping[str, Any], ctx: StageContext) -> str:
        from repro.analysis.updates import compare_strategies

        lines = ["Extension — update-failure staleness model (10% fetch failures)", ""]
        for outcome in compare_strategies(seed=seed):
            lines.append(
                f"{outcome.strategy:16s} mean age {outcome.mean_age_days:7.1f}d  "
                f"p95 {outcome.p95_age_days:7.1f}d  worst {outcome.worst_age_days}d"
            )
        return "\n".join(lines)

    def build_notify(inputs: Mapping[str, Any], ctx: StageContext) -> str:
        from repro.analysis.notifications import render_campaign, run_campaign

        summary = run_campaign(tables_ctx(), inputs["sweep"])
        return render_campaign(summary, preview=1)

    def build_exposure(inputs: Mapping[str, Any], ctx: StageContext) -> str:
        from repro.analysis.exposure import corpus_exposure, render_exposure

        reports = corpus_exposure(tables_ctx())
        return (
            "Extension — pairwise autofill/cookie exposure (fixed/production)\n\n"
            + render_exposure(reports, limit=12)
        )

    def build_forecast(inputs: Mapping[str, Any], ctx: StageContext) -> str:
        from repro.analysis.forecast import fit_growth, forecast

        store = inputs["history"]
        fits = fit_growth(store)
        lines = ["Extension — list-growth models (holdout on the last 20%)", ""]
        for name, fit in sorted(fits.items()):
            lines.append(f"{name:9s} holdout MAPE {fit.holdout_mape:6.1%}")
        lines.append("")
        for years in (1, 5, 10):
            predictions = forecast(store, years_ahead=years)
            rendered = ", ".join(f"{k} {v:,.0f}" for k, v in sorted(predictions.items()))
            lines.append(f"+{years:>2d}y: {rendered} rules")
        return "\n".join(lines)

    def build_whatif(inputs: Mapping[str, Any], ctx: StageContext) -> str:
        from repro.analysis.whatif import policy_curve, render_policy_curve

        curve = policy_curve(inputs["sweep"])
        return (
            "Extension — residual harm under refresh policies\n\n"
            + render_policy_curve(curve)
        )

    def build_scorecard(inputs: Mapping[str, Any], ctx: StageContext) -> str:
        from repro.analysis.scorecard import build_scorecard, render_scorecard

        rows = build_scorecard(
            tables_ctx(), inputs["harm"], inputs[f"sweep{FIGURES_SUFFIX}"]
        )
        return render_scorecard(rows)

    def build_export(inputs: Mapping[str, Any], ctx: StageContext) -> str:
        from repro.analysis.release import export_release

        counts = export_release(
            tables_ctx(), inputs["sweep"], inputs["harm"], "release"
        )
        lines = ["Artifact release written to ./release:"]
        lines.extend(f"  {name}: {rows} rows" for name, rows in counts.items())
        return "\n".join(lines)

    from repro.analysis.figure1 import PAPER_HOSTNAMES, PAPER_V1_RULES, PAPER_V2_RULES

    tables_world = ("history", "snapshot", "corpus", "classifications", "datings")
    return (
        Stage(
            name="harm",
            build=build_harm,
            upstream=tables_world + ("sweep",),
        ),
        Stage(
            name="fig1",
            build=build_fig1,
            params={
                "hostnames": PAPER_HOSTNAMES,
                "v1_rules": PAPER_V1_RULES,
                "v2_rules": PAPER_V2_RULES,
            },
        ),
        Stage(name="fig2", build=build_fig2, upstream=("history",)),
        Stage(name="tab1", build=build_tab1, upstream=("corpus",)),
        Stage(
            name="fig3",
            build=build_fig3,
            upstream=("corpus", "classifications", "datings"),
        ),
        Stage(
            name="fig4",
            build=build_fig4,
            upstream=("corpus", "classifications", "datings"),
        ),
        Stage(name="fig5", build=build_fig5, upstream=(f"sweep{FIGURES_SUFFIX}",)),
        Stage(name="fig6", build=build_fig6, upstream=(f"sweep{FIGURES_SUFFIX}",)),
        Stage(name="fig7", build=build_fig7, upstream=(f"sweep{FIGURES_SUFFIX}",)),
        Stage(name="tab2", build=build_tab2, upstream=("harm",)),
        Stage(name="tab3", build=build_tab3, upstream=("harm",)),
        Stage(name="ext-categories", build=build_categories, upstream=("history",)),
        Stage(name="ext-updates", build=build_updates, params={"seed": seed}),
        Stage(
            name="ext-notify",
            build=build_notify,
            upstream=("corpus", "classifications", "datings", "sweep"),
        ),
        Stage(
            name="ext-exposure",
            build=build_exposure,
            upstream=tables_world + ("sweep",),
        ),
        Stage(name="ext-forecast", build=build_forecast, upstream=("history",)),
        Stage(name="ext-whatif", build=build_whatif, upstream=("sweep",)),
        Stage(
            name="scorecard",
            build=build_scorecard,
            upstream=(
                "history",
                "corpus",
                "classifications",
                "datings",
                "harm",
                f"sweep{FIGURES_SUFFIX}",
            ),
        ),
        # The export writes ./release as a side effect, so it is never
        # cached — rendering it must always (re)write the bundle.
        Stage(
            name="export",
            build=build_export,
            upstream=("corpus", "classifications", "datings", "harm", "sweep"),
            cache=False,
        ),
    )


def paper_pipeline(
    seed: int,
    *,
    store: ArtifactStore | None = None,
    sweep: SweepSettings = SweepSettings(),
    tables: Any | None = None,
    figures: Any | None = None,
) -> PaperPipeline:
    """Assemble the full paper DAG for one seed.

    ``store`` defaults to the process-wide memory store; pass
    ``ArtifactStore(cache_dir)`` for cross-process reuse.  ``tables`` /
    ``figures`` override the two worlds' :class:`SnapshotConfig`
    (tests use slim scales; the CLI uses the paper presets).
    """
    store = store if store is not None else memory_store()
    tables_cfg = tables if tables is not None else tables_config(seed)
    figures_cfg = figures if figures is not None else figures_config(seed)

    stages: list[Stage] = list(world_stages(seed, tables_cfg, sweep))
    # The figures world shares history/corpus/classifications/datings
    # with the tables world (identical fingerprints); only its snapshot
    # and sweep differ, so only those join the DAG, suffixed.
    figures_names = {
        "snapshot": f"snapshot{FIGURES_SUFFIX}",
        "sweep": f"sweep{FIGURES_SUFFIX}",
    }
    for stage in world_stages(seed, figures_cfg, sweep):
        if stage.name in figures_names:
            stages.append(stage.renamed(figures_names[stage.name], figures_names))

    holder: dict[str, ExperimentContext] = {}
    stages.extend(_terminal_stages(seed, holder))

    pipeline = Pipeline(stages, store=store)
    holder["tables"] = ExperimentContext(
        seed=seed, snapshot_config=tables_cfg, pipeline=pipeline
    )
    holder["figures"] = ExperimentContext(
        seed=seed,
        snapshot_config=figures_cfg,
        pipeline=pipeline,
        stage_names=figures_names,
    )
    return PaperPipeline(
        seed=seed,
        pipeline=pipeline,
        tables=holder["tables"],
        figures=holder["figures"],
    )
