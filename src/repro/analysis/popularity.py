"""Figure 4 and the popularity analysis.

Figure 4 scatters the fixed/production projects by vendored-list age
against days since last commit, sized by star count.  The supporting
claims: stars and forks correlate strongly (Pearson 0.96 over the
Table 3 repositories); among the 43 fixed/production projects only 5
have 500+ stars, with a median of 60.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Sequence

from repro.analysis.context import ExperimentContext
from repro.repos.model import Strategy


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient, implemented directly.

    >>> round(pearson([1, 2, 3], [2, 4, 6]), 6)
    1.0
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need two equal-length samples of size >= 2")
    mean_x = sum(xs) / len(xs)
    mean_y = sum(ys) / len(ys)
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        raise ValueError("zero variance")
    return cov / math.sqrt(var_x * var_y)


@dataclass(frozen=True, slots=True)
class ScatterPoint:
    """One Figure 4 marker."""

    repository: str
    list_age_days: int
    days_since_commit: int
    stars: int
    subtype: str


@dataclass(frozen=True, slots=True)
class PopularityResult:
    """Figure 4's scatter plus the supporting statistics."""

    points: tuple[ScatterPoint, ...]
    stars_forks_pearson: float
    production_star_median: float
    production_500_plus: int


def popularity(context: ExperimentContext) -> PopularityResult:
    """Compute Figure 4 from a context."""
    points: list[ScatterPoint] = []
    fixed_stars: list[int] = []
    fixed_forks: list[int] = []
    production_stars: list[int] = []

    for repo in context.corpus:
        verdict = context.classifications.get(repo.name)
        if verdict is None or verdict.label.strategy is not Strategy.FIXED:
            continue
        if verdict.label.subtype == "production":
            production_stars.append(repo.stars)
        dating = context.datings.get(repo.name)
        if dating is None or not dating.is_exact:
            continue
        # The correlation is over the *datable* fixed repositories —
        # the population listed in the paper's Table 3.
        fixed_stars.append(repo.stars)
        fixed_forks.append(repo.forks)
        if verdict.label.subtype in ("production", "test", "other"):
            points.append(
                ScatterPoint(
                    repository=repo.name,
                    list_age_days=dating.age_at(),
                    days_since_commit=repo.days_since_commit,
                    stars=repo.stars,
                    subtype=verdict.label.subtype,
                )
            )

    return PopularityResult(
        points=tuple(sorted(points, key=lambda point: -point.stars)),
        stars_forks_pearson=pearson(fixed_stars, fixed_forks),
        production_star_median=statistics.median(production_stars),
        production_500_plus=sum(1 for stars in production_stars if stars >= 500),
    )
