"""Artifact release: the datasets the paper published.

Section 3: "We make available our code for gathering, processing, and
analyzing the data discussed in this paper.  This, and our full
labelled dataset of repositories …".  This module writes the same
release bundle from the measured pipeline:

* ``repositories.csv`` — the labelled repository dataset (name, stars,
  forks, strategy, subtype, datability, list age, missing hostnames);
* ``suffix_schedule.csv`` — every harmful eTLD with its addition date
  and snapshot population;
* ``sweep.csv`` — the full per-version Figures 5-7 series;
* ``MANIFEST.json`` — row counts, world seed, and the headline numbers
  for integrity checking.

Plain ``csv``/``json`` stdlib output — the release must be readable
without this library installed.
"""

from __future__ import annotations

import csv
import json
import os

from repro.analysis.boundaries import SweepResult
from repro.analysis.context import ExperimentContext
from repro.analysis.harm import HarmResult
from repro.calibrate.suffixes import full_schedule
from repro.data import paper
from repro.webgraph.tables import sweep_table


def export_repositories(context: ExperimentContext, harm: HarmResult, path: str) -> int:
    """Write the labelled repository dataset; returns the row count."""
    missing_by_name = {row.name: row.missing_hostnames for row in harm.table3}
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["repository", "stars", "forks", "days_since_commit",
             "strategy", "subtype", "datable", "list_age_days", "missing_hostnames"]
        )
        count = 0
        for repo in context.corpus:
            verdict = context.classifications.get(repo.name)
            if verdict is None:
                continue
            dating = context.datings.get(repo.name)
            datable = dating is not None and dating.is_exact
            writer.writerow(
                [
                    repo.name,
                    repo.stars,
                    repo.forks,
                    repo.days_since_commit,
                    verdict.label.strategy.value,
                    verdict.label.subtype,
                    int(datable),
                    dating.age_at() if datable else "",
                    missing_by_name.get(repo.name, ""),
                ]
            )
            count += 1
    return count


def export_suffix_schedule(context: ExperimentContext, path: str) -> int:
    """Write the harmful-eTLD schedule; returns the row count."""
    schedule = full_schedule(context.seed)
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["suffix", "section", "addition_date", "age_days", "hostnames", "in_table2"]
        )
        for record in schedule:
            writer.writerow(
                [
                    record.suffix,
                    record.section.value,
                    record.addition_date.isoformat(),
                    record.age_days,
                    record.hostnames,
                    int(record.from_table2),
                ]
            )
    return len(schedule)


def export_sweep(sweep: SweepResult, path: str) -> int:
    """Write the per-version boundary series; returns the row count."""
    table = sweep_table(sweep.points)
    table.to_csv(path)
    return len(table)


def export_release(
    context: ExperimentContext, sweep: SweepResult, harm: HarmResult, directory: str
) -> dict[str, int]:
    """Write the full bundle; returns per-file row counts."""
    os.makedirs(directory, exist_ok=True)
    counts = {
        "repositories.csv": export_repositories(
            context, harm, os.path.join(directory, "repositories.csv")
        ),
        "suffix_schedule.csv": export_suffix_schedule(
            context, os.path.join(directory, "suffix_schedule.csv")
        ),
        "sweep.csv": export_sweep(sweep, os.path.join(directory, "sweep.csv")),
    }
    manifest = {
        "paper": "A First Look at the Privacy Harms of the Public Suffix List (IMC 2023)",
        "world_seed": context.seed,
        "rows": counts,
        "headline": {
            "missing_etlds": harm.missing_etld_count,
            "affected_hostnames": harm.affected_hostname_count,
            "paper_missing_etlds": paper.MISSING_ETLD_COUNT,
            "paper_affected_hostnames": paper.AFFECTED_HOSTNAME_COUNT,
        },
    }
    with open(os.path.join(directory, "MANIFEST.json"), "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=1)
    return counts
