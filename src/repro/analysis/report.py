"""Text renderers for every table and figure.

Each renderer takes a measured result and returns the same rows/series
the paper prints, as monospace text — the benchmark harness and the
``psl-repro`` CLI both route through these, so "regenerate Table 2"
means literally printing the table.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.age import AgeDistributions
from repro.analysis.boundaries import SweepResult
from repro.analysis.growth import GrowthSummary, yearly_points
from repro.analysis.harm import HarmResult
from repro.analysis.popularity import PopularityResult
from repro.analysis.taxonomy import TaxonomyResult
from repro.history.timeline import GrowthPoint


def _table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Minimal fixed-width table renderer."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for column, value in enumerate(row):
            widths[column] = max(widths[column], len(value))
    def render_row(row: Sequence[str]) -> str:
        return "  ".join(value.ljust(widths[column]) for column, value in enumerate(row)).rstrip()
    lines = [render_row(headers), render_row(["-" * width for width in widths])]
    lines.extend(render_row(row) for row in cells)
    return "\n".join(lines)


def render_figure2(summary: GrowthSummary, series: list[GrowthPoint]) -> str:
    """Figure 2 as a yearly series plus its headline numbers."""
    rows = [
        (
            point.date.isoformat(),
            point.total,
            point.by_components[0],
            point.by_components[1],
            point.by_components[2],
            point.by_components[3],
        )
        for point in yearly_points(series)
    ]
    header = (
        f"Figure 2 — PSL growth: {summary.first_rule_count} rules "
        f"({summary.first_date}) -> {summary.final_rule_count} ({summary.last_date}), "
        f"{summary.version_count} versions\n"
        f"Final component mix: "
        + ", ".join(
            f"{share:.1%} {label}"
            for share, label in zip(summary.final_component_share, ("1-part", "2-part", "3-part", "4+-part"))
        )
        + (
            f"\nLargest spike: +{summary.largest_spike[1]} rules on {summary.largest_spike[0]}"
            if summary.largest_spike
            else ""
        )
    )
    return header + "\n\n" + _table(("date", "total", "1", "2", "3", "4+"), rows)


def render_table1(result: TaxonomyResult) -> str:
    """Table 1 in the paper's layout."""
    rows = []
    for row in result.rows:
        label = row.strategy.capitalize() if row.subtype is None else f"  {row.subtype}"
        rows.append((label, row.count, f"{row.share:.1%}"))
    return (
        f"Table 1 — {result.total} projects using the Public Suffix List\n\n"
        + _table(("Category", "Projects", "Share"), rows)
    )


def render_figure3(distributions: AgeDistributions) -> str:
    """Figure 3's medians and per-strategy datable counts."""
    rows = [
        (strategy, len(ages), f"{distributions.median(strategy):.0f}")
        for strategy, ages in sorted(distributions.by_strategy.items())
        if ages
    ]
    rows.append(("all", len(distributions.all_ages), f"{distributions.median():.0f}"))
    return "Figure 3 — age of vendored lists (days at t=2022-12-08)\n\n" + _table(
        ("strategy", "datable repos", "median age"), rows
    )


def render_figure4(result: PopularityResult, limit: int = 12) -> str:
    """Figure 4's scatter (top markers) and supporting stats."""
    rows = [
        (point.repository, point.subtype, point.list_age_days, point.days_since_commit, point.stars)
        for point in result.points[:limit]
    ]
    header = (
        "Figure 4 — fixed projects: list age vs. activity vs. popularity\n"
        f"stars/forks Pearson = {result.stars_forks_pearson:.2f}; "
        f"production median stars = {result.production_star_median:.0f}; "
        f"production repos with 500+ stars = {result.production_500_plus}"
    )
    return header + "\n\n" + _table(
        ("repository", "type", "list age", "days since commit", "stars"), rows
    )


def _render_sweep(result: SweepResult, value: str, title: str) -> str:
    from repro.analysis.charts import render_series

    rows = [
        (point.date.isoformat(), getattr(point, value))
        for point in result.yearly()
    ]
    chart = render_series(
        "",
        [point.date.isoformat() for point in result.points],
        [getattr(point, value) for point in result.points],
    )
    return title + "\n" + chart + "\n\n" + _table(("date", value), rows)


def render_figure5(result: SweepResult) -> str:
    """Figure 5: sites formed per list version."""
    title = (
        f"Figure 5 — sites formed from {result.total_hostnames} hostnames\n"
        f"latest vs. first: +{result.additional_sites_latest_vs_first} sites"
    )
    return _render_sweep(result, "site_count", title)


def render_figure6(result: SweepResult) -> str:
    """Figure 6: third-party requests per list version."""
    title = f"Figure 6 — third-party requests (of {result.total_requests} total)"
    return _render_sweep(result, "third_party_requests", title)


def render_figure7(result: SweepResult) -> str:
    """Figure 7: hostnames grouped differently than under the newest list."""
    return _render_sweep(
        result, "diff_vs_latest", "Figure 7 — hostnames in different sites vs. newest list"
    )


def render_table2(result: HarmResult) -> str:
    """Table 2 plus the headline estimate."""
    rows = [
        (
            f"{row.etld} ({row.hostnames})",
            row.dependency,
            row.fixed_production,
            row.fixed_test_other,
            row.updated,
        )
        for row in result.table2
    ]
    header = (
        "Table 2 — largest eTLDs missing from fixed/production projects\n"
        f"Total: {result.missing_etld_count} eTLDs affecting "
        f"{result.affected_hostname_count} hostnames"
    )
    return header + "\n\n" + _table(("eTLD (hostnames)", "D", "Prd.", "T/O", "U"), rows)


def render_table3(result: HarmResult, limit: int | None = None) -> str:
    """Table 3: fixed-usage repositories."""
    rows = [
        (row.name, row.subtype, row.stars, row.forks, row.age_days, row.missing_hostnames)
        for row in (result.table3 if limit is None else result.table3[:limit])
    ]
    return "Table 3 — projects with fixed usage of the list\n\n" + _table(
        ("repository", "type", "stars", "forks", "list age (days)", "# missing hostnames"),
        rows,
    )
