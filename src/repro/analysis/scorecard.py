"""The reproduction scorecard: paper vs. measured, machine-generated.

EXPERIMENTS.md documents the reproduction's fidelity in prose; this
module computes the same comparison table from live pipeline output so
the claim "measured, not transcribed" is itself testable.  Every row
carries the paper's value, the measured value, and a verdict:

* ``exact``    — values equal;
* ``within``   — numeric values within the row's stated tolerance;
* ``shape``    — a qualitative shape claim that held;
* ``MISMATCH`` — the reproduction failed this row (tests fail on any).
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.analysis import growth, taxonomy
from repro.analysis.age import age_distributions
from repro.analysis.boundaries import SweepResult
from repro.analysis.context import ExperimentContext
from repro.analysis.harm import HarmResult
from repro.analysis.popularity import popularity
from repro.data import paper


@dataclass(frozen=True, slots=True)
class ScoreRow:
    """One scorecard line."""

    artifact: str
    quantity: str
    paper_value: str
    measured_value: str
    verdict: str  # "exact" | "within" | "shape" | "MISMATCH"


def _numeric_row(
    artifact: str,
    quantity: str,
    paper_value: float,
    measured_value: float,
    *,
    tolerance: float = 0.0,
) -> ScoreRow:
    difference = abs(measured_value - paper_value)
    if difference == 0:
        verdict = "exact"
    elif difference <= tolerance:
        verdict = "within"
    else:
        verdict = "MISMATCH"
    return ScoreRow(
        artifact=artifact,
        quantity=quantity,
        paper_value=f"{paper_value:,g}",
        measured_value=f"{measured_value:,g}",
        verdict=verdict,
    )


def _shape_row(artifact: str, quantity: str, held: bool, detail: str) -> ScoreRow:
    return ScoreRow(
        artifact=artifact,
        quantity=quantity,
        paper_value="(shape)",
        measured_value=detail,
        verdict="shape" if held else "MISMATCH",
    )


def build_scorecard(
    context: ExperimentContext,
    harm: HarmResult,
    figures_sweep: SweepResult | None = None,
) -> list[ScoreRow]:
    """Compute every scorecard row from live results.

    ``figures_sweep`` (the real-world-proportioned preset) enables the
    Figure 5-7 shape rows; without it only the exact rows are built.
    """
    rows: list[ScoreRow] = []

    from repro.analysis.figure1 import PAPER_V1_RULES, PAPER_V2_RULES, figure1
    from repro.psl.parser import parse_psl

    old_panel, new_panel = figure1(parse_psl(PAPER_V1_RULES), parse_psl(PAPER_V2_RULES))
    rows.append(_numeric_row("FIG1", "sites under PSL v1", 3, old_panel.site_count))
    rows.append(
        _numeric_row("FIG1", "mean domains/site under v1", 1.33, round(old_panel.mean_domains_per_site, 2))
    )
    rows.append(_numeric_row("FIG1", "sites under PSL v2", 4, new_panel.site_count))

    summary = growth.summarize(context.store)
    rows.append(_numeric_row("FIG2", "versions", paper.HISTORY_VERSION_COUNT, summary.version_count))
    rows.append(_numeric_row("FIG2", "rules at creation", paper.FIRST_RULE_COUNT, summary.first_rule_count))
    rows.append(_numeric_row("FIG2", "rules at 2017", paper.RULE_COUNT_2017, summary.rule_count_2017, tolerance=25))
    rows.append(_numeric_row("FIG2", "final rules", paper.FINAL_RULE_COUNT, summary.final_rule_count))
    if summary.largest_spike is not None:
        rows.append(_numeric_row("FIG2", "2012 JP burst", paper.JP_SPIKE_SIZE, summary.largest_spike[1], tolerance=25))

    table1 = taxonomy.table1(context.corpus)
    rows.append(_numeric_row("TAB1", "projects", paper.REPOSITORY_COUNT, table1.total))
    for strategy, subtypes in paper.TABLE1.items():
        rows.append(
            _numeric_row("TAB1", strategy, sum(subtypes.values()), table1.count_of(strategy))
        )

    ages = age_distributions(context)
    rows.append(_numeric_row("FIG3", "median age (all)", paper.MEDIAN_AGE_ALL, ages.median()))
    rows.append(_numeric_row("FIG3", "median age (updated)", paper.MEDIAN_AGE_UPDATED, ages.median("updated")))
    rows.append(_numeric_row("FIG3", "median age (fixed)", paper.MEDIAN_AGE_FIXED, ages.median("fixed")))

    pop = popularity(context)
    rows.append(
        _numeric_row("FIG4", "stars/forks Pearson", paper.STARS_FORKS_PEARSON, round(pop.stars_forks_pearson, 2))
    )
    rows.append(_numeric_row("FIG4", "production repos with 500+ stars", 5, pop.production_500_plus))
    rows.append(_numeric_row("FIG4", "production median stars", 60, pop.production_star_median))

    rows.append(_numeric_row("TAB2", "missing eTLDs", paper.MISSING_ETLD_COUNT, harm.missing_etld_count))
    rows.append(
        _numeric_row("TAB2", "affected hostnames", paper.AFFECTED_HOSTNAME_COUNT, harm.affected_hostname_count)
    )
    published = {row.etld: row for row in paper.TABLE2}
    cells_equal = all(
        (measured.hostnames, measured.dependency, measured.fixed_production,
         measured.fixed_test_other, measured.updated)
        == (
            published[measured.etld].hostnames,
            published[measured.etld].dependency,
            published[measured.etld].fixed_production,
            published[measured.etld].fixed_test_other,
            published[measured.etld].updated,
        )
        for measured in harm.table2
        if measured.etld in published
    ) and len(harm.table2) == len(published)
    rows.append(
        ScoreRow("TAB2", "all 15 rows, all columns", "75 cells", "75 cells" if cells_equal else "differs",
                 "exact" if cells_equal else "MISMATCH")
    )

    from repro.calibrate.suffixes import ANCHORS

    anchors = dict(ANCHORS)
    by_name = {row.name: row for row in harm.table3}
    anchor_hits = sum(
        1
        for row in paper.TABLE3
        if row.age_days in anchors
        and by_name.get(row.name) is not None
        and by_name[row.name].missing_hostnames == anchors[row.age_days]
    )
    rows.append(
        ScoreRow("TAB3", "missing-hostname anchor rows", "21", str(anchor_hits),
                 "exact" if anchor_hits >= 21 else "MISMATCH")
    )

    if figures_sweep is not None:
        by_year = {p.date.year: p for p in figures_sweep.yearly()}
        rows.append(
            _shape_row(
                "FIG5", "flat early, growth 2013-16, plateau",
                (by_year[2016].site_count - by_year[2013].site_count)
                > 3 * max(abs(by_year[2012].site_count - by_year[2007].site_count), 1)
                and (by_year[2022].site_count - by_year[2016].site_count)
                < (by_year[2016].site_count - by_year[2013].site_count) / 2,
                f"{by_year[2007].site_count}→{by_year[2013].site_count}→"
                f"{by_year[2016].site_count}→{by_year[2022].site_count} sites",
            )
        )
        rows.append(
            _shape_row(
                "FIG6", "early drop, 2014-22 rise",
                by_year[2013].third_party_requests < by_year[2007].third_party_requests
                and by_year[2022].third_party_requests > by_year[2014].third_party_requests,
                f"{by_year[2007].third_party_requests}→{by_year[2013].third_party_requests}"
                f"→{by_year[2022].third_party_requests} third-party",
            )
        )
        rows.append(
            _shape_row(
                "FIG7", "age-monotone, zero at newest",
                figures_sweep.latest.diff_vs_latest == 0
                and by_year[2007].diff_vs_latest >= 0.95 * max(p.diff_vs_latest for p in figures_sweep.yearly()),
                f"{by_year[2007].diff_vs_latest}→0 regrouped hostnames",
            )
        )
    return rows


def render_scorecard(rows: list[ScoreRow]) -> str:
    """The scorecard as a fixed-width table."""
    lines = [f"{'artifact':8s} {'quantity':36s} {'paper':>12s} {'measured':>24s}  verdict"]
    for row in rows:
        lines.append(
            f"{row.artifact:8s} {row.quantity:36s} {row.paper_value:>12s} "
            f"{row.measured_value:>24s}  {row.verdict}"
        )
    failures = sum(1 for row in rows if row.verdict == "MISMATCH")
    lines.append("")
    lines.append(
        f"{len(rows)} rows: {sum(1 for r in rows if r.verdict == 'exact')} exact, "
        f"{sum(1 for r in rows if r.verdict == 'within')} within tolerance, "
        f"{sum(1 for r in rows if r.verdict == 'shape')} shape, {failures} mismatches"
    )
    return "\n".join(lines)
