"""Table 1: open-source projects by usage type.

Runs the discovery search (filename match over the corpus), classifies
every hit, and tabulates the counts — the mechanized version of the
paper's manual examination of 273 repositories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.repos.classifier import classify
from repro.repos.model import PSL_FILENAME, Repository, Strategy
from repro.repos.search import SearchIndex


@dataclass(frozen=True, slots=True)
class TaxonomyRow:
    """One Table 1 line: a strategy or sub-type with its project count."""

    strategy: str
    subtype: str | None
    count: int
    share: float  # of all repositories using the list


@dataclass(frozen=True, slots=True)
class TaxonomyResult:
    """The measured Table 1."""

    total: int
    rows: tuple[TaxonomyRow, ...]

    def count_of(self, strategy: str, subtype: str | None = None) -> int:
        """Look one cell up (0 when absent)."""
        for row in self.rows:
            if row.strategy == strategy and row.subtype == subtype:
                return row.count
        return 0


def classify_corpus(repos: Iterable[Repository]) -> dict[str, tuple[Strategy, str]]:
    """Repository name -> (strategy, subtype) over discovered repos."""
    index = SearchIndex(repos)
    discovered = index.repositories_with_file(PSL_FILENAME)
    labels: dict[str, tuple[Strategy, str]] = {}
    for repo in discovered:
        verdict = classify(repo)
        if verdict is not None:
            labels[repo.name] = (verdict.label.strategy, verdict.label.subtype)
    return labels


def table1(repos: Iterable[Repository]) -> TaxonomyResult:
    """Regenerate Table 1 from a corpus."""
    labels = classify_corpus(repos)
    total = len(labels)
    by_strategy: dict[Strategy, int] = {}
    by_subtype: dict[tuple[Strategy, str], int] = {}
    for strategy, subtype in labels.values():
        by_strategy[strategy] = by_strategy.get(strategy, 0) + 1
        by_subtype[(strategy, subtype)] = by_subtype.get((strategy, subtype), 0) + 1

    rows: list[TaxonomyRow] = []
    for strategy in (Strategy.FIXED, Strategy.UPDATED, Strategy.DEPENDENCY):
        count = by_strategy.get(strategy, 0)
        rows.append(
            TaxonomyRow(strategy.value, None, count, count / total if total else 0.0)
        )
        for (candidate, subtype), sub_count in sorted(
            by_subtype.items(), key=lambda item: (-item[1], item[0][1])
        ):
            if candidate is strategy:
                rows.append(
                    TaxonomyRow(
                        strategy.value,
                        subtype,
                        sub_count,
                        sub_count / total if total else 0.0,
                    )
                )
    return TaxonomyResult(total=total, rows=tuple(rows))
