"""Update-failure staleness model (extension of paper Section 4).

The paper ranks the *updated* sub-strategies by risk: build-time
updaters keep whatever the last release shipped, user applications
refresh on every restart, server daemons "rarely obtain updated
versions".  This module turns that qualitative ranking into a
quantitative model: given per-strategy refresh cadences and a fetch
failure probability, simulate each project's effective list age over a
horizon and compare against the fixed strategy's certain staleness.

Deterministic (seeded), so the accompanying ablation bench and the
tests can assert the ordering the paper asserts.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class StrategyModel:
    """Refresh behaviour for one integration strategy."""

    name: str
    refresh_interval_days: int | None  # None: never refreshes (fixed)
    fallback_age_days: int  # age of the bundled copy at day 0


DEFAULT_MODELS: tuple[StrategyModel, ...] = (
    # Bundled-copy ages default to the paper's medians per strategy.
    StrategyModel("fixed", None, 825),
    StrategyModel("updated/build", 180, 915),   # refreshed per release
    StrategyModel("updated/user", 3, 915),      # refreshed on restart
    StrategyModel("updated/server", 365, 915),  # rarely restarted
)


@dataclass(frozen=True, slots=True)
class StalenessOutcome:
    """Simulated effective list age for one strategy."""

    strategy: str
    mean_age_days: float
    p95_age_days: float
    worst_age_days: int
    refreshes_attempted: int
    refreshes_failed: int


def simulate_strategy(
    model: StrategyModel,
    *,
    horizon_days: int = 730,
    failure_probability: float = 0.1,
    seed: int = 7,
) -> StalenessOutcome:
    """Walk the horizon day by day, refreshing on the model's cadence.

    A successful refresh resets the effective age to zero; a failed one
    silently keeps the previous copy — the paper's "attempting to
    automatically update the list but failing and continuing to
    function without an error".
    """
    # String seeding is deterministic across processes (unlike str hash).
    rng = random.Random(f"{seed}:{model.name}")
    age = model.fallback_age_days
    ages: list[int] = []
    attempted = failed = 0
    for day in range(horizon_days):
        if model.refresh_interval_days is not None and day % model.refresh_interval_days == 0:
            attempted += 1
            if rng.random() < failure_probability:
                failed += 1
            else:
                age = 0
        ages.append(age)
        age += 1
    ages_sorted = sorted(ages)
    return StalenessOutcome(
        strategy=model.name,
        mean_age_days=statistics.fmean(ages),
        p95_age_days=float(ages_sorted[int(len(ages_sorted) * 0.95)]),
        worst_age_days=max(ages),
        refreshes_attempted=attempted,
        refreshes_failed=failed,
    )


def compare_strategies(
    models: tuple[StrategyModel, ...] = DEFAULT_MODELS,
    *,
    horizon_days: int = 730,
    failure_probability: float = 0.1,
    seed: int = 7,
) -> list[StalenessOutcome]:
    """Simulate every strategy; sorted best (freshest) first."""
    outcomes = [
        simulate_strategy(
            model,
            horizon_days=horizon_days,
            failure_probability=failure_probability,
            seed=seed,
        )
        for model in models
    ]
    outcomes.sort(key=lambda outcome: outcome.mean_age_days)
    return outcomes
