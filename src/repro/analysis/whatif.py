"""Counterfactual remediation analysis (extension).

The paper quantifies the harm of the status quo; this module answers
the natural follow-up: *how much of it goes away under a given
remediation policy?*  Policies are expressed as a maximum allowed list
age; a project complying with the policy vendors a list no older than
that, so the hostnames still misclassified are exactly those under
suffixes younger than the cap — read straight off the version sweep.

Used by tests and the ``ext-updates`` story: the marginal return of
refreshing monthly vs. yearly vs. never is the curve the paper's
recommendations implicitly argue about.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

from repro.analysis.boundaries import SweepResult
from repro.data import paper


@dataclass(frozen=True, slots=True)
class PolicyOutcome:
    """Residual harm under one maximum-age policy."""

    max_age_days: int
    residual_misclassified_hostnames: int
    removed_misclassified_hostnames: int

    @property
    def removal_fraction(self) -> float:
        total = self.residual_misclassified_hostnames + self.removed_misclassified_hostnames
        if total == 0:
            return 1.0
        return self.removed_misclassified_hostnames / total


def residual_harm(sweep: SweepResult, max_age_days: int) -> int:
    """Misclassified hostnames for a list exactly ``max_age_days`` old.

    The policy's worst-compliant project vendors the newest version at
    or before (t − max_age_days); its misclassification count is the
    sweep's diff-vs-latest at that version.
    """
    cutoff = paper.MEASUREMENT_DATE - datetime.timedelta(days=max_age_days)
    return sweep.at_date(cutoff).diff_vs_latest


def policy_curve(
    sweep: SweepResult,
    *,
    max_ages: tuple[int, ...] = (30, 90, 180, 365, 730, 1095, 1460, 2070),
) -> list[PolicyOutcome]:
    """Residual harm across a ladder of refresh policies.

    The baseline is the status quo: every project keeps its current
    list (the oldest studied production list, 2,070 days).
    """
    baseline = residual_harm(sweep, max(max_ages))
    outcomes = []
    for max_age in sorted(max_ages):
        residual = residual_harm(sweep, max_age)
        outcomes.append(
            PolicyOutcome(
                max_age_days=max_age,
                residual_misclassified_hostnames=residual,
                removed_misclassified_hostnames=max(0, baseline - residual),
            )
        )
    return outcomes


def render_policy_curve(outcomes: list[PolicyOutcome]) -> str:
    """A small table: policy -> residual harm -> share removed."""
    lines = ["max list age   residual misclassified   harm removed"]
    for outcome in outcomes:
        lines.append(
            f"{outcome.max_age_days:>9d} d   {outcome.residual_misclassified_hostnames:>18,d}"
            f"   {outcome.removal_fraction:>11.1%}"
        )
    return "\n".join(lines)
