"""Calibration of the synthetic substrates against the paper's tables.

The paper's published numbers over-determine large parts of the
synthetic world.  Given Table 3's list-age vector for fixed-usage
repositories, each Table 2 eTLD's "projects missing the rule" counts
pin its list-addition date to a narrow window; the Figure 3 medians pin
the updated- and dependency-strategy age vectors; and the headline
(1,313 eTLDs / 50,750 hostnames) together with Table 3's per-repository
missing-hostname anchors pins how the remaining ~1,300 missing eTLDs
and their snapshot populations spread over time.

This package solves those constraints deterministically:

* :mod:`repro.calibrate.intervals` — counting-constraint primitives;
* :mod:`repro.calibrate.suffixes` — the calibrated suffix schedule
  (Table 2 rows exactly, plus 1,298 synthesized remainder eTLDs);
* :mod:`repro.calibrate.ages` — vendored-list age vectors per
  integration strategy;
* :mod:`repro.calibrate.words` — the deterministic name generator.

Everything downstream (history synthesis, the repository corpus, the
web snapshot) consumes these outputs, which is what makes the
regenerated tables match the paper instead of merely resembling it.
"""

from repro.calibrate.ages import (
    dependency_ages,
    fixed_ages,
    strategy_medians,
    updated_ages,
)
from repro.calibrate.suffixes import (
    CalibratedSuffix,
    full_schedule,
    remainder_suffixes,
    table2_suffixes,
    verify_schedule,
)

__all__ = [
    "CalibratedSuffix",
    "dependency_ages",
    "fixed_ages",
    "full_schedule",
    "remainder_suffixes",
    "strategy_medians",
    "table2_suffixes",
    "updated_ages",
    "verify_schedule",
]
