"""Calibrated vendored-list age vectors per integration strategy.

Fixed-strategy ages come straight from Table 3.  The paper reports the
updated and dependency strategies only in aggregate — the Figure 3
medians (915 updated, 871 across all repositories) and the Table 2
*U* and *D* count columns — so those vectors are reconstructed to
satisfy every published constraint simultaneously:

* ``count(ages > suffix_age)`` matches Table 2's U and D columns for
  each calibrated suffix age;
* the updated vector's median is 915 days;
* the combined (fixed + updated + dependency) median is 871 days.

The constraints leave slack only in how many repositories are *datable*
at all (the paper computes ages "where [they] can be obtained"); the
counts below — 23 of 35 updated, 81 of 170 dependency — are the values
that make the medians land exactly.
"""

from __future__ import annotations

import statistics

from repro.data import paper

# Updated strategy: 23 datable of 35.  Below each value's role:
#   9 values <= 450          (newer than every Table 2 suffix)
#   1 in (450, 700]
#   4 in (710, 990]          (positions 11-14; position 12 is the median)
#   2 in (990, 1050]
#   2 in (1150, 1240]
#   1 in (1250, 1400]
#   2 in (1410, 1930]
#   2 beyond every calibrated suffix age
UPDATED_AGES: tuple[int, ...] = (
    45, 80, 120, 160, 200, 250, 300, 360, 430,
    600,
    800, 915, 940, 960,
    1010, 1030,
    1180, 1200,
    1300,
    1500, 1700,
    2100, 2400,
)

# Dependency strategy: 81 datable of 170.  35 values <= 450 plus the
# interval populations required by Table 2's D column; one value is
# exactly 871 so the combined median lands on the paper's figure.
DEPENDENCY_AGES: tuple[int, ...] = (
    # 35 recent vendored copies (libraries updated within ~15 months).
    30, 45, 60, 75, 90, 105, 120, 135, 150, 165,
    180, 195, 210, 225, 240, 255, 270, 285, 300, 315,
    330, 345, 355, 365, 375, 385, 395, 405, 415, 420,
    425, 430, 435, 440, 445,
    # (450, 700]: 2
    550, 650,
    # (710, 990]: 9 (one pinned at the global median, 871)
    730, 780, 820, 871, 880, 900, 930, 950, 980,
    # (990, 1050]: 1
    1020,
    # (1050, 1150]: 2
    1080, 1120,
    # (1150, 1240]: 4
    1160, 1180, 1210, 1230,
    # (1250, 1400]: 5
    1260, 1290, 1320, 1360, 1390,
    # (1410, 1930]: 10
    1450, 1500, 1550, 1600, 1650, 1700, 1750, 1800, 1850, 1900,
    # beyond every calibrated suffix age: 13 (ancient vendored JREs)
    1960, 2000, 2050, 2100, 2150, 2200, 2250, 2300, 2350, 2400,
    2450, 2500, 2600,
)


def fixed_ages() -> tuple[int, ...]:
    """Table 3's age vector: the 47 datable fixed-strategy repositories."""
    return paper.table3_ages()


def updated_ages() -> tuple[int, ...]:
    """The 23 datable updated-strategy fallback-list ages."""
    return UPDATED_AGES


def dependency_ages() -> tuple[int, ...]:
    """The 81 datable dependency-vendored list ages."""
    return DEPENDENCY_AGES


def all_ages() -> tuple[int, ...]:
    """Every datable repository age, across strategies."""
    return fixed_ages() + updated_ages() + dependency_ages()


def undatable_counts() -> dict[str, int]:
    """Repositories whose vendored list cannot be matched to a version."""
    totals = paper.table1_totals()
    return {
        "fixed": totals["fixed"] - len(fixed_ages()),
        "updated": totals["updated"] - len(UPDATED_AGES),
        "dependency": totals["dependency"] - len(DEPENDENCY_AGES),
    }


def strategy_medians() -> dict[str, float]:
    """Median ages per strategy plus the combined median (Figure 3)."""
    return {
        "fixed": statistics.median(fixed_ages()),
        "updated": statistics.median(updated_ages()),
        "dependency": statistics.median(dependency_ages()),
        "all": statistics.median(all_ages()),
    }
