"""Counting-constraint primitives for calibration.

The recurring shape: given thresholds ``t_1 < t_2 < … < t_k`` and
targets ``c_i = |{v : v > t_i}|``, construct (or verify) a value
multiset.  Because the targets come from the paper's published counts,
feasibility requires ``c_i`` non-increasing in ``t_i``; the helpers
raise loudly if the embedded data ever violates that, rather than
producing a silently-miscalibrated corpus.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def count_above(values: Iterable[int], threshold: int) -> int:
    """How many values strictly exceed ``threshold``."""
    return sum(1 for value in values if value > threshold)


def verify_count_constraints(
    values: Iterable[int], constraints: Sequence[tuple[int, int]]
) -> list[str]:
    """Check ``count_above`` targets; return human-readable violations.

    An empty return value means every constraint holds — the form the
    tests assert on so failures print exactly what drifted.
    """
    snapshot = list(values)
    problems: list[str] = []
    for threshold, expected in constraints:
        actual = count_above(snapshot, threshold)
        if actual != expected:
            problems.append(
                f"count(values > {threshold}) = {actual}, expected {expected}"
            )
    return problems


def spread(low: int, high: int, count: int) -> list[int]:
    """``count`` integers spread evenly across the open interval (low, high).

    Deterministic, strictly inside the interval, non-decreasing, and
    tolerant of narrow intervals (values may repeat when the interval
    has fewer integers than ``count``).
    """
    if count <= 0:
        return []
    width = high - low
    if width <= 1:
        raise ValueError(f"interval ({low}, {high}) has no interior integers")
    step = width / (count + 1)
    values = []
    for position in range(1, count + 1):
        value = low + max(1, min(width - 1, round(position * step)))
        values.append(value)
    return values


def quantized_spread(low: int, high: int, count: int, *, grid: int = 7) -> list[int]:
    """``count`` integers in (low, high), restricted to a coarse grid.

    The grid keeps the number of *distinct* values small: the history
    synthesizer must mint one list version per distinct calibrated
    date, and a weekly grid keeps that well inside the paper's 1,142
    version budget.  Values are assigned round-robin over the grid
    positions so populations spread across the whole interval.
    """
    if count <= 0:
        return []
    positions = list(range(low + 1, high, grid))
    if not positions:
        raise ValueError(f"interval ({low}, {high}) has no interior integers")
    return [positions[index % len(positions)] for index in range(count)]


def partition_total(total: int, weights: Sequence[float]) -> list[int]:
    """Split ``total`` into integer parts proportional to ``weights``.

    Largest-remainder rounding: parts sum exactly to ``total`` and are
    individually within one of the exact proportional share.
    """
    if total < 0:
        raise ValueError("total must be non-negative")
    weight_sum = sum(weights)
    if weight_sum <= 0:
        raise ValueError("weights must have positive sum")
    exact = [total * weight / weight_sum for weight in weights]
    parts = [int(value) for value in exact]
    shortfall = total - sum(parts)
    remainders = sorted(
        range(len(weights)), key=lambda i: exact[i] - parts[i], reverse=True
    )
    for index in remainders[:shortfall]:
        parts[index] += 1
    return parts


def zipf_counts(total: int, count: int, *, cap: int, exponent: float = 1.1) -> list[int]:
    """``count`` positive integers summing to ``total``, Zipf-shaped.

    Used for per-eTLD hostname populations: a few busy suffixes, a long
    tail of single-hostname ones.  Every part is at least 1 and at most
    ``cap``; surplus from capping is pushed down the tail.
    """
    if count <= 0:
        if total != 0:
            raise ValueError("cannot place a positive total in zero parts")
        return []
    if total < count:
        raise ValueError(f"total {total} too small for {count} parts of at least 1")
    weights = [1.0 / (rank**exponent) for rank in range(1, count + 1)]
    parts = partition_total(total - count, weights)
    counts = [1 + part for part in parts]
    # Enforce the cap, redistributing the excess to the smallest parts.
    excess = 0
    for index, value in enumerate(counts):
        if value > cap:
            excess += value - cap
            counts[index] = cap
    index = len(counts) - 1
    while excess > 0 and index >= 0:
        room = cap - counts[index]
        take = min(room, excess)
        counts[index] += take
        excess -= take
        index -= 1
    if excess > 0:
        raise ValueError(f"cap {cap} infeasible: {excess} hostnames unplaced")
    return counts
