"""Printable derivation of the calibration (documentation-as-code).

docs/calibration.md explains the constraint solving in prose; this
module *prints the actual derivation* from the embedded data, so the
windows and choices can be audited (and the tests can assert the prose
still matches the arithmetic).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.calibrate.ages import dependency_ages, updated_ages
from repro.calibrate.intervals import count_above
from repro.calibrate.suffixes import TABLE2_AGES
from repro.data import paper


@dataclass(frozen=True, slots=True)
class WindowDerivation:
    """The age window one Table 2 row's Prd count forces."""

    etld: str
    prd_count: int
    window_low: int
    window_high: int
    chosen_age: int

    @property
    def feasible(self) -> bool:
        return self.window_low <= self.chosen_age < self.window_high


def derive_windows() -> list[WindowDerivation]:
    """Re-derive every Table 2 age window from the production ages."""
    production = sorted(paper.table3_ages("production"), reverse=True)
    derivations: list[WindowDerivation] = []
    for row in paper.TABLE2:
        k = row.fixed_production
        # count(age > a) == k  <=>  a in [p_{k+1}, p_k)
        high = production[k - 1] if k >= 1 else 10**9
        low = production[k] if k < len(production) else 0
        derivations.append(
            WindowDerivation(
                etld=row.etld,
                prd_count=k,
                window_low=low,
                window_high=high,
                chosen_age=TABLE2_AGES[row.etld],
            )
        )
    return derivations


def verify_derivation() -> list[str]:
    """Check every chosen age sits in its window and reproduces all
    four count columns; returns human-readable violations."""
    problems: list[str] = []
    production = paper.table3_ages("production")
    test_other = paper.table3_ages("test") + paper.table3_ages("other")
    for derivation in derive_windows():
        if not derivation.feasible:
            problems.append(
                f"{derivation.etld}: chosen age {derivation.chosen_age} outside "
                f"[{derivation.window_low}, {derivation.window_high})"
            )
    for row in paper.TABLE2:
        age = TABLE2_AGES[row.etld]
        checks = (
            ("Prd", count_above(production, age), row.fixed_production),
            ("T/O", count_above(test_other, age), row.fixed_test_other),
            ("U", count_above(updated_ages(), age), row.updated),
            ("D", count_above(dependency_ages(), age), row.dependency),
        )
        for column, measured, expected in checks:
            if measured != expected:
                problems.append(f"{row.etld} {column}: {measured} != {expected}")
    return problems


def render_derivation() -> str:
    """The derivation as a table (the docs/calibration.md §1 table,
    generated instead of typed)."""
    lines = ["eTLD                     Prd   window (days)      chosen"]
    for derivation in derive_windows():
        lines.append(
            f"{derivation.etld:24s} {derivation.prd_count:>3d}   "
            f"[{derivation.window_low:>4d}, {derivation.window_high:>4d})   "
            f"{derivation.chosen_age:>6d}"
        )
    return "\n".join(lines)
