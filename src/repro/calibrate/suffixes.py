"""The calibrated suffix-addition schedule.

Two populations of "missing eTLDs" (suffix rules added to the list
after some studied project vendored its copy):

* the **Table 2 fifteen** — real operators named by the paper.  Each
  row's *Fixed Prd.* count pins the suffix's addition age to a window
  of the production-repository age vector; the *T/O* counts narrow it
  further.  The ages chosen here satisfy every window simultaneously
  (the paper's published counts turn out to be jointly consistent).
* the **remainder 1,298** — synthesized suffixes whose ages and
  snapshot populations interpolate the per-repository missing-hostname
  anchors of Table 3, so that the headline (1,313 eTLDs affecting
  50,750 hostnames) and the anchor repositories' own missing counts
  reproduce exactly.

Ages are in days before :data:`repro.data.paper.MEASUREMENT_DATE`.
"""

from __future__ import annotations

import datetime
import random
from dataclasses import dataclass

from repro.calibrate import intervals
from repro.calibrate.words import unique_names
from repro.data import paper
from repro.data.private_suffixes import TABLE2_SUFFIXES, all_known
from repro.psl.rules import Section

# Addition ages for the Table 2 suffixes (days before MEASUREMENT_DATE),
# chosen inside the windows derived from the production age vector.  The
# derivation is verified, not trusted: ``verify_schedule`` recomputes
# every Table 2 count column from these ages and the age vectors.
TABLE2_AGES: dict[str, int] = {
    "digitaloceanspaces.com": 450,
    "myshopify.com": 700,
    "smushcdn.com": 710,
    "netlify.app": 990,
    "r.appspot.com": 1050,
    "altervista.org": 1150,
    "web.app": 1240,
    "carrd.co": 1250,
    "readthedocs.io": 1400,
    "lpages.co": 1410,
    "sp.gov.br": 1930,
    "mg.gov.br": 1935,
    "pr.gov.br": 1940,
    "rs.gov.br": 1945,
    "sc.gov.br": 1950,
}

# Monotone missing-hostname anchors from Table 3: (list age, hostnames
# missing).  A handful of published rows deviate from any monotone curve
# (they vendor non-standard list variants; see EXPERIMENTS.md) and are
# excluded here.
ANCHORS: tuple[tuple[int, int], ...] = (
    (31, 0),
    (162, 1),
    (188, 1),
    (296, 224),
    (376, 3966),
    (529, 8166),
    (644, 9228),
    (664, 9230),
    (746, 21494),
    (750, 21576),
    (1113, 27685),
    (1217, 29974),
    (1596, 36326),
    (1778, 36936),
    (1791, 36966),
    (1927, 37739),
    (2070, paper.AFFECTED_HOSTNAME_COUNT),
)

REMAINDER_COUNT = paper.MISSING_ETLD_COUNT - len(paper.TABLE2)
REMAINDER_HOSTNAMES = paper.AFFECTED_HOSTNAME_COUNT - paper.table2_hostname_total()

# Remainder populations stay strictly below the smallest Table 2 row so
# the paper's top-15 really is the top 15 in the regenerated table.
_REMAINDER_CAP = min(row.hostnames for row in paper.TABLE2) - 14

_ICANN_REMAINDER_SHARE = 0.1

# No rule can be younger than the last list version (2022-10-20); ages
# are measured at 2022-12-08.
_MIN_AGE = (paper.MEASUREMENT_DATE - paper.HISTORY_LAST_DATE).days


@dataclass(frozen=True, slots=True)
class CalibratedSuffix:
    """One missing eTLD with its calibrated age and snapshot population."""

    suffix: str
    section: Section
    age_days: int
    hostnames: int
    organization: str
    arbitrary_content: bool
    from_table2: bool

    @property
    def addition_date(self) -> datetime.date:
        """The date the rule joins the synthetic list history."""
        return paper.MEASUREMENT_DATE - datetime.timedelta(days=self.age_days)


def table2_suffixes() -> list[CalibratedSuffix]:
    """The fifteen Table 2 eTLDs with calibrated ages."""
    metadata = {record.suffix: record for record in TABLE2_SUFFIXES}
    results: list[CalibratedSuffix] = []
    for row in paper.TABLE2:
        record = metadata[row.etld]
        section = Section.ICANN if row.etld.endswith(".gov.br") else Section.PRIVATE
        results.append(
            CalibratedSuffix(
                suffix=row.etld,
                section=section,
                age_days=TABLE2_AGES[row.etld],
                hostnames=row.hostnames,
                organization=record.organization,
                arbitrary_content=record.arbitrary_content,
                from_table2=True,
            )
        )
    return results


def _interval_masses() -> list[tuple[int, int, int]]:
    """(low, high, remainder hostname mass) per anchor interval.

    Mass is the anchor curve's increment minus the Table 2 hostnames
    whose calibrated age falls inside the interval.
    """
    table2 = table2_suffixes()
    masses: list[tuple[int, int, int]] = []
    for (low, low_mass), (high, high_mass) in zip(ANCHORS, ANCHORS[1:]):
        mass = high_mass - low_mass
        if mass < 0:
            raise ValueError(f"anchor curve not monotone at age {high}")
        inside = sum(
            record.hostnames for record in table2 if low < record.age_days <= high
        )
        remainder = mass - inside
        if remainder < 0:
            raise ValueError(
                f"Table 2 mass {inside} exceeds anchor increment {mass} in ({low}, {high}]"
            )
        masses.append((low, high, remainder))
    total = sum(mass for _, _, mass in masses)
    if total != REMAINDER_HOSTNAMES:
        raise ValueError(
            f"anchor-implied remainder mass {total} != {REMAINDER_HOSTNAMES}"
        )
    return masses


def _allocate_counts(masses: list[tuple[int, int, int]]) -> list[int]:
    """Split the 1,298 remainder eTLDs across intervals.

    Proportional to hostname mass, but clamped so every non-empty
    interval hosts at least one eTLD and no interval hosts more eTLDs
    than it has hostnames.
    """
    weights = [float(mass) for _, _, mass in masses]
    counts = intervals.partition_total(REMAINDER_COUNT, [w or 1e-9 for w in weights])
    for index, (_, _, mass) in enumerate(masses):
        if mass == 0:
            counts[index] = 0
        else:
            counts[index] = max(1, min(mass, counts[index]))
    # Rebalance rounding drift onto the intervals with the most headroom.
    drift = REMAINDER_COUNT - sum(counts)
    order = sorted(
        range(len(masses)), key=lambda i: masses[i][2] - counts[i], reverse=drift > 0
    )
    position = 0
    while drift != 0 and position < len(order) * 4:
        index = order[position % len(order)]
        _, _, mass = masses[index]
        if drift > 0 and counts[index] < mass:
            counts[index] += 1
            drift -= 1
        elif drift < 0 and counts[index] > (1 if mass else 0):
            counts[index] -= 1
            drift += 1
        position += 1
    if drift != 0:
        raise ValueError("could not allocate remainder eTLD counts")
    return counts


def _remainder_names(rng: random.Random, count: int) -> list[tuple[str, Section, str]]:
    """Generate (suffix, section, organization) triples for remainders.

    Names are collision-checked against every known real suffix, the
    Table 2 suffixes, and each other.
    """
    taken: set[str] = {record.suffix for record in all_known()}
    taken.update(record.suffix for record in TABLE2_SUFFIXES)
    label_pool: set[str] = set()
    labels = unique_names(rng, label_pool)
    results: list[tuple[str, Section, str]] = []
    icann_ccs = ("br", "in", "id", "th", "tr", "ar", "mx", "pl", "ua", "vn")
    while len(results) < count:
        label = next(labels)
        if rng.random() < _ICANN_REMAINDER_SHARE:
            cc = rng.choice(icann_ccs)
            suffix = f"{label}.{cc}"
            section = Section.ICANN
            organization = f"{cc} registry ({label})"
        else:
            tld = rng.choice(("com", "com", "io", "net", "co", "app", "dev", "cloud", "site"))
            suffix = f"{label}.{tld}"
            section = Section.PRIVATE
            organization = label.capitalize()
        if suffix in taken:
            continue
        taken.add(suffix)
        results.append((suffix, section, organization))
    return results


def remainder_suffixes(seed: int = 20230701) -> list[CalibratedSuffix]:
    """The 1,298 synthesized missing eTLDs, oldest windows last."""
    rng = random.Random(seed)
    masses = _interval_masses()
    counts = _allocate_counts(masses)
    names = _remainder_names(rng, REMAINDER_COUNT)
    results: list[CalibratedSuffix] = []
    cursor = 0
    for (low, high, mass), count in zip(masses, counts):
        if count == 0:
            continue
        populations = intervals.zipf_counts(mass, count, cap=_REMAINDER_CAP)
        ages = intervals.quantized_spread(max(low, _MIN_AGE), high, count)
        rng.shuffle(populations)
        for age, population in zip(ages, populations):
            suffix, section, organization = names[cursor]
            cursor += 1
            results.append(
                CalibratedSuffix(
                    suffix=suffix,
                    section=section,
                    age_days=age,
                    hostnames=population,
                    organization=organization,
                    arbitrary_content=section is Section.PRIVATE,
                    from_table2=False,
                )
            )
    return results


def full_schedule(seed: int = 20230701) -> list[CalibratedSuffix]:
    """All 1,313 missing eTLDs, sorted youngest first."""
    schedule = table2_suffixes() + remainder_suffixes(seed)
    schedule.sort(key=lambda record: (record.age_days, record.suffix))
    return schedule


def verify_schedule(schedule: list[CalibratedSuffix]) -> list[str]:
    """Re-derive the paper's headline constraints from a schedule.

    Returns human-readable violations (empty when fully calibrated).
    Checks: the eTLD and hostname totals, the Table 2 *Fixed Prd.* and
    *T/O* count columns against the Table 3 age vectors, and the
    missing-hostname anchors.
    """
    problems: list[str] = []
    if len(schedule) != paper.MISSING_ETLD_COUNT:
        problems.append(f"schedule has {len(schedule)} eTLDs, expected {paper.MISSING_ETLD_COUNT}")
    total = sum(record.hostnames for record in schedule)
    if total != paper.AFFECTED_HOSTNAME_COUNT:
        problems.append(f"schedule covers {total} hostnames, expected {paper.AFFECTED_HOSTNAME_COUNT}")

    production_ages = paper.table3_ages("production")
    test_other_ages = paper.table3_ages("test") + paper.table3_ages("other")
    by_suffix = {record.suffix: record for record in schedule}
    for row in paper.TABLE2:
        record = by_suffix.get(row.etld)
        if record is None:
            problems.append(f"{row.etld} missing from schedule")
            continue
        produced = intervals.count_above(production_ages, record.age_days)
        if produced != row.fixed_production:
            problems.append(
                f"{row.etld}: {produced} fixed/production projects miss it, paper says {row.fixed_production}"
            )
        test_other = intervals.count_above(test_other_ages, record.age_days)
        if test_other != row.fixed_test_other:
            problems.append(
                f"{row.etld}: {test_other} fixed/test-other projects miss it, paper says {row.fixed_test_other}"
            )

    for age, expected in ANCHORS:
        measured = sum(r.hostnames for r in schedule if r.age_days < age)
        if measured != expected:
            problems.append(
                f"missing hostnames for a {age}-day-old list: {measured}, anchor says {expected}"
            )
    return problems
