"""Deterministic name generation for synthetic suffixes and hostnames.

All synthetic names are built from an embedded vocabulary with a seeded
``random.Random``, so the whole world is reproducible from one integer.
The vocabulary skews toward hosting/SaaS vocabulary because that is
what the PSL's PRIVATE division actually looks like.
"""

from __future__ import annotations

import random
from typing import Callable, Iterator

ADJECTIVES: tuple[str, ...] = (
    "alpha", "amber", "apex", "aqua", "arc", "astro", "atlas", "aurora",
    "azure", "basalt", "beacon", "blaze", "bold", "breeze", "bright",
    "brisk", "cedar", "chrome", "cipher", "citrus", "clear", "cobalt",
    "comet", "coral", "cosmic", "crimson", "crystal", "delta", "drift",
    "dusk", "dynamo", "echo", "ember", "epic", "fable", "falcon", "fern",
    "flare", "flint", "flux", "forge", "frost", "gamma", "gale", "glade",
    "golden", "granite", "grove", "halo", "harbor", "haven", "hazel",
    "helio", "hyper", "indigo", "iron", "ivory", "jade", "jet", "juniper",
    "keen", "kinetic", "lagoon", "lark", "lateral", "lively", "lumen",
    "lunar", "lush", "magma", "maple", "marble", "meadow", "mellow",
    "meridian", "mesa", "mica", "midnight", "mint", "mirage", "misty",
    "modern", "mono", "morning", "mosaic", "neon", "nimbus", "noble",
    "north", "nova", "oak", "ocean", "onyx", "opal", "orbit", "origin",
    "osprey", "pale", "pearl", "pine", "pixel", "polar", "prime", "prism",
    "pulse", "quartz", "quiet", "rapid", "raven", "ridge", "river",
    "rogue", "royal", "ruby", "rustic", "sage", "scarlet", "shadow",
    "sierra", "silver", "sky", "slate", "solar", "sonic", "spark",
    "spruce", "stellar", "storm", "summit", "sunny", "swift", "terra",
    "thunder", "tidal", "topaz", "true", "tundra", "turbo", "twilight",
    "ultra", "umber", "urban", "vapor", "velvet", "verdant", "vertex",
    "violet", "vivid", "wander", "west", "wild", "willow", "winter",
    "zen", "zenith", "zephyr",
)

NOUNS: tuple[str, ...] = (
    "apps", "base", "bay", "bench", "bin", "block", "board", "boost",
    "box", "bridge", "builder", "cache", "cast", "cell", "chain",
    "channel", "charts", "city", "cloud", "cluster", "code", "commerce",
    "core", "craft", "dash", "data", "deck", "deploy", "desk", "dock",
    "docs", "domain", "drive", "edge", "engine", "farm", "feed", "field",
    "files", "flow", "folio", "force", "form", "forms", "forum", "frame",
    "front", "funnel", "gate", "grid", "guard", "hive", "host", "hosting",
    "hub", "kit", "lab", "labs", "landing", "launch", "layer", "ledger",
    "lens", "link", "list", "loft", "loop", "mail", "maker", "market",
    "mart", "mesh", "metrics", "mill", "mine", "net", "nest", "node",
    "notes", "pad", "pages", "panel", "park", "pass", "path", "pay",
    "peak", "pilot", "pipe", "plan", "platform", "play", "plaza", "point",
    "pool", "port", "portal", "post", "press", "print", "pro", "probe",
    "push", "rack", "radar", "rail", "ranch", "range", "reach", "relay",
    "rent", "repo", "rise", "road", "robot", "rocket", "room", "route",
    "scale", "scan", "scope", "script", "send", "serve", "shelf", "shell",
    "ship", "shop", "signal", "sites", "space", "spot", "spring", "stack",
    "stage", "station", "store", "storm", "stream", "studio", "suite",
    "sync", "table", "tap", "team", "tent", "test", "tide", "tier",
    "tools", "tower", "trace", "track", "trail", "tree", "vault", "view",
    "villa", "wall", "ware", "watch", "wave", "web", "well", "wharf",
    "wing", "wire", "works", "yard", "zone",
)

HOSTING_TLDS: tuple[str, ...] = (
    "com", "com", "com", "io", "io", "net", "co", "app", "dev", "cloud",
    "site", "org", "page",
)


def compound(rng: random.Random) -> str:
    """One deterministic compound label like ``cobaltpages``."""
    return rng.choice(ADJECTIVES) + rng.choice(NOUNS)


def unique_names(
    rng: random.Random,
    taken: set[str],
    builder: Callable[[random.Random], str] | None = None,
) -> Iterator[str]:
    """Yield distinct names, appending digits once compounds collide.

    ``taken`` is shared mutable state: names already used elsewhere in
    the synthetic world are never reissued.
    """
    make = builder or compound
    while True:
        name = make(rng)
        if name in taken:
            name = f"{name}{rng.randint(2, 99)}"
        if name in taken:
            continue
        taken.add(name)
        yield name
