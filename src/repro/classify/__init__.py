"""Bulk offline classification at HTTP-Archive scale.

The paper's headline numbers come from classifying 498M requests under
every historical PSL version.  This package is that workload tier for
the reproduction: a batch engine that streams request logs in columnar
chunks through multiprocess workers, each ``mmap``-ing the packed
``PSLPAK1`` history blob (:mod:`repro.psl.packed` — zero per-worker
copy), classifying every record under a configurable set of PSL
versions in one pass, and emitting per-version site and third-party
count tables plus a misclassification delta versus the latest list.

Layer map (each composes an existing platform layer):

* :mod:`repro.classify.columnar` — ingest: hostname-interned columnar
  chunks behind :func:`repro.net.hostname.normalize_or_reject`
  (malformed rows are counted-and-skipped, never abort a chunk), plus
  chunk *references* small enough to pickle to workers;
* :mod:`repro.classify.partials` — the worker: one chunk × all
  versions, spilling per-version site counters to disk delta-encoded
  so worker memory stays O(one version);
* :mod:`repro.classify.engine` — the driver over
  :class:`repro.runtime.ResilientExecutor` (retries, quarantine,
  chunk-granular checkpoint/resume) with a version-at-a-time merge;
* :mod:`repro.classify.stage` — the :mod:`repro.pipeline` wiring that
  makes classify outputs content-addressed, warm-reusable artifacts;
* :mod:`repro.classify.cli` — ``psl-classify``, including the
  ``--frontier`` scale harness.
"""

from repro.classify.columnar import (
    ColumnarChunk,
    SpooledChunkRef,
    SyntheticChunkRef,
    columnar_chunk,
    iter_columnar_chunks,
    spool_chunks,
)
from repro.classify.engine import (
    ClassifyEngine,
    ClassifyFailureReport,
    ClassifyResult,
    VersionRow,
    select_version_indexes,
)
from repro.classify.partials import ChunkPartial, ClassifyTask, SpillRef, classify_chunk
from repro.classify.stage import classify_pipeline, classify_stage

__all__ = [
    "ChunkPartial",
    "ClassifyEngine",
    "ClassifyFailureReport",
    "ClassifyResult",
    "ClassifyTask",
    "ColumnarChunk",
    "SpillRef",
    "SpooledChunkRef",
    "SyntheticChunkRef",
    "VersionRow",
    "classify_chunk",
    "classify_pipeline",
    "classify_stage",
    "columnar_chunk",
    "iter_columnar_chunks",
    "select_version_indexes",
    "spool_chunks",
]
