"""``psl-classify`` — bulk per-version classification from the shell.

One invocation classifies a synthetic request-log stream (the
deterministic generator in :mod:`repro.webgraph.requestlog`) under a
set of evenly spaced PSL versions and prints the per-version table.
The heavy input — the packed ``PSLPAK1`` history — comes from the
pipeline's content-addressed ``packed`` artifact when ``--cache-dir``
is given (packing the full history once costs ~85 s on this class of
host; every later run mmaps the cached blob in milliseconds), or is
packed in-process otherwise.

Scale harness: ``--frontier 1,3,10`` re-invokes this module once per
scale factor in a fresh subprocess (so each point's peak RSS is
honest), collects each run's ``--json`` stats, and prints the
records/s / memory frontier table that EXPERIMENTS.md records.

Exit status follows the repo convention: 0 clean, ``3`` when the run
completed degraded (quarantined chunks — counts cover the surviving
chunks only; see the runbook for how to resume such a run).
"""

from __future__ import annotations

import argparse
import csv
import json
import os
import resource
import subprocess
import sys
import tempfile
import time

from repro.classify.engine import ClassifyEngine, ClassifyResult, select_version_indexes
from repro.webgraph.requestlog import RequestLogConfig, record_count

#: Exit status when the run completed with quarantined chunks.
EXIT_DEGRADED = 3


def peak_rss_mb() -> float:
    """Peak resident set of this process tree, in MiB.

    ``ru_maxrss`` is KiB on Linux; children are included so worker
    pools count against the number the frontier reports.
    """
    own = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    children = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return (own + children) / 1024.0


def packed_artifact_path(seed: int, cache_dir: str | None, run_dir: str) -> str:
    """The on-disk packed history blob workers will mmap.

    With a cache directory, this is the pipeline's raw ``packed``
    artifact (built once, shared by every later run and by
    ``psl-serve --packed``).  Without one, the history is synthesized
    and packed in-process and the blob parked in the run directory.
    """
    if cache_dir is not None:
        from repro.analysis.context import SweepSettings, world_stages
        from repro.pipeline import ArtifactStore, Pipeline
        from repro.webgraph.synthesis import SnapshotConfig

        artifacts = ArtifactStore(cache_dir)
        pipeline = Pipeline(
            world_stages(seed, SnapshotConfig(seed=seed), SweepSettings()),
            store=artifacts,
        )
        pipeline.build("packed")
        path = artifacts.payload_path("packed", pipeline.fingerprint_of("packed"))
        if path is not None:
            return path
    from repro.history.synthesis import SynthesisConfig, synthesize_history
    from repro.psl.packed import pack_history
    from repro.runtime import atomic_write_bytes

    path = os.path.join(run_dir, "packed.bin")
    if not os.path.exists(path):
        os.makedirs(run_dir, exist_ok=True)
        atomic_write_bytes(path, pack_history(synthesize_history(SynthesisConfig(seed=seed))))
    return path


def write_csv(path: str, result: ClassifyResult) -> None:
    rows = [row.to_json() for row in result.rows]
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(rows[0]))
        writer.writeheader()
        writer.writerows(rows)


def run_frontier(arguments: argparse.Namespace) -> int:
    """Probe the scale frontier: one subprocess per scale factor."""
    scales = [float(token) for token in arguments.frontier.split(",") if token.strip()]
    print(f"{'scale':>7} {'records':>12} {'chunks':>7} {'elapsed':>9} "
          f"{'records/s':>11} {'peak MiB':>9} {'sites@latest':>13}")
    worst = 0
    for scale in scales:
        with tempfile.TemporaryDirectory(prefix="psl-classify-frontier-") as scratch:
            stats_path = os.path.join(scratch, "stats.json")
            command = [
                sys.executable, "-m", "repro.classify.cli",
                "--scale", repr(scale),
                "--seed", str(arguments.seed),
                "--versions", str(arguments.versions),
                "--workers", str(arguments.workers),
                "--malformed-rate", repr(arguments.malformed_rate),
                "--run-dir", os.path.join(scratch, "run"),
                "--json", stats_path,
                "--quiet",
            ]
            if arguments.cache_dir is not None:
                command += ["--cache-dir", arguments.cache_dir]
            if arguments.packed is not None:
                command += ["--packed", arguments.packed]
            status = subprocess.run(command).returncode
            if status != 0 or not os.path.exists(stats_path):
                print(f"{scale:>7g}  FAILED (exit {status}) — frontier reached")
                worst = status or 1
                break
            with open(stats_path, encoding="utf-8") as handle:
                stats = json.load(handle)
            latest = stats["rows"][-1]
            print(
                f"{scale:>7g} {stats['records']:>12,} {stats['chunks']:>7} "
                f"{stats['elapsed']:>8.1f}s {stats['records_per_second']:>11,.0f} "
                f"{stats['peak_rss_mb']:>9.0f} {latest['sites']:>13,}"
            )
    return worst


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="psl-classify",
        description="Classify a bulk synthetic request log under many PSL versions.",
    )
    parser.add_argument("--seed", type=int, default=20230701, help="world seed")
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="request-log scale factor (1.0 = 1M records; 10 = the 10M regime)",
    )
    parser.add_argument(
        "--records", type=int, default=None,
        help="exact record count (overrides the count --scale implies)",
    )
    parser.add_argument(
        "--malformed-rate", type=float, default=0.0005,
        help="fraction of records carrying a malformed endpoint (count-and-skip)",
    )
    parser.add_argument(
        "--versions", type=int, default=100,
        help="how many evenly spaced PSL versions to classify under",
    )
    parser.add_argument(
        "--baseline", type=int, default=-1,
        help="version index the misclassification delta is measured against",
    )
    parser.add_argument("--workers", type=int, default=1, help="worker processes")
    parser.add_argument(
        "--blocks-per-task", type=int, default=4,
        help="generation blocks per chunk (65,536 records each)",
    )
    parser.add_argument(
        "--run-dir", default=None,
        help="run state (checkpoints, spills); required for --resume, "
        "ephemeral when omitted",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="reuse checkpoints a previous run left in --run-dir",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="pipeline artifact store; the packed history is built once "
        "there and mmap-shared by every later run",
    )
    parser.add_argument(
        "--packed", default=None, metavar="PATH",
        help="an existing PSLPAK1 blob to classify against (skips the "
        "pipeline; overrides --cache-dir)",
    )
    parser.add_argument("--out", default=None, help="write the per-version table as CSV")
    parser.add_argument("--json", default=None, help="write full stats as JSON")
    parser.add_argument("--quiet", action="store_true", help="suppress the stdout table")
    parser.add_argument(
        "--frontier", default=None, metavar="SCALES",
        help="comma-separated scale factors: probe each in a fresh "
        "subprocess and print the throughput/memory frontier",
    )
    arguments = parser.parse_args(argv)
    if arguments.workers < 1:
        parser.error("--workers must be positive")
    if arguments.resume and arguments.run_dir is None:
        parser.error("--resume requires --run-dir")
    if arguments.frontier is not None:
        return run_frontier(arguments)

    scratch: tempfile.TemporaryDirectory | None = None
    run_dir = arguments.run_dir
    if run_dir is None:
        scratch = tempfile.TemporaryDirectory(prefix="psl-classify-")
        run_dir = scratch.name
    try:
        started = time.perf_counter()
        if arguments.packed is not None:
            packed = arguments.packed
        else:
            packed = packed_artifact_path(arguments.seed, arguments.cache_dir, run_dir)
        config = RequestLogConfig(
            seed=arguments.seed,
            scale=arguments.scale,
            records=arguments.records,
            malformed_rate=arguments.malformed_rate,
        )
        from repro.psl.packed import PackedHistory

        total_versions = len(PackedHistory.load(packed))
        engine = ClassifyEngine(
            packed,
            version_indexes=select_version_indexes(total_versions, arguments.versions),
            baseline=arguments.baseline,
            workers=arguments.workers,
            run_dir=run_dir,
            resume=arguments.resume,
        )
        if not arguments.quiet:
            print(
                f"classifying {record_count(config):,} records under "
                f"{len(engine.version_indexes)} of {total_versions} versions "
                f"(baseline v{engine.baseline_index}, {arguments.workers} workers)"
            )
        result = engine.run_synthetic(config, blocks_per_task=arguments.blocks_per_task)
        wall = time.perf_counter() - started

        if arguments.out is not None:
            write_csv(arguments.out, result)
        if arguments.json is not None:
            stats = result.to_json()
            stats["wall_seconds"] = round(wall, 3)
            stats["peak_rss_mb"] = round(peak_rss_mb(), 1)
            stats["scale"] = arguments.scale
            stats["workers"] = arguments.workers
            with open(arguments.json, "w", encoding="utf-8") as handle:
                json.dump(stats, handle, indent=1, sort_keys=True)
        if not arguments.quiet:
            print(result.summary())
            print(
                f"  wall {wall:.1f}s (run {result.elapsed:.1f}s), "
                f"peak rss {peak_rss_mb():.0f} MiB"
            )
        if result.degraded:
            if arguments.run_dir is None:
                print(
                    "hint: re-run with --run-dir and --resume to retry only "
                    "the quarantined chunks",
                    file=sys.stderr,
                )
            return EXIT_DEGRADED
        return 0
    finally:
        if scratch is not None:
            scratch.cleanup()


if __name__ == "__main__":
    sys.exit(main())
