"""Columnar request-log chunks: the classify engine's unit of work.

A raw request log is a stream of ``(page_host, request_host)`` string
pairs.  Classifying it under ~100 PSL versions would walk the trie
once per *endpoint occurrence* per version; real logs are heavily
Zipf-skewed, so the columnar form pays normalization and label
splitting once per **distinct** hostname per chunk and stores the
record structure as integer columns:

* ``hosts`` — distinct normalized hostnames, first-seen order;
* ``occurrences[i]`` — how many endpoint occurrences host ``i`` has
  (site counting is per-occurrence, matching
  :func:`repro.webgraph.stream.count_sites_streaming`);
* ``pages``/``requests`` — per valid record, indexes into ``hosts``.

Ingest admission is :func:`repro.net.hostname.normalize_or_reject`,
the same gate the serving and streaming layers use: a malformed
endpoint bumps ``skipped_hosts`` (and its record ``skipped_pairs``)
instead of aborting the chunk, with semantics chosen to be
bit-compatible with the streaming oracles — each valid endpoint still
counts as a hostname occurrence even when its partner is malformed,
exactly what :func:`count_sites_streaming` sees when fed the flattened
endpoint stream.

Workers receive chunk *references*, not chunks: a
:class:`SyntheticChunkRef` regenerates its records from the
deterministic generator (:mod:`repro.webgraph.requestlog`) so the task
pickle is a few hundred bytes at any scale; a :class:`SpooledChunkRef`
names a digest-verified pickle spooled by the parent for arbitrary
streams.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import pickle
from array import array
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.net.errors import HostnameError
from repro.net.hostname import normalize_or_reject
from repro.runtime.checkpoint import atomic_write_bytes
from repro.webgraph.requestlog import RequestLogConfig, iter_block


@dataclass(frozen=True, slots=True)
class ColumnarChunk:
    """One hostname-interned slice of a request log."""

    index: int
    hosts: tuple[str, ...]
    occurrences: array  # array("Q"), aligned with ``hosts``
    pages: array  # array("I"), host index per valid record
    requests: array  # array("I"), aligned with ``pages``
    skipped_hosts: int
    skipped_pairs: int

    @property
    def records(self) -> int:
        """Input records this chunk covers, malformed ones included."""
        return len(self.pages) + self.skipped_pairs

    @property
    def hostnames(self) -> int:
        """Valid endpoint occurrences (the site-counting total)."""
        return sum(self.occurrences)

    @property
    def task_id(self) -> str:
        return f"classify-{self.index}"

    def __len__(self) -> int:
        return self.records


def columnar_chunk(index: int, records: Iterable[tuple[str, str]]) -> ColumnarChunk:
    """Intern one record batch into a :class:`ColumnarChunk`.

    Normalization results are memoized per raw string for the chunk's
    lifetime, so Zipf-repeated hosts pay :func:`normalize_or_reject`
    once, not once per occurrence.
    """
    host_index: dict[str, int] = {}
    hosts: list[str] = []
    occurrences = array("Q")
    pages = array("I")
    requests = array("I")
    skipped_hosts = 0
    skipped_pairs = 0
    # Raw string -> host index, or -1 for malformed; covers both the
    # normalization and the intern lookup for repeated raw spellings.
    memo: dict[str, int] = {}

    def intern(raw: str) -> int:
        slot = memo.get(raw)
        if slot is None:
            try:
                name = normalize_or_reject(raw)
            except HostnameError:
                slot = -1
            else:
                slot = host_index.get(name)
                if slot is None:
                    slot = len(hosts)
                    host_index[name] = slot
                    hosts.append(name)
                    occurrences.append(0)
            memo[raw] = slot
        return slot

    for page, request in records:
        p = intern(page) if isinstance(page, str) else -1
        r = intern(request) if isinstance(request, str) else -1
        for slot in (p, r):
            if slot < 0:
                skipped_hosts += 1
            else:
                occurrences[slot] += 1
        if p < 0 or r < 0:
            skipped_pairs += 1
        else:
            pages.append(p)
            requests.append(r)
    return ColumnarChunk(
        index=index,
        hosts=tuple(hosts),
        occurrences=occurrences,
        pages=pages,
        requests=requests,
        skipped_hosts=skipped_hosts,
        skipped_pairs=skipped_pairs,
    )


def iter_columnar_chunks(
    records: Iterable[tuple[str, str]], chunk_records: int
) -> Iterator[ColumnarChunk]:
    """Cut a record stream into fixed-size columnar chunks.

    Every record lands in exactly one chunk and all downstream merges
    are commutative sums, so results are bit-identical for any
    ``chunk_records`` (the property tests pin this down, mirroring
    :mod:`repro.sweep.chunks`).
    """
    if chunk_records < 1:
        raise ValueError("chunk_records must be positive")
    iterator = iter(records)
    for index in itertools.count():
        batch = list(itertools.islice(iterator, chunk_records))
        if not batch:
            return
        yield columnar_chunk(index, batch)


@dataclass(frozen=True, slots=True)
class SyntheticChunkRef:
    """A chunk defined by generator coordinates — regenerated in the worker.

    ``block_count`` whole generation blocks starting at ``first_block``;
    because blocks are addressable by ``(config, block_index)`` alone,
    the chunk's records never depend on how many blocks ride in one
    task — the chunk-invariance the resume guarantee needs.
    """

    config: RequestLogConfig
    first_block: int
    block_count: int
    index: int

    @property
    def task_id(self) -> str:
        return f"classify-{self.index}"

    def load(self) -> ColumnarChunk:
        return columnar_chunk(
            self.index,
            itertools.chain.from_iterable(
                iter_block(self.config, block)
                for block in range(self.first_block, self.first_block + self.block_count)
            ),
        )


@dataclass(frozen=True, slots=True)
class SpooledChunkRef:
    """A chunk pickled to disk by the parent, digest-verified on load."""

    path: str
    digest: str
    nbytes: int
    index: int

    @property
    def task_id(self) -> str:
        return f"classify-{self.index}"

    def load(self) -> ColumnarChunk:
        with open(self.path, "rb") as handle:
            payload = handle.read()
        if len(payload) != self.nbytes or hashlib.sha256(payload).hexdigest() != self.digest:
            raise ValueError(f"spooled chunk {self.path} failed its digest check")
        chunk = pickle.loads(payload)
        if not isinstance(chunk, ColumnarChunk):
            raise ValueError(f"spooled chunk {self.path} is not a ColumnarChunk")
        return chunk


def spool_chunks(
    records: Iterable[tuple[str, str]], chunk_records: int, directory: str
) -> list[SpooledChunkRef]:
    """Columnarize a generic stream into digest-named spool files.

    The parent holds one chunk in memory at a time; workers get a
    :class:`SpooledChunkRef` each.  Re-spooling the same stream into
    the same directory rewrites identical files, so resumed runs see
    identical digests.
    """
    os.makedirs(directory, exist_ok=True)
    refs: list[SpooledChunkRef] = []
    for chunk in iter_columnar_chunks(records, chunk_records):
        payload = pickle.dumps(chunk, protocol=pickle.HIGHEST_PROTOCOL)
        path = os.path.join(directory, f"chunk-{chunk.index:06d}.bin")
        atomic_write_bytes(path, payload)
        refs.append(
            SpooledChunkRef(
                path=path,
                digest=hashlib.sha256(payload).hexdigest(),
                nbytes=len(payload),
                index=chunk.index,
            )
        )
    return refs
