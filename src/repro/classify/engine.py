"""The classify driver: fan-out, resilience, and the global merge.

:class:`ClassifyEngine` turns a request-log source into per-version
count tables by composing the platform layers:

* chunk planning mirrors :mod:`repro.sweep.chunks` — fixed-size chunks
  with stable task ids, every merge a commutative sum, so results are
  bit-identical for any chunk size or worker count;
* execution is :class:`repro.runtime.ResilientExecutor` — bounded
  retries, ``BrokenProcessPool`` recovery, poisoned-chunk quarantine,
  and chunk-granular checkpoint/resume keyed by a manifest fingerprint
  covering the source, the selected versions' packed-trie
  fingerprints, and the chunking (a resumed run can only reuse results
  bit-identical to what it would compute itself);
* the merge replays each chunk's delta-encoded spill against **one**
  global site counter, version at a time, so driver memory is O(one
  version's site universe) regardless of how many versions ran.

Per-version outputs reuse the streaming dataclasses
(:class:`~repro.webgraph.stream.StreamedSiteCounts`,
:class:`~repro.webgraph.stream.StreamedThirdPartyCounts`) — the
differential tests assert bit-equality against those serial oracles.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.classify.columnar import SpooledChunkRef, SyntheticChunkRef, spool_chunks
from repro.classify.partials import (
    ChunkPartial,
    ClassifyTask,
    SpillReader,
    classify_chunk,
    partial_validator,
)
from repro.psl.packed import PackedHistory
from repro.runtime import (
    CheckpointStore,
    ExecutionReport,
    FaultPlan,
    ResilientExecutor,
    RetryPolicy,
    TaskFailure,
)
from repro.webgraph.requestlog import RequestLogConfig, block_count, record_count
from repro.webgraph.stream import StreamedSiteCounts, StreamedThirdPartyCounts


def select_version_indexes(total: int, requested: int) -> tuple[int, ...]:
    """``requested`` evenly spaced raw indexes over ``[0, total)``.

    Always includes the first and latest version; asking for more
    versions than exist yields every version once.
    """
    if total < 1:
        raise ValueError("history has no versions")
    if requested < 1:
        raise ValueError("requested version count must be positive")
    requested = min(requested, total)
    if requested == 1:
        return (total - 1,)
    step = (total - 1) / (requested - 1)
    return tuple(sorted({round(i * step) for i in range(requested)}))


@dataclass(frozen=True, slots=True)
class VersionRow:
    """One PSL version's row of the output tables."""

    version_index: int
    trie_fingerprint: str
    sites: StreamedSiteCounts
    third_party: StreamedThirdPartyCounts
    misclassified_hostnames: int

    @property
    def misclassified_share(self) -> float:
        """Share of hostname occurrences grouped differently than the
        latest list groups them."""
        if self.sites.hostnames == 0:
            return 0.0
        return self.misclassified_hostnames / self.sites.hostnames

    def to_json(self) -> dict[str, Any]:
        return {
            "version": self.version_index,
            "trie_fingerprint": self.trie_fingerprint,
            "hostnames": self.sites.hostnames,
            "sites": self.sites.sites,
            "largest_site": self.sites.largest_site,
            "skipped_hosts": self.sites.skipped,
            "third_party": self.third_party.third_party,
            "total_pairs": self.third_party.total,
            "skipped_pairs": self.third_party.skipped,
            "misclassified_hostnames": self.misclassified_hostnames,
            "misclassified_share": round(self.misclassified_share, 6),
        }


@dataclass(frozen=True, slots=True)
class ClassifyFailureReport:
    """What a degraded run lost: the quarantined chunks and why."""

    quarantined: tuple[TaskFailure, ...]
    chunks: int

    @property
    def degraded(self) -> bool:
        return bool(self.quarantined)

    def summary(self) -> str:
        lost = ", ".join(failure.task_id for failure in self.quarantined)
        return (
            f"classify degraded: {len(self.quarantined)}/{self.chunks} "
            f"chunks quarantined ({lost}); counts cover surviving chunks only"
        )

    def to_json(self) -> dict[str, Any]:
        return {
            "degraded": self.degraded,
            "chunks": self.chunks,
            "quarantined": [
                {"task_id": f.task_id, "attempts": f.attempts, "error": f.error}
                for f in self.quarantined
            ],
        }


@dataclass(frozen=True, slots=True)
class ClassifyResult:
    """Per-version tables plus the run's execution story."""

    rows: tuple[VersionRow, ...]
    baseline_index: int
    chunks: int
    records: int
    elapsed: float
    report: ExecutionReport
    failure: ClassifyFailureReport | None

    @property
    def degraded(self) -> bool:
        return self.failure is not None and self.failure.degraded

    @property
    def records_per_second(self) -> float:
        return self.records / self.elapsed if self.elapsed > 0 else 0.0

    def row_for(self, version_index: int) -> VersionRow:
        for row in self.rows:
            if row.version_index == version_index:
                return row
        raise KeyError(f"version {version_index} not in this run")

    def to_json(self) -> dict[str, Any]:
        return {
            "baseline": self.baseline_index,
            "chunks": self.chunks,
            "records": self.records,
            "elapsed": round(self.elapsed, 3),
            "records_per_second": round(self.records_per_second, 1),
            "degraded": self.degraded,
            "resumed_chunks": self.report.resumed,
            "executed_chunks": self.report.executed,
            "retried": list(self.report.retried),
            "pool_rebuilds": self.report.pool_rebuilds,
            "failure": self.failure.to_json() if self.failure else None,
            "rows": [row.to_json() for row in self.rows],
        }

    def summary(self) -> str:
        latest = self.rows[-1]
        lines = [
            f"classified {self.records:,} records across {len(self.rows)} "
            f"versions in {self.elapsed:.1f}s "
            f"({self.records_per_second:,.0f} records/s, {self.chunks} chunks, "
            f"{self.report.resumed} resumed)",
            f"  latest (v{latest.version_index}): {latest.sites.sites:,} sites, "
            f"{latest.third_party.third_party:,}/{latest.third_party.total:,} third-party, "
            f"{latest.sites.skipped:,} malformed endpoints skipped",
        ]
        oldest = self.rows[0]
        lines.append(
            f"  oldest (v{oldest.version_index}): "
            f"{oldest.misclassified_hostnames:,} hostname occurrences "
            f"({oldest.misclassified_share:.2%}) grouped differently than the latest list"
        )
        if self.failure is not None and self.failure.degraded:
            lines.append("  " + self.failure.summary())
        return "\n".join(lines)


class ClassifyEngine:
    """Runs one classify job end to end inside a run directory.

    The run directory owns the mutable state — ``checkpoints/`` (the
    resume ledger), ``spills/`` (per-chunk version tables), and
    ``spool/`` (columnarized generic streams) — so killing the process
    and re-running with ``resume=True`` continues chunk-granularly.
    """

    def __init__(
        self,
        packed_path: str,
        *,
        version_indexes: Sequence[int],
        baseline: int = -1,
        workers: int = 1,
        run_dir: str,
        resume: bool = False,
        policy: RetryPolicy | None = None,
        fault_plan: FaultPlan | None = None,
        fingerprint_context: str | None = None,
    ) -> None:
        if not version_indexes:
            raise ValueError("version_indexes must not be empty")
        self._packed_path = os.path.abspath(packed_path)
        self._history = PackedHistory.load(self._packed_path)
        total = len(self._history)
        self._versions = tuple(sorted({range(total)[i] for i in version_indexes}))
        self._baseline = range(total)[baseline]
        self._workers = workers
        self._run_dir = run_dir
        self._resume = resume
        self._policy = policy
        self._fault_plan = fault_plan
        self._context = fingerprint_context
        os.makedirs(run_dir, exist_ok=True)

    @property
    def version_indexes(self) -> tuple[int, ...]:
        return self._versions

    @property
    def baseline_index(self) -> int:
        return self._baseline

    # -- sources --------------------------------------------------------------

    def run_synthetic(
        self, config: RequestLogConfig, *, blocks_per_task: int = 4
    ) -> ClassifyResult:
        """Classify the deterministic synthetic stream for ``config``.

        Tasks carry generator coordinates, not records: each covers
        ``blocks_per_task`` whole generation blocks, so task pickles
        stay tiny at any scale and chunk content is independent of the
        chunking itself.
        """
        if blocks_per_task < 1:
            raise ValueError("blocks_per_task must be positive")
        blocks = block_count(config)
        refs = [
            SyntheticChunkRef(
                config=config,
                first_block=first,
                block_count=min(blocks_per_task, blocks - first),
                index=index,
            )
            for index, first in enumerate(range(0, blocks, blocks_per_task))
        ]
        source = {
            "kind": "synthetic",
            "config": config,
            "blocks_per_task": blocks_per_task,
            "records": record_count(config),
        }
        return self._run(refs, source)

    def run_stream(
        self, records: Iterable[tuple[str, str]], *, chunk_records: int = 262_144
    ) -> ClassifyResult:
        """Classify an arbitrary record stream.

        The stream is columnarized and spooled to the run directory
        one chunk at a time (parent memory stays O(chunk)); workers
        load digest-verified spool files.  Note: resuming a stream run
        re-spools the stream — byte-identical streams reconcile to the
        same manifest and resume; anything else clears the ledger.
        """
        refs = spool_chunks(records, chunk_records, os.path.join(self._run_dir, "spool"))
        return self.run_spooled(refs)

    def run_spooled(self, refs: Sequence[SpooledChunkRef]) -> ClassifyResult:
        """Classify already-spooled chunks (the resume-friendly form)."""
        source = {
            "kind": "spooled",
            "chunks": [(ref.digest, ref.nbytes) for ref in refs],
        }
        return self._run(list(refs), source)

    # -- the run --------------------------------------------------------------

    def _manifest(self, source: dict[str, Any]) -> dict[str, Any]:
        material: dict[str, Any] = {
            "scheme": "classify-v1",
            "source": source,
            "versions": list(self._versions),
            "baseline": self._baseline,
            "tries": [self._history.fingerprint(i) for i in self._versions],
            "baseline_trie": self._history.fingerprint(self._baseline),
        }
        if self._context is not None:
            material["context"] = self._context
        return material

    def _run(
        self,
        refs: Sequence[SyntheticChunkRef | SpooledChunkRef],
        source: dict[str, Any],
    ) -> ClassifyResult:
        started = time.perf_counter()
        checkpoint = CheckpointStore(os.path.join(self._run_dir, "checkpoints"))
        checkpoint.reconcile(self._manifest(source), resume=self._resume)
        spill_dir = os.path.join(self._run_dir, "spills")
        tasks = [
            ClassifyTask(
                ref=ref,
                packed_path=self._packed_path,
                version_indexes=self._versions,
                baseline_index=self._baseline,
                spill_dir=spill_dir,
            )
            for ref in refs
        ]
        executor = ResilientExecutor(
            workers=self._workers,
            policy=self._policy,
            checkpoint=checkpoint,
            fault_plan=self._fault_plan,
        )
        results, report = executor.run(
            classify_chunk,
            tasks,
            task_ids=[task.task_id for task in tasks],
            validate=partial_validator(len(self._versions)),
        )
        partials = [value for value in results if value is not None]
        failure: ClassifyFailureReport | None = None
        if report.degraded:
            failure = ClassifyFailureReport(
                quarantined=report.quarantined, chunks=len(tasks)
            )
            checkpoint.write_report(failure.to_json())
        rows = self._merge(partials)
        return ClassifyResult(
            rows=rows,
            baseline_index=self._baseline,
            chunks=len(tasks),
            records=sum(partial.records for partial in partials),
            elapsed=time.perf_counter() - started,
            report=report,
            failure=failure,
        )

    def _merge(self, partials: Sequence[ChunkPartial]) -> tuple[VersionRow, ...]:
        """Version-at-a-time merge over the chunks' spill deltas.

        One global ``site -> occurrences`` counter is carried through
        the version axis; each version applies every chunk's delta,
        drops zeroed sites, and snapshots the distinct/largest numbers.
        """
        hostnames = sum(partial.hostnames for partial in partials)
        skipped_hosts = sum(partial.skipped_hosts for partial in partials)
        skipped_pairs = sum(partial.skipped_pairs for partial in partials)
        total_pairs = sum(partial.total_pairs for partial in partials)
        readers = [SpillReader(partial.spill.path) for partial in partials]
        counter: dict[str, int] = {}
        rows: list[VersionRow] = []
        try:
            for slot, version_index in enumerate(self._versions):
                get = counter.get
                for reader in readers:
                    for site, delta in reader.read(slot).items():
                        value = get(site, 0) + delta
                        if value:
                            counter[site] = value
                        else:
                            del counter[site]
                rows.append(
                    VersionRow(
                        version_index=version_index,
                        trie_fingerprint=self._history.fingerprint(version_index),
                        sites=StreamedSiteCounts(
                            hostnames=hostnames,
                            sites=len(counter),
                            largest_site=max(counter.values(), default=0),
                            skipped=skipped_hosts,
                        ),
                        third_party=StreamedThirdPartyCounts(
                            third_party=sum(p.third_party[slot] for p in partials),
                            total=total_pairs,
                            skipped=skipped_pairs,
                        ),
                        misclassified_hostnames=sum(
                            p.misclassified[slot] for p in partials
                        ),
                    )
                )
        finally:
            for reader in readers:
                reader.close()
        return tuple(rows)
