"""The classify worker: one chunk × all versions, spilled to disk.

Each worker task classifies every distinct hostname of one
:class:`~repro.classify.columnar.ColumnarChunk` under every selected
PSL version by walking the packed trie
(:meth:`repro.psl.packed.PackedHistory.trie` /
:func:`repro.webgraph.sites.site_for_reversed` — the same site
function every other layer uses).  The packed blob is opened once per
*process* and ``mmap``-ed, so a pool of N workers shares one physical
copy of the whole history.

**Why a spill file.**  The merge needs per-version site multisets
(distinct-site and largest-site numbers are global properties), but a
full site counter per version per chunk would be versions × chunks ×
O(sites) bytes — gigabytes at the 10M-record regime.  Site
assignments barely change between adjacent versions, so the spill is
**delta-encoded**: the first version stores the chunk's full
``site -> occurrences`` counter; every later version stores only the
occurrence-weighted difference against the previous version (empty for
the vast majority of version steps).  The merge replays the same
deltas against one global counter, version at a time, so *its* memory
is O(one version's site universe) too.

The spill file is the worker's bulk output; what travels back through
the executor (and into the checkpoint store) is a small
:class:`ChunkPartial` carrying the per-version scalars plus a
:class:`SpillRef` naming the spill and its SHA-256 — the validator
re-hashes the file, so a truncated spill reads as a failed task, never
as silent data loss.
"""

from __future__ import annotations

import hashlib
import operator
import os
import pickle
import struct
from dataclasses import dataclass
from itertools import compress
from typing import BinaryIO

from repro.classify.columnar import ColumnarChunk, SpooledChunkRef, SyntheticChunkRef
from repro.psl.packed import PackedHistory
from repro.webgraph.sites import site_for_reversed

_SPILL_MAGIC = b"PSLCLSP1"
_HEADER = struct.Struct("<8sI")
_OFFSET = struct.Struct("<Q")


@dataclass(frozen=True, slots=True)
class SpillRef:
    """One spill file's identity: path, size, content digest."""

    path: str
    nbytes: int
    digest: str

    def verify(self) -> bool:
        """Re-hash the file; False on absence, truncation, or mismatch."""
        try:
            if os.path.getsize(self.path) != self.nbytes:
                return False
            digest = hashlib.sha256()
            with open(self.path, "rb") as handle:
                for block in iter(lambda: handle.read(1 << 20), b""):
                    digest.update(block)
            return digest.hexdigest() == self.digest
        except OSError:
            return False


@dataclass(frozen=True, slots=True)
class ChunkPartial:
    """One chunk's classification outcome across all selected versions.

    ``third_party`` and ``misclassified`` align with the task's
    ``version_indexes``; ``misclassified`` counts hostname occurrences
    whose site under that version differs from the baseline (latest
    list) site — the staleness-harm delta.
    """

    index: int
    records: int
    hostnames: int
    skipped_hosts: int
    skipped_pairs: int
    total_pairs: int
    third_party: tuple[int, ...]
    misclassified: tuple[int, ...]
    spill: SpillRef


@dataclass(frozen=True, slots=True)
class ClassifyTask:
    """Everything one worker invocation needs, in a tiny pickle.

    ``packed_path`` is the on-disk ``PSLPAK1`` blob every worker
    ``mmap``s; ``version_indexes`` are resolved, ascending raw history
    indexes; ``baseline_index`` is the latest-list reference the
    misclassification delta is measured against.
    """

    ref: SyntheticChunkRef | SpooledChunkRef
    packed_path: str
    version_indexes: tuple[int, ...]
    baseline_index: int
    spill_dir: str

    @property
    def task_id(self) -> str:
        return self.ref.task_id


class SpillWriter:
    """Streams one pickled counter per version into the spill layout.

    Layout: magic, u32 version count, (count + 1) u64 blob offsets,
    then the concatenated pickle blobs.  Offsets are backfilled after
    the last blob and the file lands via ``os.replace``, so readers
    only ever see complete spills.
    """

    def __init__(self, path: str, versions: int) -> None:
        self._path = path
        self._temp = f"{path}.tmp"
        self._versions = versions
        self._offsets: list[int] = []
        self._handle: BinaryIO = open(self._temp, "wb")
        self._handle.write(_HEADER.pack(_SPILL_MAGIC, versions))
        self._handle.write(b"\0" * _OFFSET.size * (versions + 1))

    def add(self, counter: dict[str, int]) -> None:
        if len(self._offsets) >= self._versions + 1:
            raise ValueError("spill already holds every version")
        self._offsets.append(self._handle.tell())
        self._handle.write(pickle.dumps(counter, protocol=pickle.HIGHEST_PROTOCOL))

    def finish(self) -> SpillRef:
        if len(self._offsets) != self._versions:
            raise ValueError(
                f"spill holds {len(self._offsets)} versions, expected {self._versions}"
            )
        self._offsets.append(self._handle.tell())
        self._handle.seek(_HEADER.size)
        for offset in self._offsets:
            self._handle.write(_OFFSET.pack(offset))
        self._handle.close()
        digest = hashlib.sha256()
        with open(self._temp, "rb") as handle:
            for block in iter(lambda: handle.read(1 << 20), b""):
                digest.update(block)
        nbytes = os.path.getsize(self._temp)
        os.replace(self._temp, self._path)
        return SpillRef(path=self._path, nbytes=nbytes, digest=digest.hexdigest())

    def abort(self) -> None:
        try:
            self._handle.close()
        finally:
            try:
                os.unlink(self._temp)
            except OSError:
                pass


class SpillReader:
    """Random access to one spill's per-version counter deltas."""

    def __init__(self, path: str) -> None:
        self._handle: BinaryIO = open(path, "rb")
        magic, versions = _HEADER.unpack(self._handle.read(_HEADER.size))
        if magic != _SPILL_MAGIC:
            raise ValueError(f"{path} is not a classify spill")
        raw = self._handle.read(_OFFSET.size * (versions + 1))
        self._offsets = [
            _OFFSET.unpack_from(raw, i * _OFFSET.size)[0] for i in range(versions + 1)
        ]
        self.versions = versions

    def read(self, slot: int) -> dict[str, int]:
        """The counter (slot 0) or counter delta (later slots)."""
        if not 0 <= slot < self.versions:
            raise IndexError(f"version slot {slot} out of range")
        self._handle.seek(self._offsets[slot])
        payload = self._handle.read(self._offsets[slot + 1] - self._offsets[slot])
        return pickle.loads(payload)

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "SpillReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# One PackedHistory per (process, path): reopening per task would
# re-validate CRCs and re-mmap; keeping it process-global means a pool
# worker pays the open once and the OS shares the mapped pages.
_HISTORY_CACHE: dict[str, PackedHistory] = {}

# Changed-rule prefixes per selected-version step — identical for
# every chunk of a run, so computed once per (process, run shape).
_PLAN_CACHE: dict[tuple[str, tuple[int, ...]], list[frozenset[tuple[str, ...]] | None]] = {}


def _history(path: str) -> PackedHistory:
    cached = _HISTORY_CACHE.get(path)
    if cached is None:
        cached = PackedHistory.load(path)
        _HISTORY_CACHE[path] = cached
    return cached


def _rule_prefix(name: str) -> tuple[str, ...]:
    """The reversed-label prefix under which a rule can affect hosts.

    A rule change can only move the prevailing match of hosts whose
    reversed labels pass through the rule's trie path.  PSL wildcards
    are leftmost-only, so stripping trailing ``*`` labels (in reversed
    order) yields a conservative literal prefix: ``*.ck`` affects at
    most the hosts under ``("ck",)``.
    """
    labels = name.split(".")
    labels.reverse()
    while labels and labels[-1] == "*":
        labels.pop()
    return tuple(labels)


def _version_plan(
    path: str, history: PackedHistory, version_indexes: tuple[int, ...]
) -> list[frozenset[tuple[str, ...]] | None]:
    """Per-slot changed prefixes: ``None`` for slot 0 (full walk),
    else the union of prefixes of rules added/removed/rekinded since
    the previous selected version."""
    key = (path, version_indexes)
    cached = _PLAN_CACHE.get(key)
    if cached is not None:
        return cached
    plan: list[frozenset[tuple[str, ...]] | None] = []
    previous: frozenset | None = None
    for version_index in version_indexes:
        rules = frozenset(history.trie(version_index).iter_rules())
        if previous is None:
            plan.append(None)
        else:
            plan.append(
                frozenset(_rule_prefix(rule.name) for rule in rules ^ previous)
            )
        previous = rules
    _PLAN_CACHE[key] = plan
    return plan


class _ChunkColumns:
    """Per-chunk lookup structures for the incremental version walk."""

    def __init__(self, chunk: ColumnarChunk) -> None:
        self.rlabels = [tuple(host.split(".")[::-1]) for host in chunk.hosts]
        self.by_first: dict[str, list[int]] = {}
        self.by_two: dict[tuple[str, str], list[int]] = {}
        for i, labels in enumerate(self.rlabels):
            self.by_first.setdefault(labels[0], []).append(i)
            if len(labels) > 1:
                self.by_two.setdefault((labels[0], labels[1]), []).append(i)
        # Host index -> positions in the pair columns touching it.
        self.pair_index: dict[int, list[int]] = {}
        for position, host in enumerate(chunk.pages):
            self.pair_index.setdefault(host, []).append(position)
        for position, host in enumerate(chunk.requests):
            self.pair_index.setdefault(host, []).append(position)

    def candidates(self, prefixes: frozenset[tuple[str, ...]]):
        """Host indexes possibly affected by rules under ``prefixes``
        (a superset: callers re-walk and drop no-ops)."""
        out: set[int] = set()
        for prefix in prefixes:
            if not prefix:
                return range(len(self.rlabels))
            if len(prefix) == 1:
                out.update(self.by_first.get(prefix[0], ()))
            else:
                bucket = self.by_two.get((prefix[0], prefix[1]), ())
                if len(prefix) == 2:
                    out.update(bucket)
                else:
                    depth = len(prefix)
                    rlabels = self.rlabels
                    out.update(i for i in bucket if rlabels[i][:depth] == prefix)
        return out


def classify_chunk(task: ClassifyTask) -> ChunkPartial:
    """Classify one chunk under every selected version.

    Only the baseline and the first selected version pay a full
    ``hosts`` trie walk; every later version is **incremental**: the
    run's version plan names the rule prefixes that changed since the
    previous selected version, only hosts under those prefixes are
    re-walked, and the third-party / misclassification / spill numbers
    are updated from the actual site flips alone.  A typical version
    step changes a few dozen rules, so per-version cost is O(changed),
    not O(hosts) — the same delta philosophy the sweep engine applies
    across versions, pushed into the worker.
    """
    chunk = task.ref.load()
    history = _history(task.packed_path)
    plan = _version_plan(task.packed_path, history, task.version_indexes)
    columns = _ChunkColumns(chunk)
    rlabels = columns.rlabels
    occurrences = chunk.occurrences
    pages = chunk.pages
    requests = chunk.requests

    baseline_trie = history.trie(task.baseline_index)
    base_sites = [site_for_reversed(baseline_trie, labels) for labels in rlabels]
    os.makedirs(task.spill_dir, exist_ok=True)
    writer = SpillWriter(
        os.path.join(task.spill_dir, f"{task.task_id}.spill"), len(task.version_indexes)
    )
    third_party: list[int] = []
    misclassified: list[int] = []
    sites: list[str] = []
    current_tp = 0
    current_mis = 0
    try:
        for slot, version_index in enumerate(task.version_indexes):
            prefixes = plan[slot]
            if prefixes is None:
                # Full walk (first selected version), full counters.
                if version_index == task.baseline_index:
                    sites = base_sites.copy()
                    current_mis = 0
                else:
                    trie = history.trie(version_index)
                    sites = [site_for_reversed(trie, labels) for labels in rlabels]
                    current_mis = sum(
                        compress(occurrences, map(operator.ne, sites, base_sites))
                    )
                full: dict[str, int] = {}
                get = full.get
                for site, occurrence in zip(sites, occurrences):
                    full[site] = get(site, 0) + occurrence
                writer.add(full)
                site_of = sites.__getitem__
                current_tp = sum(
                    map(operator.ne, map(site_of, pages), map(site_of, requests))
                )
            else:
                changes: dict[int, str] = {}
                if prefixes:
                    trie = history.trie(version_index)
                    for i in columns.candidates(prefixes):
                        new_site = site_for_reversed(trie, rlabels[i])
                        if new_site != sites[i]:
                            changes[i] = new_site
                delta: dict[str, int] = {}
                if changes:
                    touched: set[int] = set()
                    for i in changes:
                        touched.update(columns.pair_index.get(i, ()))
                    for position in touched:
                        page, request = pages[position], requests[position]
                        old_ne = sites[page] != sites[request]
                        new_ne = changes.get(page, sites[page]) != changes.get(
                            request, sites[request]
                        )
                        current_tp += new_ne - old_ne
                    get = delta.get
                    for i, new_site in changes.items():
                        occurrence = occurrences[i]
                        old_site = sites[i]
                        base_site = base_sites[i]
                        delta[old_site] = get(old_site, 0) - occurrence
                        delta[new_site] = get(new_site, 0) + occurrence
                        current_mis += (
                            (new_site != base_site) - (old_site != base_site)
                        ) * occurrence
                        sites[i] = new_site
                writer.add({site: d for site, d in delta.items() if d})
            third_party.append(current_tp)
            misclassified.append(current_mis)
        spill = writer.finish()
    except BaseException:
        writer.abort()
        raise

    return ChunkPartial(
        index=chunk.index,
        records=chunk.records,
        hostnames=chunk.hostnames,
        skipped_hosts=chunk.skipped_hosts,
        skipped_pairs=chunk.skipped_pairs,
        total_pairs=len(pages),
        third_party=tuple(third_party),
        misclassified=tuple(misclassified),
        spill=spill,
    )


def partial_validator(versions: int):
    """Parent-side validator: shape plus spill integrity.

    Rejecting here turns a corrupt result (or a checkpoint whose spill
    file has since been damaged) into an ordinary retryable failure.
    """

    def validate(value: object) -> bool:
        return (
            isinstance(value, ChunkPartial)
            and len(value.third_party) == versions
            and len(value.misclassified) == versions
            and value.spill.verify()
        )

    return validate
