"""Pipeline wiring: classify runs as content-addressed artifacts.

A classify run is expensive (minutes to hours) and pure given its
inputs — exactly what the artifact DAG exists for.  The stage's
fingerprint covers the request-log config, the version selection, the
chunking, and (through its ``packed`` upstream) the entire synthesized
history, so a warm store answers a repeated run in milliseconds and
any input change re-keys exactly the classify cone.

Following the sweep stage's discipline (:mod:`repro.analysis.context`):

* the stage's own fingerprint is forwarded to the engine's checkpoint
  manifest, so the artifact layer and the resume ledger can never
  disagree about what "the same run" is;
* a **degraded** result (quarantined chunks) is never persisted — it
  stays memory-only, so no later run warms itself from partial counts.

Workers mmap the ``packed`` artifact's payload file directly
(:meth:`repro.pipeline.ArtifactStore.payload_path`); with a
memory-only store the buffer is materialized into the run directory
once instead.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.analysis.context import SweepSettings, world_stages
from repro.classify.engine import ClassifyEngine, ClassifyResult, select_version_indexes
from repro.pipeline import ArtifactStore, Pipeline, Stage, StageContext
from repro.psl.packed import PackedHistory
from repro.runtime import FaultPlan, RetryPolicy, atomic_write_bytes
from repro.webgraph.requestlog import RequestLogConfig
from repro.webgraph.synthesis import SnapshotConfig


@dataclass(frozen=True)
class ClassifySettings:
    """Execution knobs for the classify stage.

    Mirrors :class:`~repro.analysis.context.SweepSettings`: only what
    changes the *result* belongs in the stage params; ``workers``,
    ``run_dir``, ``resume``, and the fault plan change how a run
    executes and recovers, never what it computes, so they stay out of
    the fingerprint.  ``on_result`` observes every freshly computed
    run (the CLI uses it to catch degraded ones).
    """

    run_dir: str = "classify-run"
    workers: int = 1
    resume: bool = False
    policy: RetryPolicy | None = None
    fault_plan: FaultPlan | None = None
    on_result: Callable[[ClassifyResult], None] | None = None


def classify_stage(
    log_config: RequestLogConfig,
    *,
    packed_fingerprint: str,
    version_count: int = 100,
    baseline: int = -1,
    blocks_per_task: int = 4,
    settings: ClassifySettings = ClassifySettings(),
) -> Stage:
    """The ``classify`` stage over a ``packed`` upstream.

    ``version_count`` selects that many evenly spaced versions over
    the packed history (endpoints included) at build time — the
    history length is upstream material, so the selection is fully
    determined by the fingerprint.
    """

    def packed_path(store: ArtifactStore, payload: bytes) -> str:
        path = store.payload_path("packed", packed_fingerprint)
        if path is not None:
            return path
        # Memory-only store: materialize the blob once so workers can
        # still mmap one shared file.
        path = os.path.join(settings.run_dir, "packed.bin")
        os.makedirs(settings.run_dir, exist_ok=True)
        if not os.path.exists(path) or os.path.getsize(path) != len(payload):
            atomic_write_bytes(path, payload)
        return path

    def build(inputs: Mapping[str, Any], ctx: StageContext) -> ClassifyResult:
        path = packed_path(ctx.store, inputs["packed"])
        versions = select_version_indexes(len(PackedHistory.load(path)), version_count)
        engine = ClassifyEngine(
            path,
            version_indexes=versions,
            baseline=baseline,
            workers=settings.workers,
            run_dir=settings.run_dir,
            resume=settings.resume,
            policy=settings.policy,
            fault_plan=settings.fault_plan,
            fingerprint_context=ctx.fingerprint,
        )
        result = engine.run_synthetic(log_config, blocks_per_task=blocks_per_task)
        if settings.on_result is not None:
            settings.on_result(result)
        return result

    def is_clean(result: ClassifyResult) -> bool:
        return not result.degraded

    return Stage(
        name="classify",
        build=build,
        upstream=("packed",),
        params={
            "log": log_config,
            "version_count": version_count,
            "baseline": baseline,
            "blocks_per_task": blocks_per_task,
        },
        persist=is_clean,
    )


def classify_pipeline(
    seed: int,
    log_config: RequestLogConfig,
    *,
    version_count: int = 100,
    baseline: int = -1,
    blocks_per_task: int = 4,
    settings: ClassifySettings = ClassifySettings(),
    snapshot_config: SnapshotConfig | None = None,
    store: ArtifactStore | None = None,
) -> Pipeline:
    """The world DAG plus a ``classify`` stage, ready to ``build``.

    The packed fingerprint the stage needs is probed off a throwaway
    pipeline first (:meth:`Pipeline.fingerprint_of` is pure), the same
    trick the serving CLI uses to locate the raw artifact.
    """
    snapshot_config = snapshot_config or SnapshotConfig(seed=seed)
    base = world_stages(seed, snapshot_config, SweepSettings())
    packed_fingerprint = Pipeline(base).fingerprint_of("packed")
    stage = classify_stage(
        log_config,
        packed_fingerprint=packed_fingerprint,
        version_count=version_count,
        baseline=baseline,
        blocks_per_task=blocks_per_task,
        settings=settings,
    )
    return Pipeline(base + (stage,), store=store)
