"""Embedded seed data.

This package carries the static, real-world facts the synthetic
substrates are built from:

* :mod:`repro.data.tlds` — the IANA root zone: real TLD strings with
  category labels and introduction eras;
* :mod:`repro.data.cc_second_level` — per-ccTLD second-level suffix
  tables (``co.uk``, ``com.au``, …), the bulk of the early PSL;
* :mod:`repro.data.jp_geo` — Japanese prefectures and the deterministic
  city-name generator behind the mid-2012 PSL growth spike;
* :mod:`repro.data.private_suffixes` — well-known PRIVATE-division
  suffix operators with plausible list-addition eras;
* :mod:`repro.data.paper` — the paper's published ground truth
  (Table 1 taxonomy counts, Table 2 harm rows, Table 3 repositories,
  headline constants), used both to calibrate the synthetic corpus and
  as the expected values in EXPERIMENTS.md.

Everything here is plain data: no I/O, no randomness.
"""
