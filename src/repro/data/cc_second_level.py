"""Second-level suffix tables under country-code TLDs.

Most of the Public Suffix List's original 2,447 rules were second-level
registration points under ccTLDs (``co.uk``, ``com.au``, ``ac.jp``, …).
This module reproduces that structure: a table of real second-level
label sets per ccTLD family, plus the handful of ccTLDs that historically
used a wildcard rule (``*.uk`` era) before being refined into explicit
entries — the mechanism behind the early third-party-classification
drop in the paper's Figure 6.
"""

from __future__ import annotations

# The canonical "government/academic/commercial" second-level label sets,
# as used (with local variations) by most ccTLD registries.
FULL_SET: tuple[str, ...] = (
    "com", "net", "org", "edu", "gov", "mil", "ac", "co",
)
COMMONWEALTH_SET: tuple[str, ...] = ("co", "org", "me", "ltd", "plc", "net", "sch", "ac", "gov", "nhs", "police")
LATIN_SET: tuple[str, ...] = ("com", "net", "org", "edu", "gob", "mil", "int")
BR_SET: tuple[str, ...] = (
    "com", "net", "org", "gov", "edu", "mil", "art", "adv", "arq", "bio",
    "blog", "cng", "cnt", "ecn", "eng", "esp", "eti", "far", "flog", "fnd",
    "fot", "fst", "g12", "ggf", "imb", "ind", "inf", "jor", "jus", "leg",
    "lel", "mat", "med", "mus", "nom", "not", "ntr", "odo", "ppg", "pro",
    "psc", "psi", "qsl", "rec", "slg", "srv", "taxi", "teo", "tmp", "trd",
    "tur", "tv", "vet", "vlog", "wiki", "zlg",
)
JP_SET: tuple[str, ...] = ("ac", "ad", "co", "ed", "go", "gr", "lg", "ne", "or")
UK_SET: tuple[str, ...] = ("ac", "co", "gov", "ltd", "me", "net", "nhs", "org", "plc", "police", "sch")
AU_SET: tuple[str, ...] = ("com", "net", "org", "edu", "gov", "asn", "id")
NZ_SET: tuple[str, ...] = ("ac", "co", "cri", "geek", "gen", "govt", "health", "iwi", "maori", "mil", "net", "org", "parliament", "school")
ZA_SET: tuple[str, ...] = ("ac", "co", "edu", "gov", "law", "mil", "net", "nom", "org", "school", "web")
KR_SET: tuple[str, ...] = ("ac", "co", "es", "go", "hs", "kg", "mil", "ms", "ne", "or", "pe", "re", "sc", "busan", "seoul")
IN_SET: tuple[str, ...] = ("ac", "co", "edu", "firm", "gen", "gov", "ind", "mil", "net", "nic", "org", "res")
CN_SET: tuple[str, ...] = ("ac", "com", "edu", "gov", "mil", "net", "org", "ah", "bj", "cq", "fj", "gd", "gs", "gx", "gz", "ha", "hb", "he", "hi", "hk", "hl", "hn", "jl", "js", "jx", "ln", "mo", "nm", "nx", "qh", "sc", "sd", "sh", "sn", "sx", "tj", "tw", "xj", "xz", "yn", "zj")

# ccTLD -> its second-level label set.  ccTLDs absent from this table get
# the FULL_SET by default when the synthesizer decides they have a
# structured second level at all.
SECOND_LEVEL_SETS: dict[str, tuple[str, ...]] = {
    "uk": UK_SET,
    "jp": JP_SET,
    "au": AU_SET,
    "nz": NZ_SET,
    "za": ZA_SET,
    "br": BR_SET,
    "kr": KR_SET,
    "in": IN_SET,
    "cn": CN_SET,
    "ar": LATIN_SET,
    "mx": LATIN_SET,
    "pe": LATIN_SET,
    "ve": LATIN_SET,
    "ec": LATIN_SET,
    "gt": LATIN_SET,
    "bo": LATIN_SET,
    "py": LATIN_SET,
    "ni": LATIN_SET,
    "hn": LATIN_SET,
    "sv": ("com", "edu", "gob", "org", "red"),
    "tr": ("com", "net", "org", "edu", "gov", "mil", "av", "bbs", "bel", "biz", "dr", "gen", "info", "k12", "kep", "name", "pol", "tel", "tv", "web"),
    "th": ("ac", "co", "go", "in", "mi", "net", "or"),
    "il": ("ac", "co", "gov", "idf", "k12", "muni", "net", "org"),
    "id": ("ac", "biz", "co", "desa", "go", "mil", "my", "net", "or", "ponpes", "sch", "web"),
    "my": ("com", "net", "org", "gov", "edu", "mil", "name"),
    "sg": ("com", "net", "org", "gov", "edu", "per"),
    "hk": ("com", "edu", "gov", "idv", "net", "org"),
    "tw": ("edu", "gov", "mil", "com", "net", "org", "idv", "game", "ebiz", "club"),
    "ph": ("com", "net", "org", "gov", "edu", "ngo", "mil", "i"),
    "vn": ("com", "net", "org", "edu", "gov", "int", "ac", "biz", "info", "name", "pro", "health"),
    "pk": ("com", "net", "edu", "org", "fam", "biz", "web", "gov", "gob", "gok", "gon", "gop", "gos"),
    "bd": ("com", "edu", "ac", "net", "gov", "org", "mil"),
    "lk": ("gov", "sch", "net", "int", "com", "org", "edu", "ngo", "soc", "web", "ltd", "assn", "grp", "hotel", "ac"),
    "np": ("com", "edu", "gov", "mil", "net", "org"),
    "ke": ("ac", "co", "go", "info", "me", "mobi", "ne", "or", "sc"),
    "ng": ("com", "edu", "gov", "i", "mil", "mobi", "name", "net", "org", "sch"),
    "gh": ("com", "edu", "gov", "org", "mil"),
    "tz": ("ac", "co", "go", "hotel", "info", "me", "mil", "mobi", "ne", "or", "sc", "tv"),
    "ug": ("co", "or", "ac", "sc", "go", "ne", "com", "org"),
    "zm": ("ac", "biz", "co", "com", "edu", "gov", "info", "mil", "net", "org", "sch"),
    "zw": ("ac", "co", "gov", "mil", "org"),
    "eg": ("com", "edu", "eun", "gov", "mil", "name", "net", "org", "sci"),
    "ma": ("ac", "co", "gov", "net", "org", "press"),
    "sa": ("com", "net", "org", "gov", "med", "pub", "edu", "sch"),
    "ae": ("co", "net", "org", "sch", "ac", "gov", "mil"),
    "jo": ("com", "org", "net", "edu", "sch", "gov", "mil", "name"),
    "kw": ("com", "edu", "emb", "gov", "ind", "net", "org"),
    "qa": ("com", "edu", "gov", "mil", "name", "net", "org", "sch"),
    "om": ("com", "co", "edu", "gov", "med", "museum", "net", "org", "pro"),
    "ru": ("ac", "edu", "gov", "int", "mil", "test"),
    "ua": ("com", "edu", "gov", "in", "net", "org"),
    "pl": ("com", "net", "org", "aid", "agro", "atm", "auto", "biz", "edu", "gmina", "gsm", "info", "mail", "miasta", "media", "mil", "nieruchomosci", "nom", "pc", "powiat", "priv", "realestate", "rel", "sex", "shop", "sklep", "sos", "szkola", "targi", "tm", "tourism", "travel", "turystyka"),
    "ro": ("arts", "com", "firm", "info", "nom", "nt", "org", "rec", "store", "tm", "www"),
    "hu": ("co", "info", "org", "priv", "sport", "tm", "2000", "agrar", "bolt", "casino", "city", "erotica", "erotika", "film", "forum", "games", "hotel", "ingatlan", "jogasz", "konyvelo", "lakas", "media", "news", "reklam", "sex", "shop", "suli", "szex", "tozsde", "utazas", "video"),
    "gr": ("com", "edu", "net", "org", "gov"),
    "pt": ("net", "gov", "org", "edu", "int", "publ", "com", "nome"),
    "es": ("com", "nom", "org", "gob", "edu"),
    "it": ("gov", "edu"),
    "fr": ("asso", "com", "gouv", "nom", "prd", "tm", "avoues", "cci", "greta", "huissier-justice"),
    "be": ("ac",),
    "at": ("ac", "co", "gv", "or"),
    "ch": (),
    "no": ("fhs", "vgs", "fylkesbibl", "folkebibl", "museum", "idrett", "priv", "mil", "stat", "dep", "kommune", "herad"),
    "se": ("a", "ac", "b", "bd", "brand", "c", "d", "e", "f", "fh", "fhsk", "fhv", "g", "h", "i", "k", "komforb", "kommunalforbund", "komvux", "l", "lanbib", "m", "n", "naturbruksgymn", "o", "org", "p", "parti", "pp", "press", "r", "s", "t", "tm", "u", "w", "x", "y", "z"),
    "fi": ("aland",),
    "ee": ("edu", "gov", "riik", "lib", "med", "com", "pri", "aip", "org", "fie"),
    "lv": ("com", "edu", "gov", "org", "mil", "id", "net", "asn", "conf"),
    "lt": ("gov",),
    "cy": ("ac", "biz", "com", "ekloges", "gov", "ltd", "mil", "net", "org", "press", "pro", "tm"),
    "mt": ("com", "edu", "net", "org"),
    "ie": ("gov",),
    "is": ("net", "com", "edu", "gov", "org", "int"),
    "ca": ("ab", "bc", "mb", "nb", "nf", "nl", "ns", "nt", "nu", "on", "pe", "qc", "sk", "yk", "gc"),
    "us": ("dni", "fed", "isa", "kids", "nsn", "ak", "al", "ar", "as", "az", "ca", "co", "ct", "dc", "de", "fl", "ga", "gu", "hi", "ia", "id", "il", "in", "ks", "ky", "la", "ma", "md", "me", "mi", "mn", "mo", "ms", "mt", "nc", "nd", "ne", "nh", "nj", "nm", "nv", "ny", "oh", "ok", "or", "pa", "pr", "ri", "sc", "sd", "tn", "tx", "ut", "va", "vi", "vt", "wa", "wi", "wv", "wy"),
    "do": LATIN_SET,
    "cr": ("ac", "co", "ed", "fi", "go", "or", "sa"),
    "cu": ("com", "edu", "org", "net", "gov", "inf"),
    "uy": ("com", "edu", "gub", "mil", "net", "org"),
    "cl": ("gov", "gob", "co", "mil"),
    "co": ("arts", "com", "edu", "firm", "gov", "info", "int", "mil", "net", "nom", "org", "rec", "web"),
    "ck": FULL_SET,
    "ci": FULL_SET,
    "cm": FULL_SET,
    "ir": ("ac", "co", "gov", "id", "net", "org", "sch"),
    "kz": ("org", "edu", "net", "gov", "mil", "com"),
    "uz": ("co", "com", "net", "org"),
    "ge": ("com", "edu", "gov", "org", "mil", "net", "pvt"),
    "am": ("co", "com", "commune", "net", "org"),
    "az": ("com", "net", "int", "gov", "org", "edu", "info", "pp", "mil", "name", "pro", "biz"),
    "by": ("gov", "mil", "com", "of"),
    "md": (),
    "mk": ("com", "org", "net", "edu", "gov", "inf", "name"),
    "rs": ("ac", "co", "edu", "gov", "in", "org"),
    "ba": ("com", "edu", "gov", "mil", "net", "org"),
    "hr": ("iz", "from", "name", "com"),
    "si": (),
    "bg": (),
}

# ccTLDs that the early list covered with a single wildcard rule before
# the registry's structure was spelled out explicitly.  Each entry maps
# the ccTLD to the year its wildcard was replaced by explicit rules.
WILDCARD_ERA: dict[str, int] = {
    "uk": 2009,
    "jp": 2010,
    "br": 2009,
    "ck": 0,      # never refined: *.ck (plus !www.ck) persists today
    "er": 0,
    "fk": 0,
    "kh": 0,
    "mm": 0,
    "np": 2011,
    "pg": 0,
    "bd": 0,
    "cy": 2011,
    "il": 2012,
    "kw": 2012,
    "mz": 0,
    "za": 2010,
    "zm": 2013,
    "zw": 2013,
}

# Wildcard exceptions that shipped alongside the wildcard-era rules.
# Every exception must be carved out of the covering `*.cc` wildcard
# (the linter enforces this, as the list maintainers do).
WILDCARD_EXCEPTIONS: dict[str, tuple[str, ...]] = {
    "ck": ("www",),
    "er": (),
    "uk": ("bl", "british-library", "jet", "mod", "parliament", "nls"),
    "np": (),
    "za": (),
}


def second_level_rules(cc: str) -> tuple[str, ...]:
    """The explicit second-level suffixes for one ccTLD (``'co.uk'`` form)."""
    labels = SECOND_LEVEL_SETS.get(cc, ())
    return tuple(f"{label}.{cc}" for label in labels)


def all_second_level_rules() -> tuple[str, ...]:
    """Every explicit second-level rule across the embedded tables."""
    rules: list[str] = []
    for cc in sorted(SECOND_LEVEL_SETS):
        rules.extend(second_level_rules(cc))
    return tuple(rules)
