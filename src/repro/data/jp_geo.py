"""Japanese geographic names behind the mid-2012 PSL growth spike.

In mid-2012 the Japanese registry (JPRS) opened city-level ("geographic
type") registrations, and roughly 1,623 suffix rules of the form
``<city>.<prefecture>.jp`` landed on the Public Suffix List in one burst
— the most prominent spike in the paper's Figure 2.  This module embeds
the real 47 prefectures and a deterministic, seeded generator of
romanized city names so the synthetic history can reproduce the spike at
its true size and shape.
"""

from __future__ import annotations

import random
from typing import Iterable

# The designated cities ("seirei shitei toshi") carry their own
# wildcard rules directly under .jp on the real list, with a
# !city.<name>.jp exception for the municipal government itself.
DESIGNATED_CITIES: tuple[str, ...] = (
    "sapporo", "sendai", "yokohama", "kawasaki", "nagoya", "kobe", "kitakyushu",
)

PREFECTURES: tuple[str, ...] = (
    "aichi", "akita", "aomori", "chiba", "ehime", "fukui", "fukuoka",
    "fukushima", "gifu", "gunma", "hiroshima", "hokkaido", "hyogo",
    "ibaraki", "ishikawa", "iwate", "kagawa", "kagoshima", "kanagawa",
    "kochi", "kumamoto", "kyoto", "mie", "miyagi", "miyazaki", "nagano",
    "nagasaki", "nara", "niigata", "oita", "okayama", "okinawa", "osaka",
    "saga", "saitama", "shiga", "shimane", "shizuoka", "tochigi",
    "tokushima", "tokyo", "tottori", "toyama", "wakayama", "yamagata",
    "yamaguchi", "yamanashi",
)

# A seed set of real city names, used before synthetic names kick in.
REAL_CITIES: tuple[str, ...] = (
    "sapporo", "sendai", "yokohama", "kawasaki", "nagoya", "kobe",
    "sakai", "kitakyushu", "chuo", "minato", "shinjuku", "bunkyo",
    "taito", "sumida", "koto", "shinagawa", "meguro", "ota", "setagaya",
    "shibuya", "nakano", "suginami", "toshima", "kita", "arakawa",
    "itabashi", "nerima", "adachi", "katsushika", "edogawa", "himeji",
    "matsuyama", "utsunomiya", "kurashiki", "yokosuka", "kakamigahara",
    "toyota", "takamatsu", "toyama", "nagaoka", "tsukuba", "kanazawa",
)

# Syllables for deterministic romaji-style city names.
_ONSETS = ("k", "s", "t", "n", "h", "m", "y", "r", "w", "g", "z", "d", "b", "ch", "sh", "ts", "f", "j")
_VOWELS = ("a", "i", "u", "e", "o")
_CODAS = ("", "", "", "n")


def synth_city_name(rng: random.Random) -> str:
    """One plausible romanized Japanese city name from a seeded RNG."""
    syllables = rng.randint(2, 4)
    parts = []
    for _ in range(syllables):
        parts.append(rng.choice(_ONSETS) + rng.choice(_VOWELS) + rng.choice(_CODAS))
    name = "".join(parts)
    # Avoid doubled 'nn' runs that read badly in romaji.
    return name.replace("nn", "n")


def city_suffixes(total: int, seed: int = 2012) -> tuple[str, ...]:
    """Generate ``total`` distinct ``city.prefecture.jp`` suffix rules.

    Real city names are consumed first (spread round-robin across
    prefectures); synthetic names fill the remainder.  Deterministic for
    a given seed.
    """
    rng = random.Random(seed)
    rules: list[str] = []
    seen: set[str] = set()

    def add(city: str, prefecture: str) -> None:
        rule = f"{city}.{prefecture}.jp"
        if rule not in seen:
            seen.add(rule)
            rules.append(rule)

    for index, city in enumerate(REAL_CITIES):
        if len(rules) >= total:
            break
        add(city, PREFECTURES[index % len(PREFECTURES)])

    while len(rules) < total:
        add(synth_city_name(rng), rng.choice(PREFECTURES))

    return tuple(rules[:total])


def prefecture_suffixes() -> tuple[str, ...]:
    """The ``<prefecture>.jp`` rules themselves."""
    return tuple(f"{prefecture}.jp" for prefecture in PREFECTURES)


def iter_all(total_cities: int, seed: int = 2012) -> Iterable[str]:
    """Prefecture rules followed by ``total_cities`` city rules."""
    yield from prefecture_suffixes()
    yield from city_suffixes(total_cities, seed=seed)
