"""The paper's published ground truth.

Every number the paper reports — taxonomy counts (Table 1), the harm
table (Table 2), the fixed-usage repository appendix (Table 3), and the
headline constants — is embedded here verbatim.  Two consumers:

* the **calibration layer** (:mod:`repro.repos.calibrate`), which builds
  the synthetic corpus and suffix-addition dates so the pipeline's
  *measured* outputs land on these values; and
* **EXPERIMENTS.md generation**, which prints paper-vs-measured rows.

A few cells in the published Table 3 are illegible in the source PDF
text; those carry ``estimated=True`` and a best-effort value consistent
with the table's own medians (the paper's fixed-strategy median of 825
days pins the combined age vector).
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

# -- measurement constants (Sections 3 and 5) --------------------------------

MEASUREMENT_DATE = datetime.date(2022, 12, 8)
"""t in Figure 3: the date list ages are measured against."""

SNAPSHOT_DATE = datetime.date(2022, 7, 1)
"""The HTTP Archive snapshot month (July 2022, desktop)."""

HISTORY_FIRST_DATE = datetime.date(2007, 3, 22)
HISTORY_LAST_DATE = datetime.date(2022, 10, 20)
HISTORY_VERSION_COUNT = 1142
HISTORY_COMMIT_COUNT = 1294

FIRST_RULE_COUNT = 2447
RULE_COUNT_2017 = 8062
FINAL_RULE_COUNT = 9368

COMPONENT_SHARE = {1: 0.17, 2: 0.575, 3: 0.253, 4: 0.001}
"""Figure 2's breakdown of rules by number of suffix components."""

JP_SPIKE_YEAR = 2012
JP_SPIKE_SIZE = 1623
"""The mid-2012 burst of Japanese city-level registrations."""

REPOSITORY_COUNT = 273
SNAPSHOT_REQUESTS = 498_000_000

# -- headline findings --------------------------------------------------------

MISSING_ETLD_COUNT = 1313
"""eTLDs missing from >=1 fixed/production project (Section 5)."""

AFFECTED_HOSTNAME_COUNT = 50_750
"""Hostnames under those missing eTLDs in the July 2022 snapshot."""

ADDITIONAL_SITES_LATEST_VS_FIRST = 359_966
"""Figure 5: extra sites formed by the newest list vs. the oldest."""

MEDIAN_AGE_ALL = 871
MEDIAN_AGE_UPDATED = 915
MEDIAN_AGE_FIXED = 825
"""Figure 3 medians (days, vs. MEASUREMENT_DATE)."""

STARS_FORKS_PEARSON = 0.96
"""Pearson correlation of stars vs. forks over Table 3 repositories."""

HARMFUL_PROJECT_COUNT = 43
"""Projects using the list in potentially privacy-harming ways."""

# -- Table 1: usage taxonomy ---------------------------------------------------

TABLE1 = {
    "fixed": {"production": 43, "test": 24, "other": 1},
    "updated": {"build": 24, "user": 8, "server": 3},
    "dependency": {
        "jre": 113,
        "ddns-scripts": 15,
        "oneforall": 12,
        "python-whois": 10,
        "domain_name": 10,
        "other": 10,
    },
}

DEPENDENCY_LANGUAGES = {
    "jre": "Java",
    "ddns-scripts": "Shell",
    "oneforall": "Python",
    "python-whois": "Python",
    "domain_name": "Ruby",
    "other": "Other",
}


def table1_totals() -> dict[str, int]:
    """Top-level Table 1 counts: fixed 68, updated 35, dependency 170."""
    return {strategy: sum(subs.values()) for strategy, subs in TABLE1.items()}


# -- Table 2: largest missing eTLDs -------------------------------------------


@dataclass(frozen=True, slots=True)
class Table2Row:
    """One row of Table 2.

    ``hostnames`` is the count of snapshot hostnames under the eTLD;
    the remaining fields are counts of projects whose vendored list
    lacks the rule, broken out by taxonomy label.
    """

    etld: str
    hostnames: int
    dependency: int
    fixed_production: int
    fixed_test_other: int
    updated: int


TABLE2: tuple[Table2Row, ...] = (
    Table2Row("myshopify.com", 7848, 44, 23, 7, 13),
    Table2Row("digitaloceanspaces.com", 3359, 46, 27, 12, 14),
    Table2Row("smushcdn.com", 3337, 44, 23, 7, 13),
    Table2Row("r.appspot.com", 3194, 34, 15, 3, 7),
    Table2Row("sp.gov.br", 2024, 13, 2, 0, 2),
    Table2Row("altervista.org", 1954, 32, 14, 3, 7),
    Table2Row("readthedocs.io", 1887, 23, 13, 2, 4),
    Table2Row("netlify.app", 1278, 35, 15, 5, 9),
    Table2Row("mg.gov.br", 1153, 13, 2, 0, 2),
    Table2Row("lpages.co", 1067, 23, 13, 2, 4),
    Table2Row("pr.gov.br", 891, 13, 2, 0, 2),
    Table2Row("web.app", 871, 28, 13, 2, 5),
    Table2Row("carrd.co", 776, 28, 13, 2, 5),
    Table2Row("rs.gov.br", 747, 13, 2, 0, 2),
    Table2Row("sc.gov.br", 714, 13, 2, 0, 2),
)


def table2_hostname_total() -> int:
    """Hostnames covered by the top-15 rows (the rest of the 50,750
    spread across the remaining 1,298 missing eTLDs)."""
    return sum(row.hostnames for row in TABLE2)


# -- Table 3: fixed-usage repositories ----------------------------------------


@dataclass(frozen=True, slots=True)
class Table3Row:
    """One repository from the appendix.

    ``age_days`` is the vendored list's age at MEASUREMENT_DATE;
    ``missing_hostnames`` counts snapshot hostnames under rules the
    vendored list lacks.  ``estimated`` marks cells that are illegible
    in the published text and were reconstructed (see module docstring).
    """

    name: str
    subtype: str  # "production" | "test" | "other"
    stars: int
    forks: int
    age_days: int
    missing_hostnames: int
    estimated: bool = False


TABLE3: tuple[Table3Row, ...] = (
    Table3Row("bitwarden/server", "production", 10959, 1087, 1596, 36326),
    Table3Row("bitwarden/mobile", "production", 4059, 635, 1596, 36326),
    Table3Row("sleuthkit/autopsy", "production", 1720, 561, 746, 21494),
    Table3Row("alkacon/opencms-core", "production", 473, 384, 1778, 36936),
    Table3Row("firewalla/firewalla", "production", 434, 117, 746, 21494),
    Table3Row("SAP/SapMachine", "production", 397, 79, 376, 3966),
    Table3Row("Yubico/python-fido2", "production", 324, 102, 188, 1),
    Table3Row("gorhill/uBO-Scope", "production", 222, 20, 1927, 37739),
    Table3Row("fgont/ipv6toolkit", "production", 222, 66, 1791, 36966),
    Table3Row("LeFroid/Viper-Browser", "production", 164, 22, 529, 8166),
    Table3Row("Keeper-Security/Commander", "production", 145, 67, 1113, 27685),
    Table3Row("nabeelio/phpvms", "production", 134, 116, 644, 9228),
    Table3Row("coreruleset/ftw", "production", 104, 36, 750, 21576),
    Table3Row("gorhill/publicsuffixlist.js", "production", 79, 12, 289, 2236),
    Table3Row("Twi1ight/TSpider", "production", 68, 21, 2070, 4958),
    Table3Row("j3ssie/go-auxs", "production", 60, 22, 664, 9230),
    Table3Row("Intsights/PyDomainExtractor", "production", 59, 5, 31, 0, estimated=True),
    Table3Row("alterakey/trueseeing", "production", 47, 13, 296, 224),
    Table3Row("BenWiederhake/domain-word", "production", 40, 3, 1233, 3008),
    Table3Row("timlib/webXray", "production", 27, 22, 1659, 3632),
    Table3Row("mecsa/mecsa-st", "production", 20, 4, 1659, 3632, estimated=True),
    Table3Row("amphp/artax", "production", 20, 4, 2054, 4919),
    Table3Row("dicekeys/dicekeys-app-typescript", "production", 15, 4, 825, 2172),
    Table3Row("netarchivesuite/netarchivesuite", "production", 14, 22, 1778, 3693),
    Table3Row("mallardduck/php-whois-client", "production", 11, 3, 657, 923),
    Table3Row("kee-org/keevault2", "production", 10, 4, 895, 2196),
    Table3Row("AdaptedAS/url_parser", "production", 9, 3, 924, 2190),
    Table3Row("h-j-13/WHOISpy", "production", 9, 3, 1527, 3630),
    Table3Row("oaplatform/oap", "production", 9, 5, 1527, 3630),
    Table3Row("amphp/http-client-cookies", "production", 7, 5, 162, 1, estimated=True),
    Table3Row("hrbrmstr/psl", "production", 6, 5, 1520, 3603, estimated=True),
    Table3Row("szepeviktor/unique-email-address", "production", 6, 2, 810, 2167),
    Table3Row("WebCuratorTool/webcurator", "production", 6, 4, 973, 2207),
    Table3Row("ClickHouse/ClickHouse", "test", 26127, 5725, 737, 2149),
    Table3Row("win-acme/win-acme", "test", 4620, 770, 560, 817),
    Table3Row("yasserg/crawler4j", "test", 4336, 1923, 1527, 3630),
    Table3Row("jeremykendall/php-domain-parser", "test", 1021, 121, 296, 224),
    Table3Row("rockdaboot/wget2", "test", 365, 61, 1805, 3698),
    Table3Row("DNS-OARC/dsc", "test", 94, 23, 1010, 2429),
    Table3Row("rushmorem/publicsuffix", "test", 90, 17, 636, 916),
    Table3Row("park-manager/park-manager", "test", 49, 7, 653, 922),
    Table3Row("addr-rs/addr", "test", 40, 11, 636, 916),
    Table3Row("datablade-io/daisy", "test", 32, 7, 737, 2149),
    Table3Row("elliotwutingfeng/go-fasttld", "test", 10, 3, 221, 2117, estimated=True),
    Table3Row("m2osw/libtld", "test", 9, 3, 581, 817),
    Table3Row("Komposten/public_suffix", "test", 8, 2, 1217, 29974),
    Table3Row("du5/gfwlist", "other", 29, 16, 1023, 2429),
)


def table3_rows(subtype: str | None = None) -> tuple[Table3Row, ...]:
    """Rows of Table 3, optionally filtered by fixed sub-type."""
    if subtype is None:
        return TABLE3
    return tuple(row for row in TABLE3 if row.subtype == subtype)


def table3_ages(subtype: str | None = None) -> tuple[int, ...]:
    """The list-age vector, the input to Table 2 calibration."""
    return tuple(row.age_days for row in table3_rows(subtype))
