"""Well-known PRIVATE-division suffix operators.

The PRIVATE division of the PSL holds suffixes submitted by operators
that let third parties register subdomains — exactly the rules whose
absence from a vendored list creates the harms the paper quantifies
(Table 2).  This module embeds a realistic inventory: the operators the
paper names, the big multi-suffix families (Blogspot's per-country
domains, AWS regional endpoints), and the year each entered the list.

Suffixes whose addition date is *calibrated* against the paper's
Table 2 (so that exactly the right number of studied projects miss
them) carry ``year=None``; the corpus calibration layer assigns their
dates.  Everything else uses its real-world era.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class PrivateSuffix:
    """One PRIVATE-division suffix with provenance metadata.

    ``arbitrary_content`` marks operators that host user-supplied
    content (the paper's aggravating factor for privacy harm).
    ``year`` is the list-addition era, or None when the calibration
    layer sets the date from Table 2 constraints.
    """

    suffix: str
    organization: str
    year: int | None
    arbitrary_content: bool = True


# -- Table 2 suffixes: dates calibrated, not hard-coded ----------------------

TABLE2_SUFFIXES: tuple[PrivateSuffix, ...] = (
    PrivateSuffix("myshopify.com", "Shopify", None),
    PrivateSuffix("digitaloceanspaces.com", "DigitalOcean", None),
    PrivateSuffix("smushcdn.com", "WPMU DEV", None),
    PrivateSuffix("r.appspot.com", "Google App Engine", None),
    PrivateSuffix("sp.gov.br", "Sao Paulo state government", None, arbitrary_content=False),
    PrivateSuffix("altervista.org", "Altervista", None),
    PrivateSuffix("readthedocs.io", "Read the Docs", None),
    PrivateSuffix("netlify.app", "Netlify", None),
    PrivateSuffix("mg.gov.br", "Minas Gerais state government", None, arbitrary_content=False),
    PrivateSuffix("lpages.co", "Leadpages", None),
    PrivateSuffix("pr.gov.br", "Parana state government", None, arbitrary_content=False),
    PrivateSuffix("web.app", "Firebase Hosting", None),
    PrivateSuffix("carrd.co", "Carrd", None),
    PrivateSuffix("rs.gov.br", "Rio Grande do Sul state government", None, arbitrary_content=False),
    PrivateSuffix("sc.gov.br", "Santa Catarina state government", None, arbitrary_content=False),
)

# -- other real PRIVATE-division operators, by era ---------------------------

KNOWN_SUFFIXES: tuple[PrivateSuffix, ...] = (
    PrivateSuffix("blogspot.com", "Google Blogger", 2011),
    PrivateSuffix("appspot.com", "Google App Engine", 2011),
    PrivateSuffix("github.io", "GitHub Pages", 2013),
    PrivateSuffix("githubusercontent.com", "GitHub", 2014),
    PrivateSuffix("herokuapp.com", "Heroku", 2013),
    PrivateSuffix("cloudfront.net", "Amazon CloudFront", 2012),
    PrivateSuffix("elasticbeanstalk.com", "AWS Elastic Beanstalk", 2013),
    PrivateSuffix("azurewebsites.net", "Microsoft Azure", 2014),
    PrivateSuffix("cloudapp.net", "Microsoft Azure", 2014),
    PrivateSuffix("fastly.net", "Fastly", 2015, arbitrary_content=False),
    PrivateSuffix("firebaseapp.com", "Firebase Hosting", 2016),
    PrivateSuffix("wordpress.com", "Automattic", 2011),
    PrivateSuffix("tumblr.com", "Tumblr", 2012),
    PrivateSuffix("dyndns.org", "Dyn", 2008, arbitrary_content=False),
    PrivateSuffix("no-ip.com", "No-IP", 2008, arbitrary_content=False),
    PrivateSuffix("duckdns.org", "Duck DNS", 2015, arbitrary_content=False),
    PrivateSuffix("glitch.me", "Glitch", 2017),
    PrivateSuffix("gitlab.io", "GitLab Pages", 2015),
    PrivateSuffix("bitbucket.io", "Bitbucket Cloud", 2017),
    PrivateSuffix("netlify.com", "Netlify", 2016),
    PrivateSuffix("now.sh", "Vercel", 2017),
    PrivateSuffix("vercel.app", "Vercel", 2020),
    PrivateSuffix("onrender.com", "Render", 2020),
    PrivateSuffix("fly.dev", "Fly.io", 2020),
    PrivateSuffix("workers.dev", "Cloudflare Workers", 2019),
    PrivateSuffix("pages.dev", "Cloudflare Pages", 2021),
    PrivateSuffix("repl.co", "Replit", 2019),
    PrivateSuffix("wixsite.com", "Wix", 2017),
    PrivateSuffix("squarespace.com", "Squarespace", 2017, arbitrary_content=False),
    PrivateSuffix("weebly.com", "Weebly", 2013),
    PrivateSuffix("webflow.io", "Webflow", 2017),
    PrivateSuffix("surge.sh", "Surge", 2016),
    PrivateSuffix("neocities.org", "Neocities", 2015),
    PrivateSuffix("000webhostapp.com", "Hostinger", 2017),
    PrivateSuffix("azurestaticapps.net", "Microsoft Azure", 2021),
    PrivateSuffix("web.core.windows.net", "Azure Blob Storage", 2019),
    PrivateSuffix("s3.amazonaws.com", "Amazon S3", 2012),
    PrivateSuffix("hubspotpagebuilder.com", "HubSpot", 2020, arbitrary_content=False),
    PrivateSuffix("translate.goog", "Google Translate", 2021, arbitrary_content=False),
    PrivateSuffix("gentapps.com", "Gentics", 2020, arbitrary_content=False),
    PrivateSuffix("firebasestorage.googleapis.com", "Firebase Storage", 2021),
    PrivateSuffix("linodeobjects.com", "Linode", 2020),
    PrivateSuffix("backblazeb2.com", "Backblaze", 2019),
    PrivateSuffix("wasabisys.com", "Wasabi", 2019),
    PrivateSuffix("ngrok.io", "ngrok", 2016, arbitrary_content=False),
    PrivateSuffix("statically.io", "Statically", 2020, arbitrary_content=False),
    PrivateSuffix("jsdelivr.net", "jsDelivr", 2018, arbitrary_content=False),
)

# Blogspot operates one domain per country market; all were added in one
# sweep.  Real per-country blogspot suffixes.
BLOGSPOT_COUNTRIES: tuple[str, ...] = (
    "ae", "al", "am", "ba", "be", "bg", "bj", "ca", "cf", "ch", "cl",
    "co.at", "co.id", "co.il", "co.ke", "co.nz", "co.uk", "co.za",
    "com.ar", "com.au", "com.br", "com.by", "com.co", "com.cy", "com.ee",
    "com.eg", "com.es", "com.mt", "com.ng", "com.tr", "com.uy", "cv",
    "cz", "de", "dk", "fi", "fr", "gr", "hk", "hr", "hu", "ie", "in",
    "is", "it", "jp", "kr", "li", "lt", "lu", "md", "mk", "mr", "mx",
    "my", "nl", "no", "pe", "pt", "qa", "re", "ro", "rs", "ru", "se",
    "sg", "si", "sk", "sn", "td", "tw", "ug", "vn",
)


def blogspot_suffixes() -> tuple[PrivateSuffix, ...]:
    """The per-country Blogspot suffix family (added en masse, 2014)."""
    return tuple(
        PrivateSuffix(f"blogspot.{cc}", "Google Blogger", 2014)
        for cc in BLOGSPOT_COUNTRIES
    )


# Real AWS regions; used to build the multi-component S3/EB endpoint rules
# that make up the PSL's small 4-plus-component population.
AWS_REGIONS: tuple[str, ...] = (
    "us-east-1", "us-east-2", "us-west-1", "us-west-2", "eu-west-1",
    "eu-west-2", "eu-west-3", "eu-central-1", "eu-north-1",
    "ap-southeast-1", "ap-southeast-2", "ap-northeast-1",
    "ap-northeast-2", "ap-south-1", "sa-east-1", "ca-central-1",
)


def aws_suffixes() -> tuple[PrivateSuffix, ...]:
    """Regional AWS endpoint rules (3 and 4+ components), era 2016-2018."""
    records: list[PrivateSuffix] = []
    for region in AWS_REGIONS:
        records.append(
            PrivateSuffix(f"s3.{region}.amazonaws.com", "Amazon S3", 2017)
        )
        records.append(
            PrivateSuffix(f"{region}.elasticbeanstalk.com", "AWS Elastic Beanstalk", 2017, arbitrary_content=False)
        )
    # The dualstack endpoints are the real list's 4-plus-component rules.
    for region in AWS_REGIONS[:10]:
        records.append(
            PrivateSuffix(f"s3.dualstack.{region}.amazonaws.com", "Amazon S3", 2018)
        )
    return tuple(records)


def all_known() -> tuple[PrivateSuffix, ...]:
    """Every embedded private suffix with a concrete era (Table 2 excluded)."""
    return KNOWN_SUFFIXES + blogspot_suffixes() + aws_suffixes()
