"""Real top-level domains with IANA categories and introduction eras.

The IANA Root Zone Database labels each TLD as generic, country-code,
sponsored, infrastructure, generic-restricted, or test.  The paper uses
those labels to categorize PSL suffix entries (Section 3).  This module
embeds the real inventory (country codes are complete; the generic set
covers the legacy TLDs plus a large sample of the 2013-2016 new-gTLD
program) together with the year each group entered the root, which the
history synthesizer uses to stage additions over the list's lifetime.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TldCategory(enum.Enum):
    """IANA root zone category labels (paper Section 3)."""

    GENERIC = "generic"
    GENERIC_RESTRICTED = "generic-restricted"
    COUNTRY_CODE = "country-code"
    SPONSORED = "sponsored"
    INFRASTRUCTURE = "infrastructure"
    TEST = "test"


@dataclass(frozen=True, slots=True)
class TldRecord:
    """One root-zone delegation: the label, its category, and entry year."""

    name: str
    category: TldCategory
    year: int


# -- legacy gTLDs (1985-1988) plus 2000/2004 rounds --------------------------

_LEGACY_GENERIC: tuple[tuple[str, int], ...] = (
    ("com", 1985),
    ("org", 1985),
    ("net", 1985),
    ("info", 2001),
    ("mobi", 2005),
    ("asia", 2007),
)

_GENERIC_RESTRICTED: tuple[tuple[str, int], ...] = (
    ("biz", 2001),
    ("name", 2001),
    ("pro", 2002),
)

_SPONSORED: tuple[tuple[str, int], ...] = (
    ("edu", 1985),
    ("gov", 1985),
    ("mil", 1985),
    ("int", 1988),
    ("aero", 2001),
    ("coop", 2001),
    ("museum", 2001),
    ("cat", 2005),
    ("jobs", 2005),
    ("travel", 2005),
    ("tel", 2007),
    ("post", 2012),
    ("xxx", 2011),
)

_INFRASTRUCTURE: tuple[tuple[str, int], ...] = (("arpa", 1985),)

# -- country-code TLDs (complete ASCII set) ----------------------------------
# Delegation years are bucketed by era; precision beyond "pre-PSL" does not
# matter because every ccTLD predates the list's 2007 creation.

_CC_TLDS: tuple[str, ...] = (
    "ac", "ad", "ae", "af", "ag", "ai", "al", "am", "ao", "aq", "ar", "as",
    "at", "au", "aw", "ax", "az", "ba", "bb", "bd", "be", "bf", "bg", "bh",
    "bi", "bj", "bm", "bn", "bo", "br", "bs", "bt", "bw", "by", "bz", "ca",
    "cc", "cd", "cf", "cg", "ch", "ci", "ck", "cl", "cm", "cn", "co", "cr",
    "cu", "cv", "cw", "cx", "cy", "cz", "de", "dj", "dk", "dm", "do", "dz",
    "ec", "ee", "eg", "er", "es", "et", "eu", "fi", "fj", "fk", "fm", "fo",
    "fr", "ga", "gd", "ge", "gf", "gg", "gh", "gi", "gl", "gm", "gn", "gp",
    "gq", "gr", "gs", "gt", "gu", "gw", "gy", "hk", "hm", "hn", "hr", "ht",
    "hu", "id", "ie", "il", "im", "in", "io", "iq", "ir", "is", "it", "je",
    "jm", "jo", "jp", "ke", "kg", "kh", "ki", "km", "kn", "kp", "kr", "kw",
    "ky", "kz", "la", "lb", "lc", "li", "lk", "lr", "ls", "lt", "lu", "lv",
    "ly", "ma", "mc", "md", "me", "mg", "mh", "mk", "ml", "mm", "mn", "mo",
    "mp", "mq", "mr", "ms", "mt", "mu", "mv", "mw", "mx", "my", "mz", "na",
    "nc", "ne", "nf", "ng", "ni", "nl", "no", "np", "nr", "nu", "nz", "om",
    "pa", "pe", "pf", "pg", "ph", "pk", "pl", "pm", "pn", "pr", "ps", "pt",
    "pw", "py", "qa", "re", "ro", "rs", "ru", "rw", "sa", "sb", "sc", "sd",
    "se", "sg", "sh", "si", "sk", "sl", "sm", "sn", "so", "sr", "ss", "st",
    "sv", "sx", "sy", "sz", "tc", "td", "tf", "tg", "th", "tj", "tk", "tl",
    "tm", "tn", "to", "tr", "tt", "tv", "tw", "tz", "ua", "ug", "uk", "us",
    "uy", "uz", "va", "vc", "ve", "vg", "vi", "vn", "vu", "wf", "ws", "ye",
    "yt", "za", "zm", "zw",
)

# -- new gTLD program (2013-2016) --------------------------------------------
# A real sample of the program's delegations, grouped by delegation year.
# The synthesizer tops these up with deterministic filler names to reach
# the root zone's actual scale (~1200 new gTLDs).

_NEW_GTLDS_BY_YEAR: dict[int, tuple[str, ...]] = {
    2013: (
        "bike", "clothing", "guru", "holdings", "plumbing", "singles",
        "ventures", "camera", "equipment", "estate", "gallery", "graphics",
        "lighting", "photography", "sexy", "tattoo", "technology", "tips",
        "today", "uno", "menu", "buzz", "land", "construction", "contractors",
        "directory", "kitchen", "diamonds", "enterprises", "voyage", "onl",
    ),
    2014: (
        "academy", "agency", "associates", "bargains", "berlin", "best",
        "boutique", "build", "builders", "cab", "camp", "capital", "cards",
        "care", "careers", "cash", "catering", "center", "cheap", "church",
        "city", "claims", "cleaning", "clinic", "club", "codes", "coffee",
        "community", "company", "computer", "condos", "cool", "credit",
        "creditcard", "cruises", "dance", "dating", "deals", "democrat",
        "dental", "digital", "direct", "discount", "domains", "education",
        "email", "engineering", "events", "exchange", "expert", "exposed",
        "fail", "farm", "finance", "financial", "fish", "fitness", "flights",
        "florist", "foundation", "fund", "furniture", "futbol", "gift",
        "glass", "global", "gratis", "gripe", "guide", "healthcare", "help",
        "holiday", "host", "house", "industries", "institute", "insure",
        "international", "investments", "kim", "lease", "life", "limited",
        "limo", "link", "loans", "london", "luxury", "management",
        "marketing", "media", "moda", "moe", "money", "moscow", "network",
        "ninja", "nyc", "partners", "parts", "photo", "photos", "pics",
        "pictures", "pink", "pizza", "place", "press", "productions",
        "properties", "pub", "recipes", "red", "rentals", "repair", "report",
        "rest", "restaurant", "reviews", "rocks", "ruhr", "schule",
        "services", "shoes", "social", "solar", "solutions", "soy", "space",
        "supplies", "supply", "support", "surgery", "systems", "tax",
        "tienda", "tokyo", "tools", "town", "toys", "trade", "training",
        "university", "vacations", "vegas", "viajes", "villas", "vision",
        "vodka", "vote", "voting", "watch", "webcam", "website", "wiki",
        "works", "world", "wtf", "xyz", "zone",
    ),
    2015: (
        "accountant", "adult", "airforce", "apartments", "army", "auction",
        "audio", "band", "bank", "bar", "bid", "bingo", "bio", "black",
        "blue", "boats", "casa", "casino", "chat", "cloud", "coach",
        "college", "cooking", "country", "courses", "cricket", "date",
        "delivery", "design", "dog", "download", "earth", "energy",
        "engineer", "faith", "family", "fans", "fashion", "film", "fit",
        "flowers", "football", "forsale", "garden", "gives", "gold", "golf",
        "green", "gifts", "hockey", "horse", "hosting", "irish", "jewelry",
        "lawyer", "legal", "loan", "lol", "love", "market", "markets",
        "memorial", "men", "mortgage", "movie", "navy", "news", "online",
        "paris", "party", "pet", "plus", "poker", "porn", "racing",
        "rehab", "review", "rip", "run", "sale", "school", "science",
        "site", "ski", "soccer", "studio", "study", "style", "sucks",
        "surf", "taxi", "team", "tech", "tennis", "theater", "tours",
        "video", "vip", "wang", "wedding", "win", "wine", "work", "yoga",
    ),
    2016: (
        "app", "art", "auto", "baby", "beauty", "blog", "boston", "car",
        "cars", "doctor", "eco", "exposedtest", "fun", "fyi", "game",
        "games", "group", "hair", "homes", "hot", "jetzt", "live", "llc",
        "ltd", "mba", "miami", "mom", "motorcycles", "one", "promo",
        "realty", "salon", "security", "shop", "shopping", "show", "store",
        "stream", "sydney", "theatre", "tickets", "tube", "vin", "vlaanderen",
        "wales", "watches", "web", "yachts", "you",
    ),
    2018: ("dev", "page", "new", "day"),
    2019: ("inc", "llp", "gay", "charity"),
}


def all_tlds() -> tuple[TldRecord, ...]:
    """The full embedded root zone, in a stable deterministic order."""
    records: list[TldRecord] = []
    for name, year in _LEGACY_GENERIC:
        records.append(TldRecord(name, TldCategory.GENERIC, year))
    for name, year in _GENERIC_RESTRICTED:
        records.append(TldRecord(name, TldCategory.GENERIC_RESTRICTED, year))
    for name, year in _SPONSORED:
        records.append(TldRecord(name, TldCategory.SPONSORED, year))
    for name, year in _INFRASTRUCTURE:
        records.append(TldRecord(name, TldCategory.INFRASTRUCTURE, year))
    for name in _CC_TLDS:
        records.append(TldRecord(name, TldCategory.COUNTRY_CODE, 1994))
    for year, names in sorted(_NEW_GTLDS_BY_YEAR.items()):
        for name in names:
            records.append(TldRecord(name, TldCategory.GENERIC, year))
    return tuple(records)


def country_code_tlds() -> tuple[str, ...]:
    """All embedded ccTLD labels."""
    return _CC_TLDS


def new_gtlds_by_year() -> dict[int, tuple[str, ...]]:
    """Real new-gTLD delegations grouped by year (2013-2019 sample)."""
    return dict(_NEW_GTLDS_BY_YEAR)


def legacy_tlds() -> tuple[str, ...]:
    """TLDs that existed before the PSL was created in 2007."""
    return tuple(
        record.name for record in all_tlds() if record.year < 2007
    )
