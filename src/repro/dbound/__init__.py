"""DBOUND prototype: DNS-advertised administrative boundaries.

The paper's conclusion points at draft-sullivan-dbound as the way out
of list-staleness: let the DNS itself advertise where administrative
boundaries lie, so consumers never hold a stale copy.  This package
prototypes that design:

* :mod:`repro.dbound.records` — ``_bound`` records and a zone store;
* :mod:`repro.dbound.resolver` — the lookup walk that answers "what
  site does this hostname belong to?" from records;
* :mod:`repro.dbound.compare` — agreement metrics between
  record-derived boundaries and PSL-derived ones, quantifying what a
  migration would preserve.
"""

from repro.dbound.compare import BoundaryAgreement, compare_boundaries
from repro.dbound.records import BoundaryRecord, BoundaryZone
from repro.dbound.resolver import BoundaryResolver

__all__ = [
    "BoundaryAgreement",
    "BoundaryRecord",
    "BoundaryResolver",
    "BoundaryZone",
    "compare_boundaries",
]
