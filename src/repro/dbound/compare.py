"""Agreement between record-derived and PSL-derived boundaries.

A migration to DNS-advertised boundaries is only plausible if records
generated from the current list reproduce its decisions.  The
comparator measures exactly that over a hostname universe, and — run
against an *older* list's zone — quantifies how record freshness
removes the staleness harm the paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.dbound.records import BoundaryZone
from repro.dbound.resolver import BoundaryResolver
from repro.psl.list import PublicSuffixList


@dataclass(frozen=True, slots=True)
class BoundaryAgreement:
    """Outcome of one comparison run."""

    hostnames: int
    matching_sites: int
    disagreements: tuple[tuple[str, str, str], ...]  # host, record site, psl site

    @property
    def agreement_rate(self) -> float:
        """Fraction of hostnames resolved to the same site."""
        if self.hostnames == 0:
            return 1.0
        return self.matching_sites / self.hostnames


def compare_boundaries(
    psl: PublicSuffixList,
    hostnames: Iterable[str],
    *,
    zone: BoundaryZone | None = None,
    disagreement_limit: int = 25,
) -> BoundaryAgreement:
    """Resolve every hostname both ways and report agreement.

    ``zone`` defaults to the zone a full migration of ``psl`` would
    publish; pass a zone built from a different list version to study
    drift.
    """
    zone = zone if zone is not None else BoundaryZone.from_psl(psl)
    resolver = BoundaryResolver(zone)
    matches = 0
    total = 0
    disagreements: list[tuple[str, str, str]] = []
    for host in hostnames:
        total += 1
        record_site = resolver.resolve(host).site
        psl_site = psl.site_of(host)
        if record_site == psl_site:
            matches += 1
        elif len(disagreements) < disagreement_limit:
            disagreements.append((host, record_site, psl_site))
    return BoundaryAgreement(
        hostnames=total, matching_sites=matches, disagreements=tuple(disagreements)
    )
