"""``_bound`` records and the zone store.

Following the DBOUND problem statement, a domain operator publishes a
record at ``_bound.<name>`` asserting whether names below ``<name>``
are independently administered.  Two assertions suffice to express
everything the PSL expresses:

* ``INDEPENDENT`` — each direct child of ``<name>`` is its own
  administrative domain (the wildcard-suffix case: ``github.io``);
* ``BOUNDARY`` — ``<name>`` itself is a registration point; a child's
  registrable domain is ``<child>.<name>`` (the ``co.uk`` case).

The zone store maps names to records, standing in for the DNS.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.psl.list import PublicSuffixList
from repro.psl.rules import RuleKind


class Assertion(enum.Enum):
    """What a ``_bound`` record claims about names below its owner."""

    BOUNDARY = "boundary"
    INDEPENDENT = "independent"


@dataclass(frozen=True, slots=True)
class BoundaryRecord:
    """One published ``_bound`` record."""

    owner: str
    assertion: Assertion

    @property
    def record_name(self) -> str:
        """The DNS name the record would live at."""
        return f"_bound.{self.owner}"


class BoundaryZone:
    """An in-memory stand-in for the DNS's ``_bound`` records."""

    def __init__(self) -> None:
        self._records: dict[str, BoundaryRecord] = {}

    def __len__(self) -> int:
        return len(self._records)

    def publish(self, owner: str, assertion: Assertion) -> BoundaryRecord:
        """Publish (or replace) the record for ``owner``."""
        record = BoundaryRecord(owner=owner.lower().rstrip("."), assertion=assertion)
        self._records[record.owner] = record
        return record

    def withdraw(self, owner: str) -> bool:
        """Remove ``owner``'s record; True when one existed."""
        return self._records.pop(owner.lower().rstrip("."), None) is not None

    def lookup(self, owner: str) -> BoundaryRecord | None:
        """The record published exactly at ``owner``, if any."""
        return self._records.get(owner.lower().rstrip("."))

    def to_nameserver(self):
        """Publish every record into a real DNS nameserver.

        Each assertion becomes a TXT record ``bound=<assertion>`` at
        ``_bound.<owner>``, all under a single synthetic zone (the
        in-memory equivalent of each operator publishing in their own
        zone).  Pair with
        :class:`repro.dbound.resolver.DnsBoundaryResolver`.
        """
        from repro.net.dns import Nameserver, RecordType, ResourceRecord, Zone

        zone = Zone("")  # the root: every name is in-zone
        for record in self._records.values():
            zone.add(
                ResourceRecord(
                    record.record_name,
                    RecordType.TXT,
                    f"bound={record.assertion.value}",
                )
            )
        return Nameserver([zone])

    @classmethod
    def from_psl(cls, psl: PublicSuffixList) -> "BoundaryZone":
        """Publish the records a full PSL migration would create.

        Every suffix rule becomes a ``BOUNDARY`` record at the suffix;
        wildcard rules become ``INDEPENDENT`` records at their base.
        Exception rules need no record: the exception's owner simply
        publishes nothing, and the resolver's default applies.
        """
        zone = cls()
        for rule in psl.rules:
            if rule.kind is RuleKind.WILDCARD:
                base = ".".join(reversed(rule.labels[:-1]))
                zone.publish(base, Assertion.INDEPENDENT)
            elif rule.kind is RuleKind.NORMAL:
                zone.publish(rule.name, Assertion.BOUNDARY)
        return zone
