"""Answering boundary queries from ``_bound`` records.

The resolver walks a hostname's ancestors from the TLD downward,
tracking the deepest name asserted to be a boundary or independence
point — the record-based equivalent of the PSL's longest-match rule.
Because records live in the operator's zone, a consumer is never
stale: the "list" is resolved at query time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dbound.records import Assertion, BoundaryZone


@dataclass(frozen=True, slots=True)
class BoundaryAnswer:
    """The resolver's verdict for one hostname."""

    hostname: str
    public_suffix: str
    registrable_domain: str | None

    @property
    def site(self) -> str:
        """The privacy-boundary key (mirrors SuffixMatch.site)."""
        return self.registrable_domain or self.public_suffix


class BoundaryResolver:
    """Resolves hostnames to sites using a :class:`BoundaryZone`."""

    def __init__(self, zone: BoundaryZone, *, lookup_counter: bool = False) -> None:
        self._zone = zone
        self.lookups = 0
        self._count = lookup_counter

    def resolve(self, hostname: str) -> BoundaryAnswer:
        """The record-walk equivalent of the PSL lookup algorithm.

        Walking from the TLD leftward, the suffix extends through every
        name holding a ``BOUNDARY`` record; an ``INDEPENDENT`` record
        extends the suffix one label past its owner.  With no records
        at all, the TLD is the suffix (the PSL's implicit ``*`` rule).
        """
        labels = hostname.lower().rstrip(".").split(".")
        suffix_length = 1
        # Examine ancestors from shortest (TLD) to longest.
        for take in range(1, len(labels) + 1):
            owner = ".".join(labels[len(labels) - take :])
            if self._count:
                self.lookups += 1
            record = self._zone.lookup(owner)
            if record is None:
                continue
            if record.assertion is Assertion.BOUNDARY:
                suffix_length = max(suffix_length, take)
            elif record.assertion is Assertion.INDEPENDENT and take < len(labels):
                # Independence speaks about *children* of the owner; at
                # the owner itself it asserts nothing (exactly as a PSL
                # wildcard does not match its own base).
                suffix_length = max(suffix_length, take + 1)
        suffix = ".".join(labels[len(labels) - suffix_length :])
        if len(labels) > suffix_length:
            registrable = ".".join(labels[len(labels) - suffix_length - 1 :])
        else:
            registrable = None
        return BoundaryAnswer(
            hostname=".".join(labels), public_suffix=suffix, registrable_domain=registrable
        )

    def same_site(self, first: str, second: str) -> bool:
        """Record-derived same-site check."""
        return self.resolve(first).site == self.resolve(second).site


class DnsBoundaryResolver:
    """Boundary resolution over the real DNS substrate.

    Queries ``_bound.<ancestor>`` TXT records through a
    :class:`repro.net.dns.StubResolver`, so boundary answers go through
    genuine DNS mechanics — per-name queries, caching, negative
    caching.  ``resolver.upstream_queries`` then measures the protocol
    cost the DBOUND draft worries about, and the cache shows why it
    amortizes.
    """

    def __init__(self, resolver) -> None:
        self._resolver = resolver

    def _assertion_at(self, owner: str) -> Assertion | None:
        from repro.net.dns import RecordType

        for text in self._resolver.resolve(f"_bound.{owner}", RecordType.TXT).texts():
            if text == "bound=boundary":
                return Assertion.BOUNDARY
            if text == "bound=independent":
                return Assertion.INDEPENDENT
        return None

    def resolve(self, hostname: str) -> BoundaryAnswer:
        """Same walk as :class:`BoundaryResolver`, one DNS query per
        ancestor (cached by the stub resolver)."""
        labels = hostname.lower().rstrip(".").split(".")
        suffix_length = 1
        for take in range(1, len(labels) + 1):
            owner = ".".join(labels[len(labels) - take :])
            assertion = self._assertion_at(owner)
            if assertion is Assertion.BOUNDARY:
                suffix_length = max(suffix_length, take)
            elif assertion is Assertion.INDEPENDENT and take < len(labels):
                suffix_length = max(suffix_length, take + 1)
        suffix = ".".join(labels[len(labels) - suffix_length :])
        registrable = (
            ".".join(labels[len(labels) - suffix_length - 1 :])
            if len(labels) > suffix_length
            else None
        )
        return BoundaryAnswer(
            hostname=".".join(labels), public_suffix=suffix, registrable_domain=registrable
        )

    def same_site(self, first: str, second: str) -> bool:
        """DNS-backed same-site check."""
        return self.resolve(first).site == self.resolve(second).site
