"""Canonical fingerprinting: one keying scheme for every durable cache.

Pipeline artifacts (:mod:`repro.pipeline`), sweep checkpoint manifests
(:mod:`repro.runtime.checkpoint`), and the sweep engine's resume keys
(:mod:`repro.sweep.engine`) all derive their identities here, so two
layers can never disagree about what "the same run" means: the caller
describes the run as plain data (dicts, dataclasses, dates, sets, …),
:func:`fingerprint` canonicalizes it to sorted-key JSON and hashes it
with SHA-256.

Canonicalization rules (:func:`canonical`):

* mappings keep their keys, ordered by the JSON serializer;
* lists and tuples both become JSON arrays;
* sets and frozensets are sorted by their canonical JSON encoding, so
  iteration order (which varies under hash randomization) never leaks
  into a fingerprint;
* dataclasses become ``{"__dataclass__": <qualified name>, <fields…>}``
  — the type name is included so two configs with coincidentally equal
  fields key differently;
* enums become ``{"__enum__": <qualified name>, "value": …}``;
* dates/datetimes use ISO-8601; bytes are hex-encoded.

Anything else raises ``TypeError`` — an un-canonicalizable object in a
cache key is a caller bug, never something to guess about.
"""

from __future__ import annotations

import dataclasses
import datetime
import enum
import hashlib
import json
from typing import Any

__all__ = ["canonical", "canonical_json", "fingerprint"]


def _qualified_name(cls: type) -> str:
    return f"{cls.__module__}.{cls.__qualname__}"


def canonical(obj: Any) -> Any:
    """Reduce ``obj`` to JSON-serializable data with deterministic order."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr round-trips; JSON serializes floats via repr already.
        return obj
    if isinstance(obj, bytes):
        return {"__bytes__": obj.hex()}
    if isinstance(obj, enum.Enum):
        return {"__enum__": _qualified_name(type(obj)), "value": canonical(obj.value)}
    if isinstance(obj, datetime.datetime):
        return {"__datetime__": obj.isoformat()}
    if isinstance(obj, datetime.date):
        return {"__date__": obj.isoformat()}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        reduced: dict[str, Any] = {"__dataclass__": _qualified_name(type(obj))}
        for field in dataclasses.fields(obj):
            reduced[field.name] = canonical(getattr(obj, field.name))
        return reduced
    if isinstance(obj, dict):
        return {key: canonical(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [canonical(item) for item in obj]
    if isinstance(obj, (set, frozenset)):
        items = [canonical(item) for item in obj]
        return sorted(items, key=lambda item: json.dumps(item, sort_keys=True))
    raise TypeError(f"cannot canonicalize {type(obj).__name__!r} for fingerprinting")


def canonical_json(obj: Any) -> str:
    """The canonical JSON encoding of ``obj`` (sorted keys, no spaces)."""
    return json.dumps(canonical(obj), sort_keys=True, separators=(",", ":"), ensure_ascii=False)


def fingerprint(obj: Any) -> str:
    """SHA-256 hex digest of the canonical JSON encoding of ``obj``.

    Strings pass through canonicalization like any other value, so
    ``fingerprint("abc") != "abc"`` — a fingerprint is always a digest,
    never the raw material.
    """
    return hashlib.sha256(
        canonical_json(obj).encode("utf-8", "surrogatepass")
    ).hexdigest()
