"""Versioned Public Suffix List history.

The paper extracts 1,142 dated versions of the PSL from its GitHub
history.  This package provides the equivalent substrate:

* :mod:`repro.history.version` — the per-version record (date, commit
  hash, delta, rule count);
* :mod:`repro.history.store` — an append-only, content-addressed commit
  store with snapshot-accelerated checkout;
* :mod:`repro.history.timeline` — growth statistics computed in one
  pass over the deltas (Figure 2), and rule addition/removal dating;
* :mod:`repro.history.synthesis` — the deterministic generator that
  replays a history with the real list's measured shape.
"""

from repro.history.export import export_history, export_patches, import_history, import_patches
from repro.history.stats import cadence, churn
from repro.history.store import VersionStore
from repro.history.synthesis import SynthesisConfig, synthesize_history
from repro.history.timeline import GrowthPoint, growth_series, rule_addition_dates
from repro.history.version import PslVersion

__all__ = [
    "GrowthPoint",
    "PslVersion",
    "SynthesisConfig",
    "VersionStore",
    "cadence",
    "churn",
    "export_history",
    "export_patches",
    "growth_series",
    "import_history",
    "import_patches",
    "rule_addition_dates",
    "synthesize_history",
]
