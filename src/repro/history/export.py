"""Exporting and importing histories as directory trees.

The paper's artifact release ships the extracted list versions as
files.  This module provides the same interchange format: a directory
with one canonical ``.dat`` per version plus a JSON index carrying
dates, hashes, and messages.  Round-tripping through the format
preserves every version's rule set and metadata, so a history can be
rebuilt on another machine (or from a real ``publicsuffix/list``
checkout processed into this layout) and fed to the dating and sweep
machinery unchanged.
"""

from __future__ import annotations

import datetime
import json
import os

from repro.history.store import VersionStore
from repro.psl.diff import diff_rules
from repro.psl.list import PublicSuffixList
from repro.psl.parser import parse_psl_file
from repro.psl.serialize import serialize_rules

INDEX_FILENAME = "index.json"


def export_history(store: VersionStore, directory: str) -> int:
    """Write every version to ``directory``; returns the version count.

    Layout::

        index.json                     # [{index, date, commit, message, file}]
        0000_2007-03-22.dat
        0001_2007-04-02.dat
        …
    """
    os.makedirs(directory, exist_ok=True)
    index: list[dict[str, object]] = []
    for version in store:
        filename = f"{version.index:04d}_{version.date.isoformat()}.dat"
        with open(os.path.join(directory, filename), "w", encoding="utf-8") as handle:
            handle.write(serialize_rules(store.rules_at(version.index)))
        index.append(
            {
                "index": version.index,
                "date": version.date.isoformat(),
                "commit": version.commit,
                "message": version.message,
                "file": filename,
            }
        )
    with open(os.path.join(directory, INDEX_FILENAME), "w", encoding="utf-8") as handle:
        json.dump(index, handle, indent=1)
    return len(index)


def export_patches(store: VersionStore, directory: str) -> int:
    """Write every version's delta as a ``.patch`` file.

    Far smaller than full ``.dat`` snapshots (each patch holds only the
    changed rules) and sufficient to rebuild the history given the
    initial version — the compact interchange variant.
    """
    os.makedirs(directory, exist_ok=True)
    for version in store:
        filename = f"{version.index:04d}_{version.date.isoformat()}.patch"
        with open(os.path.join(directory, filename), "w", encoding="utf-8") as handle:
            handle.write(version.delta.to_patch() + "\n")
    return len(store)


def import_patches(directory: str, *, snapshot_interval: int = 64) -> VersionStore:
    """Rebuild a store from a patch directory written by
    :func:`export_patches`."""
    from repro.psl.diff import RuleDelta

    entries: list[tuple[int, datetime.date, str]] = []
    for filename in os.listdir(directory):
        if not filename.endswith(".patch"):
            continue
        stem = filename[: -len(".patch")]
        index_text, _, date_text = stem.partition("_")
        entries.append((int(index_text), datetime.date.fromisoformat(date_text), filename))
    entries.sort()

    store = VersionStore(snapshot_interval=snapshot_interval)
    for _, date, filename in entries:
        with open(os.path.join(directory, filename), encoding="utf-8") as handle:
            store.commit(date, RuleDelta.from_patch(handle.read()))
    return store


def import_history(directory: str, *, snapshot_interval: int = 64) -> VersionStore:
    """Rebuild a :class:`VersionStore` from an exported directory.

    Deltas are recomputed from consecutive file contents; commit hashes
    therefore re-chain from scratch and match the original store when
    the content does (the round-trip test asserts this).
    """
    index_path = os.path.join(directory, INDEX_FILENAME)
    with open(index_path, encoding="utf-8") as handle:
        index = json.load(handle)
    index.sort(key=lambda entry: entry["index"])

    store = VersionStore(snapshot_interval=snapshot_interval)
    previous = PublicSuffixList()
    for entry in index:
        psl = parse_psl_file(os.path.join(directory, str(entry["file"])))
        delta = diff_rules(previous, psl)
        store.commit(
            datetime.date.fromisoformat(str(entry["date"])),
            delta,
            message=str(entry.get("message", "")),
        )
        previous = psl
    return store


def import_plain_directory(directory: str, *, snapshot_interval: int = 64) -> VersionStore:
    """Build a store from a bare directory of dated ``.dat`` files.

    For trees without an index (e.g. hand-collected snapshots), files
    must be named ``<anything>_YYYY-MM-DD.dat`` or ``YYYY-MM-DD.dat``;
    they are ingested in date order, skipping files whose rules equal
    the previous version (the store refuses empty deltas).
    """
    dated: list[tuple[datetime.date, str]] = []
    for filename in os.listdir(directory):
        if not filename.endswith(".dat"):
            continue
        stem = filename[: -len(".dat")]
        candidate = stem.rsplit("_", 1)[-1]
        try:
            date = datetime.date.fromisoformat(candidate)
        except ValueError:
            continue
        dated.append((date, filename))
    dated.sort()

    store = VersionStore(snapshot_interval=snapshot_interval)
    previous = PublicSuffixList()
    for date, filename in dated:
        psl = parse_psl_file(os.path.join(directory, filename))
        delta = diff_rules(previous, psl)
        if not delta:
            continue
        store.commit(date, delta, message=f"imported from {filename}")
        previous = psl
    return store
