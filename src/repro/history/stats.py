"""Cadence and churn statistics over a history.

The paper describes the list's release rhythm qualitatively ("a new
list is published several times each month"); these summaries make the
synthetic history's rhythm measurable — versions per year, gaps
between versions, delta sizes — so tests can hold the generator to the
description and users can compare against a real extracted history.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.history.store import VersionStore


@dataclass(frozen=True, slots=True)
class CadenceStats:
    """Release-rhythm summary of one history."""

    versions: int
    years: int
    mean_versions_per_year: float
    mean_gap_days: float
    max_gap_days: int
    versions_per_year: dict[int, int]


def cadence(store: VersionStore) -> CadenceStats:
    """Measure the publishing rhythm."""
    dates = [version.date for version in store]
    per_year: dict[int, int] = {}
    for date in dates:
        per_year[date.year] = per_year.get(date.year, 0) + 1
    gaps = [
        (second - first).days for first, second in zip(dates, dates[1:])
    ]
    years = len(per_year)
    return CadenceStats(
        versions=len(dates),
        years=years,
        mean_versions_per_year=len(dates) / years if years else 0.0,
        mean_gap_days=sum(gaps) / len(gaps) if gaps else 0.0,
        max_gap_days=max(gaps, default=0),
        versions_per_year=per_year,
    )


@dataclass(frozen=True, slots=True)
class ChurnStats:
    """Delta-size summary: how much each version changes."""

    total_added: int
    total_removed: int
    mean_delta_size: float
    largest_delta: int

    @property
    def net_growth(self) -> int:
        return self.total_added - self.total_removed


def churn(store: VersionStore) -> ChurnStats:
    """Measure per-version change volume."""
    added = removed = largest = 0
    for version in store:
        added += len(version.delta.added)
        removed += len(version.delta.removed)
        largest = max(largest, len(version.delta))
    count = len(store) or 1
    return ChurnStats(
        total_added=added,
        total_removed=removed,
        mean_delta_size=(added + removed) / count,
        largest_delta=largest,
    )
