"""Append-only, content-addressed store of PSL versions.

The store models what the paper extracted from the publicsuffix/list
git repository: an ordered sequence of dated rule-set versions.  Three
access patterns matter and are all supported efficiently:

* **sequential replay** (the version sweeps of Figures 5-7) — walk
  ``versions`` and apply each :class:`~repro.psl.diff.RuleDelta`;
* **random checkout** (list dating, harm analysis) — periodic frozen
  snapshots bound the number of deltas replayed to reach any index;
* **date queries** (corpus construction) — binary search over the
  monotone date sequence.

Materialized :class:`~repro.psl.list.PublicSuffixList` objects are
cached with a small LRU because building the suffix trie dominates
checkout cost.
"""

from __future__ import annotations

import bisect
import datetime
from collections import OrderedDict
from typing import Iterable, Iterator

from repro.psl.diff import RuleDelta
from repro.psl.list import PublicSuffixList
from repro.psl.rules import Rule
from repro.history.version import PslVersion, commit_hash, rule_digest

GENESIS_HASH = "0" * 64


class VersionStore:
    """An ordered, append-only sequence of PSL versions."""

    def __init__(self, *, snapshot_interval: int = 64, checkout_cache_size: int = 8) -> None:
        if snapshot_interval < 1:
            raise ValueError("snapshot_interval must be positive")
        self._versions: list[PslVersion] = []
        self._dates: list[datetime.date] = []
        self._snapshot_interval = snapshot_interval
        self._snapshots: dict[int, frozenset[Rule]] = {}
        self._checkout_cache: OrderedDict[int, PublicSuffixList] = OrderedDict()
        self._checkout_cache_size = checkout_cache_size
        self._tip_rules: set[Rule] = set()
        self._tip_digest = 0
        self._index_by_digest: dict[int, int] = {}

    # -- writing -------------------------------------------------------------

    def commit(self, date: datetime.date, delta: RuleDelta, message: str = "") -> PslVersion:
        """Append a new version.

        Enforces the invariants a real VCS history provides: dates are
        monotone non-decreasing, removed rules must exist, added rules
        must not, and empty deltas are rejected (the paper's 1,142
        "versions" are exactly the commits that changed the rule set).
        """
        if not delta:
            raise ValueError("refusing to commit an empty delta")
        if self._versions and date < self._versions[-1].date:
            raise ValueError(
                f"non-monotone commit date {date} after {self._versions[-1].date}"
            )
        missing = delta.removed - self._tip_rules
        if missing:
            raise ValueError(
                f"delta removes absent rules: {sorted(r.text for r in missing)[:5]}"
            )
        present = delta.added & self._tip_rules
        if present:
            raise ValueError(
                f"delta adds duplicate rules: {sorted(r.text for r in present)[:5]}"
            )

        parent = self._versions[-1].commit if self._versions else GENESIS_HASH
        self._tip_rules -= delta.removed
        self._tip_rules |= delta.added
        for rule in delta.removed:
            self._tip_digest ^= rule_digest(rule.text)
        for rule in delta.added:
            self._tip_digest ^= rule_digest(rule.text)
        version = PslVersion(
            index=len(self._versions),
            date=date,
            commit=commit_hash(parent, date, delta),
            delta=delta,
            rule_count=len(self._tip_rules),
            set_digest=self._tip_digest,
            message=message,
        )
        self._index_by_digest.setdefault(self._tip_digest, version.index)
        self._versions.append(version)
        self._dates.append(date)
        if version.index % self._snapshot_interval == 0:
            self._snapshots[version.index] = frozenset(self._tip_rules)
        return version

    def commit_rules(self, date: datetime.date, added: Iterable[Rule] = (), removed: Iterable[Rule] = (), message: str = "") -> PslVersion:
        """Convenience wrapper building the delta from rule iterables."""
        return self.commit(
            date,
            RuleDelta(added=frozenset(added), removed=frozenset(removed)),
            message=message,
        )

    # -- reading -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._versions)

    def __iter__(self) -> Iterator[PslVersion]:
        return iter(self._versions)

    @property
    def versions(self) -> tuple[PslVersion, ...]:
        """All versions, oldest first."""
        return tuple(self._versions)

    @property
    def latest(self) -> PslVersion:
        """The newest version."""
        if not self._versions:
            raise IndexError("store is empty")
        return self._versions[-1]

    def version(self, index: int) -> PslVersion:
        """The version at ``index`` (supports negative indices)."""
        return self._versions[index]

    def version_at_date(self, date: datetime.date) -> PslVersion | None:
        """The newest version dated on or before ``date``, or None.

        This is how a vendored list copied on some day maps to a list
        version: the file reflects whatever the list looked like then.
        """
        position = bisect.bisect_right(self._dates, date)
        if position == 0:
            return None
        return self._versions[position - 1]

    def rules_at(self, index: int) -> frozenset[Rule]:
        """The full rule set of the version at ``index``.

        Starts from the nearest snapshot at or below ``index`` and
        replays at most ``snapshot_interval - 1`` deltas.
        """
        if index < 0:
            index += len(self._versions)
        if not 0 <= index < len(self._versions):
            raise IndexError(f"version index {index} out of range")
        snapshot_index = (index // self._snapshot_interval) * self._snapshot_interval
        while snapshot_index not in self._snapshots and snapshot_index > 0:
            snapshot_index -= self._snapshot_interval
        rules = set(self._snapshots.get(snapshot_index, frozenset()))
        start = snapshot_index if snapshot_index in self._snapshots else -1
        # Replay deltas strictly after the snapshot version up to index.
        for position in range(start + 1, index + 1):
            delta = self._versions[position].delta
            rules -= delta.removed
            rules |= delta.added
        return frozenset(rules)

    def checkout(self, index: int) -> PublicSuffixList:
        """Materialize the version at ``index`` as a PublicSuffixList."""
        if index < 0:
            index += len(self._versions)
        cached = self._checkout_cache.get(index)
        if cached is not None:
            self._checkout_cache.move_to_end(index)
            return cached
        psl = PublicSuffixList(self.rules_at(index))
        self._checkout_cache[index] = psl
        if len(self._checkout_cache) > self._checkout_cache_size:
            self._checkout_cache.popitem(last=False)
        return psl

    def checkout_date(self, date: datetime.date) -> PublicSuffixList | None:
        """Materialize the newest version on or before ``date``."""
        version = self.version_at_date(date)
        if version is None:
            return None
        return self.checkout(version.index)

    def find_by_digest(self, digest: int) -> PslVersion | None:
        """The earliest version whose rule set has this digest, if any.

        This is the exact-match path of vendored-list dating: hash the
        vendored rules (order-independent) and look the digest up here.
        """
        index = self._index_by_digest.get(digest)
        if index is None:
            return None
        return self._versions[index]

    def delta_between(self, older: int, newer: int) -> RuleDelta:
        """The net delta from version ``older`` to version ``newer``."""
        if older > newer:
            return self.delta_between(newer, older).invert()
        result = RuleDelta(frozenset(), frozenset())
        for position in range(older + 1, newer + 1):
            result = result.compose(self._versions[position].delta)
        return result
