"""Deterministic synthesis of the PSL's 2007-2022 version history.

The generator replays a history whose externally measurable shape
matches what the paper reports about the real list (Section 3 and
Figure 2):

* 1,142 versions dated 2007-03-22 through 2022-10-20;
* 2,447 rules at creation, 8,062 at the start of 2017, 9,368 at the
  final version;
* the mid-2012 burst of 1,623 Japanese geographic registrations;
* a final component mix of ~17% / 57.5% / 25.3% / ~0.1% for rules of
  one / two / three / four-plus components;
* the early *wildcard era* — over-broad ``*.cc`` rules later replaced
  by explicit second-level entries — which produces the early drop in
  third-party classifications seen in Figure 6;
* every suffix in the calibrated harm schedule
  (:mod:`repro.calibrate.suffixes`) added on its calibrated date, which
  is what makes the Table 2 / Table 3 analyses land on the paper's
  numbers.

Real rules (TLDs, ccTLD second-level tables, known PRIVATE operators)
are used wherever the embedded data has them; deterministic filler
rules make up the difference between the real inventory embedded here
and the actual list's size.
"""

from __future__ import annotations

import datetime
import random
from dataclasses import dataclass, field

from repro.calibrate.ages import all_ages
from repro.calibrate.suffixes import full_schedule
from repro.calibrate.words import compound
from repro.data import cc_second_level, jp_geo, paper, tlds
from repro.data.private_suffixes import all_known
from repro.history.store import VersionStore
from repro.psl.rules import Rule, RuleKind, Section

# Per-year commit budgets; they sum to 1,142 (2007 includes the initial
# version) and skew later, matching the real repository's cadence.
_COMMITS_PER_YEAR: dict[int, int] = {
    2007: 30, 2008: 40, 2009: 50, 2010: 55, 2011: 60, 2012: 70,
    2013: 80, 2014: 85, 2015: 90, 2016: 90, 2017: 85, 2018: 85,
    2019: 85, 2020: 80, 2021: 80, 2022: 77,
}

# Extra second-level labels used to grow ccTLD namespaces beyond the
# embedded real tables (registries do add categories over time).
_FILLER_CC_LABELS: tuple[str, ...] = (
    "info", "biz", "name", "web", "tv", "press", "store", "firm", "nom",
    "rec", "tm", "asso", "med", "law", "eco", "coop", "mus", "art",
    "sport", "tech", "agro", "shop", "blog", "wiki", "mobi", "radio",
    "news", "club", "expo", "fan", "game", "geo", "gold", "idea", "joy",
    "kid", "land", "life", "map", "meet", "mind", "moto", "nest", "open",
    "plan", "plus", "pony", "road", "sale", "scan", "seat", "silk",
    "song", "star", "tape", "team", "tent", "tour", "vote", "wave",
    "wine", "yoga", "zone", "acad", "bank", "city", "data", "dept",
    "farm", "fire", "fish", "folk", "food", "fort", "fund", "grad",
    "hall", "home", "host", "icon", "iris", "jazz", "king", "lake",
    "lime", "loft", "luna", "mark", "mesh", "mill", "mint", "moon",
    "oak", "opal", "park", "peak", "pier", "pine", "port", "rail",
    "reef", "ring", "rose", "ruby", "sage", "sand", "ship", "sky",
    "snow", "soil", "solo", "spot", "spring", "stone", "sun", "surf",
    "swan", "tide", "tree", "vale", "view", "vine", "wall", "well",
    "west", "wind", "wolf", "wood", "yard",
)

_US_STATES: tuple[str, ...] = (
    "ak", "al", "ar", "az", "ca", "co", "ct", "dc", "de", "fl", "ga",
    "hi", "ia", "id", "il", "in", "ks", "ky", "la", "ma", "md", "me",
    "mi", "mn", "mo", "ms", "mt", "nc", "nd", "ne", "nh", "nj", "nm",
    "nv", "ny", "oh", "ok", "or", "pa", "ri", "sc", "sd", "tn", "tx",
    "ut", "va", "vt", "wa", "wi", "wv", "wy",
)

_COMPONENT_TARGETS = {1: 0.17, 2: 0.575, 3: 0.253}  # remainder is 4+


@dataclass(frozen=True, slots=True)
class SynthesisConfig:
    """Tunable shape of the synthetic history (defaults = the paper)."""

    seed: int = 20230701
    version_count: int = paper.HISTORY_VERSION_COUNT
    first_date: datetime.date = paper.HISTORY_FIRST_DATE
    last_date: datetime.date = paper.HISTORY_LAST_DATE
    first_rule_count: int = paper.FIRST_RULE_COUNT
    rule_count_2017: int = paper.RULE_COUNT_2017
    final_rule_count: int = paper.FINAL_RULE_COUNT
    jp_spike_size: int = paper.JP_SPIKE_SIZE
    snapshot_interval: int = 64


@dataclass(slots=True)
class _Event:
    """One scheduled rule change.

    ``pinned`` events carry a calibrated date that must become a real
    version date (the harm analyses measure ages from version dates);
    unpinned events may drift to the nearest later commit.
    """

    date: datetime.date
    rule: Rule
    remove: bool = False
    pinned: bool = False


@dataclass(slots=True)
class _Plan:
    """Accumulated synthesis state."""

    rng: random.Random
    taken_names: set[str] = field(default_factory=set)
    initial: list[Rule] = field(default_factory=list)
    events: list[_Event] = field(default_factory=list)

    def claim(self, name: str) -> bool:
        """Reserve a rule name; False when it is already in use."""
        if name in self.taken_names:
            return False
        self.taken_names.add(name)
        return True

    def add_initial(self, rule: Rule) -> None:
        if self.claim(rule.name if rule.kind is not RuleKind.EXCEPTION else rule.text):
            self.initial.append(rule)

    def schedule(self, date: datetime.date, rule: Rule, *, remove: bool = False, pinned: bool = False) -> None:
        if remove:
            self.events.append(_Event(date, rule, remove=True))
            return
        if self.claim(rule.name):
            self.events.append(_Event(date, rule, pinned=pinned))


def _mid_year(year: int, rng: random.Random) -> datetime.date:
    """A deterministic pseudo-random date inside ``year``."""
    start = datetime.date(year, 1, 15)
    return start + datetime.timedelta(days=rng.randint(0, 320))


def _build_initial(plan: _Plan, config: SynthesisConfig) -> None:
    """The 2007 creation commit: TLDs, ccTLD tables, wildcard era."""
    wildcard_era = set(cc_second_level.WILDCARD_ERA)

    for record in tlds.all_tlds():
        if record.year >= 2007:
            continue
        if record.name in wildcard_era:
            continue
        plan.add_initial(Rule.parse(record.name))
    for cc in wildcard_era:
        plan.add_initial(Rule.parse(f"*.{cc}"))
        for label in cc_second_level.WILDCARD_EXCEPTIONS.get(cc, ()):
            plan.add_initial(Rule.parse(f"!{label}.{cc}"))

    for cc, labels in sorted(cc_second_level.SECOND_LEVEL_SETS.items()):
        if cc in wildcard_era:
            continue
        for label in labels:
            plan.add_initial(Rule.parse(f"{label}.{cc}"))

    # The real list's original US locality structure (3 components).
    for state in _US_STATES:
        for label in ("k12", "cc", "lib"):
            plan.add_initial(Rule.parse(f"{label}.{state}.us"))

    # Default second-level sets for ccTLDs without an embedded table.
    covered = set(cc_second_level.SECOND_LEVEL_SETS) | wildcard_era
    for cc in tlds.country_code_tlds():
        if len(plan.initial) >= config.first_rule_count:
            break
        if cc in covered:
            continue
        for label in cc_second_level.FULL_SET:
            plan.add_initial(Rule.parse(f"{label}.{cc}"))

    # Top up to exactly the paper's creation size with extra labels.
    ccs = [cc for cc in tlds.country_code_tlds() if cc not in wildcard_era]
    label_cursor = 0
    while len(plan.initial) < config.first_rule_count:
        label = _FILLER_CC_LABELS[label_cursor % len(_FILLER_CC_LABELS)]
        cc = ccs[(label_cursor // len(_FILLER_CC_LABELS)) % len(ccs)]
        label_cursor += 1
        if f"{label}.{cc}" in plan.taken_names:
            continue
        plan.add_initial(Rule.parse(f"{label}.{cc}"))
    del plan.initial[config.first_rule_count :]


def _schedule_known_events(plan: _Plan, config: SynthesisConfig) -> None:
    """Every dated real-world change: wildcard refinements, new TLDs,
    the JP spike, known private operators, the calibrated schedule."""
    rng = plan.rng

    # Post-2007 root-zone delegations.
    for record in tlds.all_tlds():
        if record.year < 2007:
            continue
        plan.schedule(_mid_year(record.year, rng), Rule.parse(record.name))

    # Wildcard-era refinements: drop *.cc, add the explicit table.
    for cc, year in sorted(cc_second_level.WILDCARD_ERA.items()):
        if year == 0:
            continue
        date = _mid_year(year, rng)
        plan.schedule(date, Rule.parse(f"*.{cc}"), remove=True)
        for label in cc_second_level.WILDCARD_EXCEPTIONS.get(cc, ()):
            plan.schedule(date, Rule.parse(f"!{label}.{cc}"), remove=True)
        plan.schedule(date, Rule.parse(cc))
        for label in cc_second_level.SECOND_LEVEL_SETS.get(cc, cc_second_level.FULL_SET):
            plan.schedule(date, Rule.parse(f"{label}.{cc}"))

    # The mid-2012 Japanese geographic burst: prefecture rules, the
    # designated-city wildcards with their !city exceptions, and the
    # long tail of city.prefecture.jp rules.
    spike_date = datetime.date(paper.JP_SPIKE_YEAR, 6, 20)
    prefectures = jp_geo.prefecture_suffixes()
    designated: list[str] = []
    for city in jp_geo.DESIGNATED_CITIES:
        designated.append(f"*.{city}.jp")
        designated.append(f"!city.{city}.jp")
    city_count = config.jp_spike_size - len(prefectures) - len(designated)
    cities = jp_geo.city_suffixes(city_count, seed=config.seed)
    for name in tuple(prefectures) + tuple(designated) + cities:
        plan.schedule(spike_date, Rule.parse(name))

    # Known PRIVATE-division operators at their eras.
    for record in all_known():
        assert record.year is not None
        date = _mid_year(max(record.year, 2011), rng)
        plan.schedule(date, Rule.parse(record.suffix, section=Section.PRIVATE))

    # The calibrated harm schedule (drives Tables 2 and 3).  Pinned:
    # these dates become real version dates so measured list ages equal
    # the calibrated ages exactly.
    for suffix in full_schedule(config.seed):
        plan.schedule(
            suffix.addition_date,
            Rule.parse(suffix.suffix, section=suffix.section),
            pinned=True,
        )


def _component_counts(rules: list[Rule]) -> dict[int, int]:
    counts = {1: 0, 2: 0, 3: 0, 4: 0}
    for rule in rules:
        counts[min(rule.component_count, 4)] += 1
    return counts


def _make_filler_rule(plan: _Plan, components: int, ccs: tuple[str, ...]) -> Rule:
    """One synthetic rule with the requested component count."""
    rng = plan.rng
    for _ in range(200):
        if components == 1:
            # New-gTLD-program filler: dictionary-ish or IDN-looking.
            if rng.random() < 0.35:
                name = "xn--" + "".join(rng.choice("abcdefghij0123456789") for _ in range(rng.randint(5, 9)))
            else:
                name = compound(rng)
        elif components == 2:
            if rng.random() < 0.55:
                name = f"{rng.choice(_FILLER_CC_LABELS)}.{rng.choice(ccs)}"
            else:
                tld = rng.choice(("com", "net", "org", "io", "co", "app", "dev", "cloud", "site"))
                name = f"{compound(rng)}.{tld}"
        else:
            base = rng.choice(("no", "it", "pl", "tr", "in", "th", "us", "au"))
            second = rng.choice(_FILLER_CC_LABELS)
            name = f"{compound(rng)}.{second}.{base}"
        if plan.claim(name):
            section = Section.PRIVATE if components == 2 and name.split(".")[-1] in ("com", "net", "org", "io", "co", "app", "dev", "cloud", "site") else Section.ICANN
            return Rule.parse(name, section=section)
    raise RuntimeError("filler namespace exhausted")


def _schedule_filler(plan: _Plan, config: SynthesisConfig) -> None:
    """Filler additions sized so the checkpoints and final component
    mix land on the paper's numbers, plus balancing removals in the
    2017-2022 era."""
    rng = plan.rng
    boundary_2017 = datetime.date(2017, 1, 1)

    current: list[Rule] = list(plan.initial)
    net_pre2017 = 0
    net_post2017 = 0
    for event in plan.events:
        delta = -1 if event.remove else 1
        if event.date < boundary_2017:
            net_pre2017 += delta
        else:
            net_post2017 += delta
        if event.remove:
            current = [rule for rule in current if rule.text != event.rule.text]
        else:
            current.append(event.rule)

    known_final = len(plan.initial) + net_pre2017 + net_post2017
    filler_total = config.final_rule_count - known_final
    if filler_total < 0:
        raise ValueError("known inventory already exceeds the final rule count")

    # Component-mix shortfall determines the filler's composition.
    counts = _component_counts(current)
    needed: dict[int, int] = {}
    for components, share in _COMPONENT_TARGETS.items():
        target = round(config.final_rule_count * share)
        needed[components] = max(0, target - counts[components])
    overshoot = sum(needed.values()) - filler_total
    if overshoot > 0:
        needed[2] = max(0, needed[2] - overshoot)  # 2-comp absorbs drift
    elif overshoot < 0:
        needed[2] += -overshoot

    # Filler is placed before 2017; the post-2017 era is fully "known"
    # (the calibrated schedule), so the 2017 checkpoint fixes how many
    # removals balance the books.
    filler_pre2017 = config.rule_count_2017 - len(plan.initial) - net_pre2017
    if filler_pre2017 < 0:
        raise ValueError("known pre-2017 inventory already exceeds the 2017 checkpoint")
    if filler_pre2017 > filler_total:
        # The 2017 checkpoint needs more pre-2017 rules than the final
        # count leaves room for; mint extra two-component filler and
        # retire the surplus across 2017-2022 (net zero on the final
        # count and on the component mix).
        deficit = filler_pre2017 - filler_total
        needed[2] += deficit
        filler_total += deficit
    removals_post2017 = (config.rule_count_2017 + (filler_total - filler_pre2017) + net_post2017) - config.final_rule_count
    if removals_post2017 < 0:
        raise ValueError("post-2017 era needs additions the plan does not model")

    ccs = tuple(cc for cc in tlds.country_code_tlds() if cc not in cc_second_level.WILDCARD_ERA)

    def filler_date(pre2017: bool, components: int) -> datetime.date:
        if not pre2017:
            return datetime.date(rng.randint(2017, 2021), rng.randint(1, 12), rng.randint(1, 28))
        if components == 1:
            # New-gTLD filler belongs to the 2013-2016 program era.
            year = rng.choice((2013, 2014, 2014, 2015, 2015, 2016))
        else:
            year = rng.choice((2008, 2009, 2010, 2011, 2012, 2013, 2013, 2014, 2014, 2015, 2015, 2016, 2016))
        return datetime.date(year, rng.randint(1, 12), rng.randint(1, 28))

    filler_rules: list[tuple[int, Rule]] = []
    for components, count in sorted(needed.items()):
        for _ in range(count):
            filler_rules.append((components, _make_filler_rule(plan, components, ccs)))
    rng.shuffle(filler_rules)

    pre_quota = filler_pre2017
    removable_pool: list[Rule] = []
    for components, rule in filler_rules:
        pre2017 = pre_quota > 0
        if pre2017:
            pre_quota -= 1
        date = filler_date(pre2017, components)
        plan.events.append(_Event(date, rule))
        if pre2017 and components == 2:
            removable_pool.append(rule)

    # Balancing removals: retire old filler rules across 2017-2022.
    rng.shuffle(removable_pool)
    if removals_post2017 > len(removable_pool):
        raise ValueError("not enough retirable filler rules for balancing removals")
    for position in range(removals_post2017):
        year = 2017 + position % 6
        date = datetime.date(year, rng.randint(1, 12), rng.randint(1, 28))
        plan.events.append(_Event(date, removable_pool[position], remove=True))

    # Churn: short-lived rules added and removed within 2017-2022.  Net
    # zero on every checkpoint and on the final mix, but they give the
    # bucketing pass movable events in the otherwise fully-pinned
    # post-2017 era (version dates there must cover every calibrated
    # suffix date *and* every studied repository's vendoring date).
    for _ in range(120):
        rule = _make_filler_rule(plan, 2, ccs)
        add_year = rng.randint(2017, 2020)
        added = datetime.date(add_year, rng.randint(1, 12), rng.randint(1, 28))
        removed = added + datetime.timedelta(days=rng.randint(120, 600))
        if removed >= datetime.date(2022, 10, 1):
            removed = datetime.date(2022, 9, rng.randint(1, 28))
        plan.events.append(_Event(added, rule))
        plan.events.append(_Event(removed, rule, remove=True))


def _version_dates(
    config: SynthesisConfig,
    rng: random.Random,
    required: set[datetime.date],
    candidates: set[datetime.date],
) -> list[datetime.date]:
    """The 1,142 commit dates.

    Every date in ``required`` (the calibrated schedule, plus the
    history's endpoints) becomes a version date.  The remaining budget
    is drawn from ``candidates`` — the distinct dates of unpinned
    events — so that (almost) every version has at least one event to
    commit; per-year commit budgets steer the cadence toward the real
    repository's (sparser early, denser later), yielding where a year
    simply has too few events.
    """
    required = set(required)
    required.add(config.first_date)
    required.add(config.last_date)
    if min(required) < config.first_date or max(required) > config.last_date:
        raise ValueError("required commit dates fall outside the history span")

    dates: set[datetime.date] = set(required)
    budget = config.version_count - len(dates)
    if budget < 0:
        raise ValueError("more required dates than the version budget allows")

    pool_by_year: dict[int, list[datetime.date]] = {year: [] for year in _COMMITS_PER_YEAR}
    for date in sorted(candidates - dates):
        if date.year in pool_by_year and config.first_date < date < config.last_date:
            pool_by_year[date.year].append(date)

    required_per_year: dict[int, int] = {}
    for date in dates:
        required_per_year[date.year] = required_per_year.get(date.year, 0) + 1

    # First pass: honour each year's budget as far as its events allow.
    for year in sorted(_COMMITS_PER_YEAR):
        if budget == 0:
            break
        room = _COMMITS_PER_YEAR[year] - required_per_year.get(year, 0)
        take = max(0, min(room, len(pool_by_year[year]), budget))
        if take:
            chosen = rng.sample(pool_by_year[year], take)
            dates.update(chosen)
            pool_by_year[year] = [d for d in pool_by_year[year] if d not in set(chosen)]
            budget -= take

    # Second pass: years with leftover event dates absorb the rest.
    for year in sorted(_COMMITS_PER_YEAR, key=lambda y: len(pool_by_year[y]), reverse=True):
        if budget == 0:
            break
        take = min(len(pool_by_year[year]), budget)
        if take:
            dates.update(rng.sample(pool_by_year[year], take))
            budget -= take

    if budget > 0:
        raise RuntimeError(f"not enough event dates to mint {budget} more versions")
    return sorted(dates)


def synthesize_history(config: SynthesisConfig | None = None) -> VersionStore:
    """Build the full synthetic history.

    Deterministic for a given config; the result satisfies the paper's
    checkpoints exactly (tests assert them).
    """
    config = config or SynthesisConfig()
    rng = random.Random(config.seed)
    plan = _Plan(rng=rng)

    _build_initial(plan, config)
    _schedule_known_events(plan, config)
    _schedule_filler(plan, config)

    # The final version must change the rule set: retarget one movable
    # event (a late filler removal) onto the last date.
    movable_late = [
        event for event in plan.events
        if not event.pinned and event.date.year >= 2022 and event.date < config.last_date
    ]
    if movable_late:
        movable_late[-1].date = config.last_date

    plan.events.sort(key=lambda event: (event.date, event.remove, event.rule.text))
    required_dates = {event.date for event in plan.events if event.pinned}
    # Every studied repository's vendoring date must also be a version
    # date, so that dating a vendored list recovers the calibrated age
    # exactly (ages younger than the last version vend the last version).
    for age in all_ages():
        vendor_date = paper.MEASUREMENT_DATE - datetime.timedelta(days=age)
        if config.first_date <= vendor_date <= config.last_date:
            required_dates.add(vendor_date)
    candidate_dates = {event.date for event in plan.events if not event.pinned}
    dates = _version_dates(config, rng, required_dates, candidate_dates)
    if len(dates) != config.version_count:
        raise RuntimeError(f"generated {len(dates)} version dates, wanted {config.version_count}")

    store = VersionStore(snapshot_interval=config.snapshot_interval)
    store.commit_rules(dates[0], added=plan.initial, message="initial import")

    # Bucket events by version date: version i takes events dated after
    # version i-1 and at or before version i.
    buckets: list[list[_Event]] = [[] for _ in dates]
    cursor = 0
    events = plan.events
    for index in range(1, len(dates)):
        while cursor < len(events) and events[cursor].date <= dates[index]:
            buckets[index].append(events[cursor])
            cursor += 1
    if cursor < len(events):
        buckets[-1].extend(events[cursor:])

    # Every version must change the rule set (the paper's "versions"
    # are rule-changing commits): borrow one movable event from another
    # bucket.  Pinned events never move (their commit date is what the
    # harm analyses measure ages from); a removal may move only to a
    # date after its rule's addition.
    addition_date: dict[str, datetime.date] = {}
    removal_date: dict[str, datetime.date] = {}
    for event in plan.events:
        if event.remove:
            removal_date.setdefault(event.rule.text, event.date)
        else:
            addition_date.setdefault(event.rule.text, event.date)

    def movable(bucket: list[_Event], target: datetime.date) -> int | None:
        for position in range(len(bucket) - 1, -1, -1):
            event = bucket[position]
            if event.pinned:
                continue
            if event.remove:
                added_on = addition_date.get(event.rule.text)
                if added_on is None or target <= added_on:
                    continue
            else:
                removed_on = removal_date.get(event.rule.text)
                if removed_on is not None and target >= removed_on:
                    continue
            return position
        return None

    boundary = datetime.date(2017, 1, 1)
    for index in range(1, len(dates)):
        if buckets[index]:
            continue
        for donor in list(range(index + 1, len(dates))) + list(range(index - 1, 0, -1)):
            if len(buckets[donor]) < 2:
                continue
            # Moving an event across the 2017 boundary would disturb
            # the rule-count checkpoint the filler sizing relies on.
            if (dates[donor] < boundary) != (dates[index] < boundary):
                continue
            position = movable(buckets[donor], dates[index])
            if position is None:
                continue
            event = buckets[donor].pop(position)
            buckets[index].append(event)
            # Keep the guard maps accurate for later moves.
            if event.remove:
                removal_date[event.rule.text] = dates[index]
            else:
                addition_date[event.rule.text] = dates[index]
            break
        else:
            raise RuntimeError("cannot fill an empty version")

    for index in range(1, len(dates)):
        added = [event.rule for event in buckets[index] if not event.remove]
        removed = [event.rule for event in buckets[index] if event.remove]
        store.commit_rules(dates[index], added=added, removed=removed)
    return store
