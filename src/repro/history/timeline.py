"""Growth statistics over a PSL history (the Figure 2 pipeline).

Everything here is computed in a single pass over the stored deltas —
no version is ever materialized — so the full 1,142-version history is
summarized in milliseconds.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

from repro.history.store import VersionStore
from repro.psl.rules import Rule, Section

MAX_TRACKED_COMPONENTS = 4
"""Rules with this many or more components are binned together,
matching the paper's "four or more" bucket."""


@dataclass(frozen=True, slots=True)
class GrowthPoint:
    """The list's size and composition at one version."""

    index: int
    date: datetime.date
    total: int
    by_components: tuple[int, ...]  # 1, 2, 3, 4+ components
    icann: int
    private: int

    @property
    def component_share(self) -> tuple[float, ...]:
        """Fraction of rules per component bucket."""
        if self.total == 0:
            return tuple(0.0 for _ in self.by_components)
        return tuple(count / self.total for count in self.by_components)


def _component_bucket(rule: Rule) -> int:
    """0-based bucket index for a rule's component count."""
    return min(rule.component_count, MAX_TRACKED_COMPONENTS) - 1


def growth_series(store: VersionStore) -> list[GrowthPoint]:
    """One :class:`GrowthPoint` per version, oldest first.

    This regenerates Figure 2: ``total`` is the headline curve and
    ``by_components`` the per-component breakdown.
    """
    points: list[GrowthPoint] = []
    by_components = [0] * MAX_TRACKED_COMPONENTS
    by_section = {Section.ICANN: 0, Section.PRIVATE: 0}
    total = 0
    for version in store:
        for rule in version.delta.removed:
            by_components[_component_bucket(rule)] -= 1
            by_section[rule.section] -= 1
            total -= 1
        for rule in version.delta.added:
            by_components[_component_bucket(rule)] += 1
            by_section[rule.section] += 1
            total += 1
        points.append(
            GrowthPoint(
                index=version.index,
                date=version.date,
                total=total,
                by_components=tuple(by_components),
                icann=by_section[Section.ICANN],
                private=by_section[Section.PRIVATE],
            )
        )
    return points


def rule_addition_dates(store: VersionStore) -> dict[str, datetime.date]:
    """Map rule text -> date the rule *first* appeared on the list.

    Rules removed and later re-added keep their first addition date,
    matching how the paper reasons about when a suffix "was added".
    """
    dates: dict[str, datetime.date] = {}
    for version in store:
        for rule in version.delta.added:
            dates.setdefault(rule.text, version.date)
    return dates


def rule_removal_dates(store: VersionStore) -> dict[str, datetime.date]:
    """Map rule text -> date of its most recent removal (if ever removed)."""
    dates: dict[str, datetime.date] = {}
    for version in store:
        for rule in version.delta.removed:
            dates[rule.text] = version.date
        for rule in version.delta.added:
            dates.pop(rule.text, None)
    return dates


def spike_versions(store: VersionStore, threshold: int = 200) -> list[tuple[datetime.date, int]]:
    """Versions whose delta adds at least ``threshold`` rules.

    The real history's standout is the mid-2012 Japanese geographic
    registration burst (~1,623 rules); this helper finds such events.
    """
    spikes: list[tuple[datetime.date, int]] = []
    for version in store:
        net = len(version.delta.added) - len(version.delta.removed)
        if net >= threshold:
            spikes.append((version.date, net))
    return spikes
