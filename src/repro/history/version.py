"""Per-version metadata for the PSL history."""

from __future__ import annotations

import datetime
import functools
import hashlib
from dataclasses import dataclass, field

from repro.psl.diff import RuleDelta


def commit_hash(parent: str, date: datetime.date, delta: RuleDelta) -> str:
    """Content-address a version, git-style.

    The hash chains over the parent hash, the commit date, and the
    canonical text of the delta, so identical histories produce
    identical hashes regardless of how they were constructed.
    """
    digest = hashlib.sha256()
    digest.update(parent.encode("ascii"))
    digest.update(date.isoformat().encode("ascii"))
    for prefix, rules in (("+", delta.added), ("-", delta.removed)):
        for text in sorted(rule.text for rule in rules):
            digest.update(f"{prefix}{text}\n".encode("utf-8"))
    return digest.hexdigest()


@functools.lru_cache(maxsize=65536)
def rule_digest(text: str) -> int:
    """A 128-bit digest of one rule's canonical text.

    XOR-combining these per-rule digests yields an order-independent
    digest of a whole rule set that the store maintains incrementally —
    the key that makes dating a vendored list an O(1) lookup instead of
    a scan over 1,142 materialized versions.  Cached: the same ~10k
    rule texts recur across every version and every vendored copy.
    """
    return int.from_bytes(hashlib.sha256(text.encode("utf-8")).digest()[:16], "big")


@dataclass(frozen=True, slots=True)
class PslVersion:
    """One version of the list: an index into the store plus metadata.

    The rule set itself is *not* stored here — materialize it through
    :meth:`repro.history.store.VersionStore.rules_at` or ``checkout``.
    ``set_digest`` is the order-independent rule-set digest (see
    :func:`rule_digest`); two versions with equal digests carry the
    same rules.
    """

    index: int
    date: datetime.date
    commit: str
    delta: RuleDelta = field(repr=False)
    rule_count: int
    set_digest: int = 0
    message: str = ""

    def age_at(self, reference: datetime.date) -> int:
        """List age in days at ``reference`` (Figure 3's x-axis)."""
        return (reference - self.date).days
