"""Offline IANA Root Zone Database (paper Section 3).

Used to label PSL suffix entries by the category of their top-level
domain: generic, country-code, sponsored, or infrastructure (plus
generic-restricted and test, which the root zone also distinguishes).
"""

from repro.iana.rootzone import RootZoneDatabase, TldCategory

__all__ = ["RootZoneDatabase", "TldCategory"]
