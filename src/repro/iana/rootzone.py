"""Root-zone lookups and suffix categorization.

The database is built from the embedded real TLD inventory
(:mod:`repro.data.tlds`).  Suffix rules whose TLD is not in the root
zone — synthetic filler gTLDs in the synthetic history, or simply
unknown strings — are labelled :attr:`TldCategory.GENERIC` when they
look like new-program delegations and reported as unknown otherwise.
"""

from __future__ import annotations

from repro.data.tlds import TldCategory, TldRecord, all_tlds
from repro.psl.rules import Rule, Section


class RootZoneDatabase:
    """Lookup table from TLD label to its IANA category.

    >>> db = RootZoneDatabase()
    >>> db.category_of_tld('uk')
    <TldCategory.COUNTRY_CODE: 'country-code'>
    >>> db.category_of_tld('arpa')
    <TldCategory.INFRASTRUCTURE: 'infrastructure'>
    """

    def __init__(self, records: tuple[TldRecord, ...] | None = None) -> None:
        self._records: dict[str, TldRecord] = {}
        for record in records if records is not None else all_tlds():
            self._records[record.name] = record

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, tld: str) -> bool:
        return tld.lower() in self._records

    def record(self, tld: str) -> TldRecord | None:
        """The full record for a TLD label, or None if not delegated."""
        return self._records.get(tld.lower())

    def category_of_tld(self, tld: str) -> TldCategory | None:
        """The IANA category of a TLD label, or None if unknown.

        Punycoded labels (``xn--…``) that are not in the embedded
        inventory are treated as country-code internationalized
        delegations, which is what almost all real ``xn--`` TLDs are.
        """
        record = self._records.get(tld.lower())
        if record is not None:
            return record.category
        if tld.lower().startswith("xn--"):
            return TldCategory.COUNTRY_CODE
        return None

    def categorize_rule(self, rule: Rule) -> str:
        """The paper's suffix categorization.

        PRIVATE-division rules are "private domains"; ICANN-division
        rules are labelled by their TLD's root-zone category, with
        ``generic`` as the fallback for synthetic delegations.
        """
        if rule.section is Section.PRIVATE:
            return "private"
        tld = rule.labels[0]
        category = self.category_of_tld(tld)
        if category is None:
            category = TldCategory.GENERIC
        return category.value

    def category_histogram(self, rules: tuple[Rule, ...] | list[Rule]) -> dict[str, int]:
        """Count rules per category label."""
        histogram: dict[str, int] = {}
        for rule in rules:
            label = self.categorize_rule(rule)
            histogram[label] = histogram.get(label, 0) + 1
        return histogram
