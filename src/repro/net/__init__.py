"""Network-name primitives: hostnames, domain labels, and URLs.

These are the low-level building blocks shared by the PSL engine, the
web-traffic substrate, and the privacy demonstrators.  They implement the
subset of RFC 952 / RFC 1123 / RFC 3986 needed to interpret hostnames in
crawl data the way a browser's network stack would.
"""

from repro.net.errors import HostnameError, UrlError
from repro.net.hostname import (
    Hostname,
    is_ip_literal,
    join_labels,
    normalize_hostname,
    normalize_or_none,
    normalize_or_reject,
    split_labels,
    validate_label,
)
from repro.net.url import Url, host_of, parse_url

__all__ = [
    "Hostname",
    "HostnameError",
    "Url",
    "UrlError",
    "host_of",
    "is_ip_literal",
    "join_labels",
    "normalize_hostname",
    "normalize_or_none",
    "normalize_or_reject",
    "parse_url",
    "split_labels",
    "validate_label",
]
