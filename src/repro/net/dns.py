"""A miniature DNS: zones, records, and a caching stub resolver.

The paper's future-work direction (DBOUND) and one of its named use
cases (DMARC) both live in the DNS, so the reproduction carries a real
— if small — DNS model rather than ad-hoc dictionaries:

* record types: A, TXT, CNAME (the set the privacy modules need);
* :class:`Zone` — authoritative data for one apex, with CNAME/other
  coexistence rules enforced at insert time;
* :class:`Nameserver` — routes queries to the longest-matching zone;
* :class:`StubResolver` — chases CNAME chains, caches positive and
  negative answers by TTL against an injectable clock.

Deterministic: the clock is a counter the caller advances, never wall
time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable


class RecordType(enum.Enum):
    """Supported record types."""

    A = "A"
    TXT = "TXT"
    CNAME = "CNAME"


@dataclass(frozen=True, slots=True)
class ResourceRecord:
    """One DNS resource record."""

    name: str
    rtype: RecordType
    data: str
    ttl: int = 300

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", self.name.lower().rstrip("."))
        if self.ttl < 0:
            raise ValueError("negative TTL")


class ZoneError(ValueError):
    """Raised for authoritative-data violations."""


class Zone:
    """Authoritative records under one apex name.

    The empty apex (``Zone("")``) is the root: every name is in-zone.
    """

    def __init__(self, apex: str) -> None:
        self.apex = apex.lower().rstrip(".")
        self._records: dict[tuple[str, RecordType], list[ResourceRecord]] = {}

    def __len__(self) -> int:
        return sum(len(rrset) for rrset in self._records.values())

    def _in_zone(self, name: str) -> bool:
        if not self.apex:
            return True
        return name == self.apex or name.endswith("." + self.apex)

    def add(self, record: ResourceRecord) -> None:
        """Add a record, enforcing CNAME exclusivity (RFC 1034 §3.6.2)."""
        if not self._in_zone(record.name):
            raise ZoneError(f"{record.name!r} is outside zone {self.apex!r}")
        existing_types = {rtype for (name, rtype) in self._records if name == record.name}
        if record.rtype is RecordType.CNAME and existing_types:
            raise ZoneError(f"CNAME at {record.name!r} cannot coexist with other records")
        if RecordType.CNAME in existing_types:
            raise ZoneError(f"{record.name!r} already holds a CNAME")
        self._records.setdefault((record.name, record.rtype), []).append(record)

    def lookup(self, name: str, rtype: RecordType) -> list[ResourceRecord]:
        """Records of one type at one name (empty when absent)."""
        return list(self._records.get((name.lower().rstrip("."), rtype), []))

    def names(self) -> set[str]:
        """Every owner name in the zone."""
        return {name for (name, _) in self._records}


@dataclass(frozen=True, slots=True)
class Answer:
    """A resolver answer."""

    name: str
    rtype: RecordType
    records: tuple[ResourceRecord, ...]
    cname_chain: tuple[str, ...] = ()
    from_cache: bool = False

    @property
    def exists(self) -> bool:
        return bool(self.records)

    def texts(self) -> list[str]:
        """The record payloads."""
        return [record.data for record in self.records]


class Nameserver:
    """Routes queries to the longest-matching authoritative zone."""

    def __init__(self, zones: Iterable[Zone] = ()) -> None:
        self._zones: dict[str, Zone] = {}
        for zone in zones:
            self.attach(zone)

    def attach(self, zone: Zone) -> None:
        if zone.apex in self._zones:
            raise ZoneError(f"duplicate zone {zone.apex!r}")
        self._zones[zone.apex] = zone

    def zone_for(self, name: str) -> Zone | None:
        """The most specific zone containing ``name``."""
        candidate = name.lower().rstrip(".")
        while candidate:
            if candidate in self._zones:
                return self._zones[candidate]
            _, _, candidate = candidate.partition(".")
        return self._zones.get("")  # a root zone catches everything

    def query(self, name: str, rtype: RecordType) -> list[ResourceRecord]:
        """Authoritative lookup (no CNAME chasing)."""
        zone = self.zone_for(name)
        if zone is None:
            return []
        return zone.lookup(name, rtype)


@dataclass(slots=True)
class _CacheEntry:
    records: tuple[ResourceRecord, ...]
    expires_at: int


class StubResolver:
    """CNAME-chasing resolver with TTL-bounded positive/negative cache."""

    MAX_CNAME_DEPTH = 8
    NEGATIVE_TTL = 60

    def __init__(self, nameserver: Nameserver) -> None:
        self._nameserver = nameserver
        self._cache: dict[tuple[str, RecordType], _CacheEntry] = {}
        self._clock = 0
        self.upstream_queries = 0

    def advance_clock(self, seconds: int) -> None:
        """Move deterministic time forward (expires cache entries)."""
        if seconds < 0:
            raise ValueError("time only moves forward")
        self._clock += seconds

    def _cached(self, key: tuple[str, RecordType]) -> "tuple[ResourceRecord, ...] | None":
        entry = self._cache.get(key)
        if entry is None or entry.expires_at <= self._clock:
            return None
        return entry.records

    def resolve(self, name: str, rtype: RecordType) -> Answer:
        """Resolve ``name``/``rtype``, following CNAMEs."""
        name = name.lower().rstrip(".")
        chain: list[str] = []
        current = name
        for _ in range(self.MAX_CNAME_DEPTH + 1):
            key = (current, rtype)
            cached = self._cached(key)
            if cached is not None:
                return Answer(name, rtype, cached, tuple(chain), from_cache=True)

            self.upstream_queries += 1
            records = tuple(self._nameserver.query(current, rtype))
            if records:
                ttl = min(record.ttl for record in records)
                self._cache[key] = _CacheEntry(records, self._clock + ttl)
                return Answer(name, rtype, records, tuple(chain))

            cnames = self._nameserver.query(current, RecordType.CNAME)
            if cnames and rtype is not RecordType.CNAME:
                chain.append(cnames[0].data.lower().rstrip("."))
                current = chain[-1]
                continue

            self._cache[key] = _CacheEntry((), self._clock + self.NEGATIVE_TTL)
            return Answer(name, rtype, (), tuple(chain))
        return Answer(name, rtype, (), tuple(chain))  # CNAME loop: treat as NXDOMAIN
