"""Exception types raised by :mod:`repro.net`."""


class NetError(ValueError):
    """Base class for all errors raised by the network-name primitives."""


class HostnameError(NetError):
    """Raised when a string cannot be interpreted as a valid hostname.

    The offending input is available as :attr:`value`.
    """

    def __init__(self, value: str, reason: str) -> None:
        self.value = value
        self.reason = reason
        super().__init__(f"invalid hostname {value!r}: {reason}")


class UrlError(NetError):
    """Raised when a string cannot be interpreted as a URL."""

    def __init__(self, value: str, reason: str) -> None:
        self.value = value
        self.reason = reason
        super().__init__(f"invalid URL {value!r}: {reason}")
