"""Hostname parsing, validation, and normalization.

A *hostname* here is a DNS domain name as it appears in a URL authority:
a dot-separated sequence of labels, case-insensitive, at most 253
characters overall with each label between 1 and 63 characters
(RFC 1035 section 2.3.4).  Following browser behaviour (and the paper's
methodology, which strips URLs "to the domain name component"), hostnames
are normalized to lowercase with a trailing root dot removed.

Unicode hostnames are accepted and carried through verbatim at this
layer; conversion to ASCII-compatible (punycode) form is the job of
:mod:`repro.psl.idna`, since the PSL algorithm is defined over A-labels.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.net.errors import HostnameError

MAX_HOSTNAME_LENGTH = 253
MAX_LABEL_LENGTH = 63

# LDH rule ("letter-digit-hyphen") for ASCII labels; underscore is
# additionally tolerated because it is common in real crawl data
# (e.g. service records and sloppy CDN hostnames), matching how the
# HTTP Archive records names as observed on the wire.
_ASCII_LABEL_RE = re.compile(r"^[a-z0-9_]([a-z0-9_-]*[a-z0-9_])?$")

_IPV4_RE = re.compile(r"^(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})$")


def is_ip_literal(value: str) -> bool:
    """Return True if ``value`` is an IPv4 dotted quad or a bracketed IPv6 literal.

    IP literals never participate in PSL grouping (they have no
    registrable domain), so callers typically filter them out before
    suffix matching.
    """
    if value.startswith("[") and value.endswith("]"):
        return True
    match = _IPV4_RE.match(value)
    if not match:
        return False
    return all(0 <= int(octet) <= 255 for octet in match.groups())


def validate_label(label: str) -> None:
    """Validate a single hostname label, raising :class:`HostnameError`.

    Non-ASCII labels (U-labels) are accepted as long as they are
    non-empty, within the length limit, and free of whitespace or dots;
    full IDNA validation happens at punycode-conversion time.
    """
    if not label:
        raise HostnameError(label, "empty label")
    if len(label) > MAX_LABEL_LENGTH:
        raise HostnameError(label, f"label longer than {MAX_LABEL_LENGTH} characters")
    if label.isascii():
        if not _ASCII_LABEL_RE.match(label):
            raise HostnameError(label, "label violates LDH rule")
    else:
        if any(ch.isspace() or ch == "." for ch in label):
            raise HostnameError(label, "whitespace or dot inside label")


def split_labels(hostname: str) -> tuple[str, ...]:
    """Split a hostname into its dot-separated labels (left to right)."""
    return tuple(hostname.split("."))


def join_labels(labels: Iterable[str]) -> str:
    """Join labels back into a hostname string."""
    return ".".join(labels)


def normalize_hostname(value: str) -> str:
    """Normalize and validate a raw hostname string.

    Lowercases, strips surrounding whitespace and at most one trailing
    root dot, and validates the label structure.  Raises
    :class:`HostnameError` for anything a browser would refuse to put in
    the authority component.
    """
    candidate = value.strip().lower()
    if candidate.endswith("."):
        candidate = candidate[:-1]
    if not candidate:
        raise HostnameError(value, "empty hostname")
    if len(candidate) > MAX_HOSTNAME_LENGTH:
        raise HostnameError(value, f"hostname longer than {MAX_HOSTNAME_LENGTH} characters")
    if is_ip_literal(candidate):
        raise HostnameError(value, "IP literal is not a hostname")
    for label in split_labels(candidate):
        try:
            validate_label(label)
        except HostnameError as exc:
            raise HostnameError(value, exc.reason) from exc
    return candidate


def normalize_or_reject(value: object) -> str:
    """The one normalize-or-reject gate shared by every ingest path.

    Request-serving (:mod:`repro.serve`) and streaming ingest
    (:mod:`repro.webgraph.stream`) both admit hostnames from sources no
    browser vetted — query strings, crawl exports — and both used to
    carry their own ad-hoc checks.  This helper is the single policy:
    :func:`normalize_hostname` (case, surrounding whitespace, one
    trailing root dot, label structure, IP-literal refusal) plus a
    proof that non-ASCII names survive IDNA conversion, since the PSL
    algorithm is defined over A-labels and a name that cannot reach
    A-label form can never be matched.

    Returns the normalized (still U-label) form; raises
    :class:`HostnameError` with a machine-readable ``reason`` otherwise.

    >>> normalize_or_reject("WWW.Example.COM.")
    'www.example.com'
    """
    if not isinstance(value, str):
        raise HostnameError(repr(value), "not a string")
    candidate = normalize_hostname(value)
    if not candidate.isascii():
        # Deferred import: IDNA encoding lives in the PSL layer, and
        # importing it at module scope would invert the net <- psl
        # layering for the many callers that never take this branch.
        from repro.psl.errors import PslError
        from repro.psl.idna import to_ascii

        try:
            to_ascii(candidate)  # validate encodability only
        except (PslError, UnicodeError) as exc:
            raise HostnameError(value, f"not IDNA-encodable: {exc}") from exc
    return candidate


def normalize_or_none(value: object) -> str | None:
    """:func:`normalize_or_reject`, with rejection as ``None``.

    The streaming counters use this form: a malformed crawl row should
    bump a ``skipped`` counter, not unwind the pass.

    >>> normalize_or_none("bad..name") is None
    True
    """
    try:
        return normalize_or_reject(value)
    except HostnameError:
        return None


@dataclass(frozen=True, slots=True)
class Hostname:
    """An immutable, validated, normalized hostname.

    Instances compare and hash by their normalized string form, so they
    can be used directly as dictionary keys in site-grouping maps.

    >>> Hostname("WWW.Example.COM.").labels
    ('www', 'example', 'com')
    """

    name: str

    def __init__(self, value: str) -> None:
        object.__setattr__(self, "name", normalize_hostname(value))

    @property
    def labels(self) -> tuple[str, ...]:
        """Labels left to right, e.g. ``('www', 'example', 'com')``."""
        return split_labels(self.name)

    @property
    def reversed_labels(self) -> tuple[str, ...]:
        """Labels right to left, the order used by the suffix trie."""
        return tuple(reversed(self.labels))

    @property
    def label_count(self) -> int:
        """Number of labels in the hostname."""
        return self.name.count(".") + 1

    def parent(self) -> "Hostname | None":
        """The hostname with its leftmost label removed, or None at a TLD.

        >>> Hostname("a.b.com").parent()
        Hostname(name='b.com')
        """
        labels = self.labels
        if len(labels) <= 1:
            return None
        return Hostname(join_labels(labels[1:]))

    def ancestors(self) -> Iterator["Hostname"]:
        """Yield every proper parent, nearest first.

        >>> [h.name for h in Hostname("a.b.com").ancestors()]
        ['b.com', 'com']
        """
        current = self.parent()
        while current is not None:
            yield current
            current = current.parent()

    def is_subdomain_of(self, other: "Hostname | str") -> bool:
        """True when ``self`` is a proper subdomain of ``other``."""
        other_name = other.name if isinstance(other, Hostname) else normalize_hostname(other)
        return self.name != other_name and self.name.endswith("." + other_name)

    def suffix_of_length(self, count: int) -> "Hostname":
        """The hostname formed by the rightmost ``count`` labels.

        >>> Hostname("a.b.co.uk").suffix_of_length(2).name
        'co.uk'
        """
        labels = self.labels
        if not 1 <= count <= len(labels):
            raise ValueError(f"suffix length {count} out of range for {self.name!r}")
        return Hostname(join_labels(labels[len(labels) - count :]))

    def __str__(self) -> str:
        return self.name
