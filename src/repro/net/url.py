"""A small, strict URL parser.

The paper's pipeline only needs the authority (hostname) component of
crawl URLs — step 1 of its methodology is "strip each URL to the domain
name component" — but a real library also needs scheme, port, path and
query to classify requests and model pages.  This module implements the
subset of RFC 3986 required for that, without pulling in ``urllib``
semantics that differ from what browsers record in crawl datasets
(e.g. ``urllib`` happily parses schemeless strings as paths).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.net.errors import UrlError
from repro.net.hostname import Hostname, is_ip_literal

DEFAULT_PORTS = {"http": 80, "https": 443, "ws": 80, "wss": 443, "ftp": 21}

_URL_RE = re.compile(
    r"^(?P<scheme>[a-zA-Z][a-zA-Z0-9+.-]*)://"
    r"(?:(?P<userinfo>[^@/?#]*)@)?"
    r"(?P<host>\[[0-9a-fA-F:.]+\]|[^:/?#]*)"
    r"(?::(?P<port>\d*))?"
    r"(?P<path>/[^?#]*)?"
    r"(?:\?(?P<query>[^#]*))?"
    r"(?:#(?P<fragment>.*))?$"
)


@dataclass(frozen=True, slots=True)
class Url:
    """A parsed absolute URL.

    ``host`` is ``None`` only for IP-literal authorities, which carry the
    raw literal in ``ip_literal`` instead; PSL grouping does not apply to
    them.
    """

    scheme: str
    host: Hostname | None
    port: int
    path: str
    query: str
    ip_literal: str | None = None

    @property
    def hostname(self) -> str:
        """The authority host as a string (hostname or IP literal)."""
        if self.host is not None:
            return self.host.name
        assert self.ip_literal is not None
        return self.ip_literal

    @property
    def origin(self) -> str:
        """The RFC 6454 origin serialization (scheme://host[:port])."""
        default = DEFAULT_PORTS.get(self.scheme)
        if self.port == default:
            return f"{self.scheme}://{self.hostname}"
        return f"{self.scheme}://{self.hostname}:{self.port}"

    @property
    def is_secure(self) -> bool:
        """True for schemes carried over TLS."""
        return self.scheme in ("https", "wss")

    def __str__(self) -> str:
        url = self.origin + self.path
        if self.query:
            url += "?" + self.query
        return url


def parse_url(value: str) -> Url:
    """Parse an absolute URL string into a :class:`Url`.

    Raises :class:`UrlError` for relative references, unknown-port
    overflow, or invalid hostnames.

    >>> parse_url("https://WWW.Example.com/a?b=c").host.name
    'www.example.com'
    """
    text = value.strip()
    match = _URL_RE.match(text)
    if not match:
        raise UrlError(value, "not an absolute URL")
    scheme = match.group("scheme").lower()
    raw_host = match.group("host")
    if not raw_host:
        raise UrlError(value, "empty host")

    raw_port = match.group("port")
    if raw_port:
        port = int(raw_port)
        if port > 65535:
            raise UrlError(value, f"port {port} out of range")
    else:
        port = DEFAULT_PORTS.get(scheme, 0)

    path = match.group("path") or "/"
    query = match.group("query") or ""

    if is_ip_literal(raw_host):
        return Url(scheme, None, port, path, query, ip_literal=raw_host.lower())
    try:
        host = Hostname(raw_host)
    except ValueError as exc:
        raise UrlError(value, str(exc)) from exc
    return Url(scheme, host, port, path, query)


def host_of(value: str) -> str:
    """Step 1 of the paper's methodology: strip a URL to its hostname.

    >>> host_of("https://www.example.com/page.html")
    'www.example.com'
    """
    return parse_url(value).hostname
