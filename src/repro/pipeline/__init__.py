"""The content-addressed artifact DAG under every figure and table.

The paper's outputs form a natural DAG — history → corpus/snapshot →
sweep → figures 2-7, tables 1-3, ablations.  This package is the
persistent, fingerprinted artifact layer every entry point computes
through:

* :class:`~repro.pipeline.core.Stage` — a typed stage declaration
  (name, version tag, upstream stages, resolved params, builder);
* :class:`~repro.pipeline.core.Pipeline` — the DAG executor: build a
  stage and you get its content-addressed artifact, loaded when the
  store already holds it, computed from (equally cached) upstreams
  otherwise;
* :class:`~repro.pipeline.store.ArtifactStore` /
  :class:`~repro.pipeline.store.Artifact` — the two-layer store
  (process memory over an optional on-disk directory) with SHA-256
  integrity on every payload;
* :class:`~repro.pipeline.core.PipelineReport` — per-stage hit/miss,
  bytes, and wall-time observability (``psl-repro --explain``);
* :func:`repro.fingerprint.fingerprint` (re-exported) — the one
  canonical keying scheme, shared with the sweep runtime's checkpoint
  manifests.

The paper's concrete DAG lives in :mod:`repro.analysis.pipeline`.
"""

from repro.fingerprint import canonical_json, fingerprint
from repro.pipeline.core import (
    Pipeline,
    PipelineReport,
    Stage,
    StageContext,
    StageExecution,
)
from repro.pipeline.store import Artifact, ArtifactStore, memory_store

__all__ = [
    "Artifact",
    "ArtifactStore",
    "Pipeline",
    "PipelineReport",
    "Stage",
    "StageContext",
    "StageExecution",
    "canonical_json",
    "fingerprint",
    "memory_store",
]
