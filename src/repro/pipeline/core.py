"""Typed stage declarations and the DAG executor.

A :class:`Stage` declares *what* one step of the reproduction computes
(a name, a version tag, its upstream stages, its resolved parameters)
and *how* (a builder callable).  A :class:`Pipeline` wires stages into
a DAG over an :class:`~repro.pipeline.store.ArtifactStore` and answers
one question — :meth:`Pipeline.build` — by either loading the stage's
content-addressed artifact or computing it from (equally cached)
upstreams.

**Fingerprint recipe.**  A stage's fingerprint is
:func:`repro.fingerprint.fingerprint` over::

    {"scheme": "pipeline-v1", "stage": name, "version": version,
     "params": params, "upstream": {name: upstream fingerprint, …}}

The recursion over upstream *fingerprints* (not payload bytes) is
deliberate: pickled payloads are not byte-stable across processes
(set iteration order varies under hash randomization), while the
version/params recursion is — which is what lets a second process hit
the first one's artifacts.  Payload digests still guard *integrity*:
the store refuses any artifact whose bytes fail their recorded SHA-256.
Editing one stage (version bump, param change) therefore re-keys
exactly that stage and its downstream cone; siblings keep their
fingerprints and their artifacts.

Every ``build`` resolution is recorded in a :class:`PipelineReport` —
hit/miss source, wall time, payload bytes per stage — which the CLI
prints under ``--explain`` and persists as JSON next to the store.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterable, Mapping, Optional

from repro.fingerprint import fingerprint
from repro.pipeline.store import Artifact, ArtifactStore, memory_store

__all__ = [
    "Pipeline",
    "PipelineReport",
    "Stage",
    "StageContext",
    "StageExecution",
]


@dataclass(frozen=True)
class StageContext:
    """What a builder may know about its own invocation."""

    stage: str
    fingerprint: str
    store: ArtifactStore


@dataclass(frozen=True)
class Stage:
    """One node of the artifact DAG.

    ``build(inputs, ctx)`` receives the materialized upstream values
    keyed by stage name plus a :class:`StageContext` (whose
    ``fingerprint`` is this stage's own — the sweep stage forwards it
    to the runtime checkpoint manifest so both layers share one key).

    ``params`` must be canonicalizable by :mod:`repro.fingerprint`;
    they are fingerprint material only — builders close over whatever
    runtime knobs they need.

    ``cache=False`` makes the stage transparent: never stored, always
    recomputed (side-effectful terminals like the release export).
    ``persist`` optionally gates the *disk* layer per value — e.g. a
    degraded sweep stays memory-only so no later run resumes from it.
    ``raw=True`` declares the stage's value is ``bytes`` to be stored
    verbatim (no pickle envelope) so consumers can ``mmap`` the
    artifact file directly — the packed-snapshot kind.
    """

    name: str
    build: Callable[[Mapping[str, Any], StageContext], Any]
    version: str = "1"
    upstream: tuple[str, ...] = ()
    params: Mapping[str, Any] = field(default_factory=dict)
    cache: bool = True
    persist: Optional[Callable[[Any], bool]] = None
    raw: bool = False

    def renamed(self, name: str, upstream_map: Mapping[str, str]) -> "Stage":
        """A copy under a new name with upstream references remapped
        (how one DAG hosts the same world shape twice).  The builder
        still sees its inputs under the *original* upstream names, so
        stage bodies stay oblivious to the hosting DAG's namespace.
        """
        inverse = {upstream_map.get(up, up): up for up in self.upstream}
        original_build = self.build

        def build(inputs: Mapping[str, Any], ctx: StageContext) -> Any:
            return original_build(
                {inverse.get(key, key): value for key, value in inputs.items()}, ctx
            )

        return replace(
            self,
            name=name,
            upstream=tuple(upstream_map.get(up, up) for up in self.upstream),
            build=build,
        )


@dataclass(frozen=True, slots=True)
class StageExecution:
    """One ``build`` resolution: where the value came from and at what cost."""

    stage: str
    fingerprint: str
    source: str  # "memory" | "disk" | "computed"
    seconds: float
    nbytes: int


class PipelineReport:
    """Per-stage observability for one pipeline run."""

    def __init__(self) -> None:
        self.executions: list[StageExecution] = []

    def record(self, execution: StageExecution) -> None:
        self.executions.append(execution)

    # -- aggregation ----------------------------------------------------------

    def count(self, source: str) -> int:
        return sum(1 for execution in self.executions if execution.source == source)

    @property
    def hits(self) -> int:
        """Resolutions served from a cache layer (memory or disk)."""
        return self.count("memory") + self.count("disk")

    @property
    def misses(self) -> int:
        """Resolutions that had to run the stage builder."""
        return self.count("computed")

    def computed_stages(self) -> tuple[str, ...]:
        """Names of the stages whose builders actually ran, in order."""
        return tuple(e.stage for e in self.executions if e.source == "computed")

    def to_json(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stages": [
                {
                    "stage": e.stage,
                    "fingerprint": e.fingerprint,
                    "source": e.source,
                    "seconds": round(e.seconds, 6),
                    "bytes": e.nbytes,
                }
                for e in self.executions
            ],
        }

    def render(self) -> str:
        """The ``--explain`` table."""
        lines = [
            "Pipeline report "
            f"({self.hits} hits: {self.count('memory')} memory / "
            f"{self.count('disk')} disk; {self.misses} computed)",
            f"  {'stage':24s} {'source':9s} {'seconds':>9s} {'bytes':>12s}  fingerprint",
        ]
        for e in self.executions:
            lines.append(
                f"  {e.stage:24s} {e.source:9s} {e.seconds:9.3f} "
                f"{e.nbytes:12,d}  {e.fingerprint[:12]}"
            )
        return "\n".join(lines)

    def save(self, path: str) -> str:
        """Persist the report as JSON; returns ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=1, sort_keys=True)
        return path


class Pipeline:
    """A DAG of stages over one artifact store."""

    def __init__(
        self,
        stages: Iterable[Stage],
        *,
        store: ArtifactStore | None = None,
        report: PipelineReport | None = None,
    ) -> None:
        self._stages: dict[str, Stage] = {}
        for stage in stages:
            if stage.name in self._stages:
                raise ValueError(f"duplicate stage name {stage.name!r}")
            self._stages[stage.name] = stage
        self._store = store if store is not None else memory_store()
        self.report = report if report is not None else PipelineReport()
        self._fingerprints: dict[str, str] = {}
        self._validate()

    def _validate(self) -> None:
        """Reject unknown upstream references and cycles at wiring time."""
        state: dict[str, int] = {}  # 1 = visiting, 2 = done

        def visit(name: str, chain: tuple[str, ...]) -> None:
            if state.get(name) == 2:
                return
            if state.get(name) == 1:
                raise ValueError(f"stage cycle: {' -> '.join(chain + (name,))}")
            state[name] = 1
            for up in self._stages[name].upstream:
                if up not in self._stages:
                    raise ValueError(f"stage {name!r} names unknown upstream {up!r}")
                visit(up, chain + (name,))
            state[name] = 2

        for name in self._stages:
            visit(name, ())

    # -- introspection --------------------------------------------------------

    @property
    def store(self) -> ArtifactStore:
        return self._store

    def stage_names(self) -> tuple[str, ...]:
        return tuple(self._stages)

    def stage(self, name: str) -> Stage:
        return self._stages[name]

    def fingerprint_of(self, name: str) -> str:
        """The content address of ``name`` (pure — builds nothing)."""
        cached = self._fingerprints.get(name)
        if cached is not None:
            return cached
        stage = self._stages[name]
        material = {
            "scheme": "pipeline-v1",
            "stage": stage.name,
            "version": stage.version,
            "params": dict(stage.params),
            "upstream": {up: self.fingerprint_of(up) for up in stage.upstream},
        }
        value = fingerprint(material)
        self._fingerprints[name] = value
        return value

    def peek(self, name: str) -> Any | None:
        """The stage's memory-resident value, if this process built or
        loaded it — never triggers work."""
        return self._store.peek(name, self.fingerprint_of(name))

    # -- execution ------------------------------------------------------------

    def build(self, name: str) -> Any:
        """The stage's value — loaded from the store when addressable,
        computed (and stored) otherwise."""
        stage = self._stages[name]
        stage_fingerprint = self.fingerprint_of(name)
        if stage.cache:
            started = time.perf_counter()
            found = self._store.get(name, stage_fingerprint)
            if found is not None:
                value, artifact, source = found
                self.report.record(
                    StageExecution(
                        stage=name,
                        fingerprint=stage_fingerprint,
                        source=source,
                        seconds=time.perf_counter() - started,
                        nbytes=artifact.nbytes,
                    )
                )
                return value
        inputs = {up: self.build(up) for up in stage.upstream}
        started = time.perf_counter()
        value = stage.build(inputs, StageContext(name, stage_fingerprint, self._store))
        elapsed = time.perf_counter() - started
        nbytes = 0
        if stage.cache:
            persist = self._store.persistent and (
                stage.persist is None or stage.persist(value)
            )
            artifact = self._store.put(
                name, stage_fingerprint, value, persist=persist, raw=stage.raw
            )
            nbytes = artifact.nbytes
        self.report.record(
            StageExecution(
                stage=name,
                fingerprint=stage_fingerprint,
                source="computed",
                seconds=elapsed,
                nbytes=nbytes,
            )
        )
        return value

    def artifact(self, name: str) -> Artifact:
        """Build ``name`` (if needed) and return its :class:`Artifact`."""
        self.build(name)
        found = self._store.get(name, self.fingerprint_of(name))
        if found is not None:
            return found[1]
        # cache=False stages never store; synthesize a transient record.
        return Artifact(name, self.fingerprint_of(name), "", 0, None)
