"""The content-addressed artifact store.

Two layers, one address space:

* a **memory layer** — a plain dict keyed by ``(stage, fingerprint)``,
  which is what makes repeated :meth:`~repro.pipeline.Pipeline.build`
  calls inside one process free;
* an optional **disk layer** — ``directory/<stage>/<fingerprint>.pkl``
  payloads with a ``.json`` meta sidecar carrying the payload's SHA-256
  digest, which is what lets a second *process* reuse the first one's
  work.

Writes use the same atomic-replace discipline as the sweep checkpoints
(:func:`repro.runtime.checkpoint.atomic_write_bytes`): a kill mid-write
leaves a temp file, never a half artifact.  Loads verify the payload
digest against the meta sidecar before unpickling — a truncated or
bit-flipped artifact reads as *absent* (and is recomputed), never
trusted.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
from dataclasses import dataclass
from typing import Any, Optional

from repro.runtime.checkpoint import atomic_write_bytes

__all__ = ["Artifact", "ArtifactStore", "memory_store"]

_SAFE_NAME = re.compile(r"[^A-Za-z0-9_.-]+")


@dataclass(frozen=True, slots=True)
class Artifact:
    """One materialized stage output.

    ``digest`` is the SHA-256 of the pickled payload bytes (empty for
    memory-only artifacts, which never leave the process and need no
    integrity check); ``path`` is the on-disk payload, or ``None``.
    """

    stage: str
    fingerprint: str
    digest: str
    nbytes: int
    path: Optional[str]

    @property
    def persisted(self) -> bool:
        return self.path is not None


class ArtifactStore:
    """Content-addressed artifact storage (memory over optional disk)."""

    def __init__(self, directory: str | None = None) -> None:
        self._directory = directory
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
        self._memory: dict[tuple[str, str], tuple[Any, Artifact]] = {}

    @property
    def directory(self) -> str | None:
        return self._directory

    @property
    def persistent(self) -> bool:
        return self._directory is not None

    # -- addressing -----------------------------------------------------------

    def _paths(self, stage: str, fingerprint: str, *, raw: bool = False) -> tuple[str, str]:
        assert self._directory is not None
        safe = _SAFE_NAME.sub("_", stage) or "stage"
        stage_dir = os.path.join(self._directory, safe)
        base = os.path.join(stage_dir, fingerprint)
        return f"{base}.bin" if raw else f"{base}.pkl", f"{base}.json"

    # -- reads ----------------------------------------------------------------

    def get(self, stage: str, fingerprint: str) -> tuple[Any, Artifact, str] | None:
        """The stored value for a stage fingerprint, or ``None``.

        Returns ``(value, artifact, source)`` with ``source`` one of
        ``"memory"`` / ``"disk"``.  Disk artifacts that fail any check
        (missing meta, digest mismatch, unpicklable payload) read as
        absent.
        """
        entry = self._memory.get((stage, fingerprint))
        if entry is not None:
            return entry[0], entry[1], "memory"
        if self._directory is None:
            return None
        _, meta_path = self._paths(stage, fingerprint)
        try:
            with open(meta_path, encoding="utf-8") as handle:
                meta = json.load(handle)
            raw = meta.get("format", "pickle") == "raw"
            payload_path, _ = self._paths(stage, fingerprint, raw=raw)
            with open(payload_path, "rb") as handle:
                payload = handle.read()
            digest = hashlib.sha256(payload).hexdigest()
            if digest != meta.get("digest"):
                return None
            value = payload if raw else pickle.loads(payload)
        except (OSError, ValueError, KeyError, EOFError,
                pickle.UnpicklingError, AttributeError, ImportError):
            return None
        artifact = Artifact(
            stage=stage,
            fingerprint=fingerprint,
            digest=digest,
            nbytes=len(payload),
            path=payload_path,
        )
        self._memory[(stage, fingerprint)] = (value, artifact)
        return value, artifact, "disk"

    def peek(self, stage: str, fingerprint: str) -> Any | None:
        """The memory-resident value only — never touches disk."""
        entry = self._memory.get((stage, fingerprint))
        return entry[0] if entry is not None else None

    def payload_path(self, stage: str, fingerprint: str) -> str | None:
        """The verified on-disk payload path, or ``None``.

        The zero-copy entry point: ``mmap`` consumers (packed snapshot
        histories) want the artifact *file*, not its bytes in the heap.
        The payload digest is checked against the meta sidecar first —
        a corrupt artifact returns ``None``, same as :meth:`get`.
        """
        if self._directory is None:
            return None
        _, meta_path = self._paths(stage, fingerprint)
        try:
            with open(meta_path, encoding="utf-8") as handle:
                meta = json.load(handle)
            raw = meta.get("format", "pickle") == "raw"
            payload_path, _ = self._paths(stage, fingerprint, raw=raw)
            with open(payload_path, "rb") as handle:
                digest = hashlib.sha256(handle.read()).hexdigest()
            if digest != meta.get("digest"):
                return None
        except (OSError, ValueError, KeyError):
            return None
        return payload_path

    # -- writes ---------------------------------------------------------------

    def put(
        self,
        stage: str,
        fingerprint: str,
        value: Any,
        *,
        persist: bool = True,
        raw: bool = False,
    ) -> Artifact:
        """Store one stage output; returns its :class:`Artifact`.

        ``persist=False`` keeps the value memory-only even when the
        store has a disk layer (used e.g. for degraded sweeps, which
        must never be resumed from).

        ``raw=True`` stores ``value`` (which must be ``bytes``) as-is —
        no pickle envelope — under a ``.bin`` payload whose meta
        sidecar records ``"format": "raw"``.  Raw artifacts are the
        mmap-able kind: :meth:`payload_path` hands back the verified
        file for zero-copy loading.
        """
        if raw and not isinstance(value, (bytes, bytearray)):
            raise TypeError(f"raw artifacts must be bytes, got {type(value).__name__}")
        if self._directory is not None and persist:
            if raw:
                payload = bytes(value)
            else:
                payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            digest = hashlib.sha256(payload).hexdigest()
            payload_path, meta_path = self._paths(stage, fingerprint, raw=raw)
            os.makedirs(os.path.dirname(payload_path), exist_ok=True)
            # Payload first, meta last: a kill in between leaves a
            # payload without meta, which get() treats as absent.
            atomic_write_bytes(payload_path, payload)
            meta = {
                "stage": stage,
                "fingerprint": fingerprint,
                "digest": digest,
                "bytes": len(payload),
                "format": "raw" if raw else "pickle",
            }
            atomic_write_bytes(
                meta_path, json.dumps(meta, sort_keys=True, indent=1).encode("utf-8")
            )
            artifact = Artifact(stage, fingerprint, digest, len(payload), payload_path)
        else:
            artifact = Artifact(stage, fingerprint, "", 0, None)
        self._memory[(stage, fingerprint)] = (value, artifact)
        return artifact


_SHARED: ArtifactStore | None = None


def memory_store() -> ArtifactStore:
    """The process-wide shared memory-only store.

    This is what replaces the old per-module memo dicts: every context
    built without an explicit store lands here, keyed by fingerprint,
    so benchmarks, examples, tests, and the CLI all reuse one world
    within a process.
    """
    global _SHARED
    if _SHARED is None:
        _SHARED = ArtifactStore()
    return _SHARED
