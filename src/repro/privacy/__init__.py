"""Privacy-harm demonstrators.

Section 2 of the paper explains *why* an outdated PSL is harmful
through two concrete mechanisms — cross-site cookie access and
password-manager autofill across organizations.  This package
implements both mechanisms against a pluggable
:class:`~repro.psl.list.PublicSuffixList`, plus a tracking simulator
that quantifies state leakage between two list versions:

* :mod:`repro.privacy.cookies` — an RFC 6265-style cookie jar whose
  domain-matching consults the PSL (rejecting "supercookies" set on
  public suffixes);
* :mod:`repro.privacy.autofill` — the password-manager autofill
  decision of the paper's Figure 1 scenario;
* :mod:`repro.privacy.tracking` — replays browsing traces under two
  list versions and reports which cross-organization state flows the
  outdated list permits;
* :mod:`repro.privacy.dmarc` — DMARC organizational-domain discovery
  (RFC 7489), another PSL consumer the paper names;
* :mod:`repro.privacy.certs` — wildcard-certificate issuance and
  hostname matching with PSL boundary checks.
"""

from repro.privacy.autofill import AutofillEngine, Credential
from repro.privacy.certs import check_issuance, matches_certificate
from repro.privacy.cookies import Cookie, CookieJar, SuperCookieError
from repro.privacy.dmarc import TxtZone, discover_policy, organizational_domain
from repro.privacy.tracking import Leak, TrackingSimulator

__all__ = [
    "AutofillEngine",
    "Cookie",
    "CookieJar",
    "Credential",
    "Leak",
    "SuperCookieError",
    "TrackingSimulator",
    "TxtZone",
    "check_issuance",
    "discover_policy",
    "matches_certificate",
    "organizational_domain",
]
