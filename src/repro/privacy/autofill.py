"""Password-manager autofill decisions.

The paper's Section 2 scenario: a password manager stores credentials
for ``good.example.co.uk`` and must decide whether to offer them on
``bad.example.co.uk``.  Real managers offer credentials across hosts
of the same *site* (eTLD+1), so the decision hinges entirely on the
PSL version in use — exactly the harm the *bitwarden* finding in the
paper's Table 3 implies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.psl.list import PublicSuffixList


@dataclass(frozen=True, slots=True)
class Credential:
    """A stored login."""

    origin_host: str
    username: str
    secret: str = field(repr=False, default="")


@dataclass(frozen=True, slots=True)
class AutofillDecision:
    """The engine's verdict for one (credential, visited host) pair."""

    credential: Credential
    visited_host: str
    offered: bool
    reason: str


class AutofillEngine:
    """Same-site credential matching against a pluggable PSL."""

    def __init__(self, psl: PublicSuffixList) -> None:
        self._psl = psl
        self._vault: list[Credential] = []

    def save(self, credential: Credential) -> None:
        """Store a credential."""
        self._vault.append(credential)

    def decisions_for(self, visited_host: str) -> list[AutofillDecision]:
        """Evaluate every stored credential against ``visited_host``."""
        decisions: list[AutofillDecision] = []
        for credential in self._vault:
            same_site = self._psl.same_site(credential.origin_host, visited_host)
            if credential.origin_host == visited_host:
                reason = "exact host match"
            elif same_site:
                site = self._psl.site_of(visited_host)
                reason = f"same site ({site})"
            else:
                reason = (
                    f"different sites ({self._psl.site_of(credential.origin_host)} vs. "
                    f"{self._psl.site_of(visited_host)})"
                )
            decisions.append(
                AutofillDecision(
                    credential=credential,
                    visited_host=visited_host,
                    offered=same_site,
                    reason=reason,
                )
            )
        return decisions

    def offers_for(self, visited_host: str) -> list[Credential]:
        """Credentials the manager would offer on ``visited_host``."""
        return [
            decision.credential
            for decision in self.decisions_for(visited_host)
            if decision.offered
        ]


def cross_organization_offers(
    outdated: PublicSuffixList,
    current: PublicSuffixList,
    credential_host: str,
    visited_host: str,
) -> bool:
    """True when only the outdated list would offer the credential.

    This is the paper's Figure 1 harm predicate: the current list
    separates the two hosts into different sites, but the outdated
    list — missing the relevant suffix rule — does not.
    """
    outdated_offers = outdated.same_site(credential_host, visited_host)
    current_offers = current.same_site(credential_host, visited_host)
    return outdated_offers and not current_offers
