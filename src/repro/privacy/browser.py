"""A miniature browser storage stack.

Figure 1's harm is ultimately about *browser state*: which pages can
read which cookies and storage.  This module assembles the privacy
demonstrators into one navigable browser:

* storage (cookies via the PSL-aware jar, localStorage keyed by site);
* a navigation log with third-party subresource accounting;
* an identifier-leak audit: which distinct sites observed the same
  storage partition during a session.

Swap the PSL version and replay the same session to see exactly what
an outdated list leaks — the executable version of the paper's
Section 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.privacy.cookies import CookieJar, SuperCookieError
from repro.psl.list import PublicSuffixList


@dataclass(frozen=True, slots=True)
class Visit:
    """One page load with its subresource requests."""

    page_host: str
    request_hosts: tuple[str, ...]
    third_party_requests: int


class Browser:
    """Site-partitioned state plus PSL-driven access decisions."""

    def __init__(self, psl: PublicSuffixList) -> None:
        self._psl = psl
        self.cookies = CookieJar(psl)
        self._local_storage: dict[str, dict[str, str]] = {}
        self._log: list[Visit] = []

    # -- storage ---------------------------------------------------------

    def storage_for(self, host: str) -> dict[str, str]:
        """The localStorage partition a page on ``host`` sees.

        Partitions are keyed by site: two hosts share storage iff the
        PSL puts them in one site — the exact decision that goes wrong
        under an outdated list.
        """
        site = self._psl.site_of(host)
        return self._local_storage.setdefault(site, {})

    def set_item(self, host: str, key: str, value: str) -> None:
        """``localStorage.setItem`` from a page on ``host``."""
        self.storage_for(host)[key] = value

    def get_item(self, host: str, key: str) -> str | None:
        """``localStorage.getItem`` from a page on ``host``."""
        return self.storage_for(host).get(key)

    # -- navigation ---------------------------------------------------------

    def navigate(self, page_host: str, request_hosts: tuple[str, ...] = ()) -> Visit:
        """Load a page; classify its subresources; log the visit."""
        page_site = self._psl.site_of(page_host)
        third_party = sum(
            1 for host in request_hosts if self._psl.site_of(host) != page_site
        )
        visit = Visit(
            page_host=page_host,
            request_hosts=tuple(request_hosts),
            third_party_requests=third_party,
        )
        self._log.append(visit)
        return visit

    @property
    def history(self) -> tuple[Visit, ...]:
        return tuple(self._log)

    # -- auditing ----------------------------------------------------------------

    def partitions_observed(self) -> dict[str, tuple[str, ...]]:
        """Storage partition -> the distinct page hosts that used it.

        A partition observed by hosts that the *current* list considers
        one organization is fine; the leak check compares against a
        reference list.
        """
        observed: dict[str, set[str]] = {}
        for visit in self._log:
            site = self._psl.site_of(visit.page_host)
            observed.setdefault(site, set()).add(visit.page_host)
        return {site: tuple(sorted(hosts)) for site, hosts in observed.items()}

    def identifier_leaks(self, reference: PublicSuffixList) -> list[tuple[str, str, str]]:
        """(partition, host A, host B) triples sharing state that the
        reference list separates — concrete cross-organization
        identifier flows this browser's list permitted."""
        leaks: list[tuple[str, str, str]] = []
        for site, hosts in self.partitions_observed().items():
            for position, first in enumerate(hosts):
                for second in hosts[position + 1 :]:
                    if reference.site_of(first) != reference.site_of(second):
                        leaks.append((site, first, second))
        return leaks


@dataclass(frozen=True, slots=True)
class SessionComparison:
    """Replay outcome under two list versions."""

    stale_leaks: tuple[tuple[str, str, str], ...]
    current_leaks: tuple[tuple[str, str, str], ...]
    supercookies_blocked_only_by_current: tuple[str, ...] = field(default=())


def replay_session(
    stale: PublicSuffixList,
    current: PublicSuffixList,
    visits: list[tuple[str, tuple[str, ...]]],
    identifier_key: str = "uid",
) -> SessionComparison:
    """Drive the same session through both list versions.

    Every visited page writes an identifier into its partition; the
    comparison reports which cross-organization flows only the stale
    list allowed, plus supercookie attempts only the current list
    blocks.
    """
    browsers = {"stale": Browser(stale), "current": Browser(current)}
    blocked_only_by_current: list[str] = []
    for page_host, request_hosts in visits:
        for label, browser in browsers.items():
            browser.navigate(page_host, request_hosts)
            browser.set_item(page_host, identifier_key, f"id-of-{page_host}")
        # A tracking script also tries a widest-scope cookie.
        scope = current.public_suffix(page_host)
        outcomes = {}
        for label, psl in (("stale", stale), ("current", current)):
            try:
                CookieJar(psl).set_cookie(page_host, "track", "1", domain=scope)
                outcomes[label] = True
            except (SuperCookieError, ValueError):
                outcomes[label] = False
        if outcomes["stale"] and not outcomes["current"]:
            blocked_only_by_current.append(page_host)
    return SessionComparison(
        stale_leaks=tuple(browsers["stale"].identifier_leaks(current)),
        current_leaks=tuple(browsers["current"].identifier_leaks(current)),
        supercookies_blocked_only_by_current=tuple(blocked_only_by_current),
    )
