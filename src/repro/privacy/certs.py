"""Wildcard-certificate issuance checks.

Another validation system the paper names: "SSL wildcard issuance".
The CA/Browser Forum baseline requirements forbid issuing a wildcard
certificate whose wildcard sits directly above a public suffix
(``*.co.uk`` would cover every UK company), and hostname verification
must refuse to let a wildcard label match across a registrable-domain
boundary.  Both checks consult the PSL — so both inherit its staleness:
a CA running an outdated list will happily issue ``*.myshopify.com``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.psl.list import PublicSuffixList


@dataclass(frozen=True, slots=True)
class IssuanceDecision:
    """A CA's verdict on one certificate request."""

    requested_name: str
    allowed: bool
    reason: str


def check_issuance(psl: PublicSuffixList, requested_name: str) -> IssuanceDecision:
    """Validate a certificate subject name against the PSL.

    Wildcard names must carry exactly one leading ``*.`` and their base
    must not be a public suffix; non-wildcard names are only checked
    for having a registrable domain at all.
    """
    name = requested_name.strip().lower()
    if name.startswith("*."):
        base = name[2:]
        if "*" in base:
            return IssuanceDecision(name, False, "multiple wildcard labels")
        if psl.is_public_suffix(base):
            return IssuanceDecision(
                name, False, f"wildcard directly above public suffix {base!r}"
            )
        return IssuanceDecision(name, True, f"wildcard within site {psl.site_of(base)!r}")
    if "*" in name:
        return IssuanceDecision(name, False, "wildcard label not leftmost")
    if psl.registrable_domain(name) is None:
        return IssuanceDecision(name, False, "name is a bare public suffix")
    return IssuanceDecision(name, True, "fully-qualified host name")


def matches_certificate(psl: PublicSuffixList, certificate_name: str, hostname: str) -> bool:
    """RFC 6125-style wildcard matching with a PSL boundary check.

    A wildcard matches exactly one leftmost label, and only when doing
    so stays inside one registrable domain.
    """
    certificate_name = certificate_name.lower().rstrip(".")
    hostname = hostname.lower().rstrip(".")
    if not certificate_name.startswith("*."):
        return certificate_name == hostname
    base = certificate_name[2:]
    if not hostname.endswith("." + base):
        return False
    leftmost = hostname[: -(len(base) + 1)]
    if "." in leftmost:
        return False  # wildcard covers exactly one label
    if psl.is_public_suffix(base):
        return False  # *.co.uk-style match crosses organizations
    return True


def stale_list_overissuance(
    outdated: PublicSuffixList,
    current: PublicSuffixList,
    requested_names: list[str],
) -> list[str]:
    """Names a stale-list CA would issue that a current-list CA refuses."""
    return [
        name
        for name in requested_names
        if check_issuance(outdated, name).allowed
        and not check_issuance(current, name).allowed
    ]
