"""A PSL-aware cookie jar (RFC 6265 domain matching).

The jar implements the subset of cookie semantics where the PSL is
load-bearing:

* a cookie may set ``Domain=`` to the request host or any of its
  ancestors, **but never to a public suffix** — otherwise
  ``Domain=co.uk`` would be readable by every UK company (the
  "supercookie" the paper mentions browsers filter);
* nor to a domain with a public suffix strictly *below* it (an
  unlisted parent of a listed suffix): RFC 6265 domain matching is
  pure string suffixing, so such a cookie would be attached to
  requests for the suffix host itself — state leaking across the
  boundary the list defines;
* host-only cookies (no ``Domain=``) match the exact host;
* domain cookies match the domain and its subdomains.

Because the suffix check consults the injected
:class:`~repro.psl.list.PublicSuffixList`, running the same scenario
under two list versions shows exactly the harm of Figure 1: a list
missing ``example.co.uk``-style rules accepts cookies that leak across
organizations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.psl.errors import PslError
from repro.psl.list import PublicSuffixList


class SuperCookieError(PslError):
    """Raised when a cookie tries to scope itself to a public suffix."""

    def __init__(self, domain: str) -> None:
        self.domain = domain
        super().__init__(f"refusing supercookie for public suffix {domain!r}")


@dataclass(frozen=True, slots=True)
class Cookie:
    """One stored cookie."""

    name: str
    value: str
    domain: str
    host_only: bool

    def matches(self, host: str) -> bool:
        """RFC 6265 section 5.1.3 domain matching."""
        if self.host_only:
            return host == self.domain
        return host == self.domain or host.endswith("." + self.domain)


class CookieJar:
    """A cookie store enforcing PSL-derived domain rules."""

    def __init__(self, psl: PublicSuffixList) -> None:
        self._psl = psl
        self._cookies: dict[tuple[str, str, bool], Cookie] = {}

    def __len__(self) -> int:
        return len(self._cookies)

    def set_cookie(
        self, request_host: str, name: str, value: str, domain: str | None = None
    ) -> Cookie:
        """Store a cookie set by ``request_host``.

        ``domain`` is the ``Domain=`` attribute; None means host-only.
        Raises :class:`SuperCookieError` for public-suffix domains and
        ValueError when the attribute does not cover the request host.
        """
        host = request_host.lower().rstrip(".")
        if domain is None:
            cookie = Cookie(name=name, value=value, domain=host, host_only=True)
        else:
            scope = domain.lower().lstrip(".").rstrip(".")
            if self._psl.is_public_suffix(scope):
                # RFC 6265 + real browser behaviour: one exception — a
                # request from exactly the suffix may treat it host-only.
                if scope == host:
                    cookie = Cookie(name=name, value=value, domain=host, host_only=True)
                    self._cookies[(cookie.domain, name, True)] = cookie
                    return cookie
                raise SuperCookieError(scope)
            if self._psl.any_suffix_below(scope):
                # A suffix strictly below the scope means the scope is
                # an unlisted parent; subdomain matching would carry
                # the cookie into the suffix host's site.
                raise SuperCookieError(scope)
            if host != scope and not host.endswith("." + scope):
                raise ValueError(f"{request_host!r} cannot set a cookie for {domain!r}")
            cookie = Cookie(name=name, value=value, domain=scope, host_only=False)
        self._cookies[(cookie.domain, name, cookie.host_only)] = cookie
        return cookie

    def cookies_for(self, request_host: str) -> list[Cookie]:
        """Cookies the browser would attach to a request to ``request_host``."""
        host = request_host.lower().rstrip(".")
        return sorted(
            (cookie for cookie in self._cookies.values() if cookie.matches(host)),
            key=lambda cookie: (cookie.domain, cookie.name),
        )

    def readable_by(self, first_host: str, second_host: str) -> list[Cookie]:
        """Cookies set while on ``first_host`` that ``second_host`` can read.

        The cross-organization leak check of the paper's Figure 1: under
        a correct list this is empty for two different registrants of
        the same public suffix.
        """
        visible_second = set(
            (cookie.domain, cookie.name, cookie.host_only) for cookie in self.cookies_for(second_host)
        )
        return [
            cookie
            for cookie in self.cookies_for(first_host)
            if (cookie.domain, cookie.name, cookie.host_only) in visible_second
        ]
