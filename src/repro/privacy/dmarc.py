"""DMARC organizational-domain discovery (RFC 7489 section 3.2).

One of the paper's named PSL use cases: "finding DMARC policy records
for email subdomains".  When ``mail.corp.example.co.uk`` has no DMARC
record of its own, the receiver queries the *organizational domain* —
computed with the PSL — at ``_dmarc.example.co.uk``.  An outdated list
computes the wrong organizational domain, so policy discovery walks to
a name controlled by a different organization: with a list missing
``example.co.uk``-style rules, every registrant under the suffix
resolves to the *same* fallback record owner.

The DNS is modelled by a minimal TXT-record zone, enough to drive the
discovery logic end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.psl.list import PublicSuffixList


class TxtZone:
    """A miniature DNS TXT-record store."""

    def __init__(self) -> None:
        self._records: dict[str, list[str]] = {}

    def add(self, name: str, value: str) -> None:
        """Publish a TXT record at ``name``."""
        self._records.setdefault(name.lower().rstrip("."), []).append(value)

    def lookup(self, name: str) -> list[str]:
        """TXT records at exactly ``name`` (no wildcard semantics)."""
        return list(self._records.get(name.lower().rstrip("."), []))


@dataclass(frozen=True, slots=True)
class DmarcResult:
    """Outcome of policy discovery for one sender domain."""

    sender: str
    organizational_domain: str
    record: str | None
    queried: tuple[str, ...]  # the _dmarc names queried, in order

    @property
    def found(self) -> bool:
        return self.record is not None


def organizational_domain(psl: PublicSuffixList, domain: str) -> str:
    """RFC 7489's organizational domain: the PSL's registrable domain.

    Domains that are themselves public suffixes are their own
    organizational domain (the RFC's degenerate case).
    """
    return psl.match(domain).site


def discover_policy(psl: PublicSuffixList, zone: TxtZone, sender: str) -> DmarcResult:
    """RFC 7489 discovery: exact domain first, then the org domain."""
    queried: list[str] = []

    def query(domain: str) -> str | None:
        name = f"_dmarc.{domain}"
        queried.append(name)
        for value in zone.lookup(name):
            if value.startswith("v=DMARC1"):
                return value
        return None

    record = query(sender)
    org = organizational_domain(psl, sender)
    if record is None and org != sender:
        record = query(org)
    return DmarcResult(
        sender=sender,
        organizational_domain=org,
        record=record,
        queried=tuple(queried),
    )


def discover_policy_dns(psl: PublicSuffixList, resolver, sender: str) -> DmarcResult:
    """RFC 7489 discovery over the real DNS substrate.

    ``resolver`` is a :class:`repro.net.dns.StubResolver`; TXT records
    live at ``_dmarc.<domain>``.  Behaviour matches
    :func:`discover_policy`, but answers flow through CNAME chasing and
    the resolver cache like production mail receivers' do.
    """
    from repro.net.dns import RecordType

    queried: list[str] = []

    def query(domain: str) -> str | None:
        name = f"_dmarc.{domain}"
        queried.append(name)
        for value in resolver.resolve(name, RecordType.TXT).texts():
            if value.startswith("v=DMARC1"):
                return value
        return None

    record = query(sender)
    org = organizational_domain(psl, sender)
    if record is None and org != sender:
        record = query(org)
    return DmarcResult(
        sender=sender, organizational_domain=org, record=record, queried=tuple(queried)
    )


def misdirected_queries(
    outdated: PublicSuffixList,
    current: PublicSuffixList,
    senders: list[str],
) -> list[tuple[str, str, str]]:
    """Senders whose fallback query goes to the wrong owner when stale.

    Returns (sender, stale org domain, correct org domain) triples —
    each one is a mail-security decision delegated to a domain outside
    the sender's organization.
    """
    wrong: list[tuple[str, str, str]] = []
    for sender in senders:
        stale_org = organizational_domain(outdated, sender)
        true_org = organizational_domain(current, sender)
        if stale_org != true_org:
            wrong.append((sender, stale_org, true_org))
    return wrong
