"""Cross-site tracking simulation under two list versions.

Replays a browsing trace twice — once under an outdated list, once
under the current one — and reports every pair of hosts that shares
browser state under the outdated list but is separated by the current
one.  Each such pair is a concrete tracking opportunity created purely
by the stale list: a script on one host can read identifiers written
by the other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.psl.list import PublicSuffixList


@dataclass(frozen=True, slots=True)
class Leak:
    """One state-sharing pair the outdated list wrongly permits."""

    first_host: str
    second_host: str
    shared_site_under_outdated: str
    sites_under_current: tuple[str, str]


@dataclass(frozen=True, slots=True)
class TrackingReport:
    """Outcome of one trace replay."""

    leaks: tuple[Leak, ...]
    hosts_visited: int
    pairs_checked: int

    @property
    def leak_rate(self) -> float:
        """Fraction of checked pairs that leak."""
        if self.pairs_checked == 0:
            return 0.0
        return len(self.leaks) / self.pairs_checked


class TrackingSimulator:
    """Compares state partitioning between two list versions."""

    def __init__(self, outdated: PublicSuffixList, current: PublicSuffixList) -> None:
        self._outdated = outdated
        self._current = current

    def replay(self, visited_hosts: Sequence[str] | Iterable[str]) -> TrackingReport:
        """Replay a trace of visited hosts and collect the leaks.

        Hosts grouped into one site by the outdated list share cookies,
        localStorage, and caches; if the current list splits them, that
        sharing crosses an organizational boundary.
        """
        hosts = sorted(set(visited_hosts))
        outdated_sites: dict[str, list[str]] = {}
        for host in hosts:
            outdated_sites.setdefault(self._outdated.site_of(host), []).append(host)

        leaks: list[Leak] = []
        pairs_checked = 0
        for shared_site, members in sorted(outdated_sites.items()):
            for position, first in enumerate(members):
                for second in members[position + 1 :]:
                    pairs_checked += 1
                    current_first = self._current.site_of(first)
                    current_second = self._current.site_of(second)
                    if current_first != current_second:
                        leaks.append(
                            Leak(
                                first_host=first,
                                second_host=second,
                                shared_site_under_outdated=shared_site,
                                sites_under_current=(current_first, current_second),
                            )
                        )
        return TrackingReport(
            leaks=tuple(leaks), hosts_visited=len(hosts), pairs_checked=pairs_checked
        )
