"""The Public Suffix List engine.

Implements the full publicsuffix.org algorithm over ``.dat`` files:

* :mod:`repro.psl.rules` — the three rule kinds (normal, wildcard,
  exception) and the ICANN/PRIVATE section split;
* :mod:`repro.psl.parser` / :mod:`repro.psl.serialize` — reading and
  writing the ``public_suffix_list.dat`` wire format;
* :mod:`repro.psl.trie` / :mod:`repro.psl.matcher` — a reversed-label
  trie and the prevailing-rule lookup;
* :mod:`repro.psl.list` — the :class:`~repro.psl.list.PublicSuffixList`
  facade (public suffix, registrable domain, site equality);
* :mod:`repro.psl.packed` — the flat, immutable, mmap-shareable trie
  encoding behind zero-copy snapshot serving;
* :mod:`repro.psl.diff` — deltas between list versions, the unit of the
  incremental analyses in :mod:`repro.analysis`;
* :mod:`repro.psl.punycode` / :mod:`repro.psl.idna` — RFC 3492 and the
  IDNA mapping needed because PSL matching is defined over A-labels.
"""

from repro.psl.diff import RuleDelta, diff_rules
from repro.psl.errors import PslError, PslParseError, PunycodeError
from repro.psl.linter import LintFinding, LintReport, lint_psl
from repro.psl.list import PublicSuffixList, SuffixMatch
from repro.psl.packed import (
    PackedFormatError,
    PackedHistory,
    PackedTrie,
    pack_history,
    pack_rules,
)
from repro.psl.parser import parse_psl
from repro.psl.rules import Rule, RuleKind, Section
from repro.psl.serialize import serialize_psl

__all__ = [
    "LintFinding",
    "LintReport",
    "PackedFormatError",
    "PackedHistory",
    "PackedTrie",
    "PslError",
    "PslParseError",
    "PublicSuffixList",
    "PunycodeError",
    "Rule",
    "RuleDelta",
    "RuleKind",
    "Section",
    "SuffixMatch",
    "diff_rules",
    "lint_psl",
    "pack_history",
    "pack_rules",
    "parse_psl",
    "serialize_psl",
]
