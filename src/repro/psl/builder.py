"""Fluent construction of Public Suffix Lists.

Tests, examples, and simulations keep assembling small lists by hand;
the builder makes that declarative and *validated*: every mutation
parses through the rule grammar, wildcards auto-carry their base
context, exceptions are checked against a covering wildcard (the
linter's acceptance rule, enforced at build time), and `build()`
returns the immutable engine object.
"""

from __future__ import annotations

from repro.psl.errors import PslParseError
from repro.psl.list import PublicSuffixList
from repro.psl.rules import Rule, RuleKind, Section


class PslBuilder:
    """Accumulates rules; ``build()`` produces a PublicSuffixList.

    >>> psl = (PslBuilder()
    ...        .tld('com')
    ...        .suffix('co.uk')
    ...        .wildcard('ck', exceptions=['www'])
    ...        .private_suffix('github.io')
    ...        .build())
    >>> psl.public_suffix('a.github.io')
    'github.io'
    """

    def __init__(self) -> None:
        self._rules: list[Rule] = []

    def _add(self, rule: Rule) -> "PslBuilder":
        self._rules.append(rule)
        return self

    def tld(self, label: str) -> "PslBuilder":
        """Add a top-level rule (one label)."""
        rule = Rule.parse(label)
        if rule.component_count != 1:
            raise PslParseError(f"{label!r} is not a single label")
        return self._add(rule)

    def suffix(self, name: str, *, section: Section = Section.ICANN) -> "PslBuilder":
        """Add a normal rule of any depth."""
        rule = Rule.parse(name, section=section)
        if rule.kind is not RuleKind.NORMAL:
            raise PslParseError(f"{name!r} is not a normal rule; use wildcard()/exception()")
        return self._add(rule)

    def private_suffix(self, name: str) -> "PslBuilder":
        """Add a PRIVATE-division rule (operator submission)."""
        return self.suffix(name, section=Section.PRIVATE)

    def wildcard(
        self,
        base: str,
        *,
        exceptions: list[str] | None = None,
        section: Section = Section.ICANN,
    ) -> "PslBuilder":
        """Add ``*.base`` plus its ``!<label>.base`` exceptions."""
        self._add(Rule.parse(f"*.{base}", section=section))
        for label in exceptions or []:
            self._add(Rule.parse(f"!{label}.{base}", section=section))
        return self

    def exception(self, name: str, *, section: Section = Section.ICANN) -> "PslBuilder":
        """Add a bare exception rule; its wildcard must already exist."""
        rule = Rule.parse(f"!{name.lstrip('!')}", section=section)
        parent = ".".join(reversed(rule.labels[:-1]))
        covering = any(
            candidate.kind is RuleKind.WILDCARD
            and ".".join(reversed(candidate.labels[:-1])) == parent
            for candidate in self._rules
        )
        if not covering:
            raise PslParseError(
                f"exception {rule.text!r} has no covering wildcard in the builder"
            )
        return self._add(rule)

    def rules_from(self, other: PublicSuffixList) -> "PslBuilder":
        """Start from an existing list's rules."""
        self._rules.extend(other.rules)
        return self

    def __len__(self) -> int:
        return len(self._rules)

    def build(self) -> PublicSuffixList:
        """The immutable list (duplicates collapse, order irrelevant)."""
        return PublicSuffixList(self._rules)
