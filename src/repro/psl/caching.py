"""A memoizing wrapper around :class:`PublicSuffixList`.

Real consumers (browsers, mail receivers) look the same hostnames up
over and over; production PSL libraries therefore memoize.  The
wrapper caches full :class:`~repro.psl.list.SuffixMatch` results with
LRU eviction, exposes hit statistics, and stays correct by being keyed
to one immutable list (swap lists, get a new cache).

The ablation bench quantifies the win on snapshot-shaped workloads
(Zipf-repeating hostnames).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Hashable, TypeVar

from repro.psl.list import PublicSuffixList, SuffixMatch

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class LruDict(Generic[K, V]):
    """A minimal bounded mapping with least-recently-used eviction.

    Extracted from :class:`CachingMatcher` so every bounded memo in the
    codebase (suffix-match caching here, the streaming third-party
    memo in :mod:`repro.webgraph.stream`) shares one eviction
    implementation.  ``None`` is not a valid stored value — ``get``
    uses it as the miss sentinel, which keeps the hot path to a single
    dictionary probe.
    """

    __slots__ = ("_data", "capacity")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._data: OrderedDict[K, V] = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: K) -> bool:
        return key in self._data

    def get(self, key: K) -> V | None:
        """The stored value, refreshed as most recent; None on a miss."""
        value = self._data.get(key)
        if value is not None:
            self._data.move_to_end(key)
        return value

    def put(self, key: K, value: V) -> None:
        """Store a value, evicting the least recently used past capacity."""
        if value is None:
            raise ValueError("LruDict cannot store None (it is the miss sentinel)")
        self._data[key] = value
        self._data.move_to_end(key)
        if len(self._data) > self.capacity:
            self._data.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry."""
        self._data.clear()


class CachingMatcher:
    """LRU-cached lookups over one immutable list."""

    def __init__(self, psl: PublicSuffixList, *, capacity: int = 10_000) -> None:
        self._psl = psl
        self._cache: LruDict[str, SuffixMatch] = LruDict(capacity)
        self.hits = 0
        self.misses = 0

    @property
    def psl(self) -> PublicSuffixList:
        """The wrapped list (immutable, so the cache can never go stale)."""
        return self._psl

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def match(self, hostname: str) -> SuffixMatch:
        """Cached :meth:`PublicSuffixList.match`.

        The raw hostname string is the cache key; differently-cased
        spellings of one name occupy separate slots by design (keeping
        the hot path to one dict probe, no normalization).
        """
        cached = self._cache.get(hostname)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        match = self._psl.match(hostname)
        self._cache.put(hostname, match)
        return match

    def public_suffix(self, hostname: str) -> str:
        """Cached public suffix."""
        return self.match(hostname).public_suffix

    def registrable_domain(self, hostname: str) -> str | None:
        """Cached registrable domain."""
        return self.match(hostname).registrable_domain

    def site_of(self, hostname: str) -> str:
        """Cached site key."""
        return self.match(hostname).site

    def same_site(self, first: str, second: str) -> bool:
        """Cached same-site check."""
        return self.site_of(first) == self.site_of(second)

    def clear(self) -> None:
        """Drop every cached entry and reset the statistics."""
        self._cache.clear()
        self.hits = 0
        self.misses = 0
