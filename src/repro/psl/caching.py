"""A memoizing wrapper around :class:`PublicSuffixList`.

Real consumers (browsers, mail receivers) look the same hostnames up
over and over; production PSL libraries therefore memoize.  The
wrapper caches full :class:`~repro.psl.list.SuffixMatch` results with
LRU eviction, exposes hit statistics, and stays correct by being keyed
to one immutable list (swap lists, get a new cache).

The ablation bench quantifies the win on snapshot-shaped workloads
(Zipf-repeating hostnames).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.psl.list import PublicSuffixList, SuffixMatch


class CachingMatcher:
    """LRU-cached lookups over one immutable list."""

    def __init__(self, psl: PublicSuffixList, *, capacity: int = 10_000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._psl = psl
        self._capacity = capacity
        self._cache: OrderedDict[str, SuffixMatch] = OrderedDict()
        self.hits = 0
        self.misses = 0

    @property
    def psl(self) -> PublicSuffixList:
        """The wrapped list (immutable, so the cache can never go stale)."""
        return self._psl

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def match(self, hostname: str) -> SuffixMatch:
        """Cached :meth:`PublicSuffixList.match`.

        The raw hostname string is the cache key; differently-cased
        spellings of one name occupy separate slots by design (keeping
        the hot path to one dict probe, no normalization).
        """
        cached = self._cache.get(hostname)
        if cached is not None:
            self._cache.move_to_end(hostname)
            self.hits += 1
            return cached
        self.misses += 1
        match = self._psl.match(hostname)
        self._cache[hostname] = match
        if len(self._cache) > self._capacity:
            self._cache.popitem(last=False)
        return match

    def public_suffix(self, hostname: str) -> str:
        """Cached public suffix."""
        return self.match(hostname).public_suffix

    def registrable_domain(self, hostname: str) -> str | None:
        """Cached registrable domain."""
        return self.match(hostname).registrable_domain

    def site_of(self, hostname: str) -> str:
        """Cached site key."""
        return self.match(hostname).site

    def same_site(self, first: str, second: str) -> bool:
        """Cached same-site check."""
        return self.site_of(first) == self.site_of(second)

    def clear(self) -> None:
        """Drop every cached entry and reset the statistics."""
        self._cache.clear()
        self.hits = 0
        self.misses = 0
