"""A memoizing wrapper around :class:`PublicSuffixList`.

Real consumers (browsers, mail receivers) look the same hostnames up
over and over; production PSL libraries therefore memoize.  The
wrapper caches full :class:`~repro.psl.list.SuffixMatch` results with
LRU eviction, exposes hit statistics, and stays correct by being keyed
to one immutable list (swap lists, get a new cache).

The ablation bench quantifies the win on snapshot-shaped workloads
(Zipf-repeating hostnames).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Generic, Hashable, TypeVar

from repro.psl.list import PublicSuffixList, SuffixMatch

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class LruDict(Generic[K, V]):
    """A minimal bounded mapping with least-recently-used eviction.

    Extracted from :class:`CachingMatcher` so every bounded memo in the
    codebase (suffix-match caching here, the streaming third-party
    memo in :mod:`repro.webgraph.stream`) shares one eviction
    implementation.  ``None`` is not a valid stored value — ``get``
    uses it as the miss sentinel, which keeps the hot path to a single
    dictionary probe.
    """

    __slots__ = ("_data", "capacity")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._data: OrderedDict[K, V] = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: K) -> bool:
        return key in self._data

    def get(self, key: K) -> V | None:
        """The stored value, refreshed as most recent; None on a miss."""
        value = self._data.get(key)
        if value is not None:
            self._data.move_to_end(key)
        return value

    def put(self, key: K, value: V) -> None:
        """Store a value, evicting the least recently used past capacity."""
        if value is None:
            raise ValueError("LruDict cannot store None (it is the miss sentinel)")
        self._data[key] = value
        self._data.move_to_end(key)
        if len(self._data) > self.capacity:
            self._data.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry."""
        self._data.clear()


class ThreadSafeLruDict(Generic[K, V]):
    """A :class:`LruDict` safe for concurrent readers and writers.

    ``LruDict`` itself is **not** thread-safe: every ``get`` mutates
    recency (``move_to_end``), so even all-reader workloads write, and
    ``put`` is a three-step sequence (insert, refresh, evict) that can
    interleave with a concurrent ``clear`` into a ``KeyError`` from
    ``popitem`` or leave the map transiently over capacity.  The serve
    engine's query caches are hit from every server thread at once, so
    this wrapper takes one mutex around each composite operation.

    Hit/miss counters live here too, updated under the same lock —
    accurate statistics come for free once the lock exists, and the
    serving metrics endpoint needs them to be exact, not racy.
    """

    __slots__ = ("_inner", "_lock", "hits", "misses")

    def __init__(self, capacity: int) -> None:
        self._inner: LruDict[K, V] = LruDict(capacity)
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    @property
    def capacity(self) -> int:
        return self._inner.capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._inner)

    def __contains__(self, key: K) -> bool:
        with self._lock:
            return key in self._inner

    def get(self, key: K) -> V | None:
        """The stored value, refreshed as most recent; None on a miss."""
        with self._lock:
            value = self._inner.get(key)
            if value is None:
                self.misses += 1
            else:
                self.hits += 1
            return value

    def put(self, key: K, value: V) -> None:
        """Store a value, evicting the least recently used past capacity."""
        with self._lock:
            self._inner.put(key, value)

    def clear(self) -> None:
        """Drop every entry and reset the statistics."""
        with self._lock:
            self._inner.clear()
            self.hits = 0
            self.misses = 0


class CachingMatcher:
    """LRU-cached lookups over one immutable list."""

    def __init__(self, psl: PublicSuffixList, *, capacity: int = 10_000) -> None:
        self._psl = psl
        self._cache: LruDict[str, SuffixMatch] = LruDict(capacity)
        self.hits = 0
        self.misses = 0

    @property
    def psl(self) -> PublicSuffixList:
        """The wrapped list (immutable, so the cache can never go stale)."""
        return self._psl

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def match(self, hostname: str) -> SuffixMatch:
        """Cached :meth:`PublicSuffixList.match`.

        The raw hostname string is the cache key; differently-cased
        spellings of one name occupy separate slots by design (keeping
        the hot path to one dict probe, no normalization).
        """
        cached = self._cache.get(hostname)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        match = self._psl.match(hostname)
        self._cache.put(hostname, match)
        return match

    def public_suffix(self, hostname: str) -> str:
        """Cached public suffix."""
        return self.match(hostname).public_suffix

    def registrable_domain(self, hostname: str) -> str | None:
        """Cached registrable domain."""
        return self.match(hostname).registrable_domain

    def site_of(self, hostname: str) -> str:
        """Cached site key."""
        return self.match(hostname).site

    def same_site(self, first: str, second: str) -> bool:
        """Cached same-site check."""
        return self.site_of(first) == self.site_of(second)

    def clear(self) -> None:
        """Drop every cached entry and reset the statistics."""
        self._cache.clear()
        self.hits = 0
        self.misses = 0
