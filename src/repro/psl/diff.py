"""Deltas between Public Suffix List versions.

The paper's version sweep interprets one web snapshot under 1,142 list
versions.  Doing that naively costs |hostnames| x |versions| lookups;
the incremental analyses in :mod:`repro.analysis.boundaries` instead
walk the history as a chain of :class:`RuleDelta` objects and only
re-examine hostnames that a changed rule can affect.  This module
computes, applies, composes, and inverts those deltas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.psl.list import PublicSuffixList
from repro.psl.rules import Rule, Section

PATCH_HEADER = "# psl-delta v1"


@dataclass(frozen=True, slots=True)
class RuleDelta:
    """An unordered set difference between two rule sets.

    Invariant (enforced at construction): ``added`` and ``removed`` are
    disjoint.  An empty delta is falsy, which lets replay loops skip
    no-op versions cheaply.
    """

    added: frozenset[Rule]
    removed: frozenset[Rule]

    def __post_init__(self) -> None:
        overlap = self.added & self.removed
        if overlap:
            raise ValueError(f"delta adds and removes the same rules: {sorted(r.text for r in overlap)}")

    def __bool__(self) -> bool:
        return bool(self.added or self.removed)

    def __len__(self) -> int:
        return len(self.added) + len(self.removed)

    def invert(self) -> "RuleDelta":
        """The delta that undoes this one."""
        return RuleDelta(added=self.removed, removed=self.added)

    def apply(self, psl: PublicSuffixList) -> PublicSuffixList:
        """Apply this delta to a list, producing the successor version."""
        return psl.with_rules(added=self.added, removed=self.removed)

    def compose(self, later: "RuleDelta") -> "RuleDelta":
        """The single delta equivalent to applying ``self`` then ``later``.

        Equivalence holds over ``apply`` on *any* base: a rule added
        then removed nets to a removal (it must end up absent even on
        bases that already carried it), and vice versa.  A composed
        delta over a long span therefore stays proportional to the net
        change — the property the incremental sweep exploits.
        """
        added = (self.added - later.removed) | later.added
        removed = (self.removed - later.added) | later.removed
        return RuleDelta(added=added - removed, removed=removed - added)

    def touched_names(self) -> frozenset[str]:
        """Dotted names of every rule this delta touches (sans markers)."""
        return frozenset(rule.name for rule in self.added | self.removed)

    def to_patch(self) -> str:
        """Serialize as a patch file.

        Format: a header line, then one ``+section:rule`` or
        ``-section:rule`` line per change, sorted (removals first) so
        output is canonical.  This is the interchange format for
        publishing per-version changes alongside an artifact release.

        >>> delta = RuleDelta(frozenset([Rule.parse('dev')]), frozenset())
        >>> print(delta.to_patch())
        # psl-delta v1
        +icann:dev
        """
        lines = [PATCH_HEADER]
        for rule in sorted(self.removed, key=lambda r: (r.section.value, r.labels)):
            lines.append(f"-{rule.section.value}:{rule.text}")
        for rule in sorted(self.added, key=lambda r: (r.section.value, r.labels)):
            lines.append(f"+{rule.section.value}:{rule.text}")
        return "\n".join(lines)

    @classmethod
    def from_patch(cls, text: str) -> "RuleDelta":
        """Parse a patch produced by :meth:`to_patch`.

        Raises ValueError on unknown headers or malformed lines — a
        truncated patch must never half-apply.
        """
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines or lines[0].strip() != PATCH_HEADER:
            raise ValueError("not a psl-delta v1 patch")
        added: set[Rule] = set()
        removed: set[Rule] = set()
        for line in lines[1:]:
            sign = line[0]
            if sign not in "+-" or ":" not in line:
                raise ValueError(f"malformed patch line {line!r}")
            section_name, _, rule_text = line[1:].partition(":")
            try:
                section = Section(section_name)
            except ValueError:
                raise ValueError(f"unknown section {section_name!r}") from None
            rule = Rule.parse(rule_text, section=section)
            (added if sign == "+" else removed).add(rule)
        return cls(added=frozenset(added), removed=frozenset(removed))


def diff_rules(old: PublicSuffixList, new: PublicSuffixList) -> RuleDelta:
    """Compute the delta transforming ``old`` into ``new``.

    >>> from repro.psl.rules import Rule
    >>> old = PublicSuffixList([Rule.parse('com')])
    >>> new = PublicSuffixList([Rule.parse('com'), Rule.parse('dev')])
    >>> sorted(r.text for r in diff_rules(old, new).added)
    ['dev']
    """
    old_rules = set(old.rules)
    new_rules = set(new.rules)
    return RuleDelta(
        added=frozenset(new_rules - old_rules),
        removed=frozenset(old_rules - new_rules),
    )


def compose_all(deltas: Iterable[RuleDelta]) -> RuleDelta:
    """Fold a sequence of deltas into one net delta."""
    result = RuleDelta(frozenset(), frozenset())
    for delta in deltas:
        result = result.compose(delta)
    return result
