"""Exception types raised by the PSL engine."""


class PslError(ValueError):
    """Base class for all PSL engine errors."""


class PslParseError(PslError):
    """Raised when a ``.dat`` file or a single rule cannot be parsed.

    Carries the 1-based ``line_number`` when parsing a full file, or 0
    when parsing an isolated rule string.
    """

    def __init__(self, message: str, line_number: int = 0) -> None:
        self.line_number = line_number
        if line_number:
            message = f"line {line_number}: {message}"
        super().__init__(message)


class PunycodeError(PslError):
    """Raised when punycode encoding or decoding fails (RFC 3492)."""
