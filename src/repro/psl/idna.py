"""Minimal IDNA mapping used by the PSL engine.

PSL matching is defined over A-labels, so every hostname and every rule
label is canonicalized with :func:`to_ascii` before lookup.  The mapping
implemented here is the subset of IDNA2008/UTS-46 the pipeline needs:
NFC normalization, lowercasing, and punycode conversion of non-ASCII
labels, with structural validation (length limits, no leading/trailing
hyphens in A-labels).
"""

from __future__ import annotations

import unicodedata

from repro.psl import punycode
from repro.psl.errors import PunycodeError

ACE_PREFIX = "xn--"
MAX_LABEL_LENGTH = 63


def _map_label(label: str) -> str:
    """Apply the UTS-46 style case fold + NFC normalization to one label."""
    return unicodedata.normalize("NFC", label.lower())


def label_to_ascii(label: str) -> str:
    """Convert one label to its A-label (ASCII) form.

    ASCII labels pass through lowercased; non-ASCII labels are NFC
    normalized and punycode encoded with the ``xn--`` prefix.
    """
    mapped = _map_label(label)
    if mapped.isascii():
        ascii_label = mapped
    else:
        ascii_label = ACE_PREFIX + punycode.encode(mapped)
    if len(ascii_label) > MAX_LABEL_LENGTH:
        raise PunycodeError(f"A-label longer than {MAX_LABEL_LENGTH} characters: {ascii_label!r}")
    return ascii_label


def label_to_unicode(label: str) -> str:
    """Convert one label to its U-label form, decoding ``xn--`` labels."""
    lowered = label.lower()
    if lowered.startswith(ACE_PREFIX):
        return punycode.decode(lowered[len(ACE_PREFIX) :])
    return lowered


def to_ascii(name: str) -> str:
    """Convert a whole dotted name to A-label form.

    Wildcard (``*``) and exception-less empty labels used in PSL rules
    are preserved verbatim.

    >>> to_ascii('点看.example')
    'xn--3pxu8k.example'
    """
    # Fast path: ASCII is NFC-invariant and lowercasing is the whole
    # mapping, and a name no longer than one label's limit cannot hide
    # an over-long label — so the per-label walk is pure overhead.
    if len(name) <= MAX_LABEL_LENGTH and name.isascii():
        return name.lower()
    return ".".join(
        label if label == "*" else label_to_ascii(label) for label in name.split(".")
    )


def to_unicode(name: str) -> str:
    """Convert a whole dotted name to U-label form.

    >>> to_unicode('xn--3pxu8k.example')
    '点看.example'
    """
    return ".".join(
        label if label == "*" else label_to_unicode(label) for label in name.split(".")
    )
