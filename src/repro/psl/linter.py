"""Linting ``.dat`` files — the list maintainers' acceptance checks.

The PSL is maintained "as a community effort on GitHub, whereby any
domain owner … can submit name suffixes for inclusion" (paper
Section 2).  Submissions are gated by mechanical checks; this module
implements the ones that matter for consumers too, so vendored copies
can be validated before being trusted:

* structural: unparseable lines, duplicate rules, rules duplicated
  across divisions;
* semantic: exception rules without a covering wildcard, wildcards
  whose base is not itself a listed suffix context, shadowed rules
  (a rule implied by another, e.g. ``b.ck`` under ``*.ck``);
* hygiene: section-marker balance and rule ordering within blocks.

Findings are data, not exceptions: the linter's job is a report.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.psl.errors import PslParseError
from repro.psl.parser import ICANN_BEGIN, ICANN_END, PRIVATE_BEGIN, PRIVATE_END
from repro.psl.rules import Rule, RuleKind, Section


class Severity(enum.Enum):
    """Finding severities; ERROR findings make a list unacceptable."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True, slots=True)
class LintFinding:
    """One linter finding, anchored to a line where possible."""

    severity: Severity
    line_number: int  # 0 when the finding is not line-anchored
    message: str

    def __str__(self) -> str:
        location = f"line {self.line_number}: " if self.line_number else ""
        return f"[{self.severity.value}] {location}{self.message}"


@dataclass(frozen=True, slots=True)
class LintReport:
    """The full result of linting one ``.dat`` text."""

    findings: tuple[LintFinding, ...]
    rule_count: int

    @property
    def errors(self) -> tuple[LintFinding, ...]:
        return tuple(f for f in self.findings if f.severity is Severity.ERROR)

    @property
    def warnings(self) -> tuple[LintFinding, ...]:
        return tuple(f for f in self.findings if f.severity is Severity.WARNING)

    @property
    def ok(self) -> bool:
        """True when the list has no ERROR findings."""
        return not self.errors


def _check_markers(lines: list[str], findings: list[LintFinding]) -> None:
    """Section markers must appear at most once, in order, balanced."""
    positions = {marker: [] for marker in (ICANN_BEGIN, ICANN_END, PRIVATE_BEGIN, PRIVATE_END)}
    for number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if stripped in positions:
            positions[stripped].append(number)
    for marker, seen in positions.items():
        if len(seen) > 1:
            findings.append(
                LintFinding(Severity.ERROR, seen[1], f"duplicate section marker {marker!r}")
            )
    for begin, end in ((ICANN_BEGIN, ICANN_END), (PRIVATE_BEGIN, PRIVATE_END)):
        begins, ends = positions[begin], positions[end]
        if bool(begins) != bool(ends):
            findings.append(
                LintFinding(Severity.ERROR, 0, f"unbalanced section markers for {begin!r}")
            )
        elif begins and ends and begins[0] > ends[0]:
            findings.append(
                LintFinding(Severity.ERROR, ends[0], f"{end!r} precedes its begin marker")
            )


def lint_psl(text: str) -> LintReport:
    """Lint ``.dat`` text and return every finding."""
    findings: list[LintFinding] = []
    lines = text.splitlines()
    _check_markers(lines, findings)

    section = Section.ICANN
    in_private = False
    parsed: list[tuple[int, Rule]] = []
    seen: dict[tuple[str, Section], int] = {}
    seen_any_section: dict[str, tuple[int, Section]] = {}
    previous_in_block: Rule | None = None

    for number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line:
            previous_in_block = None
            continue
        if line.startswith("//"):
            if line == PRIVATE_BEGIN:
                in_private, section = True, Section.PRIVATE
            elif line == PRIVATE_END:
                in_private, section = False, Section.ICANN
            previous_in_block = None
            continue
        try:
            rule = Rule.parse(line, section=section)
        except PslParseError as error:
            findings.append(LintFinding(Severity.ERROR, number, str(error)))
            continue
        parsed.append((number, rule))

        key = (rule.text, rule.section)
        if key in seen:
            findings.append(
                LintFinding(
                    Severity.ERROR, number,
                    f"duplicate rule {rule.text!r} (first at line {seen[key]})",
                )
            )
        else:
            seen[key] = number
            if rule.text in seen_any_section and seen_any_section[rule.text][1] is not section:
                findings.append(
                    LintFinding(
                        Severity.ERROR, number,
                        f"rule {rule.text!r} appears in both divisions",
                    )
                )
            seen_any_section.setdefault(rule.text, (number, section))

        if previous_in_block is not None and rule.labels < previous_in_block.labels:
            findings.append(
                LintFinding(
                    Severity.WARNING, number,
                    f"rule {rule.text!r} out of order within its block",
                )
            )
        previous_in_block = rule

    _check_semantics(parsed, findings)
    if in_private:
        findings.append(LintFinding(Severity.ERROR, 0, "file ends inside the PRIVATE division"))

    findings.sort(key=lambda f: (f.line_number, f.message))
    return LintReport(findings=tuple(findings), rule_count=len(parsed))


def _check_semantics(parsed: list[tuple[int, Rule]], findings: list[LintFinding]) -> None:
    """Cross-rule checks: exceptions need wildcards; shadowed rules."""
    by_name: dict[str, list[Rule]] = {}
    wildcard_bases: set[str] = set()
    for _, rule in parsed:
        by_name.setdefault(rule.name, []).append(rule)
        if rule.kind is RuleKind.WILDCARD:
            wildcard_bases.add(".".join(reversed(rule.labels[:-1])))

    for number, rule in parsed:
        if rule.kind is RuleKind.EXCEPTION:
            parent = ".".join(reversed(rule.labels[:-1]))
            if parent not in wildcard_bases:
                findings.append(
                    LintFinding(
                        Severity.ERROR, number,
                        f"exception {rule.text!r} has no covering wildcard rule",
                    )
                )
        if rule.kind is RuleKind.NORMAL:
            # A normal rule exactly one label below a wildcard base is
            # implied by the wildcard and therefore redundant.
            if len(rule.labels) >= 2:
                parent = ".".join(reversed(rule.labels[:-1]))
                if parent in wildcard_bases:
                    findings.append(
                        LintFinding(
                            Severity.WARNING, number,
                            f"rule {rule.text!r} is shadowed by a wildcard",
                        )
                    )
