"""The :class:`PublicSuffixList` facade.

This is the public entry point of the PSL engine: construct it from
rules (usually via :func:`repro.psl.parser.parse_psl`), then ask it for
public suffixes, registrable domains (eTLD+1), and site membership.  It
implements the publicsuffix.org algorithm faithfully, including the
implicit default rule ``*`` for unknown TLDs.

Instances are immutable and hash by content, which the history and
dating layers rely on: two byte-identical vendored lists resolve to the
same fingerprint regardless of rule ordering or comments.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.psl.idna import to_ascii
from repro.psl.rules import Rule, RuleKind, Section
from repro.psl.trie import SuffixTrie

if TYPE_CHECKING:  # pragma: no cover - import cycle (packed -> trie)
    from repro.psl.packed import PackedTrie


@dataclass(frozen=True, slots=True)
class SuffixMatch:
    """The full result of looking up one hostname.

    ``rule`` is None when only the implicit default rule ``*`` matched
    (an unknown TLD).  ``registrable_domain`` is None when the hostname
    *is itself* a public suffix — such names have no eTLD+1 and, in a
    browser, cannot carry site state at all.
    """

    hostname: str
    public_suffix: str
    registrable_domain: str | None
    rule: Rule | None

    @property
    def is_default_rule(self) -> bool:
        """True when no explicit rule matched (implicit ``*`` applied)."""
        return self.rule is None

    @property
    def section(self) -> Section | None:
        """Section of the prevailing rule, or None for the default rule."""
        return self.rule.section if self.rule is not None else None

    @property
    def site(self) -> str:
        """The site (privacy boundary) this hostname belongs to.

        For hostnames that are themselves public suffixes the suffix is
        used, mirroring how browsers treat e.g. ``github.io`` itself.
        """
        return self.registrable_domain or self.public_suffix


@dataclass(frozen=True, slots=True)
class ExtractResult:
    """A hostname split into subdomain / domain / suffix parts.

    The familiar tldextract-style decomposition:
    ``www.forums.bbc.co.uk`` -> ``('www.forums', 'bbc', 'co.uk')``.
    ``domain`` is empty when the hostname *is* a public suffix.
    """

    subdomain: str
    domain: str
    suffix: str

    @property
    def registrable_domain(self) -> str | None:
        """``domain.suffix``, or None without a domain part."""
        if not self.domain:
            return None
        return f"{self.domain}.{self.suffix}"

    @property
    def fqdn(self) -> str:
        """The full hostname, reassembled."""
        parts = [part for part in (self.subdomain, self.domain, self.suffix) if part]
        return ".".join(parts)


class PublicSuffixList:
    """An immutable rule set implementing the PSL lookup algorithm.

    >>> psl = PublicSuffixList([Rule.parse('com'), Rule.parse('co.uk')])
    >>> psl.registrable_domain('www.amazon.co.uk')
    'amazon.co.uk'
    >>> psl.public_suffix('maps.google.com')
    'com'
    """

    __slots__ = ("_rules", "_trie", "_fingerprint", "_rules_by_text")

    def __init__(self, rules: Iterable[Rule] = ()) -> None:
        unique = sorted(set(rules), key=lambda r: (r.labels, r.kind.value))
        self._rules: tuple[Rule, ...] | None = tuple(unique)
        self._trie = SuffixTrie(self._rules)
        self._rules_by_text: dict[str, Rule] | None = {
            rule.text: rule for rule in self._rules
        }
        digest = hashlib.sha256()
        for rule in self._rules:
            digest.update(rule.text.encode("utf-8"))
            digest.update(b"\n")
            digest.update(rule.section.value.encode("ascii"))
            digest.update(b"\n")
        self._fingerprint = digest.hexdigest()

    @classmethod
    def from_packed(cls, trie: "PackedTrie") -> "PublicSuffixList":
        """Wrap a :class:`~repro.psl.packed.PackedTrie` with zero copies.

        The lookup surface (``match``, ``any_suffix_below``, …) runs
        straight off the packed buffer; the rule tuple and text index
        are materialized lazily, only if a caller actually iterates
        rules.  The fingerprint is the one stamped at pack time, which
        equals ``PublicSuffixList(same_rules).fingerprint`` — so packed
        snapshots drop into fingerprint-keyed caches unchanged.
        """
        psl = object.__new__(cls)
        psl._trie = trie
        psl._fingerprint = trie.fingerprint
        psl._rules = None
        psl._rules_by_text = None
        return psl

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        if self._rules is None:
            return len(self._trie)
        return len(self._rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules)

    def __contains__(self, rule: "Rule | str") -> bool:
        """Membership by :class:`Rule` or by canonical rule text.

        Section is intentionally ignored for text lookups: callers
        asking "is ``github.io`` on this list?" care about the rule,
        not which division it lives in.
        """
        by_text = self._text_index()
        if isinstance(rule, Rule):
            return by_text.get(rule.text) == rule
        return Rule.parse(rule).text in by_text

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PublicSuffixList):
            return NotImplemented
        return self._fingerprint == other._fingerprint

    def __hash__(self) -> int:
        return hash(self._fingerprint)

    def __repr__(self) -> str:
        return f"PublicSuffixList({len(self)} rules, {self._fingerprint[:12]})"

    # -- introspection ------------------------------------------------------

    def _text_index(self) -> dict[str, Rule]:
        if self._rules_by_text is None:
            self._rules_by_text = {rule.text: rule for rule in self.rules}
        return self._rules_by_text

    @property
    def rules(self) -> tuple[Rule, ...]:
        """All rules, sorted canonically (materialized lazily when packed)."""
        if self._rules is None:
            unique = sorted(
                set(self._trie.iter_rules()), key=lambda r: (r.labels, r.kind.value)
            )
            self._rules = tuple(unique)
        return self._rules

    @property
    def fingerprint(self) -> str:
        """SHA-256 over the canonical rule serialization.

        Stable across comment changes, rule reordering, and whitespace —
        exactly the equivalence the list-dating layer needs.
        """
        return self._fingerprint

    def rules_in_section(self, section: Section) -> tuple[Rule, ...]:
        """Rules belonging to one division of the list."""
        return tuple(rule for rule in self.rules if rule.section is section)

    def component_histogram(self) -> dict[int, int]:
        """Map component-count -> number of rules (the Figure 2 breakdown)."""
        histogram: dict[int, int] = {}
        for rule in self.rules:
            histogram[rule.component_count] = histogram.get(rule.component_count, 0) + 1
        return histogram

    # -- the algorithm ------------------------------------------------------

    def match(self, hostname: str) -> SuffixMatch:
        """Run the full lookup for one hostname.

        The hostname is IDNA-normalized first; the returned
        ``public_suffix`` and ``registrable_domain`` are in A-label form.
        """
        name = to_ascii(hostname.strip().rstrip(".").lower())
        labels = name.split(".")
        reversed_labels = tuple(reversed(labels))
        rule = self._trie.prevailing(reversed_labels)

        if rule is None:
            suffix_length = 1  # implicit default rule '*'
        elif rule.kind is RuleKind.EXCEPTION:
            suffix_length = rule.component_count - 1
        else:
            suffix_length = rule.component_count

        suffix = ".".join(labels[len(labels) - suffix_length :])
        if len(labels) > suffix_length:
            registrable = ".".join(labels[len(labels) - suffix_length - 1 :])
        else:
            registrable = None
        return SuffixMatch(
            hostname=name,
            public_suffix=suffix,
            registrable_domain=registrable,
            rule=rule,
        )

    def public_suffix(self, hostname: str) -> str:
        """The public suffix (eTLD) of ``hostname``.

        >>> PublicSuffixList([Rule.parse('co.uk')]).public_suffix('a.b.co.uk')
        'co.uk'
        """
        return self.match(hostname).public_suffix

    def registrable_domain(self, hostname: str) -> str | None:
        """The registrable domain (eTLD+1), or None if ``hostname`` is a suffix."""
        return self.match(hostname).registrable_domain

    def site_of(self, hostname: str) -> str:
        """The site key used for privacy-boundary grouping."""
        return self.match(hostname).site

    def extract(self, hostname: str) -> ExtractResult:
        """Split a hostname into (subdomain, domain, suffix) parts.

        >>> psl = PublicSuffixList([Rule.parse('co.uk')])
        >>> psl.extract('www.forums.bbc.co.uk')
        ExtractResult(subdomain='www.forums', domain='bbc', suffix='co.uk')
        """
        match = self.match(hostname)
        suffix_labels = match.public_suffix.count(".") + 1
        labels = match.hostname.split(".")
        head = labels[: len(labels) - suffix_labels]
        domain = head[-1] if head else ""
        subdomain = ".".join(head[:-1]) if len(head) > 1 else ""
        return ExtractResult(subdomain=subdomain, domain=domain, suffix=match.public_suffix)

    def is_public_suffix(self, hostname: str) -> bool:
        """True when ``hostname`` is exactly a public suffix.

        >>> PublicSuffixList([Rule.parse('co.uk')]).is_public_suffix('co.uk')
        True
        """
        match = self.match(hostname)
        return match.public_suffix == match.hostname

    def any_suffix_below(self, hostname: str) -> bool:
        """Whether any rule names a suffix strictly below ``hostname``.

        On the live list every ancestor of a suffix is itself a suffix,
        but nothing enforces that: a rule like ``s3.dualstack.region``
        can exist while its parents stay unlisted — the unlisted-parent
        anomaly the paper's taxonomy flags.  State scoped to such a
        parent is readable by the suffix host, so the cookie jar treats
        these domains like supercookies.

        >>> psl = PublicSuffixList([Rule.parse('cdn.example.net')])
        >>> psl.any_suffix_below('example.net')
        True
        >>> psl.any_suffix_below('cdn.example.net')
        False
        """
        name = to_ascii(hostname.strip().rstrip(".").lower())
        return self._trie.has_rule_below(tuple(reversed(name.split("."))))

    def same_site(self, first: str, second: str) -> bool:
        """Whether two hostnames fall inside the same privacy boundary.

        This is the browser's schemeless same-site check, the decision
        the paper's Figure 1 illustrates.
        """
        return self.site_of(first) == self.site_of(second)

    # -- derivation ---------------------------------------------------------

    def with_rules(self, added: Iterable[Rule] = (), removed: Iterable[Rule] = ()) -> "PublicSuffixList":
        """A new list with ``added`` inserted and ``removed`` dropped."""
        removal = set(removed)
        rules = [rule for rule in self.rules if rule not in removal]
        rules.extend(added)
        return PublicSuffixList(rules)
