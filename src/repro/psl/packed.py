"""Packed zero-copy snapshot tries: a flat, immutable trie encoding.

The dict-of-dicts :class:`~repro.psl.trie.SuffixTrie` is ideal for the
delta-replay sweep (cheap in-place mutation) and terrible for a server
holding 1,142 versions resident: every node pays Python object
overhead, and none of it can be shared between processes.  This module
is the other half of the trade: a *compiled* trie — every node, child
block, and rule record packed into one contiguous ``bytes`` buffer —
that is

* **immutable** — the buffer is the data structure; there is nothing
  to mutate and therefore nothing to lock;
* **zero-deserialization** — readers walk the buffer through
  ``memoryview.cast("I")``; loading a 1,142-version history is an
  ``mmap`` call, not minutes of trie builds;
* **shared** — N processes mapping the same artifact file share one
  physical copy of the whole history (the page cache), and all
  versions inside one buffer share a single string table, so the ~10k
  rule labels that recur across every version are stored once.

Buffer layout (format ``PSLPAK1``, all integers little-endian)::

    header (64 B)   magic, format version, crc32, total length,
                    version/label counts, wildcard label id,
                    section offsets
    label offsets   (label_count + 1) x u32 into the label blob
    label blob      concatenated ASCII labels, 4-byte padded
    version index   version_count x 8 u32: node/rule/rule-label
                    counts and byte offsets per version
    fingerprints    version_count x 32 raw SHA-256 bytes (the same
                    canonical rule-set fingerprint PublicSuffixList
                    computes)
    per version     nodes, rule records, rule-label ids (see below)

Per-version node storage is struct-of-arrays, five ``u32`` arrays of
``node_count`` entries each — ``label``, ``child_start``,
``child_count``, ``rule``, ``exception`` — so a reader casts each
array once and then does pure integer indexing.  Children of a node
occupy one contiguous block sorted by label id; label ids are assigned
in lexicographic label order, so binary search over ids *is* binary
search over labels, and the wildcard label ``*`` (which sorts below
every LDH label) is always a block's first entry — an O(1) check.
The ``child_count`` word's low 29 bits are the count; its high bits
flag "wildcard child present" / "rule present" / "exception present",
so the walk learns a typical node's whole shape from one read.

Rule records are ``(meta, labels_start)`` pairs: ``meta`` packs the
rule kind (2 bits), section (1 bit), and label count; ``labels_start``
indexes the flat rule-label-id array.  :class:`PackedTrie` materializes
a real :class:`~repro.psl.rules.Rule` only when one is *returned*, and
caches it by rule id — so steady-state lookups are integer walks that
hand back pointer-identical rule objects, bit-identical to what the
dict trie answers.

Integrity mirrors the artifact store's posture: a truncated or
bit-flipped buffer fails loading with :class:`PackedFormatError`
(magic, length, and CRC-32 checks) — never a silent wrong answer.
"""

from __future__ import annotations

import hashlib
import mmap
import os
import struct
import sys
import zlib
from array import array
from bisect import bisect_left
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from repro.psl.errors import PslError
from repro.psl.rules import Rule, RuleKind, Section
from repro.psl.trie import WILDCARD_LABEL, SuffixTrie, TrieNode

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a package cycle)
    from repro.history.store import VersionStore

__all__ = [
    "PackedBufferInUseError",
    "PackedFormatError",
    "PackedHistory",
    "PackedTrie",
    "dict_trie_bytes",
    "estimated_dict_trie_bytes",
    "pack_history",
    "pack_rules",
]

MAGIC = b"PSLPAK1\0"
FORMAT_VERSION = 1
#: The "no entry" sentinel for every u32 field (rule ids, wildcard id).
NONE_U32 = 0xFFFFFFFF

#: The ``child_count`` word packs presence flags into its high bits so
#: the hot walk learns everything about a node from ONE memoryview
#: read: whether a wildcard child leads the block, and whether the
#: node carries a normal/exception rule (the rule arrays still store
#: their NONE_U32 sentinels; the flags are a redundant accelerator).
_CC_WILDCARD = 0x8000_0000
_CC_RULE = 0x4000_0000
_CC_EXCEPTION = 0x2000_0000
_CC_COUNT = 0x1FFF_FFFF

#: Header: magic, format version, crc32, total length, version count,
#: label count, wildcard id, label-offsets offset, label-blob offset,
#: label-blob length, version-index offset, fingerprints offset,
#: 8 reserved bytes.
_HEADER = struct.Struct("<8sIIQ8I8x")
_HEADER_SIZE = _HEADER.size  # 64
#: CRC-32 covers everything after the crc field itself.
_CRC_START = 16

#: Per-version index record: node_count, nodes_off, rule_count,
#: rules_off, rule_label_count, rule_labels_off, two reserved words.
_VERSION_WORDS = 8

_KIND_CODES = {RuleKind.NORMAL: 0, RuleKind.WILDCARD: 1, RuleKind.EXCEPTION: 2}
_KINDS = (RuleKind.NORMAL, RuleKind.WILDCARD, RuleKind.EXCEPTION)
_SECTION_CODES = {Section.ICANN: 0, Section.PRIVATE: 1}
_SECTIONS = (Section.ICANN, Section.PRIVATE)


class PackedFormatError(PslError):
    """A packed buffer failed validation (magic, length, CRC, bounds).

    Raised *before* any answer is served off a suspect buffer — a
    corrupt snapshot must be unloadable, never subtly wrong.
    """


class PackedBufferInUseError(RuntimeError):
    """``close()`` was called while packed tries still hold buffer views.

    The mmap behind a :class:`PackedHistory` can only be unmapped once
    every exported ``memoryview`` is gone — i.e. after all snapshots
    built over it have been evicted *and* garbage collected.
    """


# ---------------------------------------------------------------------------
# writer
# ---------------------------------------------------------------------------


def _rule_sort_key(rule: Rule) -> tuple:
    """Canonical rule order (the PublicSuffixList fingerprint order)."""
    return (rule.labels, rule.kind.value, rule.section.value)


def _fingerprint_chunk(rule: Rule) -> bytes:
    """One rule's contribution to the canonical rule-set fingerprint."""
    return (
        rule.text.encode("utf-8") + b"\n" + rule.section.value.encode("ascii") + b"\n"
    )


class _SortedRuleSet:
    """An incrementally maintained sorted rule list + fingerprint.

    Sorting ~9k rules from scratch for each of 1,142 versions is the
    slow way to compute per-version fingerprints; applying each
    version's few-rule delta to one sorted list is the fast way.
    """

    __slots__ = ("_keys", "_chunks")

    def __init__(self) -> None:
        self._keys: list[tuple] = []
        self._chunks: list[bytes] = []

    def add(self, rule: Rule) -> None:
        key = _rule_sort_key(rule)
        index = bisect_left(self._keys, key)
        if index < len(self._keys) and self._keys[index] == key:
            return  # identical rule already present
        self._keys.insert(index, key)
        self._chunks.insert(index, _fingerprint_chunk(rule))

    def remove(self, rule: Rule) -> None:
        key = _rule_sort_key(rule)
        index = bisect_left(self._keys, key)
        if index < len(self._keys) and self._keys[index] == key:
            del self._keys[index]
            del self._chunks[index]

    def fingerprint(self) -> bytes:
        digest = hashlib.sha256()
        for chunk in self._chunks:
            digest.update(chunk)
        return digest.digest()


def _flatten(
    root: TrieNode, label_id: dict[str, int]
) -> tuple[array, array, array, array, array, array, array]:
    """Compile one live dict trie into the packed arrays.

    Breadth-first with child blocks reserved contiguously: when node
    ``i`` is processed its children are appended as one run sorted by
    label id, so ``(child_start[i], child_count[i])`` describes a
    binary-searchable slice.
    """
    labels = array("I", (NONE_U32,))
    child_start = array("I")
    child_count = array("I")
    rule_ids = array("I")
    exc_ids = array("I")
    rules = array("I")  # (meta, labels_start) pairs
    rule_labels = array("I")

    wildcard = label_id.get(WILDCARD_LABEL, -1)
    order: list[TrieNode] = [root]
    position = 0
    while position < len(order):
        node = order[position]
        position += 1
        children = node.children
        child_start.append(len(order))
        flags = 0
        if node.rule is not None:
            flags |= _CC_RULE
        if node.exception_rule is not None:
            flags |= _CC_EXCEPTION
        if children:
            block = sorted((label_id[text], child) for text, child in children.items())
            if block[0][0] == wildcard:
                flags |= _CC_WILDCARD
            for lid, child in block:
                labels.append(lid)
                order.append(child)
        child_count.append(len(children) | flags)
        for slot, rule in ((rule_ids, node.rule), (exc_ids, node.exception_rule)):
            if rule is None:
                slot.append(NONE_U32)
                continue
            slot.append(len(rules) // 2)
            meta = (
                _KIND_CODES[rule.kind]
                | (_SECTION_CODES[rule.section] << 2)
                | (len(rule.labels) << 3)
            )
            rules.append(meta)
            rules.append(len(rule_labels))
            rule_labels.extend(label_id[text] for text in rule.labels)
    return labels, child_start, child_count, rule_ids, exc_ids, rules, rule_labels


def _assemble(
    label_list: Sequence[str],
    versions: Iterable[tuple[tuple[array, ...], bytes]],
) -> bytes:
    """Glue the label table and per-version arrays into one blob."""
    label_blob = bytearray()
    label_offsets = array("I")
    for text in label_list:
        label_offsets.append(len(label_blob))
        label_blob += text.encode("ascii")
    label_offsets.append(len(label_blob))
    while len(label_blob) % 4:
        label_blob += b"\0"

    wildcard_id = NONE_U32
    index = bisect_left(label_list, WILDCARD_LABEL) if label_list else 0
    if index < len(label_list) and label_list[index] == WILDCARD_LABEL:
        wildcard_id = index

    version_records = array("I")
    fingerprints = bytearray()
    bodies: list[bytes] = []
    materialized = list(versions)

    label_offsets_off = _HEADER_SIZE
    label_blob_off = label_offsets_off + 4 * len(label_offsets)
    version_index_off = label_blob_off + len(label_blob)
    fingerprints_off = version_index_off + 4 * _VERSION_WORDS * len(materialized)
    body_off = fingerprints_off + 32 * len(materialized)
    while body_off % 4:  # keep per-version u32 arrays aligned
        body_off += 1
    fingerprint_pad = body_off - (fingerprints_off + 32 * len(materialized))

    cursor = body_off
    for arrays, fingerprint in materialized:
        labels, child_start, child_count, rule_ids, exc_ids, rules, rule_labels = arrays
        node_count = len(labels)
        nodes_off = cursor
        rules_off = nodes_off + 4 * 5 * node_count
        rule_labels_off = rules_off + 4 * len(rules)
        cursor = rule_labels_off + 4 * len(rule_labels)
        version_records.extend(
            (
                node_count,
                nodes_off,
                len(rules) // 2,
                rules_off,
                len(rule_labels),
                rule_labels_off,
                0,
                0,
            )
        )
        fingerprints += fingerprint
        body = bytearray()
        for part in arrays:
            body += part.tobytes()
        bodies.append(bytes(body))

    total = cursor
    blob = bytearray(
        _HEADER.pack(
            MAGIC,
            FORMAT_VERSION,
            0,  # crc placeholder
            total,
            len(materialized),
            len(label_list),
            wildcard_id,
            label_offsets_off,
            label_blob_off,
            len(label_blob),
            version_index_off,
            fingerprints_off,
        )
    )
    blob += label_offsets.tobytes()
    blob += label_blob
    blob += version_records.tobytes()
    blob += fingerprints
    blob += b"\0" * fingerprint_pad
    for body in bodies:
        blob += body
    assert len(blob) == total, (len(blob), total)
    crc = zlib.crc32(memoryview(blob)[_CRC_START:])
    struct.pack_into("<I", blob, 12, crc)
    return bytes(blob)


def pack_rules(rules: Iterable[Rule]) -> bytes:
    """Pack one rule set as a single-version buffer.

    The convenience path for tests and single-snapshot tools; whole
    histories should go through :func:`pack_history` so every version
    shares one string table.
    """
    rule_list = sorted(set(rules), key=_rule_sort_key)
    label_set: set[str] = set()
    for rule in rule_list:
        label_set.update(rule.labels)
    label_list = sorted(label_set)
    label_id = {text: index for index, text in enumerate(label_list)}
    trie = SuffixTrie(rule_list)
    digest = hashlib.sha256()
    for rule in rule_list:
        digest.update(_fingerprint_chunk(rule))
    return _assemble(label_list, [(_flatten(trie._root, label_id), digest.digest())])


def pack_history(store: "VersionStore", *, indexes: Sequence[int] | None = None) -> bytes:
    """Compile a whole version history into one packed buffer.

    With ``indexes=None`` every version is packed by replaying the
    store's deltas over a single live trie (one insert/remove per
    changed rule, 1,142 flattens — not 1,142 trie rebuilds).  An
    explicit index subset materializes each requested version instead.

    Per-version fingerprints in the buffer equal
    ``PublicSuffixList(rules).fingerprint`` for the same rule set, so
    packed snapshots drop into every fingerprint-keyed cache unchanged.
    """
    if indexes is not None:
        chosen = sorted(set(int(index) % len(store) for index in indexes))
        rule_sets = [store.rules_at(index) for index in chosen]
        label_set: set[str] = set()
        for rules in rule_sets:
            for rule in rules:
                label_set.update(rule.labels)
        label_list = sorted(label_set)
        label_id = {text: index for index, text in enumerate(label_list)}

        def versions() -> Iterator[tuple[tuple[array, ...], bytes]]:
            for rules in rule_sets:
                ordered = sorted(rules, key=_rule_sort_key)
                digest = hashlib.sha256()
                for rule in ordered:
                    digest.update(_fingerprint_chunk(rule))
                trie = SuffixTrie(ordered)
                yield _flatten(trie._root, label_id), digest.digest()

        return _assemble(label_list, versions())

    label_set = set()
    for version in store:
        for rule in version.delta.added:
            label_set.update(rule.labels)
    label_list = sorted(label_set)
    label_id = {text: index for index, text in enumerate(label_list)}

    def replayed() -> Iterator[tuple[tuple[array, ...], bytes]]:
        live = SuffixTrie()
        tracker = _SortedRuleSet()
        for version in store:
            for rule in version.delta.removed:
                live.remove(rule)
                tracker.remove(rule)
            for rule in version.delta.added:
                live.insert(rule)
                tracker.add(rule)
            yield _flatten(live._root, label_id), tracker.fingerprint()

    return _assemble(label_list, replayed())


# ---------------------------------------------------------------------------
# reader
# ---------------------------------------------------------------------------


class PackedTrie:
    """A read-only trie view over one version inside a packed buffer.

    Answers :meth:`prevailing`, :meth:`matches`, and
    :meth:`has_rule_below` bit-identically to
    :class:`~repro.psl.trie.SuffixTrie` over the same rules, walking
    u32 arrays with binary search over sorted label ids.  Drop one into
    :meth:`repro.psl.list.PublicSuffixList.from_packed` for the full
    lookup surface.
    """

    __slots__ = (
        "_history",
        "_labels",
        "_child_start",
        "_child_count",
        "_rule_ids",
        "_exc_ids",
        "_rules_mv",
        "_rule_labels",
        "_rule_cache",
        "_fingerprint",
        "_root_index",
        "node_count",
    )

    def __init__(
        self,
        history: "PackedHistory",
        arrays: tuple,
        rule_count: int,
        fingerprint: str,
    ) -> None:
        self._history = history
        (
            self._labels,
            self._child_start,
            self._child_count,
            self._rule_ids,
            self._exc_ids,
            self._rules_mv,
            self._rule_labels,
        ) = arrays
        self.node_count = len(self._labels)
        self._rule_cache: list[Rule | None] = [None] * rule_count
        self._root_index: dict[int, int] | None = None
        self._fingerprint = fingerprint

    def __len__(self) -> int:
        """Number of rules this version carries."""
        return len(self._rule_cache)

    @property
    def fingerprint(self) -> str:
        """The canonical rule-set fingerprint stored at pack time."""
        return self._fingerprint

    # -- rule materialization ------------------------------------------------

    def _rule(self, rule_id: int) -> Rule:
        rule = self._rule_cache[rule_id]
        if rule is None:
            meta = self._rules_mv[2 * rule_id]
            start = self._rules_mv[2 * rule_id + 1]
            count = meta >> 3
            names = self._history._label_strings()
            ids = self._rule_labels
            rule = Rule(
                labels=tuple(names[ids[start + i]] for i in range(count)),
                kind=_KINDS[meta & 3],
                section=_SECTIONS[(meta >> 2) & 1],
            )
            self._rule_cache[rule_id] = rule
        return rule

    def iter_rules(self) -> Iterator[Rule]:
        """Yield every stored rule (rule-record order)."""
        for rule_id in range(len(self._rule_cache)):
            yield self._rule(rule_id)

    # -- the lookup algorithms (mirrors of SuffixTrie) -----------------------

    def _find_child(self, node: int, label_id: int) -> int:
        """Binary search ``node``'s child block; -1 when absent."""
        labels = self._labels
        low = self._child_start[node]
        high = low + (self._child_count[node] & _CC_COUNT)
        position = bisect_left(labels, label_id, low, high)
        if position < high and labels[position] == label_id:
            return position
        return -1

    def _build_root_index(self) -> dict[int, int]:
        """label id -> node position for the root's children, built lazily.

        The root block is by far the widest (every TLD), so its binary
        search dominates lookup cost; one small per-trie dict replaces
        ~11 probe reads per hostname with a single hash lookup.
        """
        labels = self._labels
        start = self._child_start[0]
        index = {
            labels[i]: i
            for i in range(start, start + (self._child_count[0] & _CC_COUNT))
        }
        self._root_index = index
        return index

    def prevailing(self, reversed_labels: Sequence[str]) -> Rule | None:
        """The prevailing rule for a hostname, or None (default rule).

        The hot loop budget is memoryview reads: each node's flags ride
        in its ``child_count`` word (read once on descent), the root's
        wide child block resolves through the lazy hash index, and
        deeper (narrow) blocks binary-search via the C ``bisect``.
        """
        ids_get = self._history._label_id_map().get
        labels = self._labels
        child_start = self._child_start
        child_count = self._child_count
        rule_ids = self._rule_ids
        exc_ids = self._exc_ids
        rules_mv = self._rules_mv
        root_index = self._root_index
        root_get = (
            root_index.get if root_index is not None else self._build_root_index().get
        )
        best = -1
        best_count = 0
        node = 0
        meta = child_count[0]
        last = len(reversed_labels) - 1
        for index, label in enumerate(reversed_labels):
            if meta & _CC_WILDCARD:
                # The wildcard child leads the block and matches any
                # label — including ones absent from the label table.
                wildcard_rule = rule_ids[child_start[node]]
                if wildcard_rule != NONE_U32:
                    rule_len = rules_mv[2 * wildcard_rule] >> 3
                    if rule_len > best_count:
                        best, best_count = wildcard_rule, rule_len
            label_id = ids_get(label)
            if label_id is None:
                break
            if index:
                low = child_start[node]
                high = low + (meta & _CC_COUNT)
                position = bisect_left(labels, label_id, low, high)
                if position == high or labels[position] != label_id:
                    break
                node = position
            else:
                position = root_get(label_id)
                if position is None:
                    break
                node = position
            meta = child_count[node]
            if meta & _CC_EXCEPTION:
                return self._rule(exc_ids[node])
            if meta & _CC_RULE:
                rule_id = rule_ids[node]
                rule_len = rules_mv[2 * rule_id] >> 3
                if rule_len > best_count:
                    best, best_count = rule_id, rule_len
            if index == last:
                break
        return self._rule(best) if best >= 0 else None

    def matches(self, reversed_labels: Sequence[str]) -> list[Rule]:
        """All rules matching a hostname (SuffixTrie order preserved)."""
        found: list[Rule] = []
        ids = self._history._label_id_map()
        child_start = self._child_start
        child_count = self._child_count
        rule_ids = self._rule_ids
        exc_ids = self._exc_ids
        none = NONE_U32
        node = 0
        last = len(reversed_labels) - 1
        for index, label in enumerate(reversed_labels):
            if child_count[node] & _CC_WILDCARD:
                rule_id = rule_ids[child_start[node]]
                if rule_id != none:
                    found.append(self._rule(rule_id))
            label_id = ids.get(label)
            next_node = -1 if label_id is None else self._find_child(node, label_id)
            if next_node < 0:
                break
            node = next_node
            rule_id = rule_ids[node]
            if rule_id != none:
                found.append(self._rule(rule_id))
            exc_id = exc_ids[node]
            if exc_id != none:
                found.append(self._rule(exc_id))
            if index == last:
                break
        return found

    def has_rule_below(self, reversed_labels: Sequence[str]) -> bool:
        """Whether any rule terminates strictly below this exact name."""
        ids = self._history._label_id_map()
        node = 0
        for label in reversed_labels:
            label_id = ids.get(label)
            if label_id is None:
                return False
            node = self._find_child(node, label_id)
            if node < 0:
                return False
        child_start = self._child_start
        child_count = self._child_count
        start = child_start[node]
        stack = list(range(start, start + (child_count[node] & _CC_COUNT)))
        while stack:
            below = stack.pop()
            meta = child_count[below]
            if meta & (_CC_RULE | _CC_EXCEPTION):
                return True
            start = child_start[below]
            stack.extend(range(start, start + (meta & _CC_COUNT)))
        return False


class PackedHistory:
    """A validated packed buffer holding one or many trie versions.

    Construction validates the envelope — magic, declared length
    against the real buffer, CRC-32 over the payload — and raises
    :class:`PackedFormatError` on any mismatch.  :meth:`trie` then
    hands out :class:`PackedTrie` views with no further copying.

    **mmap lifecycle.**  :meth:`load` maps the artifact file read-only;
    every process mapping the same file shares its pages.  The map can
    only be released once no :class:`PackedTrie` (and therefore no
    snapshot) still holds a view into it: :meth:`close` releases the
    container's own views and raises :class:`PackedBufferInUseError`
    if exported views remain — evict snapshots first, let the garbage
    collector reap them, then close.
    """

    def __init__(self, buffer, *, path: str | None = None, _mmap: mmap.mmap | None = None) -> None:
        self._buffer = buffer
        self._mmap = _mmap
        self._path = path
        self._closed = False
        view = memoryview(buffer)
        self._mv = view
        size = len(view)
        if size < _HEADER_SIZE:
            self._release()
            raise PackedFormatError(
                f"packed buffer too short for a header ({size} < {_HEADER_SIZE} bytes)"
            )
        (
            magic,
            format_version,
            crc,
            total,
            version_count,
            label_count,
            wildcard_id,
            label_offsets_off,
            label_blob_off,
            label_blob_len,
            version_index_off,
            fingerprints_off,
        ) = _HEADER.unpack_from(view, 0)
        if magic != MAGIC:
            self._release()
            raise PackedFormatError(f"bad magic {magic!r} (expected {MAGIC!r})")
        if format_version != FORMAT_VERSION:
            self._release()
            raise PackedFormatError(f"unsupported packed format version {format_version}")
        if total != size:
            self._release()
            raise PackedFormatError(
                f"length mismatch: header declares {total} bytes, buffer has {size}"
                " (truncated or padded artifact)"
            )
        actual_crc = zlib.crc32(view[_CRC_START:])
        if actual_crc != crc:
            self._release()
            raise PackedFormatError(
                f"checksum mismatch: header crc32 {crc:#010x}, payload {actual_crc:#010x}"
                " (bit-flipped artifact)"
            )
        self._version_count = version_count
        self._label_count = label_count
        self._wildcard_id = wildcard_id
        self._label_blob_off = label_blob_off
        self._label_blob_len = label_blob_len
        self._fingerprints_off = fingerprints_off
        try:
            self._label_offsets = view[
                label_offsets_off : label_offsets_off + 4 * (label_count + 1)
            ].cast("I")
            self._version_index = view[
                version_index_off : version_index_off + 4 * _VERSION_WORDS * version_count
            ].cast("I")
        except (ValueError, TypeError) as exc:
            self._release()
            raise PackedFormatError(f"malformed section table: {exc}") from exc
        self._label_names: list[str] | None = None
        self._label_ids: dict[str, int] | None = None

    # -- construction --------------------------------------------------------

    @classmethod
    def from_buffer(cls, buffer) -> "PackedHistory":
        """Wrap (and validate) an in-memory buffer."""
        return cls(buffer)

    @classmethod
    def load(cls, path: str, *, use_mmap: bool = True) -> "PackedHistory":
        """Open a packed artifact file, memory-mapped by default.

        The mmap path is the multi-process one: each worker maps the
        same on-disk artifact and the OS shares the pages.  Pass
        ``use_mmap=False`` to read a private in-heap copy instead.
        """
        size = os.path.getsize(path)
        if size == 0:
            raise PackedFormatError(f"packed artifact {path!r} is empty")
        with open(path, "rb") as handle:
            if not use_mmap:
                return cls(handle.read(), path=path)
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        try:
            return cls(mapped, path=path, _mmap=mapped)
        except PackedFormatError:
            mapped.close()
            raise

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return self._version_count

    @property
    def path(self) -> str | None:
        """The backing file, when loaded from one."""
        return self._path

    @property
    def mmap_shared(self) -> bool:
        """True when the buffer is an OS-shared memory map."""
        return self._mmap is not None

    @property
    def nbytes(self) -> int:
        """Total buffer size in bytes."""
        return len(self._mv) if not self._closed else 0

    def version_bytes(self, index: int) -> int:
        """Bytes attributable to one version (nodes + rules sections)."""
        record = self._version_record(index)
        return 4 * (5 * record[0] + 2 * record[2] + record[4])

    @property
    def shared_bytes(self) -> int:
        """Bytes shared by all versions (header, string table, index)."""
        total = self.nbytes
        for index in range(self._version_count):
            total -= self.version_bytes(index)
        return total

    def fingerprint(self, index: int) -> str:
        """The canonical rule-set fingerprint of one version (hex)."""
        index = self._resolve(index)
        start = self._fingerprints_off + 32 * index
        return bytes(self._mv[start : start + 32]).hex()

    # -- label table ---------------------------------------------------------

    def _label_strings(self) -> list[str]:
        """All labels decoded once per process (lazy; ~tens of kB)."""
        names = self._label_names
        if names is None:
            offsets = self._label_offsets
            blob = self._mv[self._label_blob_off : self._label_blob_off + self._label_blob_len]
            names = [
                str(blob[offsets[i] : offsets[i + 1]], "ascii")
                for i in range(self._label_count)
            ]
            self._label_names = names
        return names

    def _label_id_map(self) -> dict[str, int]:
        """label -> id accelerator (lazy; the buffer stays canonical)."""
        ids = self._label_ids
        if ids is None:
            ids = {text: index for index, text in enumerate(self._label_strings())}
            self._label_ids = ids
        return ids

    # -- tries ---------------------------------------------------------------

    def _resolve(self, index: int) -> int:
        if index < 0:
            index += self._version_count
        if not 0 <= index < self._version_count:
            raise IndexError(f"version index {index} out of range")
        return index

    def _version_record(self, index: int) -> tuple[int, ...]:
        index = self._resolve(index)
        base = _VERSION_WORDS * index
        return tuple(self._version_index[base : base + _VERSION_WORDS])

    def trie(self, index: int) -> PackedTrie:
        """A :class:`PackedTrie` view over one version. Zero copies."""
        if self._closed:
            raise PackedFormatError("packed history is closed")
        (
            node_count,
            nodes_off,
            rule_count,
            rules_off,
            rule_label_count,
            rule_labels_off,
            _,
            _,
        ) = self._version_record(index)
        view = self._mv
        end = rule_labels_off + 4 * rule_label_count
        if end > len(view):
            raise PackedFormatError(
                f"version {index} sections exceed the buffer ({end} > {len(view)})"
            )
        stride = 4 * node_count
        try:
            arrays = (
                view[nodes_off : nodes_off + stride].cast("I"),
                view[nodes_off + stride : nodes_off + 2 * stride].cast("I"),
                view[nodes_off + 2 * stride : nodes_off + 3 * stride].cast("I"),
                view[nodes_off + 3 * stride : nodes_off + 4 * stride].cast("I"),
                view[nodes_off + 4 * stride : nodes_off + 5 * stride].cast("I"),
                view[rules_off : rules_off + 8 * rule_count].cast("I"),
                view[rule_labels_off:end].cast("I"),
            )
        except (ValueError, TypeError) as exc:
            raise PackedFormatError(f"malformed version record {index}: {exc}") from exc
        return PackedTrie(self, arrays, rule_count, self.fingerprint(index))

    # -- lifecycle -----------------------------------------------------------

    def _release(self) -> None:
        for name in ("_label_offsets", "_version_index"):
            view = getattr(self, name, None)
            if view is not None:
                view.release()
                setattr(self, name, None)
        if getattr(self, "_mv", None) is not None:
            self._mv.release()
            self._mv = None  # type: ignore[assignment]

    def close(self) -> None:
        """Release the container's views and unmap the buffer.

        Safe-unmap rule: every snapshot built over this history must be
        evicted and garbage-collected first; otherwise their tries
        still hold exported views and this raises
        :class:`PackedBufferInUseError` (the mapping stays valid, so
        in-flight readers are never torn down mid-answer).
        """
        if self._closed:
            return
        # Outstanding tries answer through the label table; decode it
        # now so a successful close never strands an in-flight reader.
        self._label_id_map()
        self._closed = True
        self._release()
        if self._mmap is not None:
            try:
                self._mmap.close()
            except BufferError as exc:
                # Reopen the container's own views so the history stays
                # fully usable; only the unmap is refused.
                self._closed = False
                self._reattach()
                raise PackedBufferInUseError(
                    "cannot unmap packed history: live snapshots still hold views "
                    "(evict them and garbage-collect before close())"
                ) from exc

    def _reattach(self) -> None:
        view = memoryview(self._buffer)
        self._mv = view
        header = _HEADER.unpack_from(view, 0)
        label_offsets_off, version_index_off = header[7], header[10]
        self._label_offsets = view[
            label_offsets_off : label_offsets_off + 4 * (self._label_count + 1)
        ].cast("I")
        self._version_index = view[
            version_index_off : version_index_off + 4 * _VERSION_WORDS * self._version_count
        ].cast("I")

    def __enter__(self) -> "PackedHistory":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------------
# memory accounting
# ---------------------------------------------------------------------------

#: Estimated heap bytes per dict-trie node / rule, for environments
#: where the dict trie was never built (packed-only serving).  Derived
#: from CPython 3.11 measurements over the synthesized history:
#: a TrieNode (slots) + its children dict + dict entries + label keys
#: averages ~210 B/node, and a Rule + labels tuple + strings ~290 B.
EST_DICT_BYTES_PER_NODE = 210
EST_DICT_BYTES_PER_RULE = 290


def dict_trie_bytes(trie: SuffixTrie) -> int:
    """Measured heap bytes of a dict :class:`SuffixTrie` (deep walk).

    Counts nodes, children dicts, label keys, and rule objects (each
    rule once).  Interned labels shared with other tries are charged
    here too — the number answers "what does *this* trie keep alive",
    which is the eviction-relevant quantity.
    """
    getsizeof = sys.getsizeof
    total = getsizeof(trie)
    seen_rules: set[int] = set()
    stack = [trie._root]
    while stack:
        node = stack.pop()
        total += getsizeof(node) + getsizeof(node.children)
        for label, child in node.children.items():
            total += getsizeof(label)
            stack.append(child)
        for rule in (node.rule, node.exception_rule):
            if rule is not None and id(rule) not in seen_rules:
                seen_rules.add(id(rule))
                total += getsizeof(rule) + getsizeof(rule.labels)
                total += sum(getsizeof(text) for text in rule.labels)
    return total


def estimated_dict_trie_bytes(node_count: int, rule_count: int) -> int:
    """What a dict trie of this shape would cost, without building it."""
    return node_count * EST_DICT_BYTES_PER_NODE + rule_count * EST_DICT_BYTES_PER_RULE
