"""Parser for the ``public_suffix_list.dat`` wire format.

The file is UTF-8 text.  Lines starting with ``//`` are comments; two
magic comment pairs delimit the ICANN and PRIVATE divisions.  Everything
else, after stripping trailing whitespace, is a rule.  The parser is
tolerant in the same ways real consumers are (blank lines anywhere,
missing section markers treated as ICANN) and strict where it matters
(malformed rules raise, with line numbers, rather than being silently
dropped — the paper documents silent failure as one of the misuse
modes, and this library refuses to reproduce it).
"""

from __future__ import annotations

from typing import Iterable

from repro.psl.errors import PslParseError
from repro.psl.list import PublicSuffixList
from repro.psl.rules import Rule, Section

ICANN_BEGIN = "// ===BEGIN ICANN DOMAINS==="
ICANN_END = "// ===END ICANN DOMAINS==="
PRIVATE_BEGIN = "// ===BEGIN PRIVATE DOMAINS==="
PRIVATE_END = "// ===END PRIVATE DOMAINS==="


def iter_rules(text: str, *, strict: bool = True) -> Iterable[Rule]:
    """Yield rules from ``.dat`` text, tracking section markers.

    With ``strict=False``, malformed rule lines are skipped instead of
    raising — the behaviour of several permissive real-world parsers,
    kept available for the failure-injection experiments.
    """
    section = Section.ICANN
    in_private = False
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("//"):
            if line == PRIVATE_BEGIN:
                in_private = True
                section = Section.PRIVATE
            elif line == PRIVATE_END:
                in_private = False
                section = Section.ICANN
            elif line == ICANN_BEGIN or line == ICANN_END:
                section = Section.PRIVATE if in_private else Section.ICANN
            continue
        try:
            yield Rule.parse(line, section=section)
        except PslParseError as exc:
            if strict:
                raise PslParseError(str(exc), line_number=line_number) from exc
            continue


def parse_psl(text: str, *, strict: bool = True) -> PublicSuffixList:
    """Parse full ``.dat`` text into a :class:`PublicSuffixList`.

    >>> psl = parse_psl("com\\n// ===BEGIN PRIVATE DOMAINS===\\ngithub.io\\n")
    >>> psl.public_suffix("user.github.io")
    'github.io'
    """
    return PublicSuffixList(iter_rules(text, strict=strict))


def parse_psl_file(path: str, *, strict: bool = True) -> PublicSuffixList:
    """Parse a ``.dat`` file from disk (UTF-8)."""
    with open(path, encoding="utf-8") as handle:
        return parse_psl(handle.read(), strict=strict)
