"""Punycode (RFC 3492) implemented from scratch.

Punycode is the bootstring encoding that maps arbitrary Unicode label
text onto the LDH subset of ASCII, used by IDNA to produce A-labels
(``xn--…``).  The PSL file itself contains U-labels (e.g. Japanese city
suffixes), while matching is defined over the punycoded form, so the
engine needs both directions.

The implementation follows the RFC's pseudo-code directly, with the
standard parameter set.  It is deliberately independent of Python's
built-in ``punycode`` codec so the library is self-contained; the test
suite cross-checks the two.
"""

from __future__ import annotations

from repro.psl.errors import PunycodeError

BASE = 36
TMIN = 1
TMAX = 26
SKEW = 38
DAMP = 700
INITIAL_BIAS = 72
INITIAL_N = 128
DELIMITER = "-"

_DIGITS = "abcdefghijklmnopqrstuvwxyz0123456789"


def _adapt(delta: int, num_points: int, first_time: bool) -> int:
    """Bias adaptation function from RFC 3492 section 6.1."""
    delta = delta // DAMP if first_time else delta // 2
    delta += delta // num_points
    k = 0
    while delta > ((BASE - TMIN) * TMAX) // 2:
        delta //= BASE - TMIN
        k += BASE
    return k + (((BASE - TMIN + 1) * delta) // (delta + SKEW))


def _digit_value(char: str) -> int:
    """Map a basic code point to its digit value (case-insensitive)."""
    if "a" <= char <= "z":
        return ord(char) - ord("a")
    if "A" <= char <= "Z":
        return ord(char) - ord("A")
    if "0" <= char <= "9":
        return ord(char) - ord("0") + 26
    raise PunycodeError(f"invalid punycode digit {char!r}")


def encode(label: str) -> str:
    """Encode a Unicode label to its punycode form (without ``xn--``).

    >>> encode('bücher')
    'bcher-kva'
    """
    basic = [ch for ch in label if ord(ch) < INITIAL_N]
    output = list(basic)
    handled = len(basic)
    if handled:
        output.append(DELIMITER)

    n = INITIAL_N
    delta = 0
    bias = INITIAL_BIAS
    total = len(label)

    while handled < total:
        candidates = [ord(ch) for ch in label if ord(ch) >= n]
        if not candidates:
            raise PunycodeError(f"cannot encode label {label!r}")
        m = min(candidates)
        delta += (m - n) * (handled + 1)
        if delta < 0:
            raise PunycodeError("delta overflow during encoding")
        n = m
        for ch in label:
            code = ord(ch)
            if code < n:
                delta += 1
            elif code == n:
                q = delta
                k = BASE
                while True:
                    threshold = _threshold(k, bias)
                    if q < threshold:
                        break
                    output.append(_DIGITS[threshold + ((q - threshold) % (BASE - threshold))])
                    q = (q - threshold) // (BASE - threshold)
                    k += BASE
                output.append(_DIGITS[q])
                bias = _adapt(delta, handled + 1, handled == len(basic))
                delta = 0
                handled += 1
        delta += 1
        n += 1

    return "".join(output)


def _threshold(k: int, bias: int) -> int:
    """Clamp the per-digit threshold t(k) into [TMIN, TMAX]."""
    if k <= bias + TMIN:
        return TMIN
    if k >= bias + TMAX:
        return TMAX
    return k - bias


def decode(encoded: str) -> str:
    """Decode a punycode label (without ``xn--``) back to Unicode.

    >>> decode('bcher-kva')
    'bücher'
    """
    last_delimiter = encoded.rfind(DELIMITER)
    if last_delimiter > 0:
        output = list(encoded[:last_delimiter])
        remainder = encoded[last_delimiter + 1 :]
    else:
        output = []
        remainder = encoded[1:] if last_delimiter == 0 else encoded
    for ch in output:
        if ord(ch) >= INITIAL_N:
            raise PunycodeError(f"non-basic code point {ch!r} before delimiter")

    n = INITIAL_N
    i = 0
    bias = INITIAL_BIAS
    pos = 0

    while pos < len(remainder):
        old_i = i
        weight = 1
        k = BASE
        while True:
            if pos >= len(remainder):
                raise PunycodeError(f"truncated punycode input {encoded!r}")
            digit = _digit_value(remainder[pos])
            pos += 1
            i += digit * weight
            if i < 0:
                raise PunycodeError("overflow during decoding")
            threshold = _threshold(k, bias)
            if digit < threshold:
                break
            weight *= BASE - threshold
            k += BASE
        bias = _adapt(i - old_i, len(output) + 1, old_i == 0)
        n += i // (len(output) + 1)
        if n > 0x10FFFF:
            raise PunycodeError("code point out of Unicode range")
        i %= len(output) + 1
        output.insert(i, chr(n))
        i += 1

    return "".join(output)
