"""PSL rule model.

A rule is one non-comment line of ``public_suffix_list.dat``.  Three
kinds exist (publicsuffix.org "Format" specification):

* **normal** — a literal suffix such as ``co.uk``;
* **wildcard** — ``*.`` followed by a suffix, e.g. ``*.ck``, meaning
  every direct child of ``ck`` is itself a public suffix;
* **exception** — ``!`` followed by a name, e.g. ``!www.ck``, carving a
  registrable domain out of an enclosing wildcard.

Each rule also belongs to a *section*: the ICANN division (actual TLD
registry policy) or the PRIVATE division (operators like
``github.io`` that accept subdomain registrations).  The paper's harm
analysis leans heavily on PRIVATE-division rules, since those are the
suffixes that let arbitrary parties host content.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

from repro.psl.errors import PslParseError
from repro.psl.idna import to_ascii

# LDH rule for A-labels: letters, digits, interior hyphens.  The live
# list contains nothing else (underscores etc. are hostname-side noise
# the engine tolerates, but never valid *rules*).
_LABEL_RE = re.compile(r"^[a-z0-9]([a-z0-9-]*[a-z0-9])?$")


class RuleKind(enum.Enum):
    """The three rule kinds of the PSL format."""

    NORMAL = "normal"
    WILDCARD = "wildcard"
    EXCEPTION = "exception"


class Section(enum.Enum):
    """The division of the list a rule belongs to."""

    ICANN = "icann"
    PRIVATE = "private"


@dataclass(frozen=True, slots=True)
class Rule:
    """A single, canonicalized PSL rule.

    ``labels`` are the A-label components right-to-left **as written**,
    including the ``*`` label for wildcards but excluding the ``!``
    marker for exceptions (the marker is carried by ``kind``).  Storing
    labels reversed matches the trie's insertion order.
    """

    labels: tuple[str, ...]
    kind: RuleKind
    section: Section

    def __post_init__(self) -> None:
        if not self.labels:
            raise PslParseError("rule has no labels")
        if self.kind is RuleKind.WILDCARD and self.labels[-1] != "*":
            raise PslParseError(f"wildcard rule must end in '*': {self.labels!r}")
        if self.kind is not RuleKind.WILDCARD and "*" in self.labels:
            raise PslParseError(f"'*' label outside a wildcard rule: {self.labels!r}")

    @property
    def name(self) -> str:
        """The rule's dotted name left-to-right, without the ``!`` marker.

        >>> Rule.parse('!www.ck').name
        'www.ck'
        """
        return ".".join(reversed(self.labels))

    @property
    def text(self) -> str:
        """The canonical ``.dat`` line for this rule.

        >>> Rule.parse('!www.ck').text
        '!www.ck'
        """
        prefix = "!" if self.kind is RuleKind.EXCEPTION else ""
        return prefix + self.name

    @property
    def component_count(self) -> int:
        """Number of suffix components, the quantity broken out in Figure 2."""
        return len(self.labels)

    def matchable_label_count(self) -> int:
        """How many hostname labels this rule consumes when it matches.

        Identical to ``component_count``; exception rules, when
        prevailing, consume one label fewer (handled by the matcher).
        """
        return len(self.labels)

    @classmethod
    def parse(cls, line: str, section: Section = Section.ICANN) -> "Rule":
        """Parse one rule line (already stripped of comments/whitespace).

        Raises :class:`PslParseError` on malformed input.

        >>> Rule.parse('*.ck').kind
        <RuleKind.WILDCARD: 'wildcard'>
        """
        text = line.strip()
        if not text:
            raise PslParseError("empty rule")
        if any(ch.isspace() for ch in text):
            raise PslParseError(f"whitespace inside rule {line!r}")

        kind = RuleKind.NORMAL
        if text.startswith("!"):
            kind = RuleKind.EXCEPTION
            text = text[1:]
            if not text:
                raise PslParseError("bare '!' is not a rule")

        if text.startswith("."):
            raise PslParseError(f"rule starts with a dot: {line!r}")
        if text.endswith("."):
            raise PslParseError(f"rule ends with a dot: {line!r}")

        try:
            ascii_text = to_ascii(text)
        except ValueError as exc:
            raise PslParseError(f"IDNA conversion failed for {line!r}: {exc}") from exc

        parts = ascii_text.split(".")
        if "" in parts:
            raise PslParseError(f"empty label in rule {line!r}")
        for part in parts:
            if part != "*" and not _LABEL_RE.match(part):
                raise PslParseError(f"invalid label {part!r} in rule {line!r}")
        if "*" in parts:
            if kind is RuleKind.EXCEPTION:
                raise PslParseError(f"exception rule cannot contain '*': {line!r}")
            if parts[0] != "*" or parts.count("*") != 1:
                # The live PSL only ever uses a single leading wildcard
                # label; interior wildcards are rejected as malformed.
                raise PslParseError(f"unsupported wildcard placement: {line!r}")
            kind = RuleKind.WILDCARD

        return cls(labels=tuple(reversed(parts)), kind=kind, section=section)

    def __str__(self) -> str:
        return self.text
