"""Reversed-label trie over PSL rules.

Rules are inserted by their labels in TLD-first order, so lookups walk a
hostname's labels right to left.  Wildcard labels (``*``) are always the
leftmost label of a rule (deepest trie node) in the real list, which the
rule parser enforces, so the walk never has to branch: at each node it
checks the exact child and, for the *next* label only, the wildcard
child.

The trie is the fast path behind :class:`repro.psl.list.PublicSuffixList`
and the subject of the lookup ablation benchmark (trie vs. naive scan).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from sys import intern
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from repro.psl.rules import Rule, RuleKind

if TYPE_CHECKING:  # pragma: no cover - import cycle (diff -> list -> trie)
    from repro.psl.diff import RuleDelta

WILDCARD_LABEL = "*"


@dataclass(slots=True)
class TrieNode:
    """One trie node; ``rule`` is set when a rule terminates here."""

    children: dict[str, "TrieNode"] = field(default_factory=dict)
    rule: Rule | None = None
    exception_rule: Rule | None = None

    def child(self, label: str) -> "TrieNode":
        """Get or create the child node for ``label``."""
        node = self.children.get(label)
        if node is None:
            node = TrieNode()
            self.children[label] = node
        return node


class SuffixTrie:
    """A trie mapping reversed rule labels to the rules ending there."""

    def __init__(self, rules: Iterable[Rule] = ()) -> None:
        self._root = TrieNode()
        self._size = 0
        for rule in rules:
            self.insert(rule)

    def __len__(self) -> int:
        return self._size

    def node_count(self) -> int:
        """Number of trie nodes, root included (structural size)."""
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children.values())
        return count

    def insert(self, rule: Rule) -> None:
        """Insert a rule; re-inserting an identical rule is a no-op.

        Labels are interned on the way in: hostname labels interned by
        the sweep engine's chunk preparation then hit the children
        dictionaries with pointer-equal keys, which keeps the lookup
        hot path on the fast identity compare.
        """
        node = self._root
        for label in rule.labels:
            node = node.child(intern(label))
        if rule.kind is RuleKind.EXCEPTION:
            if node.exception_rule == rule:
                return
            if node.exception_rule is None:
                self._size += 1
            node.exception_rule = rule
        else:
            if node.rule == rule:
                return
            if node.rule is None:
                self._size += 1
            node.rule = rule

    def remove(self, rule: Rule) -> bool:
        """Remove a rule if present; returns True when something was removed.

        Nodes left childless and rule-less by the removal are pruned on
        the unwind: the delta-driven sweep keeps one trie alive across
        a whole list history (1,142 versions of add/remove churn), so
        without pruning the node count would grow toward the union of
        every rule the history ever carried instead of tracking the
        live rule set.
        """
        node = self._root
        path: list[tuple[TrieNode, str]] = []
        for label in rule.labels:
            child = node.children.get(label)
            if child is None:
                return False
            path.append((node, label))
            node = child
        if rule.kind is RuleKind.EXCEPTION:
            if node.exception_rule != rule:
                return False
            node.exception_rule = None
        else:
            if node.rule != rule:
                return False
            node.rule = None
        self._size -= 1
        # Prune the unwind: drop nodes that no longer anchor anything.
        for parent, label in reversed(path):
            if node.children or node.rule is not None or node.exception_rule is not None:
                break
            del parent.children[label]
            node = parent
        return True

    def apply_delta(self, delta: "RuleDelta") -> None:
        """Apply one version delta in place (removals first, then adds).

        This is what lets a replay keep a single trie across an entire
        list history instead of rebuilding per version: applying the
        1,141 deltas of the paper's history costs a few thousand node
        walks total, versus ~10k inserts per version rebuilt.  Order
        within a delta is irrelevant — ``added`` and ``removed`` are
        disjoint by :class:`~repro.psl.diff.RuleDelta`'s invariant.
        """
        for rule in delta.removed:
            self.remove(rule)
        for rule in delta.added:
            self.insert(rule)

    def has_rule_below(self, reversed_labels: Sequence[str]) -> bool:
        """Whether any rule terminates strictly below this exact name.

        Walks exact labels only (no wildcard expansion of the *query*):
        a rule is "below" ``a.b`` when its name ends with ``.a.b`` —
        including a wildcard child such as ``*.a.b``.  Used by the
        cookie jar to refuse domains that contain a public suffix
        beneath them, the unlisted-parent anomaly the paper studies.
        """
        node = self._root
        for label in reversed_labels:
            child = node.children.get(label)
            if child is None:
                return False
            node = child
        stack = list(node.children.values())
        while stack:
            below = stack.pop()
            if below.rule is not None or below.exception_rule is not None:
                return True
            stack.extend(below.children.values())
        return False

    def iter_rules(self) -> Iterator[Rule]:
        """Yield every stored rule in depth-first order."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.rule is not None:
                yield node.rule
            if node.exception_rule is not None:
                yield node.exception_rule
            stack.extend(node.children.values())

    def matches(self, reversed_labels: Sequence[str]) -> list[Rule]:
        """All rules matching a hostname given as reversed labels.

        A rule matches when the hostname ends with the rule's labels,
        with ``*`` matching exactly one arbitrary label
        (publicsuffix.org algorithm, step 1).
        """
        found: list[Rule] = []
        node = self._root
        for index, label in enumerate(reversed_labels):
            wildcard = node.children.get(WILDCARD_LABEL)
            if wildcard is not None and wildcard.rule is not None:
                found.append(wildcard.rule)
            next_node = node.children.get(label)
            if next_node is None:
                break
            node = next_node
            if node.rule is not None:
                found.append(node.rule)
            if node.exception_rule is not None:
                found.append(node.exception_rule)
            if index + 1 == len(reversed_labels):
                # Hostname fully consumed; a wildcard child would need
                # one more label, so it cannot match past this point.
                break
        else:  # pragma: no cover - loop always breaks or exhausts
            pass
        return found

    def prevailing(self, reversed_labels: Sequence[str]) -> Rule | None:
        """The prevailing rule for a hostname, or None for the default rule.

        Exception rules beat all others; otherwise the rule with the
        most labels wins (publicsuffix.org algorithm, steps 2-4).  The
        walk tracks the best candidate inline rather than materializing
        the full match list.
        """
        best: Rule | None = None
        best_count = 0
        node = self._root
        for index, label in enumerate(reversed_labels):
            wildcard = node.children.get(WILDCARD_LABEL)
            if wildcard is not None and wildcard.rule is not None:
                count = wildcard.rule.component_count
                if count > best_count:
                    best, best_count = wildcard.rule, count
            next_node = node.children.get(label)
            if next_node is None:
                break
            node = next_node
            if node.exception_rule is not None:
                return node.exception_rule
            if node.rule is not None:
                count = node.rule.component_count
                if count > best_count:
                    best, best_count = node.rule, count
            if index + 1 == len(reversed_labels):
                break
        return best


def naive_prevailing(rules: Iterable[Rule], reversed_labels: Sequence[str]) -> Rule | None:
    """Reference implementation: scan every rule, no index.

    Used by the property tests as a correctness oracle for the trie and
    by the ablation benchmark to quantify the trie's speedup.
    """
    best: Rule | None = None
    best_count = 0
    n = len(reversed_labels)
    for rule in rules:
        labels = rule.labels
        if len(labels) > n:
            continue
        matched = all(
            pattern == WILDCARD_LABEL or pattern == reversed_labels[i]
            for i, pattern in enumerate(labels)
        )
        if not matched:
            continue
        if rule.kind is RuleKind.EXCEPTION:
            return rule
        if rule.component_count > best_count:
            best, best_count = rule, rule.component_count
    return best
