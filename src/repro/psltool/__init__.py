"""``psl-doctor``: find and assess vendored Public Suffix List copies.

The paper closes by urging developers to use the list safely; the
missing piece is tooling that tells a project it is carrying a stale
copy.  This package is that tool:

* :mod:`repro.psltool.scanner` — walk a source tree and find embedded
  lists, by filename *and* by content fingerprint (the paper could
  only search by filename and notes the resulting undercount);
* :mod:`repro.psltool.doctor` — date each find against a version
  history, diff it against the newest list, and score the risk;
* :mod:`repro.psltool.cli` — the ``psl-doctor`` command.
"""

from repro.psltool.doctor import Diagnosis, diagnose
from repro.psltool.scanner import FoundList, scan_tree

__all__ = ["Diagnosis", "FoundList", "diagnose", "scan_tree"]
