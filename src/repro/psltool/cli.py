"""The ``psl-doctor`` command.

Usage::

    psl-doctor scan PATH            # find + assess every embedded list
    psl-doctor check FILE           # assess one file
    psl-doctor diff FILE            # rules the file is missing vs. newest
    psl-doctor lint FILE            # maintainer-style acceptance checks
    psl-doctor when SUFFIX          # when a rule joined (or left) the list

The doctor needs a version history to date copies against.  By default
it synthesizes the reproduction's history (deterministic, matches the
paper's measured shape); ``--latest FILE`` additionally overrides what
"the newest list" means for the diff, so the tool also works against a
freshly downloaded real ``public_suffix_list.dat``.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.history.store import VersionStore
from repro.history.synthesis import SynthesisConfig, synthesize_history
from repro.psl.parser import iter_rules
from repro.psltool.doctor import diagnose
from repro.psltool.scanner import FoundList, scan_tree
from repro.repos.dating import ListDater


def _load_found(path: str) -> FoundList:
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    rule_count = sum(
        1 for line in text.splitlines() if line.strip() and not line.strip().startswith("//")
    )
    return FoundList(path=path, text=text, detection="filename", rule_count=rule_count)


def diagnosis_to_dict(report) -> dict:
    """A machine-readable rendering of one diagnosis (for ``--json``)."""
    return {
        "path": report.path,
        "age_days": report.age_days,
        "dated": report.dating is not None,
        "dating_method": report.dating.method if report.dating else None,
        "dating_confidence": report.dating.confidence if report.dating else None,
        "list_date": report.dating.date.isoformat() if report.dating else None,
        "missing_rules": report.missing_rules,
        "missing_private_rules": report.missing_private_rules,
        "notable_missing": list(report.stale_examples),
        "risk": report.risk,
    }


RISK_ORDER = ("low", "moderate", "high", "critical")


def _print_diagnosis(store: VersionStore, found: FoundList, dater: ListDater, *, as_json: bool = False):
    report = diagnose(store, found, dater=dater)
    if as_json:
        print(json.dumps(diagnosis_to_dict(report), indent=1))
        return report
    print(report.summary)
    if report.dating is not None and not report.dating.is_exact:
        print(
            f"  (nearest match: version {report.dating.version_index} "
            f"of {report.dating.date}, confidence {report.dating.confidence:.2f})"
        )
    if report.stale_examples:
        print("  notable missing rules: " + ", ".join(report.stale_examples))
    return report


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``psl-doctor``."""
    parser = argparse.ArgumentParser(
        prog="psl-doctor",
        description="Detect and assess outdated vendored Public Suffix List copies.",
    )
    parser.add_argument("command", choices=("scan", "check", "diff", "lint", "when"))
    parser.add_argument(
        "path", help="directory (scan), .dat file (check/diff/lint), or suffix (when)"
    )
    parser.add_argument(
        "--no-content-detection",
        action="store_true",
        help="scan: only match canonical filenames",
    )
    parser.add_argument("--seed", type=int, default=20230701, help="history seed")
    parser.add_argument(
        "--json", action="store_true", help="scan/check: machine-readable output"
    )
    parser.add_argument(
        "--latest",
        metavar="FILE",
        help="diff: compare against this .dat instead of the history's newest version "
        "(use with a freshly downloaded real public_suffix_list.dat)",
    )
    parser.add_argument(
        "--fail-on",
        choices=("moderate", "high", "critical"),
        help="scan/check: exit non-zero when any finding reaches this risk "
        "level (CI gate)",
    )
    arguments = parser.parse_args(argv)

    if arguments.command == "lint":
        # Linting needs no history; keep it instant.
        from repro.psl.linter import lint_psl

        with open(arguments.path, encoding="utf-8") as handle:
            lint_report = lint_psl(handle.read())
        for finding in lint_report.findings:
            print(finding)
        print(
            f"{lint_report.rule_count} rules, {len(lint_report.errors)} errors, "
            f"{len(lint_report.warnings)} warnings"
        )
        return 0 if lint_report.ok else 1

    store = synthesize_history(SynthesisConfig(seed=arguments.seed))

    if arguments.command == "when":
        from repro.history.timeline import rule_addition_dates, rule_removal_dates
        from repro.psl.rules import Rule

        text = Rule.parse(arguments.path).text
        added = rule_addition_dates(store).get(text)
        removed = rule_removal_dates(store).get(text)
        if added is None:
            print(f"{text!r} has never been on the list")
            return 1
        print(f"{text} added on {added.isoformat()}")
        if removed is not None:
            print(f"{text} removed on {removed.isoformat()}")
        else:
            latest = {rule.text for rule in store.rules_at(-1)}
            status = "present in" if text in latest else "absent from"
            print(f"{text} is {status} the newest version ({store.latest.date})")
        return 0

    dater = ListDater(store)

    def gate(reports) -> int:
        """CI gate: non-zero when any risk reaches --fail-on."""
        if arguments.fail_on is None:
            return 0
        threshold = RISK_ORDER.index(arguments.fail_on)
        worst = max(
            (RISK_ORDER.index(report.risk) for report in reports), default=0
        )
        return 2 if worst >= threshold else 0

    if arguments.command == "scan":
        found = scan_tree(
            arguments.path, content_detection=not arguments.no_content_detection
        )
        if not found:
            print("no embedded Public Suffix List copies found")
            return 0
        reports = [
            _print_diagnosis(store, item, dater, as_json=arguments.json)
            for item in found
        ]
        return gate(reports)

    found = _load_found(arguments.path)
    if arguments.command == "check":
        report = _print_diagnosis(store, found, dater, as_json=arguments.json)
        return gate([report])

    # diff
    vendored = {rule.text for rule in iter_rules(found.text, strict=False)}
    if arguments.latest:
        with open(arguments.latest, encoding="utf-8") as handle:
            latest = {rule.text for rule in iter_rules(handle.read(), strict=False)}
    else:
        latest = {rule.text for rule in store.rules_at(-1)}
    missing = sorted(latest - vendored)
    extra = sorted(vendored - latest)
    print(f"missing {len(missing)} rules vs. the newest list:")
    for text in missing[:50]:
        print(f"  + {text}")
    if len(missing) > 50:
        print(f"  … and {len(missing) - 50} more")
    if extra:
        print(f"carrying {len(extra)} rules the newest list does not have:")
        for text in extra[:20]:
            print(f"  - {text}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
