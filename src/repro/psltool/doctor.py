"""Assessing a found list: age, drift, and risk.

Given an embedded list and a version history, the doctor:

1. **dates** the copy (exact digest match, or nearest-match with a
   confidence when the copy was locally modified);
2. **diffs** it against the newest version — the rules it is missing
   are precisely the privacy boundaries it will get wrong;
3. **scores** the risk on the paper's own harm axes: staleness (the
   Figure 3 quantity), the number of missing rules, and whether any of
   the missing rules belong to the PRIVATE division (operators hosting
   arbitrary third-party content — the paper's aggravating factor).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data import paper
from repro.history.store import VersionStore
from repro.psl.parser import iter_rules
from repro.psl.rules import Section
from repro.psltool.scanner import FoundList
from repro.repos.dating import DatingResult, ListDater

RISK_LEVELS = ("low", "moderate", "high", "critical")


@dataclass(frozen=True, slots=True)
class Diagnosis:
    """The doctor's verdict for one embedded list."""

    path: str
    dating: DatingResult | None
    age_days: int | None
    missing_rules: int
    missing_private_rules: int
    stale_examples: tuple[str, ...]
    risk: str

    @property
    def summary(self) -> str:
        """One-line human summary."""
        age = f"{self.age_days} days old" if self.age_days is not None else "age unknown"
        return (
            f"{self.path}: {age}, missing {self.missing_rules} rules "
            f"({self.missing_private_rules} private) — {self.risk.upper()} risk"
        )


def _risk_level(age_days: int | None, missing_rules: int, missing_private: int) -> str:
    """Score the paper's harm axes into a four-level verdict.

    Thresholds follow the paper's findings: the fixed-strategy median
    of 825 days marks entrenched staleness, and missing PRIVATE rules
    (arbitrary-content hosts) escalate the verdict.
    """
    score = 0
    if age_days is None:
        score += 1
    elif age_days > paper.MEDIAN_AGE_FIXED:
        score += 2
    elif age_days > 365:
        score += 1
    if missing_rules > 500:
        score += 1
    if missing_private > 50:
        score += 1
    return RISK_LEVELS[min(score, len(RISK_LEVELS) - 1)]


def diagnose(
    store: VersionStore,
    found: FoundList,
    *,
    dater: ListDater | None = None,
    example_limit: int = 5,
) -> Diagnosis:
    """Diagnose one embedded list against a history."""
    dater = dater or ListDater(store)
    dating = dater.date_text(found.text)
    age = dating.age_at() if dating is not None else None

    vendored = {rule.text for rule in iter_rules(found.text, strict=False)}
    latest = store.rules_at(-1)
    missing = sorted(rule.text for rule in latest if rule.text not in vendored)
    missing_private = sum(
        1 for rule in latest if rule.text not in vendored and rule.section is Section.PRIVATE
    )

    # Surface the best-known missing operators first: they make the
    # report actionable ("your copy predates digitaloceanspaces.com").
    notable = [row.etld for row in paper.TABLE2 if row.etld in missing]
    examples = tuple((notable + [text for text in missing if text not in notable])[:example_limit])

    return Diagnosis(
        path=found.path,
        dating=dating,
        age_days=age,
        missing_rules=len(missing),
        missing_private_rules=missing_private,
        stale_examples=examples,
        risk=_risk_level(age, len(missing), missing_private),
    )
