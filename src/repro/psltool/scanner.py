"""Finding embedded PSL copies in a source tree.

Two detection passes:

* **filename** — the canonical names projects vendor the list under
  (``public_suffix_list.dat``, ``effective_tld_names.dat``, and their
  common renamings);
* **content** — files that *look like* the list regardless of name:
  they contain the official section markers, or a large share of their
  non-comment lines parse as suffix rules with a recognizable TLD mix.
  This is the detector the paper notes it lacked ("…or that make use
  of the public suffix list, but with a different filename").
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.psl.parser import ICANN_BEGIN, PRIVATE_BEGIN
from repro.psl.rules import Rule
from repro.psl.errors import PslParseError

KNOWN_FILENAMES = frozenset(
    {
        "public_suffix_list.dat",
        "effective_tld_names.dat",
        "public-suffix-list.txt",
        "publicsuffix.txt",
        "psl.dat",
        "tld_names.dat",
    }
)

MAX_SCAN_BYTES = 8 * 1024 * 1024
MIN_CONTENT_RULES = 50
MIN_RULE_SHARE = 0.9


@dataclass(frozen=True, slots=True)
class FoundList:
    """One embedded list candidate."""

    path: str
    text: str
    detection: str  # "filename" | "content"
    rule_count: int


def looks_like_psl(text: str) -> tuple[bool, int]:
    """Content fingerprint: (is it a PSL?, parsed rule count)."""
    if ICANN_BEGIN in text or PRIVATE_BEGIN in text:
        rule_count = sum(
            1
            for line in text.splitlines()
            if line.strip() and not line.strip().startswith("//")
        )
        return True, rule_count
    lines = [
        line.strip()
        for line in text.splitlines()
        if line.strip() and not line.strip().startswith(("//", "#"))
    ]
    if len(lines) < MIN_CONTENT_RULES:
        return False, 0
    parsed = 0
    for line in lines:
        try:
            Rule.parse(line)
        except (PslParseError, ValueError):
            continue
        parsed += 1
    if parsed / len(lines) < MIN_RULE_SHARE:
        return False, 0
    # Require suffix-like shape: a meaningful share of multi-component
    # entries, or the single-component entries would match any word list.
    multi = sum(1 for line in lines if "." in line)
    if multi < len(lines) * 0.2:
        return False, 0
    return True, parsed


def scan_tree(root: str, *, content_detection: bool = True) -> list[FoundList]:
    """Walk ``root`` and return every embedded list found.

    Binary files and files beyond :data:`MAX_SCAN_BYTES` are skipped.
    """
    found: list[FoundList] = []
    for directory, _, filenames in os.walk(root):
        for filename in sorted(filenames):
            path = os.path.join(directory, filename)
            by_name = filename.lower() in KNOWN_FILENAMES
            is_candidate_extension = filename.lower().endswith((".dat", ".txt", ".list"))
            if not by_name and not (content_detection and is_candidate_extension):
                continue
            try:
                if os.path.getsize(path) > MAX_SCAN_BYTES:
                    continue
                with open(path, encoding="utf-8") as handle:
                    text = handle.read()
            except (OSError, UnicodeDecodeError):
                continue
            if by_name:
                rule_count = sum(
                    1
                    for line in text.splitlines()
                    if line.strip() and not line.strip().startswith("//")
                )
                found.append(FoundList(path, text, "filename", rule_count))
                continue
            is_psl, rule_count = looks_like_psl(text)
            if is_psl:
                found.append(FoundList(path, text, "content", rule_count))
    return found


def scan_repository_files(files: dict[str, str], *, content_detection: bool = True) -> list[FoundList]:
    """In-memory variant of :func:`scan_tree` for corpus repositories."""
    found: list[FoundList] = []
    for path in sorted(files):
        filename = path.rsplit("/", 1)[-1].lower()
        text = files[path]
        if filename in KNOWN_FILENAMES:
            rule_count = sum(
                1
                for line in text.splitlines()
                if line.strip() and not line.strip().startswith("//")
            )
            found.append(FoundList(path, text, "filename", rule_count))
        elif content_detection and filename.endswith((".dat", ".txt", ".list")):
            is_psl, rule_count = looks_like_psl(text)
            if is_psl:
                found.append(FoundList(path, text, "content", rule_count))
    return found
