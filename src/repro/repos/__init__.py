"""Repository corpus: the GitHub side of the measurement.

The paper searched GitHub (via Sourcegraph) for repositories vendoring
``public_suffix_list.dat``, found 273, and manually classified each by
how it integrates the list.  This package rebuilds that pipeline over
a synthetic corpus:

* :mod:`repro.repos.model` — repositories, files, ground-truth labels;
* :mod:`repro.repos.corpus` — the corpus generator (Table 1 marginals
  and Table 3 rows exactly, vendored lists taken from the synthetic
  history at calibrated dates);
* :mod:`repro.repos.search` — the Sourcegraph-like filename/content
  search used to *find* the 273 repositories;
* :mod:`repro.repos.classifier` — re-derives each repository's usage
  type from its files (the paper did this manually);
* :mod:`repro.repos.dating` — matches a vendored list against the
  version history to recover its age;
* :mod:`repro.repos.notify` — maintainer-notification reports.
"""

from repro.repos.classifier import Classification, classify
from repro.repos.corpus import CorpusConfig, build_corpus
from repro.repos.dating import DatingResult, date_list_text
from repro.repos.model import Repository, Strategy, UsageLabel
from repro.repos.search import SearchIndex

__all__ = [
    "Classification",
    "CorpusConfig",
    "DatingResult",
    "Repository",
    "SearchIndex",
    "Strategy",
    "UsageLabel",
    "build_corpus",
    "classify",
    "date_list_text",
]
