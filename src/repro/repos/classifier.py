"""Usage-type classification from repository artifacts.

The paper's authors manually examined each of the 273 repositories and
assigned the Table 1 taxonomy.  This module mechanizes that judgement
over file-level evidence:

* a vendored list under a vendoring directory (``vendor/``, a bundled
  JRE, a pinned package checkout) → **dependency**, attributed to the
  library the path or the manifests identify;
* fetch logic for ``publicsuffix.org`` in a build script → **updated /
  build**; in runtime code → **updated / server** when the project is
  a daemon (service units, daemonized Dockerfile), else **updated /
  user**;
* otherwise **fixed**, sub-typed by where the list sits (test fixtures
  vs. code that references it vs. nothing referencing it at all).

The corpus generator and this classifier agree on these conventions by
construction, and the test suite checks the classifier against the
generator's ground-truth labels — including on adversarial repos that
mix signals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.repos.model import Repository, Strategy, UsageLabel

VENDOR_COMPONENTS = frozenset(
    {"vendor", "vendored", "node_modules", "third_party", "thirdparty", "deps", "jre", "jdk", "package", "packages", "external"}
)
TEST_COMPONENTS = frozenset({"test", "tests", "testdata", "fixtures", "fixture", "spec", "specs"})
BUILD_BASENAMES = frozenset(
    {"makefile", "build.sh", "build.gradle", "gulpfile.js", "build", "cmakelists.txt", "build.py", "update-psl.sh"}
)
FETCH_MARKERS = ("curl ", "wget ", "urlopen", "requests.get", "fetch(", "http.get", "httpclient", "downloadfile")
PSL_URL_MARKER = "publicsuffix.org"

_LIBRARY_HINTS: tuple[tuple[str, str], ...] = (
    ("jre", "jre"),
    ("jdk", "jre"),
    ("security", "jre"),
    ("ddns-scripts", "ddns-scripts"),
    ("oneforall", "oneforall"),
    ("python-whois", "python-whois"),
    ("whois", "python-whois"),
    ("domain_name", "domain_name"),
)


@dataclass(frozen=True, slots=True)
class Classification:
    """The classifier's verdict plus its supporting evidence."""

    label: UsageLabel
    evidence: tuple[str, ...] = field(default=())


def _components(path: str) -> list[str]:
    return [part.lower() for part in path.split("/")]


def _library_for(path: str, repo: Repository) -> str:
    components = _components(path)
    for hint, library in _LIBRARY_HINTS:
        if hint in components:
            return library
    # Fall back to manifests: a requirements/Gemfile naming the library.
    manifests = {
        "requirements.txt": (("oneforall", "oneforall"), ("python-whois", "python-whois")),
        "gemfile": (("domain_name", "domain_name"),),
        "pom.xml": (("jre", "jre"),),
    }
    for manifest_path, content in repo.files.items():
        rules = manifests.get(manifest_path.rsplit("/", 1)[-1].lower())
        if not rules:
            continue
        lowered = content.lower()
        for needle, library in rules:
            if needle in lowered:
                return library
    return "other"


def _is_daemon(repo: Repository) -> bool:
    for path, content in repo.files.items():
        if path.endswith(".service"):
            return True
        if path.rsplit("/", 1)[-1].lower() == "dockerfile" and "--daemon" in content:
            return True
        if "systemd" in _components(path):
            return True
    return False


def classify(repo: Repository) -> Classification | None:
    """Classify one repository; None when it vendors no list at all."""
    psl_paths = repo.psl_paths()
    if not psl_paths:
        return None

    # Dependency: the list arrives inside a vendored third-party tree.
    for path in psl_paths:
        components = _components(path)[:-1]
        if VENDOR_COMPONENTS & set(components):
            library = _library_for(path, repo)
            return Classification(
                UsageLabel(Strategy.DEPENDENCY, library),
                evidence=(f"vendored list at {path}", f"library: {library}"),
            )

    # Updated: something fetches a fresh list from publicsuffix.org.
    for path, content in sorted(repo.files.items()):
        if PSL_URL_MARKER not in content:
            continue
        basename = path.rsplit("/", 1)[-1].lower()
        if basename in BUILD_BASENAMES:
            return Classification(
                UsageLabel(Strategy.UPDATED, "build"),
                evidence=(f"build-time fetch in {path}",),
            )
        lowered = content.lower()
        if any(marker in lowered for marker in FETCH_MARKERS):
            subtype = "server" if _is_daemon(repo) else "user"
            return Classification(
                UsageLabel(Strategy.UPDATED, subtype),
                evidence=(f"runtime fetch in {path}", f"daemon: {subtype == 'server'}"),
            )

    # Fixed: a hard-coded list with no update path.
    for path in psl_paths:
        if TEST_COMPONENTS & set(_components(path)[:-1]):
            return Classification(
                UsageLabel(Strategy.FIXED, "test"),
                evidence=(f"list under test tree: {path}",),
            )
    referenced = [
        path
        for path, content in repo.files.items()
        if not path.endswith(".dat") and "public_suffix_list.dat" in content
    ]
    if referenced:
        return Classification(
            UsageLabel(Strategy.FIXED, "production"),
            evidence=tuple(f"referenced from {path}" for path in sorted(referenced)[:3]),
        )
    return Classification(
        UsageLabel(Strategy.FIXED, "other"),
        evidence=("vendored list is never referenced",),
    )
