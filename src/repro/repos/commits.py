"""Repository commit histories.

Figure 4 plots vendored-list age against *days since last commit* —
repository activity is part of the paper's story (popular, active
projects still carry stale lists).  This module models the commit
metadata behind that axis and provides the second dating signal a real
auditor has: when the vendored list was last touched in version
control (``git log -1 -- public_suffix_list.dat``), usable even when
content dating fails on a locally modified copy.
"""

from __future__ import annotations

import datetime
import random
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True, slots=True)
class Commit:
    """One commit: when, what it says, which paths it touched."""

    date: datetime.date
    message: str
    paths: tuple[str, ...]


class RepositoryHistory:
    """An ordered commit log for one repository."""

    def __init__(self, commits: Iterable[Commit]) -> None:
        self._commits = tuple(sorted(commits, key=lambda commit: commit.date))
        if not self._commits:
            raise ValueError("a repository has at least its initial commit")

    def __len__(self) -> int:
        return len(self._commits)

    @property
    def commits(self) -> tuple[Commit, ...]:
        return self._commits

    @property
    def head(self) -> Commit:
        """The most recent commit."""
        return self._commits[-1]

    def days_since_last_commit(self, reference: datetime.date) -> int:
        """Figure 4's activity axis."""
        return (reference - self.head.date).days

    def last_touched(self, path: str) -> Commit | None:
        """The newest commit touching ``path`` (the ``git log -1`` signal)."""
        for commit in reversed(self._commits):
            if path in commit.paths:
                return commit
        return None

    def first_touched(self, path: str) -> Commit | None:
        """The commit that introduced ``path``."""
        for commit in self._commits:
            if path in commit.paths:
                return commit
        return None

    def vendored_list_age(
        self, psl_path: str, reference: datetime.date
    ) -> int | None:
        """Days since the vendored list was last touched, or None.

        An *upper bound* on the content age: the file cannot be newer
        than its last commit; it can be older when the commit copied in
        an already-stale snapshot.
        """
        commit = self.last_touched(psl_path)
        if commit is None:
            return None
        return (reference - commit.date).days


def synthesize_history(
    *,
    rng: random.Random,
    created: datetime.date,
    last_commit: datetime.date,
    file_paths: Sequence[str],
    psl_path: str,
    psl_vendored: datetime.date,
    cadence_days: int = 45,
) -> RepositoryHistory:
    """A plausible commit log for a corpus repository.

    The initial commit creates the tree, the list lands in a dedicated
    vendoring commit on ``psl_vendored``, routine commits tick along at
    roughly ``cadence_days``, and the log ends exactly at
    ``last_commit`` (pinning days-since-last-commit).
    """
    if not created <= psl_vendored:
        raise ValueError("the list cannot be vendored before the repository exists")
    source_paths = tuple(path for path in file_paths if path != psl_path)
    commits = [Commit(created, "Initial commit", source_paths or (psl_path,))]

    cursor = created
    while True:
        cursor = cursor + datetime.timedelta(days=max(7, int(rng.gauss(cadence_days, 12))))
        if cursor >= last_commit:
            break
        touched = tuple(rng.sample(source_paths, min(len(source_paths), 1))) or (source_paths[:1] or (psl_path,))
        commits.append(Commit(cursor, rng.choice((
            "Fix edge case in parser",
            "Update dependencies",
            "Improve error messages",
            "Refactor internals",
            "Add tests",
            "Release housekeeping",
        )), touched))

    commits.append(
        Commit(psl_vendored, "Vendor public suffix list snapshot", (psl_path,))
    )
    if last_commit > created:
        final_paths = source_paths[:1] or (psl_path,)
        commits.append(Commit(last_commit, "Latest changes", tuple(final_paths)))
    return RepositoryHistory(commits)
