"""The synthetic 273-repository corpus.

Faithful to the paper on every published axis:

* **Table 1 marginals** — 68 fixed (43 production / 24 test / 1 other),
  35 updated (24 build / 8 user / 3 server), 170 dependency with the
  published per-library split;
* **Table 3 verbatim** — the 47 datable fixed repositories keep their
  real names, stars, forks, and list ages; their vendored ``.dat``
  files are serialized from the synthetic history at exactly the
  calibrated dates;
* **datability** — the calibrated age vectors
  (:mod:`repro.calibrate.ages`) say how many repositories per strategy
  can be dated; the rest vendor *recent but locally modified* lists
  whose digest matches no version (modified copies are also what keeps
  them from inflating Table 2's counts: their base version is newer
  than every calibrated suffix);
* **popularity** — star counts for the ten undatable fixed/production
  repositories are chosen so the paper's claims hold over all 43
  production projects: exactly 5 with 500+ stars, median 60.

Every repository carries the concrete files the classifier keys on, so
the taxonomy is re-derived rather than asserted.
"""

from __future__ import annotations

import datetime
import random
from dataclasses import dataclass

from repro.calibrate import ages as calibrated_ages
from repro.calibrate.words import compound
from repro.data import paper
from repro.history.store import VersionStore
from repro.psl.serialize import serialize_rules
from repro.repos.commits import synthesize_history
from repro.repos.model import Repository, Strategy, UsageLabel

# Stars for the 10 undatable fixed/production repositories: 2 of them
# popular (total 5 production repos with 500+ stars), and placed so the
# median over all 43 production repos is 60.
_UNDATABLE_PRODUCTION_STARS = (12, 18, 25, 33, 75, 90, 150, 250, 800, 2300)

_FETCH_SNIPPET = (
    "import urllib.request\n\n"
    "PSL_URL = 'https://publicsuffix.org/list/public_suffix_list.dat'\n\n\n"
    "def refresh_list(target_path):\n"
    "    \"\"\"Fetch the latest list, falling back to the bundled copy.\"\"\"\n"
    "    try:\n"
    "        with urllib.request.urlopen(PSL_URL, timeout=10) as response:\n"
    "            data = response.read()\n"
    "    except OSError:\n"
    "        return target_path  # fall back to the vendored copy\n"
    "    with open(target_path, 'wb') as handle:\n"
    "        handle.write(data)\n"
    "    return target_path\n"
)

_MAKEFILE_SNIPPET = (
    "all: data/public_suffix_list.dat build\n\n"
    "data/public_suffix_list.dat:\n"
    "\tcurl -sSf -o $@ https://publicsuffix.org/list/public_suffix_list.dat\n\n"
    "build:\n"
    "\t$(CC) -o app src/main.c\n"
)

_SERVICE_SNIPPET = (
    "[Unit]\nDescription=PSL-aware resolver daemon\n\n"
    "[Service]\nExecStart=/usr/bin/psl-daemon --listen 0.0.0.0:53\nRestart=always\n"
)


@dataclass(frozen=True, slots=True)
class CorpusConfig:
    """Corpus-generation knobs."""

    seed: int = 20230701
    undatable_base_age_range: tuple[int, int] = (60, 350)


class _CorpusBuilder:
    def __init__(self, store: VersionStore, config: CorpusConfig) -> None:
        self.store = store
        self.config = config
        self.rng = random.Random(config.seed)
        self.repos: list[Repository] = []
        self._used_names: set[str] = set(row.name for row in paper.TABLE3)
        self._list_cache: dict[datetime.date, str] = {}

    # -- naming ----------------------------------------------------------

    def repo_name(self) -> str:
        while True:
            name = f"{compound(self.rng)}/{compound(self.rng)}"
            if name not in self._used_names:
                self._used_names.add(name)
                return name

    # -- vendored list content -------------------------------------------

    def list_text_for_age(self, age_days: int) -> str:
        """Serialize the list as it stood ``age_days`` before t."""
        vendor_date = paper.MEASUREMENT_DATE - datetime.timedelta(days=age_days)
        version = self.store.version_at_date(vendor_date)
        if version is None:
            version = self.store.version(0)
        if version.date not in self._list_cache:
            self._list_cache[version.date] = serialize_rules(
                self.store.rules_at(version.index)
            )
        return self._list_cache[version.date]

    def modified_list_text(self) -> tuple[str, int]:
        """(text, base age) for a locally modified, undatable copy.

        Modification is add-only: extra organization-internal rules
        make the digest match no published version, while every rule
        of the base version stays present — so modified copies are
        never "missing" any real suffix and cannot perturb the harm
        counts.  The base age feeds the commit history (the VCS still
        knows when the copy landed even though content dating fails).
        """
        low, high = self.config.undatable_base_age_range
        base_age = self.rng.randint(low, high)
        base = self.list_text_for_age(base_age)
        extras = "\n".join(
            f"intranet-{compound(self.rng)}.example" for _ in range(self.rng.randint(1, 3))
        )
        return base + extras + "\n", base_age

    def attach_history(self, repo: Repository, list_age_days: int) -> None:
        """Give ``repo`` a commit log consistent with its metadata.

        The vendoring commit lands exactly ``list_age_days`` before the
        measurement date; activity cannot predate vendoring, so
        ``days_since_commit`` is clamped (and re-derived from the log).
        """
        vendor_date = paper.MEASUREMENT_DATE - datetime.timedelta(days=list_age_days)
        last_commit = paper.MEASUREMENT_DATE - datetime.timedelta(days=repo.days_since_commit)
        if last_commit < vendor_date:
            last_commit = vendor_date
        created = min(
            vendor_date - datetime.timedelta(days=self.rng.randint(30, 2500)),
            datetime.date(2015, 1, 1),
        )
        psl_path = repo.psl_paths()[0]
        repo.history = synthesize_history(
            rng=self.rng,
            created=created,
            last_commit=last_commit,
            file_paths=tuple(repo.files),
            psl_path=psl_path,
            psl_vendored=vendor_date,
        )
        repo.days_since_commit = repo.history.days_since_last_commit(paper.MEASUREMENT_DATE)

    # -- repository factories ----------------------------------------------

    def meta(self, *, stars: int | None = None, active: bool = False) -> tuple[int, int, int]:
        rng = self.rng
        if stars is None:
            stars = max(1, int(rng.paretovariate(1.2) * 4))
        forks = max(0, int(stars * rng.uniform(0.08, 0.35)))
        days_since_commit = rng.randint(0, 60) if active else rng.randint(5, 900)
        return stars, forks, days_since_commit

    def fixed_repo(
        self,
        name: str,
        subtype: str,
        list_text: str,
        stars: int,
        forks: int,
        days_since_commit: int,
    ) -> Repository:
        files: dict[str, str] = {}
        if subtype == "production":
            files["src/data/public_suffix_list.dat"] = list_text
            files["src/main.py"] = (
                "from pathlib import Path\n\n"
                "LIST_PATH = Path(__file__).parent / 'data' / 'public_suffix_list.dat'\n\n\n"
                "def load_rules():\n"
                "    \"\"\"Parse the bundled public_suffix_list.dat.\"\"\"\n"
                "    return LIST_PATH.read_text().splitlines()\n"
            )
        elif subtype == "test":
            files["tests/fixtures/public_suffix_list.dat"] = list_text
            files["tests/test_domains.py"] = (
                "def test_suffix_grouping(fixture_psl):\n"
                "    assert fixture_psl.suffix('a.example.com') == 'com'\n"
            )
        else:
            files["resources/misc/public_suffix_list.dat"] = list_text
            files["README.md"] = "# Archived experiments\n"
        return Repository(
            name=name,
            stars=stars,
            forks=forks,
            days_since_commit=days_since_commit,
            files=files,
            truth=UsageLabel(Strategy.FIXED, subtype),
        )

    def updated_repo(self, subtype: str, list_text: str) -> Repository:
        stars, forks, days = self.meta()
        files: dict[str, str] = {}
        if subtype == "build":
            files["data/public_suffix_list.dat"] = list_text
            files["Makefile"] = _MAKEFILE_SNIPPET
        else:
            files["app/data/public_suffix_list.dat"] = list_text
            files["app/updater.py"] = _FETCH_SNIPPET
            if subtype == "server":
                files["deploy/psl-daemon.service"] = _SERVICE_SNIPPET
        return Repository(
            name=self.repo_name(),
            stars=stars,
            forks=forks,
            days_since_commit=days,
            files=files,
            truth=UsageLabel(Strategy.UPDATED, subtype),
        )

    def dependency_repo(self, library: str, list_text: str) -> Repository:
        stars, forks, days = self.meta()
        files: dict[str, str] = {}
        if library == "jre":
            files["vendor/jre/lib/security/public_suffix_list.dat"] = list_text
            files["pom.xml"] = "<project><!-- bundled jre runtime --></project>\n"
            files["src/main/java/App.java"] = (
                "public class App {\n"
                "    public static void main(String[] args) {\n"
                "        System.out.println(\"service starting\");\n"
                "    }\n"
                "}\n"
            )
        elif library == "ddns-scripts":
            files["package/ddns-scripts/files/public_suffix_list.dat"] = list_text
            files["package/ddns-scripts/files/dynamic_dns_functions.sh"] = "#!/bin/sh\n# ddns helpers\n"
        elif library == "oneforall":
            files["vendor/oneforall/data/public_suffix_list.dat"] = list_text
            files["requirements.txt"] = "oneforall==0.4.5\nrequests\n"
            files["scanner.py"] = "def enumerate_subdomains(domain):\n    return []\n"
        elif library == "python-whois":
            files["vendor/python-whois/data/public_suffix_list.dat"] = list_text
            files["requirements.txt"] = "python-whois==0.8.0\n"
            files["lookup.py"] = "def whois(domain):\n    raise NotImplementedError\n"
        elif library == "domain_name":
            files["vendor/domain_name/data/public_suffix_list.dat"] = list_text
            files["Gemfile"] = "source 'https://rubygems.org'\ngem 'domain_name'\n"
            files["lib/resolver.rb"] = "module Resolver\nend\n"
        else:
            files["third_party/psl/public_suffix_list.dat"] = list_text
            files["third_party/psl/README"] = "Imported list snapshot.\n"
        return Repository(
            name=self.repo_name(),
            stars=stars,
            forks=forks,
            days_since_commit=days,
            files=files,
            truth=UsageLabel(Strategy.DEPENDENCY, library),
        )


def build_corpus(store: VersionStore, config: CorpusConfig | None = None) -> list[Repository]:
    """Build all 273 repositories against one synthetic history."""
    config = config or CorpusConfig()
    builder = _CorpusBuilder(store, config)
    rng = builder.rng
    repos = builder.repos

    # -- fixed, datable: Table 3 verbatim ---------------------------------
    for row in paper.TABLE3:
        list_text = builder.list_text_for_age(row.age_days)
        active = row.stars >= 1000
        days = rng.randint(0, 45) if active else rng.randint(10, 700)
        repo = builder.fixed_repo(row.name, row.subtype, list_text, row.stars, row.forks, days)
        builder.attach_history(repo, row.age_days)
        repos.append(repo)

    # -- fixed, undatable ---------------------------------------------------
    for stars in _UNDATABLE_PRODUCTION_STARS:
        forks = max(0, int(stars * rng.uniform(0.08, 0.3)))
        text, base_age = builder.modified_list_text()
        repo = builder.fixed_repo(
            builder.repo_name(), "production", text, stars, forks, rng.randint(5, 700)
        )
        builder.attach_history(repo, base_age)
        repos.append(repo)
    undatable_test = paper.TABLE1["fixed"]["test"] - len(paper.table3_rows("test"))
    for _ in range(undatable_test):
        stars, forks, days = builder.meta()
        text, base_age = builder.modified_list_text()
        repo = builder.fixed_repo(builder.repo_name(), "test", text, stars, forks, days)
        builder.attach_history(repo, base_age)
        repos.append(repo)

    # -- updated --------------------------------------------------------------
    updated_subtypes = (
        ["build"] * paper.TABLE1["updated"]["build"]
        + ["user"] * paper.TABLE1["updated"]["user"]
        + ["server"] * paper.TABLE1["updated"]["server"]
    )
    updated_texts = [
        (builder.list_text_for_age(age), age) for age in calibrated_ages.updated_ages()
    ]
    updated_texts += [
        builder.modified_list_text()
        for _ in range(len(updated_subtypes) - len(updated_texts))
    ]
    rng.shuffle(updated_texts)
    for subtype, (text, age) in zip(updated_subtypes, updated_texts):
        repo = builder.updated_repo(subtype, text)
        builder.attach_history(repo, age)
        repos.append(repo)

    # -- dependency -------------------------------------------------------------
    libraries: list[str] = []
    for library, count in paper.TABLE1["dependency"].items():
        libraries.extend([library] * count)
    dependency_texts = [
        (builder.list_text_for_age(age), age) for age in calibrated_ages.dependency_ages()
    ]
    dependency_texts += [
        builder.modified_list_text()
        for _ in range(len(libraries) - len(dependency_texts))
    ]
    rng.shuffle(dependency_texts)
    for library, (text, age) in zip(libraries, dependency_texts):
        repo = builder.dependency_repo(library, text)
        builder.attach_history(repo, age)
        repos.append(repo)

    return repos
