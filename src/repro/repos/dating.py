"""Dating vendored lists against the version history.

Two paths:

* **exact** — hash the vendored rule lines into the order-independent
  set digest and look it up in the store's digest index.  Byte-level
  noise (comments, blank lines, rule order) does not matter; the
  digest is over canonical rule texts.  This is the paper's "where the
  age of the list can be obtained" case.
* **nearest** — for locally modified lists: anchor on the newest rule
  the vendored list shares with the history (a list cannot be older
  than its newest rule), then probe versions around that anchor for
  the smallest symmetric difference.  Returns a confidence in (0, 1);
  the analyses treat anything below 1.0 as undatable, while
  ``psl-doctor`` still uses it for risk estimates.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

from repro.data import paper
from repro.history.store import VersionStore
from repro.history.timeline import rule_addition_dates
from repro.history.version import rule_digest
from repro.psl.parser import ICANN_BEGIN, ICANN_END, PRIVATE_BEGIN, PRIVATE_END


@dataclass(frozen=True, slots=True)
class DatingResult:
    """Outcome of dating one vendored list."""

    version_index: int
    date: datetime.date
    confidence: float
    method: str  # "exact" | "nearest"

    def age_at(self, reference: datetime.date = paper.MEASUREMENT_DATE) -> int:
        """List age in days at ``reference`` (Figure 3's quantity)."""
        return (reference - self.date).days

    @property
    def is_exact(self) -> bool:
        """True when the vendored rules match a version bit-for-bit."""
        return self.method == "exact"


def extract_rule_lines(text: str) -> list[str]:
    """The canonical rule lines of ``.dat`` text (comments stripped)."""
    lines: list[str] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("//"):
            continue
        lines.append(line)
    return lines


def list_set_digest(text: str) -> int:
    """Order-independent digest of the rules in ``.dat`` text.

    Matches :attr:`repro.history.version.PslVersion.set_digest` when —
    and only when — the rule sets are equal, regardless of formatting.
    """
    digest = 0
    for line in set(extract_rule_lines(text)):
        digest ^= rule_digest(line)
    return digest


class ListDater:
    """Dates vendored lists against one history.

    Construction precomputes the rule-addition-date map used by the
    nearest-match fallback; dating itself is then O(1) for exact
    matches and O(probe window) otherwise.
    """

    def __init__(self, store: VersionStore) -> None:
        self._store = store
        self._added = rule_addition_dates(store)
        self._text_sets: dict[int, frozenset[str]] = {}

    def _texts_at(self, index: int) -> frozenset[str]:
        cached = self._text_sets.get(index)
        if cached is None:
            cached = frozenset(rule.text for rule in self._store.rules_at(index))
            self._text_sets[index] = cached
        return cached

    def date_text(self, text: str) -> DatingResult | None:
        """Date ``.dat`` file content; None when nothing matches at all."""
        rules = set(extract_rule_lines(text))
        if not rules:
            return None
        digest = 0
        for line in rules:
            digest ^= rule_digest(line)
        version = self._store.find_by_digest(digest)
        if version is not None:
            return DatingResult(
                version_index=version.index,
                date=version.date,
                confidence=1.0,
                method="exact",
            )
        return self._nearest(rules)

    def _nearest(self, rules: set[str]) -> DatingResult | None:
        known_dates = [self._added[text] for text in rules if text in self._added]
        if not known_dates:
            return None
        anchor = self._store.version_at_date(max(known_dates))
        if anchor is None:
            return None
        # Probe a window of versions around the anchor for the best fit.
        best_index = anchor.index
        best_diff: int | None = None
        low = max(0, anchor.index - 8)
        high = min(len(self._store) - 1, anchor.index + 8)
        for index in range(low, high + 1):
            diff = len(self._texts_at(index) ^ rules)
            if best_diff is None or diff < best_diff:
                best_diff = diff
                best_index = index
        assert best_diff is not None
        version = self._store.version(best_index)
        confidence = max(0.0, 1.0 - best_diff / max(len(rules), 1))
        if best_diff == 0:
            # Equal rule set that the digest missed can only mean digest
            # collision; treat as exact anyway.
            return DatingResult(version.index, version.date, 1.0, "exact")
        return DatingResult(version.index, version.date, confidence, "nearest")


def date_list_text(store: VersionStore, text: str) -> DatingResult | None:
    """One-shot convenience wrapper around :class:`ListDater`."""
    return ListDater(store).date_text(text)


def date_by_vcs(repo, reference: datetime.date = paper.MEASUREMENT_DATE) -> int | None:
    """Age estimate from commit metadata: days since the vendored list
    was last touched.

    The auditor's ``git log -1 -- public_suffix_list.dat`` signal: an
    *upper bound* on content age that works even for locally modified
    copies content dating rejects.  None when the repository carries no
    history or the list was never committed.
    """
    if repo.history is None:
        return None
    paths = repo.psl_paths()
    if not paths:
        return None
    return repo.history.vendored_list_age(paths[0], reference)


def strip_private_division(text: str) -> str:
    """Drop the PRIVATE division from ``.dat`` text.

    Some real projects vendor ICANN-only variants; the failure-injection
    tests use this to exercise dating and harm analysis on them.
    """
    lines: list[str] = []
    in_private = False
    for raw in text.splitlines():
        stripped = raw.strip()
        if stripped == PRIVATE_BEGIN:
            in_private = True
            continue
        if stripped == PRIVATE_END:
            in_private = False
            continue
        if stripped in (ICANN_BEGIN, ICANN_END):
            lines.append(raw)
            continue
        if not in_private:
            lines.append(raw)
    return "\n".join(lines) + "\n"
