"""A GitHub-REST-like façade over the corpus.

The paper's discovery and disclosure both went through GitHub (file
search via Sourcegraph, notifications via issues).  This module gives
the corpus that interface so the whole study can be scripted the way
it would be against the real service:

* ``search_code`` — filename/content code search (Sourcegraph-shaped);
* ``get_repo`` / ``get_contents`` — repository metadata and file reads;
* ``create_issue`` / ``list_issues`` — the disclosure channel, with a
  per-call budget standing in for API rate limits so batch scripts are
  forced to handle exhaustion, as against the real API.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.repos.model import Repository
from repro.repos.search import SearchIndex


class RateLimitExceeded(RuntimeError):
    """Raised when the simulated API budget is exhausted."""


@dataclass(frozen=True, slots=True)
class RepoInfo:
    """The metadata slice of a repository the paper records."""

    full_name: str
    stargazers_count: int
    forks_count: int
    days_since_last_commit: int


@dataclass(frozen=True, slots=True)
class CodeSearchHit:
    """One code-search result."""

    repository: str
    path: str


@dataclass(slots=True)
class Issue:
    """A filed issue."""

    number: int
    repository: str
    title: str
    body: str
    labels: tuple[str, ...] = ()
    state: str = "open"


@dataclass
class GitHubApi:
    """The façade.  ``budget`` is the remaining API-call allowance."""

    repos: Iterable[Repository]
    budget: int = 5000

    _index: SearchIndex = field(init=False)
    _by_name: dict[str, Repository] = field(init=False)
    _issues: dict[str, list[Issue]] = field(init=False, default_factory=dict)
    _issue_counter: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        repos = list(self.repos)
        self._index = SearchIndex(repos)
        self._by_name = {repo.name: repo for repo in repos}

    # -- accounting -----------------------------------------------------------

    def _spend(self, cost: int = 1) -> None:
        if self.budget < cost:
            raise RateLimitExceeded(f"API budget exhausted (needed {cost})")
        self.budget -= cost

    @property
    def remaining_budget(self) -> int:
        return self.budget

    # -- read endpoints ----------------------------------------------------------

    def search_code(self, *, filename: str | None = None, content: str | None = None) -> list[CodeSearchHit]:
        """Code search by filename and/or content substring."""
        if filename is None and content is None:
            raise ValueError("search_code needs a filename or content query")
        self._spend(1)
        if filename is not None:
            hits = [
                CodeSearchHit(hit.repository, hit.path)
                for hit in self._index.find_filename(filename)
            ]
            if content is not None:
                hits = [
                    hit
                    for hit in hits
                    if content in self._by_name[hit.repository].files[hit.path]
                ]
            return hits
        return [CodeSearchHit(h.repository, h.path) for h in self._index.grep(content)]

    def get_repo(self, full_name: str) -> RepoInfo:
        """Repository metadata; KeyError for unknown names."""
        self._spend(1)
        repo = self._by_name[full_name]
        return RepoInfo(
            full_name=repo.name,
            stargazers_count=repo.stars,
            forks_count=repo.forks,
            days_since_last_commit=repo.days_since_commit,
        )

    def get_contents(self, full_name: str, path: str) -> str:
        """One file's content; KeyError when absent."""
        self._spend(1)
        return self._by_name[full_name].files[path]

    # -- write endpoints -----------------------------------------------------------

    def create_issue(self, full_name: str, title: str, body: str, labels: tuple[str, ...] = ()) -> Issue:
        """File an issue against a repository."""
        self._spend(1)
        if full_name not in self._by_name:
            raise KeyError(full_name)
        self._issue_counter += 1
        issue = Issue(
            number=self._issue_counter,
            repository=full_name,
            title=title,
            body=body,
            labels=labels,
        )
        self._issues.setdefault(full_name, []).append(issue)
        return issue

    def list_issues(self, full_name: str, state: str = "open") -> list[Issue]:
        """Issues filed against one repository."""
        self._spend(1)
        return [issue for issue in self._issues.get(full_name, []) if issue.state == state]

    def close_issue(self, full_name: str, number: int) -> None:
        """Mark an issue closed."""
        self._spend(1)
        for issue in self._issues.get(full_name, []):
            if issue.number == number:
                issue.state = "closed"
                return
        raise KeyError(f"{full_name}#{number}")


def file_campaign(api: GitHubApi, notifications) -> list[Issue]:
    """Deliver a notification campaign through the API.

    Stops cleanly on rate-limit exhaustion and returns what was filed —
    the caller can resume with a fresh budget, as against the real API.
    """
    filed: list[Issue] = []
    for note in notifications:
        try:
            filed.append(
                api.create_issue(
                    note.repository,
                    note.title,
                    note.body,
                    labels=("privacy", f"severity:{note.severity}"),
                )
            )
        except RateLimitExceeded:
            break
    return filed
