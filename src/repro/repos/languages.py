"""Repository language detection.

Table 1 annotates each dependency library with its ecosystem language
(Java: jre, Shell: ddns-scripts, Python: oneforall/python-whois,
Ruby: domain_name).  This module detects a repository's primary
language from its files — extensions first, manifest files as
tie-breakers — so that the paper's language column can be *measured*
from the corpus instead of asserted.
"""

from __future__ import annotations

from collections import Counter

from repro.repos.model import Repository

_EXTENSION_LANGUAGES: dict[str, str] = {
    ".py": "Python",
    ".rb": "Ruby",
    ".java": "Java",
    ".js": "JavaScript",
    ".ts": "TypeScript",
    ".go": "Go",
    ".rs": "Rust",
    ".c": "C",
    ".h": "C",
    ".cpp": "C++",
    ".cs": "C#",
    ".php": "PHP",
    ".sh": "Shell",
    ".pl": "Perl",
    ".r": "R",
}

_MANIFEST_LANGUAGES: dict[str, str] = {
    "pom.xml": "Java",
    "build.gradle": "Java",
    "requirements.txt": "Python",
    "setup.py": "Python",
    "pyproject.toml": "Python",
    "gemfile": "Ruby",
    "package.json": "JavaScript",
    "cargo.toml": "Rust",
    "go.mod": "Go",
    "composer.json": "PHP",
}


def detect_language(repo: Repository) -> str | None:
    """The repository's primary language, or None when undecidable.

    Source-file extensions win by count; manifests break ties and
    cover repositories that vendor binaries plus one build file (the
    bundled-JRE case).
    """
    by_extension: Counter[str] = Counter()
    manifest_votes: Counter[str] = Counter()
    for path in repo.files:
        basename = path.rsplit("/", 1)[-1].lower()
        if basename in _MANIFEST_LANGUAGES:
            manifest_votes[_MANIFEST_LANGUAGES[basename]] += 1
        dot = basename.rfind(".")
        if dot > 0:
            language = _EXTENSION_LANGUAGES.get(basename[dot:])
            if language:
                by_extension[language] += 1
    if by_extension:
        return by_extension.most_common(1)[0][0]
    if manifest_votes:
        return manifest_votes.most_common(1)[0][0]
    return None


def language_breakdown(repos: list[Repository]) -> dict[str, int]:
    """Primary-language counts over a corpus (None -> 'unknown')."""
    counts: dict[str, int] = {}
    for repo in repos:
        language = detect_language(repo) or "unknown"
        counts[language] = counts.get(language, 0) + 1
    return counts
