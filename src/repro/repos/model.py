"""Repository model and usage-taxonomy labels."""

from __future__ import annotations

import enum
import typing
from dataclasses import dataclass, field

if typing.TYPE_CHECKING:
    from repro.repos.commits import RepositoryHistory

PSL_FILENAME = "public_suffix_list.dat"


class Strategy(enum.Enum):
    """Top-level integration strategies (paper Section 4)."""

    FIXED = "fixed"
    UPDATED = "updated"
    DEPENDENCY = "dependency"


FIXED_SUBTYPES = ("production", "test", "other")
UPDATED_SUBTYPES = ("build", "user", "server")
DEPENDENCY_LIBRARIES = ("jre", "ddns-scripts", "oneforall", "python-whois", "domain_name", "other")


@dataclass(frozen=True, slots=True)
class UsageLabel:
    """A (strategy, subtype) pair.

    For dependencies the subtype names the library the list arrives
    through, mirroring Table 1's breakdown.
    """

    strategy: Strategy
    subtype: str

    def __post_init__(self) -> None:
        valid = {
            Strategy.FIXED: FIXED_SUBTYPES,
            Strategy.UPDATED: UPDATED_SUBTYPES,
            Strategy.DEPENDENCY: DEPENDENCY_LIBRARIES,
        }[self.strategy]
        if self.subtype not in valid:
            raise ValueError(f"invalid subtype {self.subtype!r} for {self.strategy}")


@dataclass(slots=True)
class Repository:
    """One synthetic repository.

    ``files`` maps repository-relative paths to text content.
    ``truth`` is the generator's ground-truth label, kept so tests can
    check the classifier against it; the analyses use the *classifier's*
    output, as the paper's authors used their manual labels.
    ``history`` is the commit log (when the generator attached one);
    ``days_since_commit`` always agrees with it.
    """

    name: str
    stars: int
    forks: int
    days_since_commit: int
    files: dict[str, str] = field(default_factory=dict)
    truth: UsageLabel | None = None
    history: "RepositoryHistory | None" = None

    def psl_paths(self) -> list[str]:
        """Paths of vendored public-suffix-list files."""
        return sorted(
            path for path in self.files if path.rsplit("/", 1)[-1] == PSL_FILENAME
        )

    def file_names(self) -> list[str]:
        """All file basenames (used by the search index)."""
        return [path.rsplit("/", 1)[-1] for path in self.files]
