"""Maintainer notification reports.

The paper: "We sought to notify the maintainers of those projects of
our findings, either privately … or by opening a GitHub issue
explaining the correct use of the public suffix list."  This module
renders that issue text from a repository's classification and dating
results, so the pipeline ends where the study did — with actionable
output per affected project.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data import paper
from repro.repos.classifier import Classification
from repro.repos.dating import DatingResult
from repro.repos.model import Repository, Strategy


@dataclass(frozen=True, slots=True)
class Notification:
    """One maintainer notification, ready to file as an issue."""

    repository: str
    title: str
    body: str
    severity: str  # "high" | "medium" | "low"


def _severity(classification: Classification, age_days: int | None) -> str:
    if classification.label.strategy is Strategy.FIXED and classification.label.subtype == "production":
        return "high"
    if classification.label.strategy is Strategy.UPDATED and classification.label.subtype == "server":
        return "high"
    if age_days is not None and age_days > 730:
        return "medium"
    return "low"


def build_notification(
    repo: Repository,
    classification: Classification,
    dating: DatingResult | None,
    missing_etlds: int = 0,
    missing_hostnames: int = 0,
) -> Notification:
    """Render the notification for one affected repository."""
    age = dating.age_at() if dating and dating.is_exact else None
    severity = _severity(classification, age)
    label = classification.label

    lines = [
        f"## Outdated Public Suffix List in {repo.name}",
        "",
        "This project vendors a copy of the Public Suffix List "
        "(`public_suffix_list.dat`). The PSL defines privacy boundaries "
        "between domains; using an outdated copy can group unrelated "
        "domains into one boundary (cookie sharing, password autofill "
        "across organizations).",
        "",
        f"* Integration strategy: **{label.strategy.value} / {label.subtype}**",
    ]
    if age is not None:
        lines.append(
            f"* Vendored list age: **{age} days** (as of {paper.MEASUREMENT_DATE.isoformat()})"
        )
    else:
        lines.append("* Vendored list age: could not be matched to any published version")
    if missing_etlds:
        lines.append(
            f"* Missing suffix rules with live traffic: **{missing_etlds} eTLDs**, "
            f"affecting **{missing_hostnames} hostnames** in a recent crawl"
        )
    lines.extend(
        [
            "",
            "### Recommended fix",
            "",
            "Fetch the list at runtime (with a bundled copy only as a "
            "fallback), or at minimum refresh the bundled copy on every "
            "release. The canonical source is "
            "<https://publicsuffix.org/list/public_suffix_list.dat>.",
            "",
            "Evidence: " + "; ".join(classification.evidence),
        ]
    )
    title = f"Outdated Public Suffix List ({age} days old)" if age is not None else "Outdated Public Suffix List"
    return Notification(repository=repo.name, title=title, body="\n".join(lines), severity=severity)
