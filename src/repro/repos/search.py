"""Sourcegraph-like search over the repository corpus.

The paper's discovery step: "we perform a search for files named
``public_suffix_list.dat`` in public GitHub repositories".  The index
supports exactly that query shape — filename match across every
repository — plus content search, which the psl-doctor examples use to
find update logic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.repos.model import Repository


@dataclass(frozen=True, slots=True)
class SearchHit:
    """One matching file."""

    repository: str
    path: str


class SearchIndex:
    """Filename and content search across a corpus."""

    def __init__(self, repos: Iterable[Repository]) -> None:
        self._repos: dict[str, Repository] = {}
        self._by_basename: dict[str, list[SearchHit]] = {}
        for repo in repos:
            if repo.name in self._repos:
                raise ValueError(f"duplicate repository name {repo.name!r}")
            self._repos[repo.name] = repo
            for path in repo.files:
                basename = path.rsplit("/", 1)[-1].lower()
                self._by_basename.setdefault(basename, []).append(
                    SearchHit(repository=repo.name, path=path)
                )

    def __len__(self) -> int:
        return len(self._repos)

    def repository(self, name: str) -> Repository:
        """Look one repository up by name."""
        return self._repos[name]

    def find_filename(self, filename: str) -> list[SearchHit]:
        """All files with this exact basename (case-insensitive)."""
        return sorted(
            self._by_basename.get(filename.lower(), []),
            key=lambda hit: (hit.repository, hit.path),
        )

    def repositories_with_file(self, filename: str) -> list[Repository]:
        """Distinct repositories containing a file with this basename.

        This is the paper's discovery query; over the full corpus it
        returns all 273 repositories.
        """
        names = {hit.repository for hit in self.find_filename(filename)}
        return [self._repos[name] for name in sorted(names)]

    def grep(self, needle: str) -> list[SearchHit]:
        """All files whose content contains ``needle``."""
        hits: list[SearchHit] = []
        for name in sorted(self._repos):
            repo = self._repos[name]
            for path in sorted(repo.files):
                if needle in repo.files[path]:
                    hits.append(SearchHit(repository=name, path=path))
        return hits
