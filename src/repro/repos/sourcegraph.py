"""A Sourcegraph-like query interface over the corpus.

The paper's discovery step ran through the Sourcegraph API ("we make
use of the Sourcegraph API, and perform a search for files named
public_suffix_list.dat in public GitHub repositories").  This module
implements the slice of Sourcegraph's query language that workflow
uses, over the corpus:

    file:public_suffix_list.dat
    file:\\.dat$ content:"===BEGIN ICANN DOMAINS==="
    repo:bitwarden/ file:public_suffix_list.dat
    content:publicsuffix.org count:50

Filters: ``file:`` (regex over paths), ``repo:`` (regex over names),
``content:`` (substring, quoted or bare), ``count:`` (result cap).
Bare terms are content substrings, as in Sourcegraph's literal mode.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable

from repro.repos.model import Repository


class QueryError(ValueError):
    """Raised for unparseable queries or invalid filter regexes."""


@dataclass(frozen=True, slots=True)
class Query:
    """A parsed query."""

    file_patterns: tuple[str, ...] = ()
    repo_patterns: tuple[str, ...] = ()
    content_terms: tuple[str, ...] = ()
    count: int | None = None


@dataclass(frozen=True, slots=True)
class FileMatch:
    """One search result."""

    repository: str
    path: str


def parse_query(query: str) -> Query:
    """Parse a query string into filters.

    >>> parse_query('repo:bitwarden/ file:core content:"BEGIN ICANN"')
    Query(file_patterns=('core',), repo_patterns=('bitwarden/',), content_terms=('BEGIN ICANN',), count=None)
    """
    if query.count('"') % 2:
        raise QueryError(f"unbalanced quoting in {query!r}")
    # Whitespace-split, but keep double-quoted spans (with their spaces)
    # as single tokens.  Deliberately NOT shlex: regex filters rely on
    # backslashes surviving tokenization (file:\.dat$).
    raw_tokens = re.findall(r'[^\s"]*"[^"]*"|\S+', query)
    tokens = [token.replace('"', "") for token in raw_tokens]
    if not tokens:
        raise QueryError("empty query")

    files: list[str] = []
    repos: list[str] = []
    contents: list[str] = []
    count: int | None = None
    for token in tokens:
        key, sep, value = token.partition(":")
        if sep and key == "file":
            files.append(value)
        elif sep and key == "repo":
            repos.append(value)
        elif sep and key == "content":
            contents.append(value)
        elif sep and key == "count":
            try:
                count = int(value)
            except ValueError as error:
                raise QueryError(f"count: wants an integer, got {value!r}") from error
        else:
            contents.append(token)
    return Query(
        file_patterns=tuple(files),
        repo_patterns=tuple(repos),
        content_terms=tuple(contents),
        count=count,
    )


class SourcegraphApi:
    """Executes queries over a repository corpus."""

    def __init__(self, repos: Iterable[Repository]) -> None:
        self._repos = list(repos)

    def search(self, query_text: str) -> list[FileMatch]:
        """Run one query; results are (repository, path) pairs."""
        query = parse_query(query_text)
        try:
            file_regexes = [re.compile(p) for p in query.file_patterns]
            repo_regexes = [re.compile(p) for p in query.repo_patterns]
        except re.error as error:
            raise QueryError(f"invalid filter regex: {error}") from error

        matches: list[FileMatch] = []
        for repo in sorted(self._repos, key=lambda r: r.name):
            if repo_regexes and not all(rx.search(repo.name) for rx in repo_regexes):
                continue
            for path in sorted(repo.files):
                if file_regexes and not all(rx.search(path) for rx in file_regexes):
                    continue
                content = repo.files[path]
                if query.content_terms and not all(
                    term in content for term in query.content_terms
                ):
                    continue
                matches.append(FileMatch(repository=repo.name, path=path))
                if query.count is not None and len(matches) >= query.count:
                    return matches
        return matches

    def repositories_matching(self, query_text: str) -> list[str]:
        """Distinct repository names with at least one file match."""
        return sorted({match.repository for match in self.search(query_text)})
