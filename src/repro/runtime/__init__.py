"""The resilient task-execution layer under the sweep engine.

Long longitudinal jobs (the paper's 498M-request × 1,142-version
replay) live or die on surviving partial failure; this package is the
fan-out runtime that makes a crashed worker a retry, a poisoned chunk
a quarantine entry, and a killed run a resume — never a lost sweep.

Public API:

* :class:`~repro.runtime.executor.ResilientExecutor` — run independent
  tasks with bounded retries, per-task timeouts, ``BrokenProcessPool``
  recovery, and quarantine;
* :class:`~repro.runtime.executor.RetryPolicy`,
  :class:`~repro.runtime.executor.ExecutionReport`,
  :class:`~repro.runtime.executor.TaskFailure` — its knobs and outcome;
* :class:`~repro.runtime.checkpoint.CheckpointStore` — chunk-granular
  result spills for checkpoint/resume;
* :mod:`repro.runtime.faults` — the deterministic fault-injection
  harness (:class:`~repro.runtime.faults.FaultPlan`) the tests drive
  every failure mode with.
"""

from repro.runtime.checkpoint import MISSING, CheckpointStore, atomic_write_bytes
from repro.runtime.executor import (
    CorruptResultError,
    ExecutionReport,
    ResilientExecutor,
    RetryPolicy,
    TaskFailure,
    merge_reports,
)
from repro.runtime.faults import (
    ALWAYS,
    CorruptResult,
    Fault,
    FaultInjected,
    FaultKind,
    FaultPlan,
    invoke_with_faults,
)

__all__ = [
    "ALWAYS",
    "MISSING",
    "CheckpointStore",
    "CorruptResult",
    "CorruptResultError",
    "ExecutionReport",
    "Fault",
    "FaultInjected",
    "FaultKind",
    "FaultPlan",
    "ResilientExecutor",
    "RetryPolicy",
    "TaskFailure",
    "atomic_write_bytes",
    "invoke_with_faults",
    "merge_reports",
]
