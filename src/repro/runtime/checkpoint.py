"""Chunk-granular checkpointing for the task runtime.

A :class:`CheckpointStore` spills each completed task's result to its
own file under a directory, so a killed run resumes from the last
completed chunk instead of the beginning.  Three properties make that
safe:

* **atomic per-task files** — results are written to a temp name and
  ``os.replace``d into place, so a kill mid-write leaves no half
  checkpoint; an unreadable file is treated as absent, never trusted;
* **a fingerprint manifest** — the caller describes the run (universe,
  history, chunking) as an opaque fingerprint; :meth:`reconcile` wipes
  checkpoints written under any other fingerprint, so a resumed run can
  only ever reuse results that are bit-identical to what it would
  compute itself;
* **identity by task id** — file names derive from the caller's stable
  task ids (chunk indices for the sweep), so resuming re-executes
  exactly the ids without a checkpoint file.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
from typing import Any

from repro.fingerprint import fingerprint as _fingerprint

#: Sentinel for "no checkpoint for this task id" — distinct from a
#: legitimately-None payload.
MISSING = object()

_MANIFEST_NAME = "manifest.json"
_SAFE_ID = re.compile(r"[^A-Za-z0-9_.-]+")


def atomic_write_bytes(path: str, payload: bytes) -> None:
    """Write ``payload`` to ``path`` via a temp file and ``os.replace``.

    The shared write discipline for every durable artifact (sweep
    checkpoints here, pipeline artifacts in
    :mod:`repro.pipeline.store`): a kill mid-write leaves a temp file,
    never a half-written final path.
    """
    temp = f"{path}.tmp"
    with open(temp, "wb") as handle:
        handle.write(payload)
    os.replace(temp, path)


class CheckpointStore:
    """A directory of per-task result spills plus a run manifest."""

    def __init__(self, directory: str) -> None:
        self._directory = directory
        os.makedirs(directory, exist_ok=True)

    @property
    def directory(self) -> str:
        return self._directory

    def _task_path(self, task_id: str) -> str:
        safe = _SAFE_ID.sub("_", task_id) or "task"
        digest = hashlib.sha256(task_id.encode("utf-8")).hexdigest()[:12]
        return os.path.join(self._directory, f"{safe}-{digest}.pkl")

    def _manifest_path(self) -> str:
        return os.path.join(self._directory, _MANIFEST_NAME)

    # -- lifecycle ------------------------------------------------------------

    def reconcile(self, fingerprint: Any, *, resume: bool = True) -> None:
        """Bind the store to one run shape, clearing anything stale.

        ``fingerprint`` is either an already-computed digest string or
        any canonicalizable description of the run, which is keyed
        through :func:`repro.fingerprint.fingerprint` — the same scheme
        pipeline artifacts use, so the two layers can never disagree.
        With ``resume=False`` existing checkpoints are always dropped;
        otherwise they survive only when the recorded fingerprint
        matches exactly.
        """
        if not isinstance(fingerprint, str):
            fingerprint = _fingerprint(fingerprint)
        recorded: str | None = None
        try:
            with open(self._manifest_path(), encoding="utf-8") as handle:
                recorded = json.load(handle).get("fingerprint")
        except (OSError, ValueError):
            recorded = None
        if not resume or recorded != fingerprint:
            self.clear()
        with open(self._manifest_path(), "w", encoding="utf-8") as handle:
            json.dump({"fingerprint": fingerprint}, handle)

    def clear(self) -> None:
        """Drop every spilled result (the directory itself survives)."""
        for name in os.listdir(self._directory):
            if name.endswith(".pkl") or name.endswith(".pkl.tmp"):
                try:
                    os.unlink(os.path.join(self._directory, name))
                except OSError:
                    pass

    # -- per-task results -----------------------------------------------------

    def load(self, task_id: str) -> Any:
        """The spilled result for ``task_id``, or :data:`MISSING`.

        A truncated or unreadable spill (e.g. from a kill mid-write on
        a filesystem without atomic replace) reads as missing — the
        task simply re-executes.
        """
        try:
            with open(self._task_path(task_id), "rb") as handle:
                return pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError, ValueError):
            return MISSING

    def save(self, task_id: str, payload: Any) -> None:
        """Atomically spill one completed task's result."""
        atomic_write_bytes(
            self._task_path(task_id),
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
        )

    def completed_count(self) -> int:
        """How many task results are currently spilled."""
        return sum(1 for name in os.listdir(self._directory) if name.endswith(".pkl"))

    # -- failure reports ------------------------------------------------------

    def write_report(self, payload: dict[str, Any], name: str = "failure_report.json") -> str:
        """Persist a failure report next to the checkpoints; returns its path."""
        path = os.path.join(self._directory, name)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        return path
