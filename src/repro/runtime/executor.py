"""The resilient task executor: retries, quarantine, pool recovery.

``ProcessPoolExecutor`` alone is brittle at sweep scale: one worker
crash raises ``BrokenProcessPool`` and discards every completed
partial.  :class:`ResilientExecutor` wraps the pool with the failure
handling a long longitudinal job needs, while keeping the invariant
the sweep engine is built on — **a fault-free run returns exactly what
a plain serial map over the tasks would**, in task order.

Per task, the state machine is::

    pending -> running -> done
                  |          ^
                  | failure / timeout / worker death (attempt += 1)
                  v          |
              retrying ------+--> exhausted -> serial in-process attempt
                                                   |            |
                                                   v            v
                                                 done      quarantined

* **bounded retries, deterministic backoff** — a failed task re-enters
  the queue until :attr:`RetryPolicy.max_attempts`, sleeping
  ``backoff_base * 2**(attempt - 2)`` (capped) between attempts; no
  jitter, so runs are reproducible;
* **timeouts** — with :attr:`RetryPolicy.task_timeout` set, an overdue
  task gets its workers killed and the pool rebuilt; tasks that were
  merely co-resident are resubmitted without a penalty attempt;
* **pool recovery** — ``BrokenProcessPool`` tears down the executor,
  not the sweep: the pool is rebuilt and only unfinished tasks are
  resubmitted (completed results are never recomputed);
* **quarantine** — a task that exhausts its pool attempts gets one
  final *serial, in-process* attempt (rescuing innocents that merely
  shared a pool with a poisonous neighbour); if that also fails it is
  excluded, recorded as a :class:`TaskFailure`, and its slot in the
  result list is ``None`` instead of sinking the whole run;
* **checkpointing** — with a :class:`~repro.runtime.checkpoint
  .CheckpointStore` attached, every completed result is spilled as it
  lands and already-spilled tasks are restored instead of re-executed.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Sequence, TypeVar

from repro.runtime.checkpoint import MISSING, CheckpointStore
from repro.runtime.faults import CorruptResult, FaultPlan, invoke_with_faults

_Task = TypeVar("_Task")

#: How often the pool loop wakes to look for overdue tasks.
_POLL_SECONDS = 0.05


class CorruptResultError(RuntimeError):
    """A task returned a result its validator rejected."""


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """How hard to fight for each task before quarantining it."""

    max_attempts: int = 3
    backoff_base: float = 0.02
    backoff_cap: float = 1.0
    task_timeout: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be positive")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff values must be non-negative")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError("task_timeout must be positive when set")

    def backoff(self, attempt: int) -> float:
        """Seconds to sleep before running ``attempt`` (1-based)."""
        if attempt <= 1 or self.backoff_base == 0:
            return 0.0
        return min(self.backoff_cap, self.backoff_base * (2 ** (attempt - 2)))


@dataclass(frozen=True, slots=True)
class TaskFailure:
    """One quarantined task: its identity, effort spent, last error."""

    task_id: str
    attempts: int
    error: str


@dataclass(frozen=True, slots=True)
class ExecutionReport:
    """What one :meth:`ResilientExecutor.run` call went through."""

    total: int
    executed: int
    resumed: int
    retried: tuple[str, ...]
    quarantined: tuple[TaskFailure, ...]
    pool_rebuilds: int

    @property
    def degraded(self) -> bool:
        """True when any task was excluded from the results."""
        return bool(self.quarantined)

    @property
    def quarantined_ids(self) -> tuple[str, ...]:
        return tuple(failure.task_id for failure in self.quarantined)


def merge_reports(first: ExecutionReport, second: ExecutionReport) -> ExecutionReport:
    """Combine two runs' reports (the sweep runs hosts then pairs)."""
    return ExecutionReport(
        total=first.total + second.total,
        executed=first.executed + second.executed,
        resumed=first.resumed + second.resumed,
        retried=first.retried + second.retried,
        quarantined=first.quarantined + second.quarantined,
        pool_rebuilds=first.pool_rebuilds + second.pool_rebuilds,
    )


class _RunState:
    """Mutable bookkeeping for one ``run`` call."""

    def __init__(self, count: int) -> None:
        self.results: list[Any] = [None] * count
        self.done = [False] * count
        self.retried: list[str] = []
        self.quarantined: list[TaskFailure] = []
        self.resumed = 0
        self.pool_rebuilds = 0


class ResilientExecutor:
    """Runs independent tasks to completion despite worker failures.

    ``workers=1`` executes everything in-process (retries and
    quarantine still apply); ``workers>1`` fans out over a process pool
    that is rebuilt, not surrendered, when workers die.
    """

    def __init__(
        self,
        *,
        workers: int = 1,
        policy: RetryPolicy | None = None,
        checkpoint: CheckpointStore | None = None,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be positive")
        self._workers = workers
        self._policy = policy if policy is not None else RetryPolicy()
        self._checkpoint = checkpoint
        self._plan = fault_plan

    def run(
        self,
        function: Callable[[_Task], Any],
        tasks: Sequence[_Task],
        *,
        task_ids: Sequence[str] | None = None,
        validate: Callable[[Any], bool] | None = None,
    ) -> tuple[list[Any], ExecutionReport]:
        """Execute every task; returns index-aligned results + report.

        Quarantined tasks leave ``None`` at their position.  ``validate``
        (parent-side, never pickled) rejects corrupt results, turning
        them into ordinary retryable failures.
        """
        tasks = list(tasks)
        ids = list(task_ids) if task_ids is not None else [str(i) for i in range(len(tasks))]
        if len(ids) != len(tasks):
            raise ValueError("task_ids must align with tasks")
        if len(set(ids)) != len(ids):
            raise ValueError("task_ids must be unique")

        state = _RunState(len(tasks))
        if self._checkpoint is not None:
            for position, task_id in enumerate(ids):
                payload = self._checkpoint.load(task_id)
                if payload is MISSING or not self._acceptable(payload, validate):
                    continue
                state.results[position] = payload
                state.done[position] = True
                state.resumed += 1

        pending = [position for position in range(len(tasks)) if not state.done[position]]
        if self._workers == 1 or len(pending) <= 1:
            for position in pending:
                self._run_serially(function, tasks, ids, position, validate, state)
        elif pending:
            self._run_on_pool(function, tasks, ids, pending, validate, state)

        report = ExecutionReport(
            total=len(tasks),
            executed=len(pending),
            resumed=state.resumed,
            retried=tuple(state.retried),
            quarantined=tuple(state.quarantined),
            pool_rebuilds=state.pool_rebuilds,
        )
        return state.results, report

    # -- shared plumbing ------------------------------------------------------

    def _acceptable(self, value: Any, validate: Callable[[Any], bool] | None) -> bool:
        if isinstance(value, CorruptResult):
            return False
        if validate is not None:
            try:
                return bool(validate(value))
            except Exception:
                return False
        return True

    def _check(self, value: Any, validate: Callable[[Any], bool] | None) -> Any:
        if not self._acceptable(value, validate):
            raise CorruptResultError(f"task returned an invalid result: {value!r}")
        return value

    def _commit(self, position: int, task_id: str, value: Any, state: _RunState) -> None:
        state.results[position] = value
        state.done[position] = True
        if self._checkpoint is not None:
            self._checkpoint.save(task_id, value)

    def _quarantine(
        self, position: int, task_id: str, attempts: int, error: str, state: _RunState
    ) -> None:
        state.quarantined.append(TaskFailure(task_id=task_id, attempts=attempts, error=error))
        state.results[position] = None
        state.done[position] = True

    # -- the serial path ------------------------------------------------------

    def _run_serially(
        self,
        function: Callable[[_Task], Any],
        tasks: list[_Task],
        ids: list[str],
        position: int,
        validate: Callable[[Any], bool] | None,
        state: _RunState,
    ) -> None:
        """All attempts in-process — the ``workers=1`` fallback path."""
        task_id = ids[position]
        last_error = "unknown"
        for attempt in range(1, self._policy.max_attempts + 1):
            delay = self._policy.backoff(attempt)
            if delay:
                time.sleep(delay)
            try:
                value = self._check(
                    invoke_with_faults(function, tasks[position], task_id, attempt, self._plan, True),
                    validate,
                )
            except Exception as exc:
                last_error = repr(exc)
                continue
            if attempt > 1:
                state.retried.append(task_id)
            self._commit(position, task_id, value, state)
            return
        self._quarantine(position, task_id, self._policy.max_attempts, last_error, state)

    def _final_serial_attempt(
        self,
        function: Callable[[_Task], Any],
        tasks: list[_Task],
        ids: list[str],
        position: int,
        attempts_so_far: int,
        last_error: str,
        validate: Callable[[Any], bool] | None,
        state: _RunState,
    ) -> None:
        """The quarantine gate: one in-process attempt after the pool
        gave up, so a task is only excluded when it fails *here* too."""
        task_id = ids[position]
        attempt = attempts_so_far + 1
        try:
            value = self._check(
                invoke_with_faults(function, tasks[position], task_id, attempt, self._plan, True),
                validate,
            )
        except Exception as exc:
            self._quarantine(position, task_id, attempt, repr(exc), state)
            return
        state.retried.append(task_id)
        self._commit(position, task_id, value, state)

    # -- the pool path --------------------------------------------------------

    def _run_on_pool(
        self,
        function: Callable[[_Task], Any],
        tasks: list[_Task],
        ids: list[str],
        pending: list[int],
        validate: Callable[[Any], bool] | None,
        state: _RunState,
    ) -> None:
        queue: deque[tuple[int, int, str]] = deque(
            (position, 1, "unknown") for position in pending
        )
        inflight: dict[Future, tuple[int, int, float]] = {}
        pool: ProcessPoolExecutor | None = None
        try:
            while queue or inflight:
                # Exhausted tasks leave the pool for the quarantine gate.
                requeue: deque[tuple[int, int, str]] = deque()
                while queue:
                    position, attempt, last_error = queue.popleft()
                    if attempt > self._policy.max_attempts:
                        self._final_serial_attempt(
                            function, tasks, ids, position, attempt - 1, last_error, validate, state
                        )
                    else:
                        requeue.append((position, attempt, last_error))
                queue = requeue

                while queue:
                    position, attempt, last_error = queue.popleft()
                    delay = self._policy.backoff(attempt)
                    if delay:
                        time.sleep(delay)
                    if pool is None:
                        pool = ProcessPoolExecutor(
                            max_workers=min(self._workers, 1 + len(queue) + len(inflight))
                        )
                    try:
                        future = pool.submit(
                            invoke_with_faults,
                            function,
                            tasks[position],
                            ids[position],
                            attempt,
                            self._plan,
                            False,
                        )
                    except (BrokenProcessPool, RuntimeError) as exc:
                        # The pool died between rounds; rebuild and retry
                        # this submission without charging the task.
                        state.pool_rebuilds += 1
                        pool = self._discard_pool(pool)
                        queue.appendleft((position, attempt, repr(exc)))
                        continue
                    inflight[future] = (position, attempt, time.monotonic())

                if not inflight:
                    continue
                poll = _POLL_SECONDS if self._policy.task_timeout is not None else None
                finished, _ = wait(set(inflight), timeout=poll, return_when=FIRST_COMPLETED)

                pool_broken = False
                for future in finished:
                    position, attempt, _started = inflight.pop(future)
                    try:
                        value = self._check(future.result(), validate)
                    except BrokenProcessPool as exc:
                        pool_broken = True
                        queue.append((position, attempt + 1, repr(exc)))
                        continue
                    except Exception as exc:
                        queue.append((position, attempt + 1, repr(exc)))
                        continue
                    if attempt > 1:
                        state.retried.append(ids[position])
                    self._commit(position, ids[position], value, state)

                if pool_broken:
                    # Every other in-flight future is doomed with the
                    # same pool; resubmit them without a penalty attempt.
                    state.pool_rebuilds += 1
                    pool = self._discard_pool(pool)
                    for position, attempt, _started in inflight.values():
                        queue.append((position, attempt, "broken process pool"))
                    inflight.clear()
                elif self._policy.task_timeout is not None and inflight:
                    now = time.monotonic()
                    overdue = {
                        future
                        for future, (_, _, started) in inflight.items()
                        if now - started > self._policy.task_timeout
                    }
                    if overdue:
                        # A hung worker can only be reclaimed by killing
                        # the pool; overdue tasks are charged an attempt,
                        # co-resident ones are not.
                        state.pool_rebuilds += 1
                        pool = self._kill_pool(pool)
                        for future, (position, attempt, _started) in inflight.items():
                            if future in overdue:
                                queue.append(
                                    (position, attempt + 1, "task timeout: worker killed")
                                )
                            else:
                                queue.append((position, attempt, "pool killed for timeout"))
                        inflight.clear()
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)

    @staticmethod
    def _discard_pool(pool: ProcessPoolExecutor | None) -> None:
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        return None

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor | None) -> None:
        """Terminate worker processes outright (for hangs), then discard."""
        if pool is None:
            return None
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except (OSError, ValueError):
                pass
        pool.shutdown(wait=False, cancel_futures=True)
        return None
