"""Deterministic fault injection for the task runtime.

Every failure mode the resilient executor claims to survive — worker
crashes, abrupt worker death, hangs, corrupt partials — is driven by
tests through a :class:`FaultPlan`: a picklable description of which
task ids misbehave, in which way, on which attempts.  The plan travels
to pool workers inside the submitted call, so faults fire *inside* the
worker process exactly where a real failure would, and because firing
is keyed on ``(task_id, attempt)`` a plan replays identically on every
run — no randomness, no timing races.

The executor routes every invocation (pool or in-process) through
:func:`invoke_with_faults`; with ``plan=None`` the wrapper is a plain
call, which is what keeps the fault-free path bit-identical to running
the task function directly.
"""

from __future__ import annotations

import enum
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, TypeVar

_Task = TypeVar("_Task")

#: ``Fault.attempts`` value meaning "on every attempt, forever" — the
#: poisoned-task case that must end in quarantine, not a retry loop.
ALWAYS = 1 << 30


class FaultInjected(RuntimeError):
    """Raised by a crash fault (and by abrupt-death faults in-process)."""


class FaultKind(enum.Enum):
    """The injectable failure modes.

    * ``CRASH`` — raise :class:`FaultInjected` (an ordinary task error);
    * ``WORKER_EXIT`` — ``os._exit`` the worker process, which the
      parent observes as ``BrokenProcessPool``; in-process it degrades
      to a raise, since killing the parent would end the test run;
    * ``HANG`` — sleep ``hang_seconds`` before doing the real work,
      tripping per-task timeouts (finite, so an escaped hang cannot
      wedge interpreter shutdown);
    * ``CORRUPT`` — return a :class:`CorruptResult` instead of the real
      partial, exercising result validation.
    """

    CRASH = "crash"
    WORKER_EXIT = "worker-exit"
    HANG = "hang"
    CORRUPT = "corrupt"


@dataclass(frozen=True, slots=True)
class Fault:
    """One task's misbehaviour: ``kind`` on attempts ``1..attempts``."""

    kind: FaultKind
    attempts: int = 1
    hang_seconds: float = 2.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("a fault must fire on at least one attempt")
        if self.hang_seconds < 0:
            raise ValueError("hang_seconds must be non-negative")

    def fires_on(self, attempt: int) -> bool:
        return attempt <= self.attempts


@dataclass(frozen=True, slots=True)
class CorruptResult:
    """What a corrupt fault returns in place of a real partial.

    Deliberately the wrong type for every consumer; the executor also
    rejects it unconditionally, so corruption never reaches a merge
    even when the caller supplied no validator.
    """

    task_id: str
    attempt: int


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """A deterministic schedule of faults, keyed by task id.

    Plans are frozen and contain only plain values, so they pickle into
    pool workers unchanged.
    """

    faults: Mapping[str, Fault] = field(default_factory=dict)

    def fault_for(self, task_id: str, attempt: int) -> Fault | None:
        fault = self.faults.get(task_id)
        if fault is not None and fault.fires_on(attempt):
            return fault
        return None


def invoke_with_faults(
    function: Callable[[_Task], Any],
    task: _Task,
    task_id: str,
    attempt: int,
    plan: FaultPlan | None,
    in_process: bool,
) -> Any:
    """Run one task invocation, applying any scheduled fault first.

    This is the single choke point both execution paths share: pool
    workers run it via ``pool.submit`` and the serial/quarantine path
    calls it inline with ``in_process=True``.
    """
    fault = plan.fault_for(task_id, attempt) if plan is not None else None
    if fault is not None:
        if fault.kind is FaultKind.CRASH:
            raise FaultInjected(f"injected crash: task {task_id!r} attempt {attempt}")
        if fault.kind is FaultKind.WORKER_EXIT:
            if in_process:
                raise FaultInjected(
                    f"injected worker exit (in-process): task {task_id!r} attempt {attempt}"
                )
            os._exit(86)
        if fault.kind is FaultKind.CORRUPT:
            return CorruptResult(task_id=task_id, attempt=attempt)
        time.sleep(fault.hang_seconds)  # HANG, then fall through to real work
    return function(task)
