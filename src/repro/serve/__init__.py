"""The request-serving subsystem: concurrent PSL queries over HTTP.

Everything before this package answers questions in batch — sweeps,
figures, tables.  :mod:`repro.serve` is the long-lived query surface a
production consumer (browser fleet, mail infrastructure, crawler)
would actually hit: an always-on service that answers site / classify
/ compare questions from immutable versioned snapshots, hot-swaps list
versions atomically under live traffic, and reports its own health as
Prometheus metrics.

Layering::

    SnapshotRegistry  (snapshots.py)  versioned immutable snapshots,
         |                            atomic copy-on-write hot-swap
    QueryEngine       (engine.py)     thread-safe sharded LRU caching,
         |                            single/batch/compare APIs
    RequestCore       (core.py)       transport-agnostic routing,
         |                            admission, error mapping, metrics
    PslServer         (http.py)       thin ThreadingHTTPServer adapter:
         |                            socket timeouts, Connection: close,
         |                            graceful drain on SIGTERM
    FleetSupervisor   (fleet.py)      pre-fork multi-worker front-end:
         |                            SO_REUSEPORT (or parent-fd) port
         |                            sharing, crash->respawn, epoch-bus
         |                            coordinated fleet-wide hot-swap
    psl-serve         (cli.py)        console entry point + smoke tests
                                      (--workers N selects the fleet)

:mod:`repro.serve.loadgen` drives Zipf-shaped HTTP load at either
shape of server; ``make bench-serve`` gates latency and fleet scaling
on it.

A :class:`~repro.update.watcher.Watcher` (see :mod:`repro.update`) can
be attached to a :class:`PslServer` to keep it continuously current
against upstream, with staleness SLOs on ``/healthz``; in a fleet the
watcher runs in the supervisor only and publishes ingests on the
epoch bus.

See ``docs/architecture.md`` (Serving layer) and
``examples/serve_queries.py`` for a driving tour.
"""

from repro.serve.core import (
    LocalEpochs,
    Request,
    RequestCore,
    Response,
    error_body,
)
from repro.serve.engine import (
    BatchAnswer,
    BatchItemError,
    ClassifyAnswer,
    CompareAnswer,
    EngineStats,
    QueryEngine,
    SiteAnswer,
)
from repro.serve.http import (
    DEFAULT_DRAIN_DEADLINE,
    DEFAULT_REQUEST_TIMEOUT,
    PslServer,
    serve_forever,
)
from repro.serve.metrics import (
    CallbackGauge,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MultiCallbackGauge,
)
from repro.serve.snapshots import (
    MemoryAccounting,
    PslSnapshot,
    SnapshotRegistry,
    UnknownVersionError,
)

__all__ = [
    "BatchAnswer",
    "BatchItemError",
    "CallbackGauge",
    "ClassifyAnswer",
    "CompareAnswer",
    "Counter",
    "DEFAULT_DRAIN_DEADLINE",
    "DEFAULT_REQUEST_TIMEOUT",
    "EngineStats",
    "Gauge",
    "Histogram",
    "LocalEpochs",
    "MemoryAccounting",
    "MetricsRegistry",
    "MultiCallbackGauge",
    "PslServer",
    "Request",
    "RequestCore",
    "Response",
    "error_body",
    "PslSnapshot",
    "QueryEngine",
    "SiteAnswer",
    "SnapshotRegistry",
    "UnknownVersionError",
    "serve_forever",
]
