"""The request-serving subsystem: concurrent PSL queries over HTTP.

Everything before this package answers questions in batch — sweeps,
figures, tables.  :mod:`repro.serve` is the long-lived query surface a
production consumer (browser fleet, mail infrastructure, crawler)
would actually hit: an always-on service that answers site / classify
/ compare questions from immutable versioned snapshots, hot-swaps list
versions atomically under live traffic, and reports its own health as
Prometheus metrics.

Layering::

    SnapshotRegistry  (snapshots.py)  versioned immutable snapshots,
         |                            atomic copy-on-write hot-swap
    QueryEngine       (engine.py)     thread-safe sharded LRU caching,
         |                            single/batch/compare APIs
    PslServer         (http.py)       ThreadingHTTPServer + admission
         |                            control + per-connection timeouts
         |                            + graceful drain on SIGTERM
    psl-serve         (cli.py)        console entry point + smoke test

A :class:`~repro.update.watcher.Watcher` (see :mod:`repro.update`) can
be attached to a :class:`PslServer` to keep it continuously current
against upstream, with staleness SLOs on ``/healthz``.

See ``docs/architecture.md`` (Serving layer) and
``examples/serve_queries.py`` for a driving tour.
"""

from repro.serve.engine import (
    BatchAnswer,
    BatchItemError,
    ClassifyAnswer,
    CompareAnswer,
    EngineStats,
    QueryEngine,
    SiteAnswer,
)
from repro.serve.http import (
    DEFAULT_DRAIN_DEADLINE,
    DEFAULT_REQUEST_TIMEOUT,
    PslServer,
    serve_forever,
)
from repro.serve.metrics import (
    CallbackGauge,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MultiCallbackGauge,
)
from repro.serve.snapshots import (
    MemoryAccounting,
    PslSnapshot,
    SnapshotRegistry,
    UnknownVersionError,
)

__all__ = [
    "BatchAnswer",
    "BatchItemError",
    "CallbackGauge",
    "ClassifyAnswer",
    "CompareAnswer",
    "Counter",
    "DEFAULT_DRAIN_DEADLINE",
    "DEFAULT_REQUEST_TIMEOUT",
    "EngineStats",
    "Gauge",
    "Histogram",
    "MemoryAccounting",
    "MetricsRegistry",
    "MultiCallbackGauge",
    "PslServer",
    "PslSnapshot",
    "QueryEngine",
    "SiteAnswer",
    "SnapshotRegistry",
    "UnknownVersionError",
    "serve_forever",
]
