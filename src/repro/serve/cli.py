"""The ``psl-serve`` command: run the PSL query service.

Usage::

    psl-serve                          # latest version, port 8053
    psl-serve --port 0                 # ephemeral port (printed)
    psl-serve --version 2019-06-01     # pin an historical version
    psl-serve --cache-dir .psl-cache   # warm the history from the
                                       # artifact store (repro.pipeline)
    psl-serve --watch --behind 8       # serve 8 versions behind a
                                       # synthetic upstream and let the
                                       # repro.update watcher catch up
                                       # live (staleness SLOs on
                                       # /healthz and /metrics)
    psl-serve --workers 4 --packed     # pre-fork fleet: 4 worker
                                       # processes sharing one port
                                       # (SO_REUSEPORT) and one packed
                                       # snapshot buffer; /swap bumps
                                       # the fleet epoch everywhere
    psl-serve --smoke                  # self-test: start on an
                                       # ephemeral port, hit every
                                       # endpoint, assert JSON shapes
                                       # (add --workers N for the
                                       # fleet smoke)

With ``--cache-dir`` the history comes out of the same
content-addressed :class:`~repro.pipeline.ArtifactStore` that
``psl-repro --cache-dir`` populates, so a box that has rendered any
figure starts the server without re-synthesizing the world.

Shutdown is graceful: SIGTERM/SIGINT flip ``/healthz`` to ``draining``
(503), stop the watcher, stop accepting connections, and drain
in-flight requests under ``--drain-deadline`` seconds before closing.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
import urllib.request
from typing import Callable

from repro.history.store import VersionStore
from repro.history.synthesis import SynthesisConfig, synthesize_history
from repro.serve.engine import QueryEngine
from repro.serve.http import DEFAULT_MAX_INFLIGHT, PslServer, serve_forever
from repro.serve.snapshots import SnapshotRegistry

DEFAULT_PORT = 8053
DEFAULT_SEED = 20230701


def build_store(seed: int, cache_dir: str | None) -> VersionStore:
    """The version history to serve, warmed from ``cache_dir`` if given.

    The cached path reuses the paper pipeline's ``history`` stage
    verbatim — same stage, same fingerprint — so the server and
    ``psl-repro`` share one artifact rather than each keeping a private
    copy of the world.
    """
    store, _ = build_world(seed, cache_dir, packed=False)
    return store


def build_world(seed: int, cache_dir: str | None, *, packed: bool):
    """The history plus (optionally) its packed buffer.

    With ``packed=True`` and a ``cache_dir``, the packed buffer comes
    from the pipeline's ``packed`` stage as a **raw artifact** and is
    ``mmap``-ed straight off the store's payload file — the
    multi-process warm path: every server process mapping the same
    artifact file shares one physical copy of the full history.
    Without a cache directory the buffer is packed in-process (still
    flat and immutable, just not OS-shared).
    """
    if cache_dir is None:
        store = synthesize_history(SynthesisConfig(seed=seed))
        if not packed:
            return store, None
        from repro.psl.packed import PackedHistory, pack_history

        return store, PackedHistory.from_buffer(pack_history(store))

    from repro.analysis.context import SweepSettings, world_stages
    from repro.pipeline import ArtifactStore, Pipeline
    from repro.webgraph.synthesis import SnapshotConfig

    artifacts = ArtifactStore(cache_dir)
    pipeline = Pipeline(
        world_stages(seed, SnapshotConfig(seed=seed), SweepSettings()),
        store=artifacts,
    )
    store = pipeline.build("history")
    if not packed:
        return store, None
    from repro.psl.packed import PackedHistory, pack_history

    pipeline.build("packed")  # ensure the raw artifact exists on disk
    path = artifacts.payload_path("packed", pipeline.fingerprint_of("packed"))
    if path is not None:
        return store, PackedHistory.load(path)  # mmap: OS-shared pages
    # No verified payload file (e.g. a memory-only store): pack inline.
    return store, PackedHistory.from_buffer(pack_history(store))


def prefix_store(full: VersionStore, count: int) -> VersionStore:
    """The first ``count`` versions of ``full`` as their own store.

    Commit hashes chain identically, so the prefix is exactly what a
    consumer who vendored the list at version ``count - 1`` holds —
    the starting state of the live-update scenario.
    """
    if not 1 <= count <= len(full):
        raise ValueError(f"prefix count {count} out of range [1, {len(full)}]")
    store = VersionStore()
    for version in full.versions[:count]:
        store.commit(version.date, version.delta, message=version.message)
    return store


def build_server(args: argparse.Namespace) -> PslServer:
    """Assemble store -> registry -> engine -> server from parsed flags.

    With ``--watch`` the full history becomes the synthetic upstream's
    truth, the registry starts ``--behind`` versions back, and a
    :class:`repro.update.watcher.Watcher` (not yet started — the
    caller owns the thread) is attached for SLO metrics and catch-up.
    """
    store, packed = build_world(args.seed, args.cache_dir, packed=args.packed)
    watch = getattr(args, "watch", False)
    if watch:
        truth = store
        behind = max(1, min(args.behind, len(truth) - 1))
        store = prefix_store(truth, len(truth) - behind)
        if packed is not None:
            # The mmap/full-history buffer covers versions the prefix
            # registry must not expose; repack the prefix in-process.
            from repro.psl.packed import PackedHistory, pack_history

            packed = PackedHistory.from_buffer(pack_history(store))
    registry = SnapshotRegistry(
        store,
        active=args.version,
        resident_capacity=args.resident,
        packed=packed,
    )
    engine = QueryEngine(
        registry, cache_capacity=args.cache_capacity, shards=args.shards
    )
    server = PslServer(
        (args.host, args.port),
        registry,
        engine=engine,
        max_inflight=args.max_inflight,
        request_timeout=args.request_timeout,
        quiet=not args.verbose,
    )
    if watch:
        from repro.update.upstream import SyntheticUpstream
        from repro.update.watcher import Watcher, WatcherConfig

        upstream = SyntheticUpstream(truth)
        watcher = Watcher(
            registry,
            upstream,
            config=WatcherConfig(poll_interval=args.poll_interval),
        )
        server.attach_watcher(watcher)
    return server


def build_fleet(args: argparse.Namespace):
    """Assemble a :class:`~repro.serve.fleet.FleetSupervisor` from flags.

    The watch path mirrors :func:`build_server`, but the watcher runs
    in the *supervisor only*: its validated ingests are published on
    the fleet's epoch bus and every worker replays them, so the whole
    fleet tracks upstream in lockstep.
    """
    from repro.serve.fleet import FleetConfig, FleetSupervisor

    store, packed = build_world(args.seed, args.cache_dir, packed=args.packed)
    upstream = None
    watcher_config = None
    if getattr(args, "watch", False):
        truth = store
        behind = max(1, min(args.behind, len(truth) - 1))
        store = prefix_store(truth, len(truth) - behind)
        if packed is not None:
            from repro.psl.packed import PackedHistory, pack_history

            packed = PackedHistory.from_buffer(pack_history(store))
        from repro.update.upstream import SyntheticUpstream
        from repro.update.watcher import WatcherConfig

        upstream = SyntheticUpstream(truth)
        watcher_config = WatcherConfig(poll_interval=args.poll_interval)
    config = FleetConfig(
        workers=args.workers,
        host=args.host,
        port=args.port,
        version=args.version,
        resident_capacity=args.resident,
        cache_capacity=args.cache_capacity,
        shards=args.shards,
        max_inflight=args.max_inflight,
        request_timeout=args.request_timeout,
        drain_deadline=args.drain_deadline,
        reuse_port=False if args.no_reuseport else None,
        restart_budget=args.restart_budget,
        run_dir=args.run_dir,
    )
    return FleetSupervisor(
        store,
        config=config,
        packed=packed,
        upstream=upstream,
        watcher_config=watcher_config,
        quiet=not args.verbose,
    )


# -- the smoke self-test -----------------------------------------------------

def _fetch(url: str, *, data: bytes | None = None) -> tuple[int, bytes]:
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"} if data else {}
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def run_smoke(base: str) -> list[str]:
    """Drive every endpoint over real HTTP; returns failure messages.

    This is what ``make serve-smoke`` runs: each check issues a real
    request and asserts the JSON shape a client would parse.
    """
    failures: list[str] = []

    def check(name: str, condition: bool, detail: str = "") -> None:
        line = f"{'ok' if condition else 'FAIL':4s} {name}"
        if detail and not condition:
            line += f" — {detail}"
        print(line)
        if not condition:
            failures.append(name)

    def get_json(path: str, *, data: bytes | None = None) -> tuple[int, dict]:
        status, raw = _fetch(base + path, data=data)
        return status, json.loads(raw)

    status, body = get_json("/healthz")
    check("/healthz status", status == 200 and body.get("status") == "ok", str(body))
    check("/healthz shape", {"active", "generation", "uptime_seconds"} <= set(body))

    status, body = get_json("/site?host=www.example.co.uk")
    check("/site status", status == 200, str(status))
    check(
        "/site shape",
        {"hostname", "site", "public_suffix", "registrable_domain", "version"} <= set(body),
        str(body),
    )

    status, body = get_json("/site?host=bad..name")
    check("/site 400 on malformed", status == 400, str(status))
    check(
        "/site error shape",
        body.get("error", {}).get("kind") == "invalid_hostname"
        and "reason" in body.get("error", {}),
        str(body),
    )

    payload = json.dumps(
        {"hostnames": ["a.example.com", "b.example.org", "white space.bad"]}
    ).encode()
    status, body = get_json("/batch", data=payload)
    check("/batch status", status == 200, str(status))
    check(
        "/batch shape",
        body.get("count") == 3 and body.get("errors") == 1 and len(body.get("answers", [])) == 3,
        str(body)[:200],
    )

    status, body = get_json("/classify?page=www.shop.example&request=cdn.tracker.example")
    check("/classify status", status == 200, str(status))
    check(
        "/classify shape",
        isinstance(body.get("third_party"), bool) and "page" in body and "request" in body,
        str(body)[:200],
    )

    status, body = get_json("/compare?host=www.example.co.uk&old=0")
    check("/compare status", status == 200, str(status))
    check(
        "/compare shape",
        isinstance(body.get("diverges"), bool) and "old" in body and "new" in body,
        str(body)[:200],
    )

    status, body = get_json("/versions?limit=3")
    check("/versions status", status == 200, str(status))
    check(
        "/versions shape",
        "count" in body and "active" in body and len(body.get("versions", [])) <= 3,
        str(body)[:200],
    )

    status, body = get_json("/swap?version=0", data=b"{}")
    check("/swap to v0", status == 200 and body.get("active", {}).get("index") == 0, str(body))
    status, body = get_json("/swap?version=latest", data=b"{}")
    check("/swap back to latest", status == 200, str(body))

    status, body = get_json("/nowhere")
    check("unknown path is 404", status == 404, str(status))

    status, raw = _fetch(base + "/metrics")
    text = raw.decode()
    check("/metrics status", status == 200, str(status))
    for needle in (
        "psl_serve_requests_total",
        "psl_serve_request_seconds_bucket",
        "psl_serve_cache_hit_ratio",
        "psl_serve_snapshot_age_days",
        "psl_serve_snapshot_swaps_total",
    ):
        check(f"/metrics exposes {needle}", needle in text)

    return failures


def wait_until_up(base: str, *, timeout: float = 10.0) -> bool:
    """Poll ``/healthz`` until some process answers (fleet startup)."""
    limit = time.monotonic() + timeout
    while time.monotonic() < limit:
        try:
            status, _ = _fetch(base + "/healthz")
            if status in (200, 503):
                return True
        except OSError:
            pass
        time.sleep(0.05)
    return False


def run_fleet_smoke(base: str, workers: int) -> list[str]:
    """Fleet-specific checks on top of :func:`run_smoke`.

    Asserts the coordination surface: every worker heartbeats, the
    smoke's ``/swap`` calls propagated as epoch bumps everybody agrees
    on, and the fleet gauges are scrapeable.
    """
    failures: list[str] = []

    def check(name: str, condition: bool, detail: str = "") -> None:
        line = f"{'ok' if condition else 'FAIL':4s} {name}"
        if detail and not condition:
            line += f" — {detail}"
        print(line)
        if not condition:
            failures.append(name)

    fleet: dict = {}
    limit = time.monotonic() + 10.0
    while time.monotonic() < limit:
        _, raw = _fetch(base + "/healthz")
        body = json.loads(raw)
        fleet = body.get("fleet", {})
        if fleet.get("agreement") and fleet.get("reporting", 0) >= workers:
            break
        time.sleep(0.1)
    check("fleet block on /healthz", bool(fleet), "no 'fleet' key")
    check(
        "all workers reporting",
        fleet.get("reporting", 0) >= workers,
        f"{fleet.get('reporting')} of {workers}",
    )
    check(
        "epoch agreement after swaps",
        fleet.get("agreement") is True,
        json.dumps(fleet)[:300],
    )
    check(
        "epoch advanced by the smoke's swaps",
        fleet.get("published_epoch", 0) >= 2,
        str(fleet.get("published_epoch")),
    )

    _, raw = _fetch(base + "/metrics")
    text = raw.decode()
    for needle in (
        "psl_fleet_published_epoch",
        "psl_fleet_epoch_agreement",
        "psl_fleet_worker_epoch",
    ):
        check(f"/metrics exposes {needle}", needle in text)
    return failures


def _fleet_smoke_main(args: argparse.Namespace) -> int:
    args.port = 0
    print("building history…", flush=True)
    supervisor = build_fleet(args)
    supervisor.start()
    mode = "SO_REUSEPORT" if supervisor.reuse_port else "inherited parent fd"
    print(f"fleet of {args.workers} workers on {supervisor.url} ({mode})")
    failures: list[str] = []
    try:
        if not wait_until_up(supervisor.url):
            failures.append("fleet startup")
        else:
            failures = run_smoke(supervisor.url)
            failures += run_fleet_smoke(supervisor.url, args.workers)
    finally:
        if not supervisor.drain():
            failures.append("graceful fleet drain")
    if failures:
        print(f"\nfleet smoke FAILED: {len(failures)} check(s): {', '.join(failures)}")
        return 1
    print("\nfleet smoke ok: every endpoint answered and every worker agreed on the epoch")
    return 0


def _smoke_main(args: argparse.Namespace) -> int:
    if args.workers > 1:
        return _fleet_smoke_main(args)
    args.port = 0  # ephemeral: the smoke test must not fight over a port
    print("building history…", flush=True)
    server = build_server(args)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    print(f"serving on {server.url} (version v{server.registry.active.index})")
    failures: list[str] = []
    try:
        failures = run_smoke(server.url)
    finally:
        if not server.drain():
            failures.append("graceful drain")
        thread.join(timeout=5)
    if failures:
        print(f"\nsmoke FAILED: {len(failures)} check(s): {', '.join(failures)}")
        return 1
    print("\nsmoke ok: every endpoint answered with the documented shape")
    return 0


# -- entry point -------------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="psl-serve",
        description="Serve PSL queries over HTTP with hot-swappable versioned snapshots.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT, help="bind port (0 = ephemeral)")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED, help="world seed for the synthetic history")
    parser.add_argument(
        "--version",
        default="latest",
        help="initial active version: index, ISO date, or 'latest'",
    )
    parser.add_argument(
        "--resident", type=int, default=4,
        help="how many extra versions stay materialized for /compare",
    )
    parser.add_argument(
        "--cache-capacity", type=int, default=65536,
        help="total suffix-match cache entries across shards",
    )
    parser.add_argument(
        "--shards", type=int, default=8,
        help="cache shard count (lock granularity)",
    )
    parser.add_argument(
        "--max-inflight", type=int, default=DEFAULT_MAX_INFLIGHT,
        help="concurrent requests admitted before shedding 503s",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="warm the history from this repro.pipeline artifact store",
    )
    parser.add_argument(
        "--request-timeout", type=float, default=30.0,
        help="per-connection socket timeout in seconds (slow-client guard)",
    )
    parser.add_argument(
        "--drain-deadline", type=float, default=10.0,
        help="seconds to wait for in-flight requests on SIGTERM/SIGINT",
    )
    parser.add_argument(
        "--watch", action="store_true",
        help="live-update mode: start behind a synthetic upstream and let the watcher catch up",
    )
    parser.add_argument(
        "--behind", type=int, default=8,
        help="with --watch: how many versions behind upstream to start",
    )
    parser.add_argument(
        "--poll-interval", type=float, default=5.0,
        help="with --watch: seconds between upstream polls",
    )
    parser.add_argument(
        "--packed", action="store_true",
        help="serve off the packed zero-copy trie (mmap-shared with --cache-dir)",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="pre-fork worker processes sharing the port (1 = single-process threaded server)",
    )
    parser.add_argument(
        "--no-reuseport", action="store_true",
        help="with --workers: use the inherited-listener fallback instead of SO_REUSEPORT",
    )
    parser.add_argument(
        "--restart-budget", type=int, default=16,
        help="with --workers: total crash respawns before the supervisor gives up",
    )
    parser.add_argument(
        "--run-dir", default=None,
        help="with --workers: directory for the fleet's epoch bus (default: a temp dir)",
    )
    parser.add_argument("--verbose", action="store_true", help="log each request")
    parser.add_argument(
        "--smoke", action="store_true",
        help="self-test: serve on an ephemeral port, hit every endpoint, exit",
    )
    args = parser.parse_args(argv)

    if args.workers < 1:
        parser.error("--workers must be at least 1")
    if args.smoke:
        return _smoke_main(args)

    if args.workers > 1:
        print("building history…", flush=True)
        supervisor = build_fleet(args)
        supervisor.start()
        mode = "SO_REUSEPORT" if supervisor.reuse_port else "inherited parent fd"
        print(
            f"psl-serve fleet: {args.workers} workers on {supervisor.url} "
            f"({mode}; epoch bus in {supervisor.bus.root})"
        )
        if supervisor.watcher is not None:
            print(
                f"watching upstream from the supervisor, polling every "
                f"{args.poll_interval:.1f}s (ingests publish to every worker)"
            )
        print("Ctrl-C to stop; SIGTERM drains the whole fleet")
        drained = supervisor.run()
        print("fleet drained cleanly" if drained else "fleet drain was not fully clean")
        return 0

    print("building history…", flush=True)
    started = time.perf_counter()
    server = build_server(args)
    active = server.registry.active
    packed_history = server.registry.packed_history
    if packed_history is None:
        mode = "dict tries"
    elif packed_history.mmap_shared:
        mode = f"packed mmap, {packed_history.nbytes / 1e6:.1f} MB shared"
    else:
        mode = f"packed in-heap, {packed_history.nbytes / 1e6:.1f} MB"
    print(
        f"psl-serve: {len(server.registry)} versions loaded in "
        f"{time.perf_counter() - started:.1f}s; active v{active.index} "
        f"({active.date}, {active.rule_count} rules; {mode})"
    )
    if server.watcher is not None:
        status = server.watcher.status()
        print(
            f"watching upstream: {status.versions_behind} version(s) behind, "
            f"polling every {args.poll_interval:.1f}s (state: {status.state.value})"
        )
        server.watcher.start()
    print(f"listening on {server.url}  (Ctrl-C to stop; SIGTERM drains)")
    drained = serve_forever(server, drain_deadline=args.drain_deadline)
    print("drained cleanly" if drained else "drain deadline elapsed with requests in flight")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
