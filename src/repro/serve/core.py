"""The transport-agnostic request core of the serving tier.

Everything the HTTP layer used to decide — routing, parameter and body
validation, admission control, error mapping, metrics recording — now
lives in :class:`RequestCore`, which knows nothing about sockets.  A
transport (the threaded :class:`~repro.serve.http.PslServer`, a test
driving :meth:`RequestCore.handle` directly, or every worker of a
pre-fork fleet) parses bytes into a :class:`Request`, hands it to the
core, and writes the returned :class:`Response` back out.  That split
is what lets one request pipeline serve three shapes of process
without forking its logic:

* one threaded server (the PR 5 shape, behavior-identical);
* N pre-fork workers over one shared snapshot buffer
  (:mod:`repro.serve.fleet`);
* no server at all — unit tests exercise the full routing and error
  surface without opening a socket.

Error responses are built in exactly one place
(:func:`error_body` / :class:`Reject`), so 400/404/405/413/500 carry
the same ``{"error": {"kind": ..., ...}}`` JSON shape on every
endpoint and every transport.

Hot-swap goes through an **epoch coordinator**: ``/swap`` asks the
coordinator, not the registry, so a single process bumps its own
registry (:class:`LocalEpochs`) while a fleet worker publishes the
swap on the shared epoch bus for every sibling to observe
(:class:`repro.serve.fleet.BusEpochs`).  ``/healthz`` reports the
coordinator's epoch — in fleet mode, per-worker epoch agreement.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable
from urllib.parse import parse_qs, urlsplit

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (update -> serve)
    from repro.update.watcher import Watcher

from repro.net.errors import HostnameError
from repro.serve.engine import QueryEngine
from repro.serve.metrics import MetricsRegistry
from repro.serve.snapshots import PslSnapshot, SnapshotRegistry, UnknownVersionError

DEFAULT_MAX_INFLIGHT = 64
#: Request-body ceiling (bytes): a batch of ~100k hostnames fits; a
#: memory-exhaustion payload does not.
MAX_BODY_BYTES = 8 * 1024 * 1024
#: Per-request batch size ceiling; larger workloads should page.
MAX_BATCH_HOSTNAMES = 100_000

JSON_TYPE = "application/json"
METRICS_TYPE = "text/plain; version=0.0.4"


def error_body(kind: str, **detail: Any) -> dict:
    """The one structured-error shape every endpoint returns.

    ``{"error": {"kind": <machine-readable>, ...detail}}`` — the same
    JSON on a 400, 404, 405, 413, 500, or 503, so clients parse one
    shape and transports add only transport concerns (e.g. the HTTP
    adapter's ``Connection: close``).
    """
    return {"error": {"kind": kind, **detail}}


class Reject(Exception):
    """Internal control flow: abort the request with (status, error body)."""

    def __init__(self, status: int, kind: str, detail: dict | None = None) -> None:
        self.status = status
        self.body = error_body(kind, **(detail or {}))
        super().__init__(kind)


@dataclass(slots=True)
class Request:
    """One parsed-enough request, transport details already stripped.

    ``read`` is the transport's body reader (``rfile.read``-shaped);
    the core only calls it after checking ``content_length`` against
    :data:`MAX_BODY_BYTES`, so a transport never buffers an oversized
    body on the core's behalf.
    """

    method: str
    target: str  # path plus query string, as the transport received it
    content_length: int = 0
    read: Callable[[int], bytes] = lambda n: b""

    @property
    def endpoint(self) -> str:
        return urlsplit(self.target).path.rstrip("/") or "/"

    def query(self) -> dict[str, str]:
        raw = parse_qs(urlsplit(self.target).query)
        return {key: values[-1] for key, values in raw.items()}


@dataclass(slots=True)
class Response:
    """What the core answers; the transport serializes it."""

    status: int
    payload: dict | bytes
    content_type: str = JSON_TYPE

    def encoded(self) -> bytes:
        if isinstance(self.payload, bytes):
            return self.payload
        return json.dumps(self.payload).encode("utf-8")


class LocalEpochs:
    """Single-process epoch coordination: the registry *is* the fleet.

    The epoch is the registry generation, and a swap is a direct
    ``activate`` — exactly the PR 5 behavior, now behind the interface
    a fleet worker swaps through.
    """

    def __init__(self, registry: SnapshotRegistry) -> None:
        self._registry = registry

    def epoch(self) -> int:
        return self._registry.generation

    def swap(self, spec: object) -> tuple[PslSnapshot, int]:
        snapshot = self._registry.activate(spec)
        return snapshot, self._registry.generation

    def describe(self) -> dict:
        return {"mode": "local", "epoch": self.epoch()}


class RequestCore:
    """Routing, admission, error mapping, and metrics — no sockets.

    One core serves one registry + engine + metrics registry.  All
    transports of one process share the core, so admission control and
    counters stay process-global no matter how requests arrive.
    """

    _GET_ROUTES = {
        "/site": "_get_site",
        "/classify": "_get_classify",
        "/compare": "_get_compare",
        "/versions": "_get_versions",
        "/healthz": "_get_healthz",
        "/metrics": "_get_metrics",
    }
    _POST_ROUTES = {
        "/batch": "_post_batch",
        "/swap": "_post_swap",
    }
    #: Observability endpoints stay reachable under load shedding.
    _UNGATED = frozenset({"/healthz", "/metrics"})

    def __init__(
        self,
        registry: SnapshotRegistry,
        *,
        engine: QueryEngine | None = None,
        metrics: MetricsRegistry | None = None,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        epochs: LocalEpochs | None = None,
        worker_id: int | None = None,
        fleet_view: Callable[[], dict] | None = None,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be positive")
        self.registry = registry
        self.engine = engine if engine is not None else QueryEngine(registry)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.gate = threading.Semaphore(max_inflight)
        self.max_inflight = max_inflight
        self.epochs = epochs if epochs is not None else LocalEpochs(registry)
        self.worker_id = worker_id
        self.fleet_view = fleet_view
        self.started_at = time.time()
        self.watcher: "Watcher | None" = None
        self.draining = False
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._install_metrics()

    # -- metrics wiring ------------------------------------------------------

    def _install_metrics(self) -> None:
        metrics = self.metrics
        self.requests_total = metrics.counter(
            "psl_serve_requests_total",
            "Requests handled, by endpoint and status code.",
            ("endpoint", "status"),
        )
        self.rejected_total = metrics.counter(
            "psl_serve_rejected_total",
            "Requests shed by admission control (503, never processed).",
        )
        self.latency = metrics.histogram(
            "psl_serve_request_seconds",
            "Request wall time in seconds, by endpoint.",
            ("endpoint",),
        )
        self.lookups_total = metrics.counter(
            "psl_serve_hostname_lookups_total",
            "Individual hostname lookups performed (batch items count each).",
        )
        engine, registry = self.engine, self.registry
        metrics.callback_gauge(
            "psl_serve_cache_hits_total",
            "Suffix-match cache hits across every shard.",
            lambda: engine.stats().hits,
        )
        metrics.callback_gauge(
            "psl_serve_cache_misses_total",
            "Suffix-match cache misses across every shard.",
            lambda: engine.stats().misses,
        )
        metrics.callback_gauge(
            "psl_serve_cache_hit_ratio",
            "Cache hits / (hits + misses) since start.",
            lambda: engine.stats().hit_rate,
        )
        metrics.callback_gauge(
            "psl_serve_cache_entries",
            "Live suffix-match cache entries across every shard.",
            lambda: engine.stats().entries,
        )
        metrics.callback_gauge(
            "psl_serve_snapshot_index",
            "History index of the active snapshot.",
            lambda: registry.active.index,
        )
        metrics.callback_gauge(
            "psl_serve_snapshot_age_days",
            "Age of the active snapshot's list version in days (staleness).",
            lambda: registry.active.age_days(),
        )
        metrics.callback_gauge(
            "psl_serve_snapshot_rules",
            "Rule count of the active snapshot.",
            lambda: registry.active.rule_count,
        )
        metrics.callback_gauge(
            "psl_serve_snapshot_swaps_total",
            "Completed hot-swaps since start.",
            lambda: registry.generation,
        )
        metrics.callback_gauge(
            "psl_serve_epoch",
            "Fleet epoch this process has applied (equals generation when local).",
            lambda: self.epochs.epoch(),
        )
        metrics.callback_gauge(
            "psl_serve_resident_snapshots",
            "Snapshots currently materialized (active + compare residents).",
            lambda: len(registry.resident_indexes()),
        )
        metrics.callback_gauge(
            "psl_serve_inflight_requests",
            "Requests currently being processed.",
            lambda: self.inflight,
        )
        metrics.callback_gauge(
            "psl_serve_resident_packed_bytes",
            "Bytes of packed snapshot buffer resident (shared sections counted once).",
            lambda: registry.memory_accounting().packed_bytes,
        )
        metrics.callback_gauge(
            "psl_serve_resident_dict_bytes",
            "Measured heap bytes of resident dict-trie snapshots.",
            lambda: registry.memory_accounting().dict_bytes,
        )
        metrics.callback_gauge(
            "psl_serve_resident_dict_bytes_estimate",
            "What every resident version would cost as a dict trie (the packed-vs-dict baseline).",
            lambda: registry.memory_accounting().dict_bytes_estimate,
        )
        metrics.multi_callback_gauge(
            "psl_serve_snapshot_packed_mmap_shared",
            "Per resident version: 1 when served from an OS-shared packed mmap, 0 otherwise.",
            ("version",),
            lambda: {
                str(row["index"]): 1.0 if row["packed_mmap_shared"] else 0.0
                for row in registry.memory_accounting().versions
            },
        )

    def attach_watcher(self, watcher: "Watcher") -> None:
        """Bind an update watcher: SLO gauges + the ``/healthz`` block.

        The staleness SLO surface (age of active version, versions
        behind upstream, consecutive failed polls, health state)
        becomes scrapeable the moment a watcher is attached; the
        transport's drain path then also owns stopping the watcher
        thread.
        """
        if self.watcher is not None:
            raise ValueError("a watcher is already attached")
        self.watcher = watcher
        metrics = self.metrics
        metrics.callback_gauge(
            "psl_serve_update_active_age_days",
            "Age in days of the active snapshot's list version (the staleness SLO).",
            lambda: watcher.status().active_age_days,
        )
        metrics.callback_gauge(
            "psl_serve_update_versions_behind",
            "Published upstream versions not yet ingested.",
            lambda: watcher.status().versions_behind,
        )
        metrics.callback_gauge(
            "psl_serve_update_failed_polls",
            "Consecutive upstream polls that failed (resets on success).",
            lambda: watcher.status().consecutive_failed_polls,
        )
        metrics.callback_gauge(
            "psl_serve_update_polls_total",
            "Upstream polls attempted since start.",
            lambda: watcher.status().polls,
        )
        metrics.callback_gauge(
            "psl_serve_update_accepted_total",
            "Versions ingested through the incremental patch path.",
            lambda: watcher.status().accepted,
        )
        metrics.callback_gauge(
            "psl_serve_update_resynced_total",
            "Versions ingested through the full-snapshot resync path.",
            lambda: watcher.status().resynced,
        )
        metrics.callback_gauge(
            "psl_serve_update_quarantined_total",
            "Upstream versions permanently skipped after failing validation.",
            lambda: watcher.status().quarantined,
        )
        from repro.update.slo import HEALTH_STATES  # local: avoid import cycle

        metrics.state_gauge(
            "psl_serve_update_health",
            "Update-loop health (one-hot): fresh, stale, or degraded.",
            HEALTH_STATES,
            lambda: watcher.status().state.value,
        )

    # -- admission -----------------------------------------------------------

    @property
    def inflight(self) -> int:
        with self._inflight_lock:
            return self._inflight

    def _enter(self) -> bool:
        if not self.gate.acquire(blocking=False):
            return False
        with self._inflight_lock:
            self._inflight += 1
        return True

    def _leave(self) -> None:
        with self._inflight_lock:
            self._inflight -= 1
        self.gate.release()

    # -- request handling ----------------------------------------------------

    def handle(self, request: Request) -> Response:
        """Route one request through admission, dispatch, and metrics.

        The full never-crash contract lives here: any exception the
        endpoint logic raises becomes a structured error response, and
        the counters are recorded *before* the response is returned to
        the transport — a scrape issued right after the final request
        of a load can never undercount.
        """
        endpoint = request.endpoint
        routes = self._GET_ROUTES if request.method == "GET" else self._POST_ROUTES
        method_name = routes.get(endpoint) if request.method in ("GET", "POST") else None
        if method_name is None:
            known = endpoint in self._GET_ROUTES or endpoint in self._POST_ROUTES
            status = 405 if known else 404
            kind = "method_not_allowed" if known else "not_found"
            detail: dict[str, Any] = {"path": endpoint}
            if known:
                detail["allowed"] = (
                    ["GET"] if endpoint in self._GET_ROUTES else ["POST"]
                )
            self.requests_total.inc(
                endpoint=endpoint if known else "<unknown>", status=str(status)
            )
            return Response(status, error_body(kind, **detail))

        gated = endpoint not in self._UNGATED
        if gated and not self._enter():
            self.rejected_total.inc()
            self.requests_total.inc(endpoint=endpoint, status="503")
            return Response(
                503, error_body("overloaded", max_inflight=self.max_inflight)
            )

        started = time.perf_counter()
        try:
            try:
                status, payload = getattr(self, method_name)(request)
            except Reject as rejection:
                status, payload = rejection.status, rejection.body
            except HostnameError as exc:
                status = 400
                payload = error_body(
                    "invalid_hostname", value=exc.value, reason=exc.reason
                )
            except UnknownVersionError as exc:
                status = 404
                payload = error_body(
                    "unknown_version", value=str(exc.spec), reason=exc.reason
                )
            except Exception:  # the never-crash contract
                status, payload = 500, error_body("internal")
        finally:
            if gated:
                self._leave()
        self.requests_total.inc(endpoint=endpoint, status=str(status))
        self.latency.observe(time.perf_counter() - started, endpoint=endpoint)
        if isinstance(payload, bytes):
            return Response(status, payload, METRICS_TYPE)
        return Response(status, payload)

    # -- shared request plumbing ---------------------------------------------

    @staticmethod
    def _required(query: dict[str, str], name: str) -> str:
        value = query.get(name)
        if not value:
            raise Reject(400, "missing_parameter", {"parameter": name})
        return value

    @staticmethod
    def _read_body(request: Request) -> dict:
        length = request.content_length
        # A negative length must never reach request.read(): rfile.read(-1)
        # means read-until-EOF, which buffers whatever a keep-alive client
        # streams and bypasses the MAX_BODY_BYTES ceiling entirely.
        if length < 0:
            raise Reject(400, "invalid_content_length", {"value": length})
        if length > MAX_BODY_BYTES:
            raise Reject(413, "body_too_large", {"limit_bytes": MAX_BODY_BYTES})
        raw = request.read(length) if length else b""
        if not raw:
            raise Reject(400, "empty_body")
        try:
            body = json.loads(raw)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise Reject(400, "malformed_json", {"detail": str(exc)}) from exc
        if not isinstance(body, dict):
            raise Reject(400, "malformed_json", {"detail": "body must be an object"})
        return body

    # -- endpoints (each returns (status, payload); bytes = plain text) ------

    def _get_site(self, request: Request) -> tuple[int, dict]:
        query = request.query()
        host = self._required(query, "host")
        answer = self.engine.site(host, version=query.get("version"))
        self.lookups_total.inc()
        return 200, answer.to_json()

    def _get_classify(self, request: Request) -> tuple[int, dict]:
        query = request.query()
        page = self._required(query, "page")
        req = self._required(query, "request")
        answer = self.engine.classify(page, req, version=query.get("version"))
        self.lookups_total.inc(2)
        return 200, answer.to_json()

    def _get_compare(self, request: Request) -> tuple[int, dict]:
        query = request.query()
        host = self._required(query, "host")
        old = self._required(query, "old")
        answer = self.engine.compare(host, old, query.get("new"))
        self.lookups_total.inc(2)
        return 200, answer.to_json()

    def _get_versions(self, request: Request) -> tuple[int, dict]:
        query = request.query()
        limit: int | None = None
        if "limit" in query:
            try:
                limit = int(query["limit"])
            except ValueError:
                raise Reject(400, "malformed_parameter", {"parameter": "limit"}) from None
        return 200, self.registry.describe(limit=limit)

    def _get_healthz(self, request: Request) -> tuple[int, dict]:
        registry = self.registry
        draining = self.draining
        body: dict[str, Any] = {
            "status": "draining" if draining else "ok",
            "active": registry.active.describe(),
            "generation": registry.generation,
            "epoch": self.epochs.epoch(),
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "inflight": self.inflight,
        }
        if self.worker_id is not None:
            body["worker"] = self.worker_id
        if self.fleet_view is not None:
            # The fleet block must never take /healthz down with it: a
            # torn heartbeat file degrades to an error note, not a 500.
            try:
                body["fleet"] = self.fleet_view()
            except Exception as exc:
                body["fleet"] = {"error": repr(exc)}
        if self.watcher is not None:
            body["update"] = self.watcher.status().to_json()
        # 503 while draining so load balancers eject the instance; the
        # body still carries full state for operators mid-drain.
        return (503 if draining else 200), body

    def _get_metrics(self, request: Request) -> tuple[int, bytes]:
        return 200, self.metrics.render().encode("utf-8")

    def _post_batch(self, request: Request) -> tuple[int, dict]:
        body = self._read_body(request)
        hostnames = body.get("hostnames")
        if not isinstance(hostnames, list) or not all(
            isinstance(h, str) for h in hostnames
        ):
            raise Reject(
                400, "malformed_batch", {"detail": "'hostnames' must be a list of strings"}
            )
        if len(hostnames) > MAX_BATCH_HOSTNAMES:
            raise Reject(413, "batch_too_large", {"limit": MAX_BATCH_HOSTNAMES})
        answer = self.engine.batch(hostnames, version=body.get("version"))
        self.lookups_total.inc(len(hostnames))
        return 200, answer.to_json()

    def _post_swap(self, request: Request) -> tuple[int, dict]:
        query = request.query()
        spec = query.get("version")
        if spec is None:
            body = self._read_body(request)
            spec = body.get("version")
        if spec is None:
            raise Reject(400, "missing_parameter", {"parameter": "version"})
        snapshot, epoch = self.epochs.swap(spec)
        return 200, {
            "active": snapshot.describe(),
            "generation": self.registry.generation,
            "epoch": epoch,
        }
