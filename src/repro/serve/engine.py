"""The thread-safe query engine over a snapshot registry.

Answers the four questions a PSL consumer asks, each in single and
batch form, all safe to call from any number of threads concurrently
with registry hot-swaps:

* **site** — which privacy boundary does this hostname belong to?
* **classify** — is this request third-party to this page?
* **compare** — would an older list version have answered differently?
  (the per-hostname form of the paper's Figure 7 divergence and of
  :mod:`repro.analysis.boundaries`' ``diff_vs_latest`` series)
* **batch** — the same, amortized over many hostnames with snapshot
  pinning: every answer in one batch comes from one version even if a
  swap lands mid-batch.

Caching is a sharded :class:`~repro.psl.caching.ThreadSafeLruDict` of
full :class:`~repro.psl.list.SuffixMatch` results keyed by
``(snapshot fingerprint, hostname)`` — the fingerprint in the key is
what makes hot-swap correctness free: entries for an outgoing version
simply stop being referenced and age out of the LRU, so a swap never
needs to (and never does) flush or lock the caches.  Sharding keeps
lock contention flat as server threads scale.

Hostname admission is :func:`repro.net.hostname.normalize_or_reject`,
the same gate the streaming ingest path uses; anything it refuses
surfaces as a structured :class:`~repro.net.errors.HostnameError`, the
HTTP layer's 400.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.net.errors import HostnameError
from repro.net.hostname import normalize_or_reject
from repro.psl.caching import ThreadSafeLruDict
from repro.psl.list import SuffixMatch
from repro.serve.snapshots import PslSnapshot, SnapshotRegistry

DEFAULT_CACHE_CAPACITY = 65_536
DEFAULT_SHARDS = 8


@dataclass(frozen=True, slots=True)
class SiteAnswer:
    """The serving-shape result of one hostname lookup."""

    hostname: str
    site: str
    public_suffix: str
    registrable_domain: str | None
    is_public_suffix: bool
    version_index: int
    version_date: datetime.date
    cached: bool

    def to_json(self) -> dict:
        return {
            "hostname": self.hostname,
            "site": self.site,
            "public_suffix": self.public_suffix,
            "registrable_domain": self.registrable_domain,
            "is_public_suffix": self.is_public_suffix,
            "version": self.version_index,
            "version_date": self.version_date.isoformat(),
            "cached": self.cached,
        }


@dataclass(frozen=True, slots=True)
class BatchItemError:
    """One rejected hostname inside a batch (the batch itself succeeds)."""

    hostname: str
    reason: str

    def to_json(self) -> dict:
        return {"hostname": self.hostname, "error": {"kind": "invalid_hostname", "reason": self.reason}}


@dataclass(frozen=True, slots=True)
class BatchAnswer:
    """A whole batch answered under one pinned snapshot."""

    version_index: int
    version_date: datetime.date
    answers: tuple[SiteAnswer | BatchItemError, ...]

    @property
    def ok_count(self) -> int:
        return sum(1 for a in self.answers if isinstance(a, SiteAnswer))

    @property
    def error_count(self) -> int:
        return len(self.answers) - self.ok_count

    def to_json(self) -> dict:
        return {
            "version": self.version_index,
            "version_date": self.version_date.isoformat(),
            "count": len(self.answers),
            "errors": self.error_count,
            "answers": [a.to_json() for a in self.answers],
        }


@dataclass(frozen=True, slots=True)
class ClassifyAnswer:
    """First/third-party verdict for one (page, request) pair."""

    page: SiteAnswer
    request: SiteAnswer
    third_party: bool

    def to_json(self) -> dict:
        return {
            "page": self.page.to_json(),
            "request": self.request.to_json(),
            "third_party": self.third_party,
            "version": self.page.version_index,
        }


@dataclass(frozen=True, slots=True)
class CompareAnswer:
    """One hostname's site under two list versions.

    ``diverges`` is exactly the condition the paper's Figure 7 counts
    per version over a whole snapshot: a consumer pinned to ``old``
    places the hostname in a different privacy boundary than ``new``
    does — a misclassification in the making.
    """

    hostname: str
    old: SiteAnswer
    new: SiteAnswer

    @property
    def diverges(self) -> bool:
        return self.old.site != self.new.site

    def to_json(self) -> dict:
        return {
            "hostname": self.hostname,
            "old": self.old.to_json(),
            "new": self.new.to_json(),
            "diverges": self.diverges,
        }


@dataclass(frozen=True, slots=True)
class EngineStats:
    """Aggregate cache statistics across every shard."""

    hits: int
    misses: int
    entries: int
    capacity: int
    shards: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class QueryEngine:
    """Concurrent, cached PSL queries over a :class:`SnapshotRegistry`."""

    def __init__(
        self,
        registry: SnapshotRegistry,
        *,
        cache_capacity: int = DEFAULT_CACHE_CAPACITY,
        shards: int = DEFAULT_SHARDS,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be positive")
        self._registry = registry
        if cache_capacity <= 0:
            # No per-hostname LRU at all: every lookup walks the trie.
            # The supported mode for packed snapshots, whose uncached
            # walk is fast enough that the cache is optional.
            self._shards = ()
        else:
            per_shard = max(1, cache_capacity // shards)
            self._shards: tuple[ThreadSafeLruDict[tuple[str, str], SuffixMatch], ...] = tuple(
                ThreadSafeLruDict(per_shard) for _ in range(shards)
            )

    @property
    def registry(self) -> SnapshotRegistry:
        return self._registry

    # -- internals -----------------------------------------------------------

    def _pin(self, version: object | None) -> PslSnapshot:
        """The snapshot a request should answer from, grabbed once."""
        if version is None:
            return self._registry.active
        return self._registry.resident(version)

    def _match(self, snapshot: PslSnapshot, hostname: str) -> tuple[SuffixMatch, str, bool]:
        """Cached lookup; returns (match, normalized name, was cached)."""
        name = normalize_or_reject(hostname)
        if not self._shards:
            return snapshot.match(name), name, False
        key = (snapshot.fingerprint, name)
        shard = self._shards[hash(key) % len(self._shards)]
        match = shard.get(key)
        if match is not None:
            return match, name, True
        match = snapshot.match(name)
        shard.put(key, match)
        return match, name, False

    def _answer(self, snapshot: PslSnapshot, hostname: str) -> SiteAnswer:
        match, name, cached = self._match(snapshot, hostname)
        return SiteAnswer(
            hostname=match.hostname,
            site=match.site,
            public_suffix=match.public_suffix,
            registrable_domain=match.registrable_domain,
            is_public_suffix=match.registrable_domain is None,
            version_index=snapshot.index,
            version_date=snapshot.date,
            cached=cached,
        )

    # -- the query surface ---------------------------------------------------

    def site(self, hostname: str, *, version: object | None = None) -> SiteAnswer:
        """The privacy boundary of one hostname under one version."""
        return self._answer(self._pin(version), hostname)

    def batch(
        self, hostnames: Sequence[str] | Iterable[str], *, version: object | None = None
    ) -> BatchAnswer:
        """Many hostnames under ONE snapshot, pinned for the whole batch.

        Malformed entries become :class:`BatchItemError` rows in place;
        one bad hostname must never sink the other thousand.
        """
        snapshot = self._pin(version)
        answers: list[SiteAnswer | BatchItemError] = []
        for hostname in hostnames:
            try:
                answers.append(self._answer(snapshot, hostname))
            except HostnameError as exc:
                answers.append(BatchItemError(hostname=str(exc.value), reason=exc.reason))
        return BatchAnswer(
            version_index=snapshot.index,
            version_date=snapshot.date,
            answers=tuple(answers),
        )

    def classify(
        self, page_host: str, request_host: str, *, version: object | None = None
    ) -> ClassifyAnswer:
        """Third-party check: do page and request cross a site boundary?

        Both lookups are pinned to one snapshot — a swap between the
        two would manufacture phantom third-party verdicts.
        """
        snapshot = self._pin(version)
        page = self._answer(snapshot, page_host)
        request = self._answer(snapshot, request_host)
        return ClassifyAnswer(page=page, request=request, third_party=page.site != request.site)

    def compare(
        self, hostname: str, old: object, new: object | None = None
    ) -> CompareAnswer:
        """One hostname's site under two versions (``new`` defaults latest).

        The per-hostname misclassification probe: with ``new`` left at
        the default this is the serving-side twin of the sweep's
        ``diff_vs_latest`` membership test in
        :mod:`repro.analysis.boundaries`.
        """
        old_snapshot = self._registry.resident(old)
        new_snapshot = self._registry.resident("latest" if new is None else new)
        return CompareAnswer(
            hostname=normalize_or_reject(hostname),
            old=self._answer(old_snapshot, hostname),
            new=self._answer(new_snapshot, hostname),
        )

    # -- introspection -------------------------------------------------------

    def stats(self) -> EngineStats:
        """Exact (lock-consistent per shard) cache statistics."""
        hits = misses = entries = capacity = 0
        for shard in self._shards:
            hits += shard.hits
            misses += shard.misses
            entries += len(shard)
            capacity += shard.capacity
        return EngineStats(
            hits=hits,
            misses=misses,
            entries=entries,
            capacity=capacity,
            shards=len(self._shards),
        )

    def clear_cache(self) -> None:
        """Drop every cached match (statistics reset too)."""
        for shard in self._shards:
            shard.clear()
