"""The pre-fork multi-worker front-end with fleet-wide epoch hot-swap.

Scaling past the GIL means processes, and processes mean coordination.
This module supplies both halves:

* :class:`FleetSupervisor` — binds one port, forks ``N`` worker
  processes that each run the threaded HTTP adapter over the *same*
  request core logic (:mod:`repro.serve.core`), supervises them
  (crash → respawn under a bounded restart budget), owns the update
  watcher, and drains the whole fleet on SIGTERM.  Workers either bind
  the port themselves with ``SO_REUSEPORT`` (the kernel load-balances
  accepts across processes) or, where that option is unavailable,
  inherit the supervisor's already-listening socket across the fork
  (the parent-fd fallback).

* :class:`EpochBus` — a tiny file-based coordination substrate: an
  append-only ``events.jsonl`` of swap/ingest events, an atomically
  replaced ``EPOCH`` pointer, per-event packed blobs, and per-worker
  heartbeat files.  Publishes serialize on an ``flock``; readers never
  lock.  A ``/swap`` on *any* worker becomes one atomic epoch bump
  that every worker observes within its poll interval, and the
  supervisor's watcher publishes validated new versions the same way
  — so the fleet answers queries from one coherent PSL version, which
  is the whole point of a service built around the paper's
  which-version-answered harm model.

Memory stays ~1× the packed buffer: every worker is forked from the
supervisor after the snapshot buffer exists, so an ``mmap``-loaded
``PSLPAK1`` blob is OS-page-shared outright and an in-heap buffer is
shared copy-on-write (and never written).

Nothing here runs on platforms without ``os.fork``; the single-process
server in :mod:`repro.serve.http` is unaffected.
"""

from __future__ import annotations

import datetime
import json
import os
import signal
import socket
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.update.upstream import SyntheticUpstream
    from repro.update.watcher import WatcherConfig

from repro.history.store import VersionStore
from repro.psl.diff import RuleDelta
from repro.psl.packed import PackedHistory
from repro.serve.core import DEFAULT_MAX_INFLIGHT, Reject, RequestCore
from repro.serve.engine import DEFAULT_CACHE_CAPACITY, DEFAULT_SHARDS, QueryEngine
from repro.serve.http import PslServer, serve_forever
from repro.serve.metrics import MetricsRegistry
from repro.serve.snapshots import PslSnapshot, SnapshotRegistry

__all__ = [
    "BusEpochs",
    "EpochBus",
    "FleetConfig",
    "FleetSupervisor",
    "PublishingRegistry",
    "fork_available",
    "reuseport_available",
]


def fork_available() -> bool:
    """Whether this platform can run a pre-fork fleet at all."""
    return hasattr(os, "fork")


def reuseport_available() -> bool:
    """Whether workers can each bind the port (vs the parent-fd path)."""
    return hasattr(socket, "SO_REUSEPORT")


# ---------------------------------------------------------------------------
# The epoch bus
# ---------------------------------------------------------------------------

class EpochBus:
    """File-based fleet coordination: epoch pointer + event journal.

    Layout under ``root``::

        EPOCH          current epoch as decimal text (atomic replace)
        events.jsonl   one JSON event per line, appended under LOCK
        LOCK           flock target serializing publishes
        blobs/         per-ingest packed single-version buffers
        workers/       per-worker heartbeat JSON (atomic replace)

    Publish protocol: take the flock, write the blob (if any), append
    the event line (fsync), then atomically replace ``EPOCH``.  A
    reader that observes ``EPOCH == n`` is therefore guaranteed the
    journal already contains every event up to ``n`` — no reader ever
    locks.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        os.makedirs(self.blob_dir, exist_ok=True)
        os.makedirs(self.worker_dir, exist_ok=True)
        self._epoch_path = os.path.join(root, "EPOCH")
        self._events_path = os.path.join(root, "events.jsonl")
        self._lock_path = os.path.join(root, "LOCK")
        # Read cursor: byte offset just past the last journal line this
        # process has fully consumed, and the epoch of that line.  Keeps
        # the steady-state poll O(new events) instead of O(journal).
        self._cursor_lock = threading.Lock()
        self._cursor_epoch = 0
        self._cursor_pos = 0
        if not os.path.exists(self._epoch_path):
            self._write_epoch(0)

    @property
    def blob_dir(self) -> str:
        return os.path.join(self.root, "blobs")

    @property
    def worker_dir(self) -> str:
        return os.path.join(self.root, "workers")

    # -- low-level plumbing --------------------------------------------------

    def _write_epoch(self, epoch: int) -> None:
        tmp = self._epoch_path + ".tmp"
        with open(tmp, "w", encoding="ascii") as handle:
            handle.write(str(epoch))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self._epoch_path)

    def current_epoch(self) -> int:
        try:
            with open(self._epoch_path, "r", encoding="ascii") as handle:
                return int(handle.read().strip() or "0")
        except (FileNotFoundError, ValueError):
            return 0

    def _publish(self, event: dict, blob: bytes | None = None) -> int:
        import fcntl  # POSIX-only, like the fork-based fleet itself

        with open(self._lock_path, "a+") as lock:
            fcntl.flock(lock.fileno(), fcntl.LOCK_EX)
            epoch = self.current_epoch() + 1
            event = dict(event, epoch=epoch)
            if blob is not None:
                blob_name = f"{epoch}.bin"
                blob_tmp = os.path.join(self.blob_dir, blob_name + ".tmp")
                with open(blob_tmp, "wb") as handle:
                    handle.write(blob)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(blob_tmp, os.path.join(self.blob_dir, blob_name))
                event["blob"] = blob_name
            with open(self._events_path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(event, sort_keys=True) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            self._write_epoch(epoch)
            return epoch

    # -- the event vocabulary ------------------------------------------------

    def publish_swap(self, index: int) -> int:
        """An operator swap: every worker activates version ``index``."""
        return self._publish({"kind": "swap", "index": int(index)})

    def publish_ingest(
        self,
        *,
        index: int,
        date: datetime.date,
        patch: str,
        message: str,
        fingerprint: str,
        activate: bool,
        blob: bytes | None,
    ) -> int:
        """A validated new version: workers append it to their history."""
        return self._publish(
            {
                "kind": "ingest",
                "index": int(index),
                "date": date.isoformat(),
                "patch": patch,
                "message": message,
                "fingerprint": fingerprint,
                "activate": bool(activate),
            },
            blob=blob,
        )

    def events_since(self, epoch: int) -> list[dict]:
        """Every published event with epoch strictly greater than ``epoch``.

        Reads up to the *currently published* epoch only, so a publish
        racing this read can never surface a half-written line.  The
        journal is append-only and epoch-ordered (publishes serialize on
        the flock), so this process remembers the byte offset of the last
        line it consumed and resumes there — each poll pays for the new
        events, not the whole journal.  A caller asking about an epoch
        older than the cursor (e.g. a fresh registry replaying from zero)
        falls back to a full scan.
        """
        published = self.current_epoch()
        if published <= epoch:
            return []
        with self._cursor_lock:
            start_epoch, start_pos = self._cursor_epoch, self._cursor_pos
        if epoch < start_epoch:
            start_epoch, start_pos = 0, 0  # caller is behind the cursor
        events: list[dict] = []
        seen_epoch, pos = start_epoch, start_pos
        try:
            with open(self._events_path, "r", encoding="utf-8") as handle:
                handle.seek(start_pos)
                while True:
                    line = handle.readline()
                    if not line or not line.endswith("\n"):
                        break  # EOF, or a torn tail mid-append: stop before it
                    stripped = line.strip()
                    if stripped:
                        event = json.loads(stripped)
                        if event["epoch"] > published:
                            break  # past the published fence; reread next poll
                        if event["epoch"] > epoch:
                            events.append(event)
                        seen_epoch = event["epoch"]
                    pos = handle.tell()
        except FileNotFoundError:
            return []
        with self._cursor_lock:
            if seen_epoch > self._cursor_epoch:
                self._cursor_epoch, self._cursor_pos = seen_epoch, pos
        return events

    def read_blob(self, name: str) -> bytes:
        with open(os.path.join(self.blob_dir, name), "rb") as handle:
            return handle.read()

    # -- heartbeats ----------------------------------------------------------

    def write_heartbeat(self, worker_id: int, payload: dict) -> None:
        path = os.path.join(self.worker_dir, f"{worker_id}.json")
        # The tmp name must be unique per *call*, not just per process:
        # a worker's beat thread and its final main-thread heartbeat can
        # overlap, and two calls sharing one tmp path race each other's
        # os.replace into FileNotFoundError.
        tmp = f"{path}.{os.getpid()}.{threading.get_ident()}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp, path)

    def read_heartbeats(self) -> list[dict]:
        rows: list[dict] = []
        try:
            names = sorted(os.listdir(self.worker_dir))
        except FileNotFoundError:
            return rows
        for name in names:
            if not name.endswith(".json"):
                continue
            try:
                with open(os.path.join(self.worker_dir, name), "r", encoding="utf-8") as handle:
                    rows.append(json.load(handle))
            except (OSError, ValueError):  # torn or vanished: skip this scrape
                continue
        return rows

    def clear_heartbeat(self, worker_id: int) -> None:
        try:
            os.unlink(os.path.join(self.worker_dir, f"{worker_id}.json"))
        except FileNotFoundError:
            pass


def apply_event(registry: SnapshotRegistry, bus: EpochBus, event: dict) -> None:
    """Apply one published event to a worker's registry, idempotently.

    ``swap`` events always activate (activation of the current version
    is a no-op).  ``ingest`` events append exactly once: a worker
    forked *after* the supervisor already held the version (or one
    replaying the journal from epoch zero) skips the append and only
    honours the activation — so replay from any fork point converges
    on the same registry state.
    """
    kind = event["kind"]
    if kind == "swap":
        registry.activate(event["index"])
        return
    if kind != "ingest":  # unknown kinds are skipped, never fatal
        return
    index = int(event["index"])
    if index < len(registry.store):
        if event.get("activate", True):
            registry.activate(index)
        return
    if index > len(registry.store):
        raise RuntimeError(
            f"epoch bus gap: event ingests v{index} but local history ends at "
            f"v{len(registry.store) - 1}"
        )
    delta = RuleDelta.from_patch(event["patch"])
    blob = bus.read_blob(event["blob"]) if event.get("blob") else None
    registry.ingest(
        datetime.date.fromisoformat(event["date"]),
        delta,
        message=event.get("message", ""),
        packed_blob=blob,
        expected_fingerprint=event.get("fingerprint") or None,
        activate=bool(event.get("activate", True)),
    )


class BusEpochs:
    """A worker's epoch coordinator: follow the bus, publish swaps.

    Implements the :class:`~repro.serve.core.LocalEpochs` interface —
    the core calls :meth:`swap` for ``/swap`` and :meth:`epoch` for
    ``/healthz`` — but both sides route through the shared bus, which
    is what turns a swap on one worker into a fleet-wide epoch bump.
    """

    def __init__(
        self,
        registry: SnapshotRegistry,
        bus: EpochBus,
        *,
        on_apply: Callable[[int], None] | None = None,
    ) -> None:
        self._registry = registry
        self._bus = bus
        self._applied = 0
        self._lock = threading.Lock()
        self._on_apply = on_apply
        self._last_error: str | None = None

    @property
    def last_error(self) -> str | None:
        """The most recent event-apply failure (sticky until the next success)."""
        return self._last_error

    def epoch(self) -> int:
        return self._applied

    def published(self) -> int:
        return self._bus.current_epoch()

    def catch_up(self) -> int:
        """Apply every event this process has not applied yet.

        A failing event (e.g. a blob deleted out from under us) leaves
        the registry on its last-good version — the same containment
        contract the watcher's ingest path has — and is retried on the
        next poll rather than crashing the worker.
        """
        with self._lock:
            for event in self._bus.events_since(self._applied):
                try:
                    apply_event(self._registry, self._bus, event)
                except Exception as exc:
                    self._last_error = f"epoch {event.get('epoch')}: {exc!r}"
                    break
                self._applied = event["epoch"]
                self._last_error = None
                if self._on_apply is not None:
                    self._on_apply(self._applied)
            return self._applied

    def swap(self, spec: object) -> tuple[PslSnapshot, int]:
        """Resolve locally, publish fleet-wide, apply, answer.

        The spec is resolved to a concrete index *before* publishing so
        every worker activates the same version even if ``"latest"``
        would resolve differently mid-ingest on some of them.

        The swap is only reported as successful once this worker has
        *applied* it: if an earlier pending event fails to apply (e.g. a
        missing blob), :meth:`catch_up` stops before the swap and this
        worker is still serving the old version — answering 200 with the
        target version would be a lie, so the request fails instead and
        the published swap is retried by the poll loop.
        """
        index = self._registry.resolve(spec)
        epoch = self._bus.publish_swap(index)
        applied = self.catch_up()
        if applied < epoch:
            raise Reject(
                503,
                "swap_not_applied",
                {
                    "epoch": epoch,
                    "applied": applied,
                    "detail": self._last_error or "pending events not yet applied",
                },
            )
        return self._registry.resident(index), epoch

    def describe(self) -> dict:
        return {
            "mode": "fleet",
            "epoch": self.epoch(),
            "published": self.published(),
        }


class PublishingRegistry(SnapshotRegistry):
    """The supervisor's registry: every successful ingest hits the bus.

    The update watcher validates and ingests exactly as in the
    single-process tier; this subclass adds one post-commit step —
    publishing the validated delta (and its packed blob) as an epoch
    event so every worker replays the same ingest.  Rejections raise
    before ``super().ingest`` returns and therefore never publish.
    """

    def __init__(self, store: VersionStore, bus: EpochBus, **kwargs) -> None:
        super().__init__(store, **kwargs)
        self._bus = bus

    def ingest(
        self,
        date: datetime.date,
        delta: RuleDelta,
        *,
        message: str = "",
        packed_blob: bytes | None = None,
        expected_fingerprint: str | None = None,
        activate: bool = True,
    ) -> PslSnapshot:
        snapshot = super().ingest(
            date,
            delta,
            message=message,
            packed_blob=packed_blob,
            expected_fingerprint=expected_fingerprint,
            activate=activate,
        )
        self._bus.publish_ingest(
            index=snapshot.index,
            date=date,
            patch=delta.to_patch(),
            message=message,
            fingerprint=expected_fingerprint or snapshot.fingerprint,
            activate=activate,
            blob=bytes(packed_blob) if packed_blob is not None else None,
        )
        return snapshot


# ---------------------------------------------------------------------------
# Fleet configuration and views
# ---------------------------------------------------------------------------

@dataclass(slots=True)
class FleetConfig:
    """Everything a fleet needs beyond the world itself."""

    workers: int = 2
    host: str = "127.0.0.1"
    port: int = 0
    version: object = "latest"
    resident_capacity: int = 4
    cache_capacity: int = DEFAULT_CACHE_CAPACITY
    shards: int = DEFAULT_SHARDS
    max_inflight: int = DEFAULT_MAX_INFLIGHT
    request_timeout: float | None = 30.0
    drain_deadline: float = 10.0
    #: ``None`` = use ``SO_REUSEPORT`` when the platform has it.
    reuse_port: bool | None = None
    #: Total respawns allowed across the fleet's lifetime; crossing it
    #: stops respawning (a crash loop must not fork-bomb the host).
    restart_budget: int = 16
    heartbeat_interval: float = 0.25
    #: How often each worker polls the bus for new epochs.
    poll_interval: float = 0.05
    run_dir: str | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be positive")
        if self.restart_budget < 0:
            raise ValueError("restart_budget must be non-negative")


#: A heartbeat this much older than ``heartbeat_interval`` x this
#: factor is considered stale (worker wedged or gone).
HEARTBEAT_STALE_FACTOR = 8.0


def fleet_view(bus: EpochBus, *, expected_workers: int, stale_after: float) -> dict:
    """One coherent fleet snapshot (the ``/healthz`` ``fleet`` block).

    ``agreement`` is the operator's one-glance answer to "did the last
    swap land everywhere": every expected worker has a fresh heartbeat
    *and* reports the published epoch.
    """
    published = bus.current_epoch()
    now = time.time()
    rows = []
    fresh_agreeing = 0
    for beat in bus.read_heartbeats():
        age = max(0.0, now - float(beat.get("updated_at", 0.0)))
        fresh = age <= stale_after
        row = {
            "worker": beat.get("worker"),
            "pid": beat.get("pid"),
            "epoch": beat.get("epoch"),
            "active_index": beat.get("active_index"),
            "requests_total": beat.get("requests_total"),
            "heartbeat_age_seconds": round(age, 3),
            "fresh": fresh,
        }
        if beat.get("error"):
            row["error"] = beat["error"]
        rows.append(row)
        if fresh and beat.get("epoch") == published:
            fresh_agreeing += 1
    return {
        "published_epoch": published,
        "expected_workers": expected_workers,
        "reporting": len(rows),
        "agreement": fresh_agreeing >= expected_workers,
        "workers": rows,
    }


def install_fleet_metrics(
    metrics: MetricsRegistry,
    bus: EpochBus,
    *,
    expected_workers: int,
    stale_after: float,
) -> None:
    """Fleet-wide gauges on a worker's ``/metrics``.

    Counters cannot be summed exactly across processes without a
    shared-memory mmap; instead every worker exposes the whole fleet's
    per-worker totals label-tagged (``worker="0"`` ...), sampled from
    heartbeat files at scrape time — any single scrape therefore sees
    the aggregate, one label-sum away.
    """
    view = lambda: fleet_view(
        bus, expected_workers=expected_workers, stale_after=stale_after
    )
    metrics.callback_gauge(
        "psl_fleet_published_epoch",
        "Epoch most recently published on the fleet bus.",
        lambda: bus.current_epoch(),
    )
    metrics.callback_gauge(
        "psl_fleet_expected_workers",
        "Workers the supervisor is meant to keep alive.",
        lambda: expected_workers,
    )
    metrics.callback_gauge(
        "psl_fleet_workers_reporting",
        "Workers with a heartbeat file present.",
        lambda: view()["reporting"],
    )
    metrics.callback_gauge(
        "psl_fleet_epoch_agreement",
        "1 when every expected worker reports the published epoch (fresh heartbeat).",
        lambda: 1.0 if view()["agreement"] else 0.0,
    )
    metrics.multi_callback_gauge(
        "psl_fleet_worker_epoch",
        "Per worker: the epoch that worker has applied.",
        ("worker",),
        lambda: {
            str(row["worker"]): float(row["epoch"] or 0)
            for row in view()["workers"]
        },
    )
    metrics.multi_callback_gauge(
        "psl_fleet_worker_requests_total",
        "Per worker: requests handled (from the worker's heartbeat).",
        ("worker",),
        lambda: {
            str(row["worker"]): float(row["requests_total"] or 0)
            for row in view()["workers"]
        },
    )


# ---------------------------------------------------------------------------
# Worker process body
# ---------------------------------------------------------------------------

def _worker_body(
    worker_id: int,
    store: VersionStore,
    packed: PackedHistory | None,
    bus: EpochBus,
    config: FleetConfig,
    port: int,
    listen_socket: socket.socket | None,
    quiet: bool,
) -> int:
    """Everything one forked worker does; returns its exit code."""
    # Catch SIGTERM/SIGINT from the first instruction: a drain issued
    # while this worker is still building its registry must read as a
    # clean stop, not death-by-default-action.  serve_forever() later
    # installs its own handlers over these, sharing the same event.
    terminate = threading.Event()

    def _request_stop(signum: int, frame: object) -> None:  # pragma: no cover - signal path
        terminate.set()

    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, _request_stop)

    registry = SnapshotRegistry(
        store,
        active=config.version,
        resident_capacity=config.resident_capacity,
        packed=packed,
    )
    engine = QueryEngine(
        registry, cache_capacity=config.cache_capacity, shards=config.shards
    )
    epochs = BusEpochs(registry, bus)
    stale_after = max(2.0, config.heartbeat_interval * HEARTBEAT_STALE_FACTOR)
    core = RequestCore(
        registry,
        engine=engine,
        max_inflight=config.max_inflight,
        epochs=epochs,
        worker_id=worker_id,
        fleet_view=lambda: fleet_view(
            bus, expected_workers=config.workers, stale_after=stale_after
        ),
    )
    install_fleet_metrics(
        core.metrics, bus, expected_workers=config.workers, stale_after=stale_after
    )
    epochs.catch_up()  # events published before this worker was born

    server = PslServer(
        (config.host, port),
        registry,
        core=core,
        request_timeout=config.request_timeout,
        quiet=quiet,
        reuse_port=listen_socket is None,
        listen_socket=listen_socket,
    )

    stop = threading.Event()

    def heartbeat() -> None:
        bus.write_heartbeat(
            worker_id,
            {
                "worker": worker_id,
                "pid": os.getpid(),
                "epoch": epochs.epoch(),
                "active_index": registry.active.index,
                "generation": registry.generation,
                "requests_total": core.requests_total.total(),
                "lookups_total": core.lookups_total.total(),
                "rejected_total": core.rejected_total.total(),
                "draining": core.draining,
                "error": epochs.last_error,
                "updated_at": time.time(),
            },
        )

    def follow() -> None:
        while not stop.wait(config.poll_interval):
            before = epochs.epoch()
            if epochs.catch_up() != before or epochs.last_error:
                heartbeat()  # publish the new epoch immediately

    def beat() -> None:
        while not stop.wait(config.heartbeat_interval):
            heartbeat()

    heartbeat()
    threading.Thread(target=follow, name="epoch-follower", daemon=True).start()
    threading.Thread(target=beat, name="fleet-heartbeat", daemon=True).start()

    drained = serve_forever(
        server, drain_deadline=config.drain_deadline, stop_event=terminate
    )
    stop.set()
    heartbeat()  # final state: draining=True, last counters
    return 0 if drained else 1


def _run_worker(*args, **kwargs) -> "NoReturn":  # type: ignore[name-defined]
    """The post-fork trampoline: never returns, never runs atexit."""
    code = 1
    try:
        code = _worker_body(*args, **kwargs)
    except BaseException:  # pragma: no cover - crash path
        try:
            import traceback

            traceback.print_exc()
        except Exception:
            pass
    finally:
        try:
            sys.stdout.flush()
            sys.stderr.flush()
        except Exception:
            pass
        os._exit(code)


# ---------------------------------------------------------------------------
# The supervisor
# ---------------------------------------------------------------------------

@dataclass(slots=True)
class _WorkerSlot:
    worker_id: int
    pid: int = 0
    alive: bool = False


class FleetSupervisor:
    """Forks, supervises, and drains a fleet of serving workers.

    The supervisor serves no traffic itself.  It owns: the port (a
    bound placeholder in ``SO_REUSEPORT`` mode, the listening socket in
    parent-fd mode), the epoch bus, worker lifecycles (respawn on crash
    within :attr:`FleetConfig.restart_budget`), and — when an upstream
    is given — the *only* update watcher in the fleet, whose validated
    ingests reach workers as epoch events via
    :class:`PublishingRegistry`.
    """

    def __init__(
        self,
        store: VersionStore,
        *,
        config: FleetConfig | None = None,
        packed: PackedHistory | None = None,
        upstream: "SyntheticUpstream | None" = None,
        watcher_config: "WatcherConfig | None" = None,
        quiet: bool = True,
    ) -> None:
        if not fork_available():  # pragma: no cover - platform guard
            raise OSError("the pre-fork fleet requires os.fork (POSIX)")
        self.config = config if config is not None else FleetConfig()
        self._store = store
        self._packed = packed
        self._upstream = upstream
        self._watcher_config = watcher_config
        self._quiet = quiet
        self.bus: EpochBus | None = None
        self.watcher = None  # type: ignore[assignment]
        self.port: int | None = None
        self.respawns = 0
        self.restart_budget_exhausted = False
        self._slots: list[_WorkerSlot] = []
        self._placeholder: socket.socket | None = None
        self._listener: socket.socket | None = None
        self._reuse_port = (
            self.config.reuse_port
            if self.config.reuse_port is not None
            else reuseport_available()
        )
        self._own_run_dir: str | None = None
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._draining = False
        self._supervision: threading.Thread | None = None
        self._started = False
        self._closed = False

    # -- addressing ----------------------------------------------------------

    @property
    def url(self) -> str:
        if self.port is None:
            raise RuntimeError("fleet not started")
        return f"http://{self.config.host}:{self.port}"

    @property
    def reuse_port(self) -> bool:
        """True when workers share the port via ``SO_REUSEPORT``."""
        return self._reuse_port

    def alive_pids(self) -> tuple[int, ...]:
        with self._lock:
            return tuple(slot.pid for slot in self._slots if slot.alive)

    def heartbeats(self) -> list[dict]:
        if self.bus is None:
            return []
        return self.bus.read_heartbeats()

    def view(self) -> dict:
        """The same fleet snapshot workers serve on ``/healthz``."""
        if self.bus is None:
            return {"published_epoch": 0, "workers": [], "agreement": False}
        stale_after = max(
            2.0, self.config.heartbeat_interval * HEARTBEAT_STALE_FACTOR
        )
        return fleet_view(
            self.bus, expected_workers=self.config.workers, stale_after=stale_after
        )

    # -- socket strategy -----------------------------------------------------

    def _claim_port(self) -> None:
        """Bind the port once, pre-fork, whichever strategy applies.

        ``SO_REUSEPORT`` mode keeps a bound-but-never-listening
        placeholder for the fleet's lifetime: it pins the (possibly
        ephemeral) port so respawned workers can always rebind it, and
        because it never listens the kernel routes no connections to
        it.  Parent-fd mode binds *and listens* here; workers accept on
        the inherited fd.
        """
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if self._reuse_port:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            sock.bind((self.config.host, self.config.port))
            self._placeholder = sock
        else:
            sock.bind((self.config.host, self.config.port))
            sock.listen(128)
            self._listener = sock
        self.port = sock.getsockname()[1]

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Bind, fork the fleet, start supervision (and the watcher)."""
        if self._started:
            raise RuntimeError("fleet already started")
        self._started = True
        if self.config.run_dir is None:
            self._own_run_dir = tempfile.mkdtemp(prefix="psl-fleet-")
            run_dir = self._own_run_dir
        else:
            run_dir = self.config.run_dir
        self.bus = EpochBus(run_dir)
        self._claim_port()
        self._slots = [_WorkerSlot(worker_id=i) for i in range(self.config.workers)]
        for slot in self._slots:
            self._spawn(slot)
        self._supervision = threading.Thread(
            target=self._supervise, name="fleet-supervisor", daemon=True
        )
        self._supervision.start()
        if self._upstream is not None:
            self._start_watcher()

    def _start_watcher(self) -> None:
        """The fleet's single watcher, over a private store clone.

        The clone matters: the supervisor's registry appends ingested
        versions to *its* history, while the base store stays frozen as
        the fork image — so a worker respawned later still starts from
        the pristine prefix and replays the bus to converge.
        """
        from repro.update.watcher import Watcher, WatcherConfig

        clone = VersionStore()
        for version in self._store.versions:
            clone.commit(version.date, version.delta, message=version.message)
        registry = PublishingRegistry(clone, self.bus, resident_capacity=2)
        self.watcher = Watcher(
            registry,
            self._upstream,
            config=self._watcher_config
            if self._watcher_config is not None
            else WatcherConfig(),
        )
        self.watcher.start()

    def _spawn(self, slot: _WorkerSlot) -> None:
        pid = os.fork()
        if pid == 0:
            # Child: shed supervisor-side state it must not touch.
            try:
                if self._placeholder is not None:
                    self._placeholder.close()
                for signum in (signal.SIGTERM, signal.SIGINT):
                    signal.signal(signum, signal.SIG_DFL)
            except Exception:
                pass
            _run_worker(
                slot.worker_id,
                self._store,
                self._packed,
                self.bus,
                self.config,
                self.port,
                self._listener,
                self._quiet,
            )
            raise AssertionError("unreachable")  # pragma: no cover
        slot.pid = pid
        slot.alive = True

    def _supervise(self) -> None:
        """Reap exited workers; respawn within the restart budget."""
        while not self._stop.wait(0.05):
            self.supervise_once()

    def supervise_once(self) -> None:
        """One reap-and-respawn pass (exposed for deterministic tests)."""
        with self._lock:
            for slot in self._slots:
                if not slot.alive:
                    continue
                try:
                    pid, status = os.waitpid(slot.pid, os.WNOHANG)
                except ChildProcessError:
                    pid, status = slot.pid, -1
                if pid == 0:
                    continue
                slot.alive = False
                if self.bus is not None:
                    self.bus.clear_heartbeat(slot.worker_id)
                if self._draining:
                    continue
                if self.respawns >= self.config.restart_budget:
                    self.restart_budget_exhausted = True
                    continue
                self.respawns += 1
                self._spawn(slot)

    def run(self) -> bool:
        """Block until SIGTERM/SIGINT, then drain the fleet.

        The supervisor's signal story mirrors the single-process
        server's: handlers only set an event; the drain runs on the
        main thread.
        """
        if not self._started:
            self.start()
        stop = threading.Event()

        def request_stop(signum: int, frame: object) -> None:  # pragma: no cover
            stop.set()

        previous: dict[int, object] = {}
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                previous[signum] = signal.signal(signum, request_stop)
            except (ValueError, OSError):  # pragma: no cover - non-main thread
                pass
        try:
            while not stop.wait(0.2):
                if self.restart_budget_exhausted and not self.alive_pids():
                    # Crash loop burned the budget and nobody serves:
                    # exit instead of pretending the fleet is up.
                    break
        except KeyboardInterrupt:  # pragma: no cover - interactive path
            pass
        drained = self.drain()
        for signum, handler in previous.items():
            try:
                signal.signal(signum, handler)  # type: ignore[arg-type]
            except (ValueError, OSError):  # pragma: no cover
                pass
        return drained

    def drain(self, *, deadline: float | None = None) -> bool:
        """Gracefully stop every worker, then the watcher and sockets.

        SIGTERM fans out to the fleet (each worker runs its own
        in-process drain: healthz flips to draining, in-flight requests
        finish), the supervisor waits out ``deadline``, and anything
        still alive is SIGKILLed — a bounded, operator-predictable
        stop.  Returns True when every worker exited cleanly by itself.
        """
        if self._closed:
            return True
        self._draining = True
        # Stop the supervision loop *first* so it cannot race this
        # method for the children's exit statuses (whoever reaps first
        # consumes the status; drain needs it for the clean verdict).
        self._stop.set()
        if self._supervision is not None:
            self._supervision.join(timeout=5)
        if deadline is None:
            deadline = self.config.drain_deadline + 5.0
        if self.watcher is not None:
            self.watcher.request_stop()
        with self._lock:
            targets = [slot for slot in self._slots if slot.alive]
        for slot in targets:
            try:
                os.kill(slot.pid, signal.SIGTERM)
            except ProcessLookupError:
                slot.alive = False
        limit = time.monotonic() + deadline
        clean = True
        for slot in targets:
            while slot.alive:
                try:
                    pid, status = os.waitpid(slot.pid, os.WNOHANG)
                except ChildProcessError:
                    break
                if pid != 0:
                    if os.waitstatus_to_exitcode(status) != 0:
                        clean = False
                    break
                if time.monotonic() >= limit:
                    clean = False
                    try:
                        os.kill(slot.pid, signal.SIGKILL)
                        os.waitpid(slot.pid, 0)
                    except (ProcessLookupError, ChildProcessError):
                        pass
                    break
                time.sleep(0.02)
            slot.alive = False
        if self.watcher is not None:
            clean = self.watcher.stop(timeout=5.0) and clean
        for sock in (self._placeholder, self._listener):
            if sock is not None:
                try:
                    sock.close()
                except OSError:  # pragma: no cover
                    pass
        self._placeholder = None
        self._listener = None
        self._closed = True
        return clean

    # Context-manager sugar for tests and examples.
    def __enter__(self) -> "FleetSupervisor":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.drain()
