"""The HTTP front end: stdlib threading server over the query engine.

One :class:`PslServer` (a ``ThreadingHTTPServer``) owns a
:class:`~repro.serve.snapshots.SnapshotRegistry`, a
:class:`~repro.serve.engine.QueryEngine`, and a
:class:`~repro.serve.metrics.MetricsRegistry`, and exposes:

=================  ======  ===================================================
``/site``          GET     ``?host=H[&version=V]`` — one lookup
``/batch``         POST    ``{"hostnames": [...]}`` — many, snapshot-pinned
``/classify``      GET     ``?page=P&request=R`` — third-party verdict
``/compare``       GET     ``?host=H&old=V[&new=V2]`` — cross-version probe
``/versions``      GET     history + registry state (``?limit=N``)
``/swap``          POST    ``?version=V`` — atomic hot-swap
``/healthz``       GET     liveness + active version
``/metrics``       GET     Prometheus text exposition
=================  ======  ===================================================

Graceful degradation is a design rule, not an accident:

* **bounded in-flight work** — a non-blocking semaphore admits at most
  ``max_inflight`` concurrent requests; excess load is shed instantly
  with a 503 (and counted) instead of queueing into collapse.
  ``/healthz`` and ``/metrics`` bypass the gate so the service stays
  observable *while* overloaded.
* **malformed input** — hostnames are vetted by
  :func:`repro.net.hostname.normalize_or_reject`; rejection is a
  structured 400 carrying the machine-readable reason, never a stack
  trace.
* **unknown versions** — 404 with the offending spec.
* **slow clients** — every accepted connection carries a per-socket
  timeout (``request_timeout``), so a slowloris-style peer that stalls
  mid-request is disconnected instead of pinning a handler thread
  forever.
* **shutdown** — :meth:`PslServer.drain` is the graceful path: flip
  ``/healthz`` to ``draining`` (503), stop the update watcher, stop
  accepting connections, let in-flight requests finish under a bounded
  deadline, then close.  :func:`serve_forever` wires SIGTERM/SIGINT to
  it.
* **anything else** — a 500 with an opaque body; the handler never
  lets an exception reach the socket layer, so one poisoned request
  cannot take a worker thread down.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any
from urllib.parse import parse_qs, urlsplit

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (update -> serve)
    from repro.update.watcher import Watcher

from repro.net.errors import HostnameError
from repro.serve.engine import QueryEngine
from repro.serve.metrics import MetricsRegistry
from repro.serve.snapshots import SnapshotRegistry, UnknownVersionError

DEFAULT_MAX_INFLIGHT = 64
#: Per-connection socket timeout (seconds): how long a peer may stall
#: between bytes before the handler thread abandons the connection.
DEFAULT_REQUEST_TIMEOUT = 30.0
#: How long :meth:`PslServer.drain` waits for in-flight requests.
DEFAULT_DRAIN_DEADLINE = 10.0
#: Request-body ceiling (bytes): a batch of ~100k hostnames fits; a
#: memory-exhaustion payload does not.
MAX_BODY_BYTES = 8 * 1024 * 1024
#: Per-request batch size ceiling; larger workloads should page.
MAX_BATCH_HOSTNAMES = 100_000


class _Reject(Exception):
    """Internal control flow: abort the request with (status, error body)."""

    def __init__(self, status: int, kind: str, detail: dict | None = None) -> None:
        self.status = status
        self.body = {"error": {"kind": kind, **(detail or {})}}
        super().__init__(kind)


class PslServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one registry + engine."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        registry: SnapshotRegistry,
        *,
        engine: QueryEngine | None = None,
        metrics: MetricsRegistry | None = None,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        request_timeout: float | None = DEFAULT_REQUEST_TIMEOUT,
        quiet: bool = True,
    ) -> None:
        super().__init__(address, _Handler)
        if max_inflight < 1:
            raise ValueError("max_inflight must be positive")
        if request_timeout is not None and request_timeout <= 0:
            raise ValueError("request_timeout must be positive when set")
        self.registry = registry
        self.engine = engine if engine is not None else QueryEngine(registry)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.gate = threading.Semaphore(max_inflight)
        self.max_inflight = max_inflight
        self.request_timeout = request_timeout
        self.quiet = quiet
        self.started_at = time.time()
        self.watcher: "Watcher | None" = None
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._draining = False
        self._drained = False
        self._drain_ok = True
        self._install_metrics()

    # -- metrics wiring ------------------------------------------------------

    def _install_metrics(self) -> None:
        metrics = self.metrics
        self.requests_total = metrics.counter(
            "psl_serve_requests_total",
            "Requests handled, by endpoint and status code.",
            ("endpoint", "status"),
        )
        self.rejected_total = metrics.counter(
            "psl_serve_rejected_total",
            "Requests shed by admission control (503, never processed).",
        )
        self.latency = metrics.histogram(
            "psl_serve_request_seconds",
            "Request wall time in seconds, by endpoint.",
            ("endpoint",),
        )
        self.lookups_total = metrics.counter(
            "psl_serve_hostname_lookups_total",
            "Individual hostname lookups performed (batch items count each).",
        )
        engine, registry = self.engine, self.registry
        metrics.callback_gauge(
            "psl_serve_cache_hits_total",
            "Suffix-match cache hits across every shard.",
            lambda: engine.stats().hits,
        )
        metrics.callback_gauge(
            "psl_serve_cache_misses_total",
            "Suffix-match cache misses across every shard.",
            lambda: engine.stats().misses,
        )
        metrics.callback_gauge(
            "psl_serve_cache_hit_ratio",
            "Cache hits / (hits + misses) since start.",
            lambda: engine.stats().hit_rate,
        )
        metrics.callback_gauge(
            "psl_serve_cache_entries",
            "Live suffix-match cache entries across every shard.",
            lambda: engine.stats().entries,
        )
        metrics.callback_gauge(
            "psl_serve_snapshot_index",
            "History index of the active snapshot.",
            lambda: registry.active.index,
        )
        metrics.callback_gauge(
            "psl_serve_snapshot_age_days",
            "Age of the active snapshot's list version in days (staleness).",
            lambda: registry.active.age_days(),
        )
        metrics.callback_gauge(
            "psl_serve_snapshot_rules",
            "Rule count of the active snapshot.",
            lambda: registry.active.rule_count,
        )
        metrics.callback_gauge(
            "psl_serve_snapshot_swaps_total",
            "Completed hot-swaps since start.",
            lambda: registry.generation,
        )
        metrics.callback_gauge(
            "psl_serve_resident_snapshots",
            "Snapshots currently materialized (active + compare residents).",
            lambda: len(registry.resident_indexes()),
        )
        metrics.callback_gauge(
            "psl_serve_inflight_requests",
            "Requests currently being processed.",
            lambda: self.inflight,
        )
        metrics.callback_gauge(
            "psl_serve_resident_packed_bytes",
            "Bytes of packed snapshot buffer resident (shared sections counted once).",
            lambda: registry.memory_accounting().packed_bytes,
        )
        metrics.callback_gauge(
            "psl_serve_resident_dict_bytes",
            "Measured heap bytes of resident dict-trie snapshots.",
            lambda: registry.memory_accounting().dict_bytes,
        )
        metrics.callback_gauge(
            "psl_serve_resident_dict_bytes_estimate",
            "What every resident version would cost as a dict trie (the packed-vs-dict baseline).",
            lambda: registry.memory_accounting().dict_bytes_estimate,
        )
        metrics.multi_callback_gauge(
            "psl_serve_snapshot_packed_mmap_shared",
            "Per resident version: 1 when served from an OS-shared packed mmap, 0 otherwise.",
            ("version",),
            lambda: {
                str(row["index"]): 1.0 if row["packed_mmap_shared"] else 0.0
                for row in registry.memory_accounting().versions
            },
        )

    def attach_watcher(self, watcher: "Watcher") -> None:
        """Bind an update watcher: SLO gauges + the ``/healthz`` block.

        The staleness SLO surface (ISSUE: age of active version,
        versions behind upstream, consecutive failed polls, health
        state) becomes scrapeable the moment a watcher is attached;
        :meth:`drain` then also owns stopping the watcher thread.
        """
        if self.watcher is not None:
            raise ValueError("a watcher is already attached")
        self.watcher = watcher
        metrics = self.metrics
        metrics.callback_gauge(
            "psl_serve_update_active_age_days",
            "Age in days of the active snapshot's list version (the staleness SLO).",
            lambda: watcher.status().active_age_days,
        )
        metrics.callback_gauge(
            "psl_serve_update_versions_behind",
            "Published upstream versions not yet ingested.",
            lambda: watcher.status().versions_behind,
        )
        metrics.callback_gauge(
            "psl_serve_update_failed_polls",
            "Consecutive upstream polls that failed (resets on success).",
            lambda: watcher.status().consecutive_failed_polls,
        )
        metrics.callback_gauge(
            "psl_serve_update_polls_total",
            "Upstream polls attempted since start.",
            lambda: watcher.status().polls,
        )
        metrics.callback_gauge(
            "psl_serve_update_accepted_total",
            "Versions ingested through the incremental patch path.",
            lambda: watcher.status().accepted,
        )
        metrics.callback_gauge(
            "psl_serve_update_resynced_total",
            "Versions ingested through the full-snapshot resync path.",
            lambda: watcher.status().resynced,
        )
        metrics.callback_gauge(
            "psl_serve_update_quarantined_total",
            "Upstream versions permanently skipped after failing validation.",
            lambda: watcher.status().quarantined,
        )
        from repro.update.slo import HEALTH_STATES  # local: avoid import cycle

        metrics.state_gauge(
            "psl_serve_update_health",
            "Update-loop health (one-hot): fresh, stale, or degraded.",
            HEALTH_STATES,
            lambda: watcher.status().state.value,
        )

    # -- lifecycle -----------------------------------------------------------

    @property
    def draining(self) -> bool:
        """True once :meth:`drain` has begun; ``/healthz`` reports it."""
        return self._draining

    def drain(self, *, deadline: float = DEFAULT_DRAIN_DEADLINE) -> bool:
        """Shut down gracefully; returns True when fully drained.

        The sequence an operator's SIGTERM should trigger: flip
        ``/healthz`` to ``draining`` (load balancers stop routing),
        signal the watcher loop to exit, stop accepting connections,
        wait up to ``deadline`` seconds for in-flight requests to
        finish, join the watcher, close the listening socket.
        Idempotent — repeated calls return the first outcome.

        Must not be called from a handler thread or the thread running
        :meth:`serve_forever` (``shutdown`` would deadlock); signal
        handlers should set an event and drain from the main thread,
        which is exactly what :func:`serve_forever` does.
        """
        if self._drained:
            return self._drain_ok
        self._draining = True
        watcher = self.watcher
        if watcher is not None:
            watcher.request_stop()  # non-blocking; join after the drain wait
        self.shutdown()  # stop the accept loop (serve_forever returns)
        limit = time.monotonic() + max(0.0, deadline)
        while self.inflight and time.monotonic() < limit:
            time.sleep(0.01)
        drained = self.inflight == 0
        if watcher is not None:
            remaining = max(0.5, limit - time.monotonic())
            drained = watcher.stop(timeout=remaining) and drained
        self.server_close()
        self._drained = True
        self._drain_ok = drained
        return drained

    @property
    def inflight(self) -> int:
        with self._inflight_lock:
            return self._inflight

    def _enter(self) -> bool:
        if not self.gate.acquire(blocking=False):
            return False
        with self._inflight_lock:
            self._inflight += 1
        return True

    def _leave(self) -> None:
        with self._inflight_lock:
            self._inflight -= 1
        self.gate.release()

    @property
    def url(self) -> str:
        """Base URL of the bound socket (useful with an ephemeral port)."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class _Handler(BaseHTTPRequestHandler):
    """Routes requests; every reply is JSON except ``/metrics``."""

    protocol_version = "HTTP/1.1"
    server: PslServer  # narrowed for the attribute accesses below

    # -- plumbing ------------------------------------------------------------

    def setup(self) -> None:
        # Per-connection socket timeout: StreamRequestHandler applies
        # ``self.timeout`` to the connection, and stdlib
        # ``handle_one_request`` treats a timeout as a fatal connection
        # error — so a stalled (slowloris-style) client is disconnected
        # instead of holding its handler thread forever.
        if self.server.request_timeout is not None:
            self.timeout = self.server.request_timeout
        super().setup()

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if not self.server.quiet:  # pragma: no cover - debug aid
            super().log_message(format, *args)

    def _send(self, status: int, payload: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        if status >= 400:
            # An errored request may have an unread body (e.g. a shed
            # POST); keeping the connection would desync the framing.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        try:
            self.wfile.write(payload)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass  # client went away mid-reply; nothing to salvage

    def _send_json(self, status: int, body: dict) -> None:
        self._send(status, json.dumps(body).encode("utf-8"), "application/json")

    def _query(self) -> dict[str, str]:
        raw = parse_qs(urlsplit(self.path).query)
        return {key: values[-1] for key, values in raw.items()}

    def _endpoint(self) -> str:
        return urlsplit(self.path).path.rstrip("/") or "/"

    def _required(self, query: dict[str, str], name: str) -> str:
        value = query.get(name)
        if not value:
            raise _Reject(400, "missing_parameter", {"parameter": name})
        return value

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise _Reject(413, "body_too_large", {"limit_bytes": MAX_BODY_BYTES})
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise _Reject(400, "empty_body")
        try:
            body = json.loads(raw)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _Reject(400, "malformed_json", {"detail": str(exc)}) from exc
        if not isinstance(body, dict):
            raise _Reject(400, "malformed_json", {"detail": "body must be an object"})
        return body

    # -- dispatch ------------------------------------------------------------

    _GET_ROUTES = {
        "/site": "_get_site",
        "/classify": "_get_classify",
        "/compare": "_get_compare",
        "/versions": "_get_versions",
        "/healthz": "_get_healthz",
        "/metrics": "_get_metrics",
    }
    _POST_ROUTES = {
        "/batch": "_post_batch",
        "/swap": "_post_swap",
    }
    #: Observability endpoints stay reachable under load shedding.
    _UNGATED = frozenset({"/healthz", "/metrics"})

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler contract
        self._handle(self._GET_ROUTES)

    def do_POST(self) -> None:  # noqa: N802 - stdlib handler contract
        self._handle(self._POST_ROUTES)

    def _handle(self, routes: dict[str, str]) -> None:
        server = self.server
        endpoint = self._endpoint()
        method = routes.get(endpoint)
        if method is None:
            known = endpoint in self._GET_ROUTES or endpoint in self._POST_ROUTES
            status = 405 if known else 404
            kind = "method_not_allowed" if known else "not_found"
            self._send_json(status, {"error": {"kind": kind, "path": endpoint}})
            server.requests_total.inc(endpoint=endpoint if known else "<unknown>", status=str(status))
            return

        gated = endpoint not in self._UNGATED
        if gated and not server._enter():
            server.rejected_total.inc()
            server.requests_total.inc(endpoint=endpoint, status="503")
            self._send_json(
                503,
                {"error": {"kind": "overloaded", "max_inflight": server.max_inflight}},
            )
            return

        # Compute first, record metrics second, write the response
        # LAST: the moment a client can observe its reply, the
        # counters already reflect it — so a scrape issued right after
        # the final request of a load can never undercount.
        started = time.perf_counter()
        try:
            try:
                status, payload = getattr(self, method)()
            except _Reject as rejection:
                status, payload = rejection.status, rejection.body
            except HostnameError as exc:
                status = 400
                payload = {
                    "error": {
                        "kind": "invalid_hostname",
                        "value": exc.value,
                        "reason": exc.reason,
                    }
                }
            except UnknownVersionError as exc:
                status = 404
                payload = {
                    "error": {
                        "kind": "unknown_version",
                        "value": str(exc.spec),
                        "reason": exc.reason,
                    }
                }
            except Exception:  # the never-crash contract
                status, payload = 500, {"error": {"kind": "internal"}}
        finally:
            if gated:
                server._leave()
        server.requests_total.inc(endpoint=endpoint, status=str(status))
        server.latency.observe(time.perf_counter() - started, endpoint=endpoint)
        if isinstance(payload, bytes):
            self._send(status, payload, "text/plain; version=0.0.4")
        else:
            self._send_json(status, payload)

    # -- endpoints (each returns (status, payload); bytes = plain text) ------

    def _get_site(self) -> tuple[int, dict]:
        query = self._query()
        host = self._required(query, "host")
        answer = self.server.engine.site(host, version=query.get("version"))
        self.server.lookups_total.inc()
        return 200, answer.to_json()

    def _get_classify(self) -> tuple[int, dict]:
        query = self._query()
        page = self._required(query, "page")
        request = self._required(query, "request")
        answer = self.server.engine.classify(page, request, version=query.get("version"))
        self.server.lookups_total.inc(2)
        return 200, answer.to_json()

    def _get_compare(self) -> tuple[int, dict]:
        query = self._query()
        host = self._required(query, "host")
        old = self._required(query, "old")
        answer = self.server.engine.compare(host, old, query.get("new"))
        self.server.lookups_total.inc(2)
        return 200, answer.to_json()

    def _get_versions(self) -> tuple[int, dict]:
        query = self._query()
        limit: int | None = None
        if "limit" in query:
            try:
                limit = int(query["limit"])
            except ValueError:
                raise _Reject(400, "malformed_parameter", {"parameter": "limit"}) from None
        return 200, self.server.registry.describe(limit=limit)

    def _get_healthz(self) -> tuple[int, dict]:
        server = self.server
        registry = server.registry
        draining = server.draining
        body = {
            "status": "draining" if draining else "ok",
            "active": registry.active.describe(),
            "generation": registry.generation,
            "uptime_seconds": round(time.time() - server.started_at, 3),
            "inflight": server.inflight,
        }
        if server.watcher is not None:
            body["update"] = server.watcher.status().to_json()
        # 503 while draining so load balancers eject the instance; the
        # body still carries full state for operators mid-drain.
        return (503 if draining else 200), body

    def _get_metrics(self) -> tuple[int, bytes]:
        return 200, self.server.metrics.render().encode("utf-8")

    def _post_batch(self) -> tuple[int, dict]:
        body = self._read_body()
        hostnames = body.get("hostnames")
        if not isinstance(hostnames, list) or not all(
            isinstance(h, str) for h in hostnames
        ):
            raise _Reject(400, "malformed_batch", {"detail": "'hostnames' must be a list of strings"})
        if len(hostnames) > MAX_BATCH_HOSTNAMES:
            raise _Reject(413, "batch_too_large", {"limit": MAX_BATCH_HOSTNAMES})
        answer = self.server.engine.batch(hostnames, version=body.get("version"))
        self.server.lookups_total.inc(len(hostnames))
        return 200, answer.to_json()

    def _post_swap(self) -> tuple[int, dict]:
        query = self._query()
        spec = query.get("version")
        if spec is None:
            body = self._read_body()
            spec = body.get("version")
        if spec is None:
            raise _Reject(400, "missing_parameter", {"parameter": "version"})
        snapshot = self.server.registry.activate(spec)
        return 200, {
            "active": snapshot.describe(),
            "generation": self.server.registry.generation,
        }


def serve_forever(
    server: PslServer,
    *,
    handle_signals: bool = True,
    drain_deadline: float = DEFAULT_DRAIN_DEADLINE,
) -> bool:
    """Run until SIGTERM/SIGINT, then drain gracefully.

    The CLI's blocking loop: the accept loop runs on a daemon thread
    while the calling (main) thread waits for a stop signal, then runs
    :meth:`PslServer.drain` — signal handlers themselves only set an
    event, since calling ``shutdown`` from the serving thread would
    deadlock.  Returns the drain verdict (True = fully drained).

    ``handle_signals=False`` restores the plain blocking behaviour for
    callers that manage the lifecycle themselves (tests, embedding).
    """
    if not handle_signals:
        try:
            server.serve_forever()
        finally:
            server.server_close()
        return True

    stop = threading.Event()

    def request_stop(signum: int, frame: Any) -> None:  # pragma: no cover - signal path
        stop.set()

    previous: dict[int, Any] = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[signum] = signal.signal(signum, request_stop)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass

    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        while not stop.wait(0.2):
            pass
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    drained = server.drain(deadline=drain_deadline)
    thread.join(timeout=5)
    for signum, handler in previous.items():
        try:
            signal.signal(signum, handler)
        except (ValueError, OSError):  # pragma: no cover
            pass
    return drained
