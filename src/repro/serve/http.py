"""The HTTP transport: a stdlib threading server over the request core.

One :class:`PslServer` (a ``ThreadingHTTPServer``) is now a *thin
adapter*: it parses HTTP into a :class:`~repro.serve.core.Request`,
hands it to a :class:`~repro.serve.core.RequestCore` (which owns
routing, admission, error mapping, and metrics — see
:mod:`repro.serve.core`), and writes the returned
:class:`~repro.serve.core.Response` to the socket.  The endpoints:

=================  ======  ===================================================
``/site``          GET     ``?host=H[&version=V]`` — one lookup
``/batch``         POST    ``{"hostnames": [...]}`` — many, snapshot-pinned
``/classify``      GET     ``?page=P&request=R`` — third-party verdict
``/compare``       GET     ``?host=H&old=V[&new=V2]`` — cross-version probe
``/versions``      GET     history + registry state (``?limit=N``)
``/swap``          POST    ``?version=V`` — atomic (fleet-wide) epoch bump
``/healthz``       GET     liveness, active version, epoch agreement
``/metrics``       GET     Prometheus text exposition
=================  ======  ===================================================

What stays transport-level here:

* **slow clients** — every accepted connection carries a per-socket
  timeout (``request_timeout``), so a slowloris-style peer that stalls
  mid-request is disconnected instead of pinning a handler thread
  forever.
* **connection hygiene on errors** — any errored request may have an
  unread body, so every ``>= 400`` response carries
  ``Connection: close`` (one place, :meth:`_Handler._send`).
* **shutdown** — :meth:`PslServer.drain` is the graceful path: flip
  ``/healthz`` to ``draining`` (503), stop the update watcher, stop
  accepting connections, let in-flight requests finish under a bounded
  deadline, then close.  :func:`serve_forever` wires SIGTERM/SIGINT to
  it.
* **fleet sockets** — ``reuse_port=True`` binds with ``SO_REUSEPORT``
  so N worker processes share one port (the kernel load-balances
  accepts); ``listen_socket=`` adopts an already-listening inherited
  socket instead (the pre-fork parent-fd fallback where ``REUSEPORT``
  is unavailable).  See :mod:`repro.serve.fleet`.
"""

from __future__ import annotations

import signal
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (update -> serve)
    from repro.update.watcher import Watcher

from repro.serve.core import (
    DEFAULT_MAX_INFLIGHT,
    MAX_BATCH_HOSTNAMES,
    MAX_BODY_BYTES,
    Request,
    RequestCore,
)
from repro.serve.engine import QueryEngine
from repro.serve.metrics import MetricsRegistry
from repro.serve.snapshots import SnapshotRegistry

__all__ = [
    "DEFAULT_DRAIN_DEADLINE",
    "DEFAULT_MAX_INFLIGHT",
    "DEFAULT_REQUEST_TIMEOUT",
    "MAX_BATCH_HOSTNAMES",
    "MAX_BODY_BYTES",
    "PslServer",
    "serve_forever",
]

#: Per-connection socket timeout (seconds): how long a peer may stall
#: between bytes before the handler thread abandons the connection.
DEFAULT_REQUEST_TIMEOUT = 30.0
#: How long :meth:`PslServer.drain` waits for in-flight requests.
DEFAULT_DRAIN_DEADLINE = 10.0


class PslServer(ThreadingHTTPServer):
    """A threading HTTP adapter bound to one :class:`RequestCore`."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        registry: SnapshotRegistry,
        *,
        engine: QueryEngine | None = None,
        metrics: MetricsRegistry | None = None,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        request_timeout: float | None = DEFAULT_REQUEST_TIMEOUT,
        quiet: bool = True,
        core: RequestCore | None = None,
        reuse_port: bool = False,
        listen_socket: socket.socket | None = None,
    ) -> None:
        if request_timeout is not None and request_timeout <= 0:
            raise ValueError("request_timeout must be positive when set")
        # ``server_bind`` runs inside ``super().__init__`` — the flag
        # must exist before the socket binds.
        self._reuse_port = reuse_port
        if core is None:
            core = RequestCore(
                registry,
                engine=engine,
                metrics=metrics,
                max_inflight=max_inflight,
            )
        self.core = core
        super().__init__(address, _Handler, bind_and_activate=listen_socket is None)
        if listen_socket is not None:
            # Pre-fork parent-fd mode: adopt the already-listening
            # socket the supervisor bound before forking; every worker
            # accepts on the same fd and the kernel distributes.
            self.socket.close()
            self.socket = listen_socket
            self.server_address = listen_socket.getsockname()
        self.registry = core.registry
        self.request_timeout = request_timeout
        self.quiet = quiet
        self._drained = False
        self._drain_ok = True

    def server_bind(self) -> None:
        if self._reuse_port:
            if not hasattr(socket, "SO_REUSEPORT"):  # pragma: no cover - platform
                raise OSError("SO_REUSEPORT is not available on this platform")
            self.socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        super().server_bind()

    # -- the core's surface, re-exposed for callers and tests ----------------

    @property
    def engine(self) -> QueryEngine:
        return self.core.engine

    @property
    def metrics(self) -> MetricsRegistry:
        return self.core.metrics

    @property
    def gate(self) -> threading.Semaphore:
        return self.core.gate

    @property
    def max_inflight(self) -> int:
        return self.core.max_inflight

    @property
    def started_at(self) -> float:
        return self.core.started_at

    @property
    def watcher(self) -> "Watcher | None":
        return self.core.watcher

    @property
    def inflight(self) -> int:
        return self.core.inflight

    def attach_watcher(self, watcher: "Watcher") -> None:
        """Bind an update watcher (SLO gauges + ``/healthz`` block)."""
        self.core.attach_watcher(watcher)

    # -- lifecycle -----------------------------------------------------------

    @property
    def draining(self) -> bool:
        """True once :meth:`drain` has begun; ``/healthz`` reports it."""
        return self.core.draining

    def drain(self, *, deadline: float = DEFAULT_DRAIN_DEADLINE) -> bool:
        """Shut down gracefully; returns True when fully drained.

        The sequence an operator's SIGTERM should trigger: flip
        ``/healthz`` to ``draining`` (load balancers stop routing),
        signal the watcher loop to exit, stop accepting connections,
        wait up to ``deadline`` seconds for in-flight requests to
        finish, join the watcher, close the listening socket.
        Idempotent — repeated calls return the first outcome.

        Must not be called from a handler thread or the thread running
        :meth:`serve_forever` (``shutdown`` would deadlock); signal
        handlers should set an event and drain from the main thread,
        which is exactly what :func:`serve_forever` does.
        """
        if self._drained:
            return self._drain_ok
        self.core.draining = True
        watcher = self.core.watcher
        if watcher is not None:
            watcher.request_stop()  # non-blocking; join after the drain wait
        self.shutdown()  # stop the accept loop (serve_forever returns)
        limit = time.monotonic() + max(0.0, deadline)
        while self.core.inflight and time.monotonic() < limit:
            time.sleep(0.01)
        drained = self.core.inflight == 0
        if watcher is not None:
            remaining = max(0.5, limit - time.monotonic())
            drained = watcher.stop(timeout=remaining) and drained
        self.server_close()
        self._drained = True
        self._drain_ok = drained
        return drained

    @property
    def url(self) -> str:
        """Base URL of the bound socket (useful with an ephemeral port)."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class _Handler(BaseHTTPRequestHandler):
    """Parses HTTP, delegates to the core, writes the response."""

    protocol_version = "HTTP/1.1"
    # TCP_NODELAY: the handler emits the status line and each header as
    # its own small write; with Nagle on, those segments wait for the
    # peer's delayed ACK (~40ms) before the body flushes — a keep-alive
    # client then sees every response cost ~44ms regardless of the
    # lookup's actual microseconds.  An answer-sized service disables
    # Nagle and pays a few extra small packets instead.
    disable_nagle_algorithm = True
    server: PslServer  # narrowed for the attribute accesses below

    def setup(self) -> None:
        # Per-connection socket timeout: StreamRequestHandler applies
        # ``self.timeout`` to the connection, and stdlib
        # ``handle_one_request`` treats a timeout as a fatal connection
        # error — so a stalled (slowloris-style) client is disconnected
        # instead of holding its handler thread forever.
        if self.server.request_timeout is not None:
            self.timeout = self.server.request_timeout
        super().setup()

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if not self.server.quiet:  # pragma: no cover - debug aid
            super().log_message(format, *args)

    def _send(self, status: int, payload: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        if status >= 400:
            # An errored request may have an unread body (e.g. a shed
            # POST); keeping the connection would desync the framing.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        try:
            self.wfile.write(payload)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass  # client went away mid-reply; nothing to salvage

    def _dispatch(self, method: str) -> None:
        try:
            # Clamp negatives: self.rfile.read(-1) would read until EOF,
            # defeating the core's body-size ceiling.
            length = max(0, int(self.headers.get("Content-Length") or 0))
        except ValueError:
            length = 0
        response = self.server.core.handle(
            Request(
                method=method,
                target=self.path,
                content_length=length,
                read=self.rfile.read,
            )
        )
        self._send(response.status, response.encoded(), response.content_type)

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler contract
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib handler contract
        self._dispatch("POST")


def serve_forever(
    server: PslServer,
    *,
    handle_signals: bool = True,
    drain_deadline: float = DEFAULT_DRAIN_DEADLINE,
    stop_event: threading.Event | None = None,
) -> bool:
    """Run until SIGTERM/SIGINT, then drain gracefully.

    The CLI's blocking loop: the accept loop runs on a daemon thread
    while the calling (main) thread waits for a stop signal, then runs
    :meth:`PslServer.drain` — signal handlers themselves only set an
    event, since calling ``shutdown`` from the serving thread would
    deadlock.  Returns the drain verdict (True = fully drained).

    ``handle_signals=False`` restores the plain blocking behaviour for
    callers that manage the lifecycle themselves (tests, embedding).
    ``stop_event`` lets a caller that installed its own early signal
    handler (a forked fleet worker, covering the window before this
    function replaces it) share the event — a signal delivered at any
    point between the caller's handler install and here is not lost.
    """
    if not handle_signals:
        try:
            server.serve_forever()
        finally:
            server.server_close()
        return True

    stop = stop_event if stop_event is not None else threading.Event()

    def request_stop(signum: int, frame: Any) -> None:  # pragma: no cover - signal path
        stop.set()

    previous: dict[int, Any] = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[signum] = signal.signal(signum, request_stop)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass

    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        while not stop.wait(0.2):
            pass
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    drained = server.drain(deadline=drain_deadline)
    thread.join(timeout=5)
    for signum, handler in previous.items():
        try:
            signal.signal(signum, handler)
        except (ValueError, OSError):  # pragma: no cover
            pass
    return drained
