"""Zipf-shaped HTTP load generation for the serving tier.

Top-list measurement work (Scheitle et al., PAPERS.md) shows web
traffic is head-heavy: a handful of hostnames dominate while a long
tail contributes one hit each.  That is exactly the load shape a
production PSL endpoint sees, and exactly the shape that exercises the
serving tier's cache (the head hits it) *and* its trie walk (the tail
misses it).  :class:`ZipfSampler` reproduces it: hostname rank ``r``
is drawn with probability proportional to ``1 / r**s``.

The generator drives *real* HTTP — ``http.client`` connections with
keep-alive, one per worker thread — because the quantity under test is
the served latency distribution, not the engine's in-process cost.
For multi-worker fleets the client itself can fork
(``processes=``) so a GIL-bound client does not become the bottleneck
it is trying to measure past.

Used three ways: ``make bench-serve`` gates p50/p99 and fleet
throughput scaling on it, ``examples/serve_load.py`` demonstrates it,
and ``python -m repro.serve.loadgen`` points it at any running server.
"""

from __future__ import annotations

import argparse
import bisect
import http.client
import json
import os
import struct
import threading
import time
from dataclasses import dataclass, field
from urllib.parse import quote, urlsplit

__all__ = [
    "LoadResult",
    "ZipfSampler",
    "percentile",
    "run_load",
]

DEFAULT_EXPONENT = 1.2  # head-heavy, matches observed top-list skew


class ZipfSampler:
    """Deterministic Zipf-ranked sampling over a fixed population.

    Rank ``r`` (1-based) gets weight ``1 / r**exponent``; sampling
    inverts the cumulative weight table with :func:`bisect.bisect_left`
    — O(log n) per draw, no numpy.  Determinism comes from the caller's
    ``random.Random`` seed, so a bench run is replayable.
    """

    def __init__(self, population: list[str], *, exponent: float = DEFAULT_EXPONENT) -> None:
        if not population:
            raise ValueError("population must be non-empty")
        self.population = list(population)
        self.exponent = exponent
        cumulative: list[float] = []
        total = 0.0
        for rank in range(1, len(self.population) + 1):
            total += 1.0 / rank**exponent
            cumulative.append(total)
        self._cumulative = cumulative
        self._total = total

    def sample(self, rng) -> str:
        point = rng.random() * self._total
        return self.population[bisect.bisect_left(self._cumulative, point)]

    def head_share(self, head: int) -> float:
        """Fraction of draws landing in the top ``head`` ranks."""
        head = min(head, len(self._cumulative))
        return self._cumulative[head - 1] / self._total


def percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile over an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, max(0, int(fraction * len(sorted_values))))
    return sorted_values[rank]


@dataclass(slots=True)
class LoadResult:
    """What one load run measured, percentiles precomputed."""

    requests: int
    failures: int
    elapsed_seconds: float
    p50_ms: float
    p90_ms: float
    p99_ms: float
    max_ms: float
    latencies_ms: list[float] = field(repr=False, default_factory=list)

    @property
    def throughput_rps(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.requests / self.elapsed_seconds

    def to_json(self) -> dict:
        return {
            "requests": self.requests,
            "failures": self.failures,
            "elapsed_seconds": round(self.elapsed_seconds, 4),
            "throughput_rps": round(self.throughput_rps, 1),
            "p50_ms": round(self.p50_ms, 3),
            "p90_ms": round(self.p90_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "max_ms": round(self.max_ms, 3),
        }

    def table(self) -> str:
        """A small aligned table for examples and CLI output."""
        rows = [
            ("requests", f"{self.requests}"),
            ("failures", f"{self.failures}"),
            ("elapsed", f"{self.elapsed_seconds:.2f} s"),
            ("throughput", f"{self.throughput_rps:,.0f} req/s"),
            ("p50", f"{self.p50_ms:.3f} ms"),
            ("p90", f"{self.p90_ms:.3f} ms"),
            ("p99", f"{self.p99_ms:.3f} ms"),
            ("max", f"{self.max_ms:.3f} ms"),
        ]
        width = max(len(label) for label, _ in rows)
        return "\n".join(f"{label:<{width}}  {value}" for label, value in rows)


def summarize(latencies_s: list[float], failures: int, elapsed: float) -> LoadResult:
    ordered = sorted(value * 1000.0 for value in latencies_s)
    return LoadResult(
        requests=len(ordered),
        failures=failures,
        elapsed_seconds=elapsed,
        p50_ms=percentile(ordered, 0.50),
        p90_ms=percentile(ordered, 0.90),
        p99_ms=percentile(ordered, 0.99),
        max_ms=ordered[-1] if ordered else 0.0,
        latencies_ms=ordered,
    )


def _client_thread(
    host: str,
    port: int,
    paths: list[str],
    latencies: list[float],
    failures: list[int],
) -> None:
    """One keep-alive connection working through its share of paths."""
    connection = http.client.HTTPConnection(host, port, timeout=30)
    failed = 0
    try:
        for path in paths:
            started = time.perf_counter()
            try:
                connection.request("GET", path)
                response = connection.getresponse()
                body = response.read()
                ok = response.status == 200 and bool(body)
            except (OSError, http.client.HTTPException):
                # One reconnect attempt: a server-side worker respawn
                # legitimately severs keep-alive connections.
                connection.close()
                connection = http.client.HTTPConnection(host, port, timeout=30)
                try:
                    connection.request("GET", path)
                    response = connection.getresponse()
                    body = response.read()
                    ok = response.status == 200 and bool(body)
                except (OSError, http.client.HTTPException):
                    ok = False
            if ok:
                latencies.append(time.perf_counter() - started)
            else:
                failed += 1
    finally:
        connection.close()
    failures.append(failed)


def _run_threads(host: str, port: int, shares: list[list[str]]) -> tuple[list[float], int, float]:
    latencies: list[float] = []
    failures: list[int] = []
    threads = [
        threading.Thread(
            target=_client_thread, args=(host, port, share, latencies, failures)
        )
        for share in shares
        if share
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    return latencies, sum(failures), elapsed


def run_load(
    base_url: str,
    hostnames: list[str],
    *,
    requests: int = 2000,
    concurrency: int = 8,
    processes: int = 1,
    exponent: float = DEFAULT_EXPONENT,
    seed: int = 1,
    version: str | None = None,
) -> LoadResult:
    """Drive ``requests`` Zipf-sampled ``/site`` lookups at ``base_url``.

    ``concurrency`` keep-alive connections run in threads; with
    ``processes > 1`` the client forks first and each process runs its
    own thread pool, so client-side GIL contention cannot mask a
    multi-worker server's capacity.  The paths are pre-sampled (same
    seed → same traffic), then dealt round-robin to workers.
    """
    import random

    split = urlsplit(base_url)
    host, port = split.hostname or "127.0.0.1", split.port or 80
    sampler = ZipfSampler(hostnames, exponent=exponent)
    rng = random.Random(seed)
    suffix = f"&version={quote(str(version))}" if version is not None else ""
    paths = [
        f"/site?host={quote(sampler.sample(rng))}{suffix}" for _ in range(requests)
    ]
    concurrency = max(1, concurrency)
    shares = [paths[i::concurrency] for i in range(concurrency)]

    if processes <= 1 or not hasattr(os, "fork"):
        latencies, failed, elapsed = _run_threads(host, port, shares)
        return summarize(latencies, failed, elapsed)

    # Fork-based client fan-out: deal the per-connection shares across
    # processes; each child reports (latencies, failures) over a pipe.
    groups = [shares[i::processes] for i in range(processes)]
    children: list[tuple[int, int]] = []
    for group in groups:
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:
            os.close(read_fd)
            code = 1
            try:
                latencies, failed, _ = _run_threads(host, port, group)
                payload = json.dumps({"latencies": latencies, "failed": failed}).encode()
                with os.fdopen(write_fd, "wb") as sink:
                    sink.write(struct.pack("<Q", len(payload)))
                    sink.write(payload)
                code = 0
            finally:
                os._exit(code)
        os.close(write_fd)
        children.append((pid, read_fd))

    latencies_all: list[float] = []
    failed_all = 0
    started = time.perf_counter()
    for pid, read_fd in children:
        with os.fdopen(read_fd, "rb") as source:
            raw = source.read()
        os.waitpid(pid, 0)
        if len(raw) < 8:
            failed_all += 1  # child died before reporting
            continue
        (length,) = struct.unpack("<Q", raw[:8])
        report = json.loads(raw[8 : 8 + length])
        latencies_all.extend(report["latencies"])
        failed_all += report["failed"]
    elapsed = time.perf_counter() - started
    return summarize(latencies_all, failed_all, elapsed)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.loadgen",
        description="Drive Zipf-distributed /site lookups at a running psl-serve.",
    )
    parser.add_argument("url", help="base URL, e.g. http://127.0.0.1:8080")
    parser.add_argument("--requests", type=int, default=2000)
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--processes", type=int, default=1)
    parser.add_argument("--exponent", type=float, default=DEFAULT_EXPONENT)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--version", default=None, help="pin lookups to one PSL version")
    parser.add_argument(
        "--hosts-from",
        default=None,
        help="file with one hostname per line (default: a built-in mixed population)",
    )
    parser.add_argument("--json", action="store_true", help="print machine-readable JSON")
    args = parser.parse_args(argv)

    if args.hosts_from:
        with open(args.hosts_from, "r", encoding="utf-8") as handle:
            hostnames = [line.strip() for line in handle if line.strip()]
    else:
        # A small head + long synthetic tail: enough shape to exercise
        # cache hits and misses without needing a corpus on disk.
        hostnames = [
            "www.example.com", "cdn.example.com", "app.example.co.uk",
            "user.github.io", "shop.example.org", "api.example.net",
        ] + [f"tail-{i}.example.com" for i in range(2000)]

    result = run_load(
        args.url,
        hostnames,
        requests=args.requests,
        concurrency=args.concurrency,
        processes=args.processes,
        exponent=args.exponent,
        seed=args.seed,
        version=args.version,
    )
    if args.json:
        print(json.dumps(result.to_json(), indent=2))
    else:
        print(result.table())
    return 0 if result.failures == 0 else 1


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
