"""Prometheus-style metrics, stdlib only.

A deliberately small instrument set — :class:`Counter`,
:class:`Gauge`, :class:`Histogram`, plus callback gauges sampled at
scrape time — rendering the Prometheus text exposition format
(version 0.0.4) that any scraper ingests.  No client library exists in
this environment, and the serving layer needs only the four metric
shapes below, so this is a faithful subset, not a reimplementation:
labeled samples, cumulative histogram buckets with ``+Inf``, and
``# HELP`` / ``# TYPE`` headers.

Each instrument takes its own mutex; the handler path touches two or
three per request, and uncontended lock acquisition is tens of
nanoseconds — invisible next to a socket read.
"""

from __future__ import annotations

import threading
from typing import Callable, Mapping, Sequence

#: Default latency buckets (seconds): tuned for an in-memory lookup
#: service — sub-millisecond cache hits through pathological tail.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)


def _format_value(value: float) -> str:
    """Integers render bare (``17``), floats with full precision."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _format_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(f'{key}="{labels[key]}"' for key in sorted(labels))
    return "{" + body + "}"


class _Metric:
    """Shared naming/help plumbing for the three instrument kinds."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, labelnames: Sequence[str] = ()) -> None:
        self.name = name
        self.help_text = help_text
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()

    def _key(self, labels: Mapping[str, str]) -> tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, got {tuple(labels)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def _header(self) -> list[str]:
        return [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.kind}",
        ]

    def render(self) -> list[str]:  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(_Metric):
    """A monotonically increasing labeled counter."""

    kind = "counter"

    def __init__(self, name: str, help_text: str, labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help_text, labelnames)
        self._values: dict[tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def total(self) -> float:
        """Sum across every label combination."""
        with self._lock:
            return sum(self._values.values())

    def render(self) -> list[str]:
        lines = self._header()
        with self._lock:
            items = sorted(self._values.items())
        for key, value in items:
            labels = dict(zip(self.labelnames, key))
            lines.append(f"{self.name}{_format_labels(labels)} {_format_value(value)}")
        if not items and not self.labelnames:
            lines.append(f"{self.name} 0")
        return lines


class Gauge(_Metric):
    """A set-to-current-value gauge (optionally labeled)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str, labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help_text, labelnames)
        self._values: dict[tuple[str, ...], float] = {}

    def set(self, value: float, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def render(self) -> list[str]:
        lines = self._header()
        with self._lock:
            items = sorted(self._values.items())
        for key, value in items:
            labels = dict(zip(self.labelnames, key))
            lines.append(f"{self.name}{_format_labels(labels)} {_format_value(value)}")
        if not items and not self.labelnames:
            lines.append(f"{self.name} 0")
        return lines


class Histogram(_Metric):
    """Cumulative-bucket histogram (the Prometheus layout).

    Per label set it tracks bucket counts, a running sum, and a total
    count, rendered as ``_bucket{le=...}``, ``_sum``, ``_count`` — the
    shape every latency dashboard expects.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        *,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, labelnames)
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket")
        self._counts: dict[tuple[str, ...], list[int]] = {}
        self._sums: dict[tuple[str, ...], float] = {}
        self._totals: dict[tuple[str, ...], int] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = [0] * len(self.buckets)
                self._counts[key] = counts
            for position, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[position] += 1
                    break
            self._sums[key] = self._sums.get(key, 0.0) + value
            self._totals[key] = self._totals.get(key, 0) + 1

    def count(self, **labels: str) -> int:
        key = self._key(labels)
        with self._lock:
            return self._totals.get(key, 0)

    def sum(self, **labels: str) -> float:
        key = self._key(labels)
        with self._lock:
            return self._sums.get(key, 0.0)

    def render(self) -> list[str]:
        lines = self._header()
        with self._lock:
            keys = sorted(self._counts)
            snapshot = {
                key: (list(self._counts[key]), self._sums[key], self._totals[key])
                for key in keys
            }
        for key in keys:
            counts, total_sum, total = snapshot[key]
            labels = dict(zip(self.labelnames, key))
            cumulative = 0
            for bound, bucket_count in zip(self.buckets, counts):
                cumulative += bucket_count
                bucket_labels = dict(labels, le=_format_value(bound))
                lines.append(
                    f"{self.name}_bucket{_format_labels(bucket_labels)} {cumulative}"
                )
            inf_labels = dict(labels, le="+Inf")
            lines.append(f"{self.name}_bucket{_format_labels(inf_labels)} {total}")
            lines.append(f"{self.name}_sum{_format_labels(labels)} {_format_value(total_sum)}")
            lines.append(f"{self.name}_count{_format_labels(labels)} {total}")
        return lines


class CallbackGauge(_Metric):
    """A gauge whose value is sampled from a callable at scrape time.

    The serving layer points these at live state — snapshot age, cache
    hit ratio, resident count — so ``/metrics`` always reflects *now*
    without every code path pushing updates.
    """

    kind = "gauge"

    def __init__(self, name: str, help_text: str, callback: Callable[[], float]) -> None:
        super().__init__(name, help_text, ())
        self._callback = callback
        self._last_good: float | None = None

    def value(self) -> float:
        return float(self._callback())

    def render(self) -> list[str]:
        """Sample the callback; on failure, serve the last good value.

        A raising callback must never break the scrape: the gauge
        degrades to its most recent successful sample (stale beats
        absent for dashboards mid-incident), or is omitted entirely if
        it has never succeeded.  The rest of the exposition is
        unaffected either way.
        """
        lines = self._header()
        try:
            value = self.value()
            with self._lock:
                self._last_good = value
        except Exception:
            with self._lock:
                value = self._last_good  # type: ignore[assignment]
            if value is None:
                return lines
        lines.append(f"{self.name} {_format_value(value)}")
        return lines


class MultiCallbackGauge(_Metric):
    """A labeled gauge sampled whole from one callable at scrape time.

    The callback returns ``{label_value_tuple_or_str: value}`` for a
    dynamic label population — e.g. one ``packed_mmap_shared`` sample
    per *resident* snapshot version, whatever those happen to be when
    the scrape lands.
    """

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str],
        callback: Callable[[], Mapping],
    ) -> None:
        if not labelnames:
            raise ValueError("MultiCallbackGauge requires label names")
        super().__init__(name, help_text, labelnames)
        self._callback = callback
        self._last_good: dict[tuple[str, ...], float] | None = None

    def samples(self) -> dict[tuple[str, ...], float]:
        raw = self._callback()
        samples: dict[tuple[str, ...], float] = {}
        for key, value in raw.items():
            if isinstance(key, tuple):
                parts = tuple(str(part) for part in key)
            else:
                parts = (str(key),)
            if len(parts) != len(self.labelnames):
                raise ValueError(
                    f"{self.name}: sample key {key!r} does not fit labels {self.labelnames}"
                )
            samples[parts] = float(value)
        return samples

    def render(self) -> list[str]:
        """Sample the callback; on failure, serve the last good samples.

        Same contract as :meth:`CallbackGauge.render` — stale beats
        absent, absent beats a 500 — applied to the whole label family
        at once (the callback produces one coherent population, so the
        fallback does too).
        """
        lines = self._header()
        try:
            samples = self.samples()
            with self._lock:
                self._last_good = dict(samples)
        except Exception:
            with self._lock:
                samples = self._last_good  # type: ignore[assignment]
            if samples is None:
                return lines
        for key in sorted(samples):
            labels = dict(zip(self.labelnames, key))
            lines.append(
                f"{self.name}{_format_labels(labels)} {_format_value(samples[key])}"
            )
        return lines


class MetricsRegistry:
    """The set of instruments one server exposes at ``/metrics``."""

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def _register(self, metric: _Metric) -> _Metric:
        with self._lock:
            if metric.name in self._metrics:
                raise ValueError(f"metric {metric.name!r} already registered")
            self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help_text: str, labelnames: Sequence[str] = ()) -> Counter:
        return self._register(Counter(name, help_text, labelnames))  # type: ignore[return-value]

    def gauge(self, name: str, help_text: str, labelnames: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge(name, help_text, labelnames))  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        *,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(  # type: ignore[return-value]
            Histogram(name, help_text, labelnames, buckets=buckets)
        )

    def callback_gauge(
        self, name: str, help_text: str, callback: Callable[[], float]
    ) -> CallbackGauge:
        return self._register(CallbackGauge(name, help_text, callback))  # type: ignore[return-value]

    def multi_callback_gauge(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str],
        callback: Callable[[], Mapping],
    ) -> MultiCallbackGauge:
        return self._register(  # type: ignore[return-value]
            MultiCallbackGauge(name, help_text, labelnames, callback)
        )

    def state_gauge(
        self,
        name: str,
        help_text: str,
        states: Sequence[str],
        current: Callable[[], str],
    ) -> MultiCallbackGauge:
        """A one-hot gauge family over a closed state set.

        Renders one ``name{state="..."}`` sample per known state, value
        1 for the state ``current()`` reports and 0 for the rest — the
        conventional Prometheus shape for enum-valued health (alert on
        ``name{state="degraded"} == 1``, graph transitions over time).
        """
        closed = tuple(str(state) for state in states)

        def sample() -> dict[str, float]:
            active = str(current())
            return {state: 1.0 if state == active else 0.0 for state in closed}

        return self.multi_callback_gauge(name, help_text, ("state",), sample)

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def render(self) -> str:
        """The full text exposition (trailing newline included).

        Defense in depth around the scrape: the callback gauges already
        degrade to stale-or-omitted on their own, but any metric whose
        ``render`` itself blows up is skipped rather than taking
        ``/metrics`` — the one endpoint operators need *during* an
        incident — down with it.
        """
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
        lines: list[str] = []
        for metric in metrics:
            try:
                lines.extend(metric.render())
            except Exception:
                continue
        return "\n".join(lines) + "\n"
