"""Immutable PSL snapshots and the hot-swap registry.

The serving layer's core object is the :class:`PslSnapshot`: one
materialized list version — compiled suffix trie plus the
:class:`~repro.history.version.PslVersion` metadata that dates it.
Snapshots are frozen; nothing about one ever changes after
construction, which is what makes the concurrency story trivial for
readers: a request thread grabs a snapshot reference once and keeps
answering from it even while an operator swaps the registry to a
different version mid-request.

The :class:`SnapshotRegistry` provides:

* **atomic hot-swap** — :meth:`~SnapshotRegistry.activate` builds the
  replacement completely *before* publishing it with a single
  reference assignment (copy-on-write), so no reader can ever observe
  a half-built trie;
* **multi-version residency** — a bounded LRU of additional resident
  snapshots for "what would version X say" probes
  (:meth:`~SnapshotRegistry.resident`), the serving-side analogue of
  the paper's Figure 7 divergence measurement.

Stale-copy misclassification is the paper's central harm; a registry
that can hold any historical version side by side with the live one is
what lets a service *measure* that harm per-hostname instead of
shipping one frozen file.
"""

from __future__ import annotations

import datetime
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable

from repro.history.store import VersionStore
from repro.history.version import PslVersion
from repro.psl.diff import RuleDelta
from repro.psl.list import PublicSuffixList, SuffixMatch
from repro.psl.packed import (
    PackedFormatError,
    PackedHistory,
    dict_trie_bytes,
    estimated_dict_trie_bytes,
)


@dataclass(frozen=True, slots=True)
class PslSnapshot:
    """One materialized, immutable PSL version ready to answer queries."""

    version: PslVersion = field(repr=False)
    psl: PublicSuffixList = field(repr=False)
    #: Wall-clock time the snapshot was materialized (for uptime-style
    #: introspection; *staleness* is measured from the version date).
    built_at: float
    #: Whether this snapshot answers off a packed (flat, immutable)
    #: trie rather than the dict trie.
    packed: bool = False
    #: Whether the packed buffer is an OS-shared memory map (pages
    #: shared with every other process mapping the same artifact).
    mmap_shared: bool = False
    #: Heap/buffer bytes this snapshot keeps resident.  For packed
    #: snapshots this is the version's slice of the shared buffer; for
    #: dict snapshots it is the measured deep size of the trie.
    resident_bytes: int = 0
    #: What a dict trie of this version costs (measured when one
    #: exists, estimated from node/rule counts when packed).
    dict_bytes_estimate: int = 0

    @property
    def index(self) -> int:
        """Position of this version in the history."""
        return self.version.index

    @property
    def date(self) -> datetime.date:
        """The version's commit date — what 'list age' is measured from."""
        return self.version.date

    @property
    def fingerprint(self) -> str:
        """Content fingerprint of the rule set (the cache-key component)."""
        return self.psl.fingerprint

    @property
    def rule_count(self) -> int:
        """Number of explicit rules in this version."""
        return self.version.rule_count

    def age_days(self, reference: datetime.date | None = None) -> int:
        """List age in days — the paper's staleness measure (Figure 3)."""
        today = reference if reference is not None else datetime.date.today()
        return self.version.age_at(today)

    def match(self, hostname: str) -> SuffixMatch:
        """Full PSL lookup under this snapshot."""
        return self.psl.match(hostname)

    def describe(self) -> dict:
        """JSON-shaped metadata (the ``/versions`` wire format)."""
        return {
            "index": self.index,
            "date": self.date.isoformat(),
            "commit": self.version.commit[:12],
            "rule_count": self.rule_count,
            "fingerprint": self.fingerprint[:12],
            "packed": self.packed,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PslSnapshot(v{self.index} {self.date} {self.rule_count} rules)"


@dataclass(frozen=True, slots=True)
class MemoryAccounting:
    """Resident-memory breakdown across one registry's snapshots.

    ``packed_bytes`` counts the per-version slices of resident packed
    snapshots plus (once) the packed buffer's shared sections;
    ``dict_bytes`` counts measured dict-trie bytes of resident dict
    snapshots; ``dict_bytes_estimate`` is what *all* resident versions
    would cost as dict tries — the observable form of the bench's
    resident-set-reduction claim.
    """

    packed_bytes: int
    dict_bytes: int
    dict_bytes_estimate: int
    shared_bytes: int
    versions: tuple[dict, ...]


class UnknownVersionError(LookupError):
    """Raised when a version spec resolves to nothing in the history."""

    def __init__(self, spec: object, reason: str) -> None:
        self.spec = spec
        self.reason = reason
        super().__init__(f"unknown version {spec!r}: {reason}")


class SnapshotRegistry:
    """Versioned snapshots with atomic hot-swap and bounded residency.

    Thread-safety contract:

    * ``active`` is a bare attribute read — readers take no lock, ever.
      Publication is a single reference assignment performed only after
      the replacement snapshot is fully built, so readers see either
      the old complete snapshot or the new complete snapshot, never an
      intermediate state.
    * All mutation (``activate``, ``resident`` cache fills) serializes
      on one internal lock, which also guards the underlying
      :class:`VersionStore` — its checkout cache is not thread-safe.

    ``resident_capacity`` bounds how many *additional* versions stay
    materialized for compare probes; the active snapshot is never
    evicted.  Old active snapshots stay valid for in-flight requests
    that already hold a reference and are reclaimed by the garbage
    collector once the last request finishes.
    """

    def __init__(
        self,
        store: VersionStore,
        *,
        active: int = -1,
        resident_capacity: int = 4,
        clock: Callable[[], float] = time.time,
        packed: PackedHistory | None = None,
    ) -> None:
        if resident_capacity < 1:
            raise ValueError("resident_capacity must be positive")
        if len(store) == 0:
            raise ValueError("cannot serve an empty version store")
        if packed is not None and len(packed) != len(store):
            raise ValueError(
                f"packed history has {len(packed)} versions, store has {len(store)}"
            )
        self._store = store
        self._packed = packed
        self._clock = clock
        self._lock = threading.Lock()
        self._resident: OrderedDict[int, PslSnapshot] = OrderedDict()
        self._resident_capacity = resident_capacity
        self._generation = 0
        with self._lock:
            self._active = self._materialize_locked(self.resolve(active))

    # -- reading (lock-free for the hot path) --------------------------------

    @property
    def active(self) -> PslSnapshot:
        """The live snapshot.  Lock-free; pin it once per request."""
        return self._active

    @property
    def generation(self) -> int:
        """Number of completed hot-swaps since construction."""
        return self._generation

    @property
    def store(self) -> VersionStore:
        """The backing history."""
        return self._store

    @property
    def packed_history(self) -> PackedHistory | None:
        """The shared packed buffer, when serving off the packed path."""
        return self._packed

    def __len__(self) -> int:
        return len(self._store)

    def resident_indexes(self) -> tuple[int, ...]:
        """Indexes currently materialized (active first)."""
        with self._lock:
            others = tuple(i for i in self._resident if i != self._active.index)
        return (self._active.index,) + others

    # -- version resolution --------------------------------------------------

    def resolve(self, spec: object) -> int:
        """Resolve a version spec to a canonical non-negative index.

        Accepts an integer index (negative counts from the end), the
        string ``"latest"``, a decimal string, or an ISO date string —
        dates resolve to the newest version on or before that day,
        exactly how a list vendored on that day maps to a version.
        """
        count = len(self._store)
        if isinstance(spec, bool):  # bool is an int subclass; reject it
            raise UnknownVersionError(spec, "not an index")
        if isinstance(spec, int):
            index = spec + count if spec < 0 else spec
            if not 0 <= index < count:
                raise UnknownVersionError(spec, f"index out of range [0, {count})")
            return index
        if isinstance(spec, datetime.date):
            version = self._store.version_at_date(spec)
            if version is None:
                raise UnknownVersionError(spec, "predates the history")
            return version.index
        if isinstance(spec, str):
            text = spec.strip().lower()
            if text == "latest":
                return count - 1
            if text.lstrip("-").isdigit():
                return self.resolve(int(text))
            try:
                day = datetime.date.fromisoformat(text)
            except ValueError:
                raise UnknownVersionError(spec, "not an index, date, or 'latest'") from None
            return self.resolve(day)
        raise UnknownVersionError(spec, "unsupported spec type")

    # -- materialization -----------------------------------------------------

    def _materialize_locked(self, index: int) -> PslSnapshot:
        """Build (or fetch resident) snapshot; caller holds the lock."""
        cached = self._resident.get(index)
        if cached is not None:
            self._resident.move_to_end(index)
            return cached
        if self._packed is not None and index < len(self._packed):
            # The packed path: a trie *view* into the shared buffer —
            # no trie build, no rule materialization, near-zero-copy.
            # Versions ingested live (beyond the packed buffer, which
            # is immutable) fall through to the dict path below.
            trie = self._packed.trie(index)
            snapshot = PslSnapshot(
                version=self._store.version(index),
                psl=PublicSuffixList.from_packed(trie),
                built_at=self._clock(),
                packed=True,
                mmap_shared=self._packed.mmap_shared,
                resident_bytes=self._packed.version_bytes(index),
                dict_bytes_estimate=estimated_dict_trie_bytes(
                    trie.node_count, len(trie)
                ),
            )
        else:
            psl = self._store.checkout(index)
            measured = dict_trie_bytes(psl._trie)
            snapshot = PslSnapshot(
                version=self._store.version(index),
                psl=psl,
                built_at=self._clock(),
                resident_bytes=measured,
                dict_bytes_estimate=measured,
            )
        self._resident[index] = snapshot
        self._evict_locked()
        return snapshot

    def _evict_locked(self) -> None:
        active_index = self._active.index if hasattr(self, "_active") else None
        while len(self._resident) > self._resident_capacity:
            for index in self._resident:
                if index != active_index:
                    del self._resident[index]
                    break
            else:  # only the active snapshot remains; nothing evictable
                break

    def resident(self, spec: object) -> PslSnapshot:
        """A materialized snapshot of ``spec``, kept resident (LRU).

        This is the side-by-side path: compare probes hold two resident
        snapshots at once without disturbing the active one.
        """
        index = self.resolve(spec)
        active = self._active
        if active.index == index:
            return active
        with self._lock:
            return self._materialize_locked(index)

    def activate(self, spec: object) -> PslSnapshot:
        """Hot-swap the active snapshot to ``spec``, atomically.

        The replacement is fully built under the lock *before* the
        single-assignment publish; concurrent readers keep answering
        from the outgoing snapshot until the reference flips.
        """
        index = self.resolve(spec)
        with self._lock:
            snapshot = self._materialize_locked(index)
            previous = self._active
            self._active = snapshot
            if snapshot is not previous:
                self._generation += 1
            self._evict_locked()
            return snapshot

    # -- live ingest (the update loop's entry point) -------------------------

    def ingest(
        self,
        date: datetime.date,
        delta: RuleDelta,
        *,
        message: str = "",
        packed_blob: bytes | None = None,
        expected_fingerprint: str | None = None,
        activate: bool = True,
    ) -> PslSnapshot:
        """Append a new version to the history and hot-swap to it.

        This is the watcher's push path, with a **last-good fallback**
        contract: every input that can fail is validated *before* any
        state mutates, so a rejected ingest — corrupt packed blob,
        wrong fingerprint, a delta that does not apply cleanly — raises
        and leaves the active snapshot, the resident set, and the
        backing store exactly as they were.  Concurrent readers never
        observe a failed ingest at all.

        ``packed_blob``, when given, must be a single-version packed
        buffer (as built by :func:`repro.psl.packed.pack_rules`); its
        magic / length / CRC-32 are verified by
        :class:`~repro.psl.packed.PackedHistory` and the new snapshot
        serves straight off it.  ``expected_fingerprint`` additionally
        pins the blob to the rule set the caller validated (a blob for
        the wrong version is rejected even when internally intact).
        Without a blob the snapshot materializes through the dict-trie
        checkout path.

        ``activate=False`` appends and materializes the version as a
        resident without publishing it — the registry's active
        snapshot (e.g. an operator-pinned version) keeps serving.
        """
        with self._lock:
            psl: PublicSuffixList | None = None
            blob_trie = None
            if packed_blob is not None:
                # CRC / magic / truncation checks happen here, before
                # the store is touched: a corrupt blob cannot dethrone
                # the active snapshot (it never gets near it).
                history = PackedHistory.from_buffer(bytes(packed_blob))
                if len(history) != 1:
                    raise PackedFormatError(
                        f"ingest blob must hold exactly one version, got {len(history)}"
                    )
                blob_trie = history.trie(0)
                if (
                    expected_fingerprint is not None
                    and blob_trie.fingerprint != expected_fingerprint
                ):
                    raise PackedFormatError(
                        "ingest blob fingerprint mismatch: expected "
                        f"{expected_fingerprint[:12]}, blob carries "
                        f"{blob_trie.fingerprint[:12]}"
                    )
                psl = PublicSuffixList.from_packed(blob_trie)
            # ``commit`` validates monotone dates and clean application
            # before mutating anything, so a bad delta raises with the
            # store untouched.
            version = self._store.commit(date, delta, message=message)
            if psl is not None:
                snapshot = PslSnapshot(
                    version=version,
                    psl=psl,
                    built_at=self._clock(),
                    packed=True,
                    mmap_shared=False,
                    resident_bytes=len(packed_blob),
                    dict_bytes_estimate=estimated_dict_trie_bytes(
                        blob_trie.node_count, len(blob_trie)
                    ),
                )
            else:
                psl = self._store.checkout(version.index)
                measured = dict_trie_bytes(psl._trie)
                snapshot = PslSnapshot(
                    version=version,
                    psl=psl,
                    built_at=self._clock(),
                    resident_bytes=measured,
                    dict_bytes_estimate=measured,
                )
            self._resident[version.index] = snapshot
            if activate:
                previous = self._active
                self._active = snapshot
                if snapshot is not previous:
                    self._generation += 1
            self._evict_locked()
            return snapshot

    def memory_accounting(self) -> MemoryAccounting:
        """The resident-memory breakdown (the ``/metrics`` source).

        Per-version rows cover every resident snapshot; the totals are
        what the memory gauges export — resident packed bytes (shared
        sections counted once) against the dict-trie bytes the same
        residency would cost.
        """
        with self._lock:
            snapshots = list(self._resident.values())
        packed_bytes = dict_bytes = estimate = 0
        rows = []
        for snapshot in snapshots:
            if snapshot.packed:
                packed_bytes += snapshot.resident_bytes
            else:
                dict_bytes += snapshot.resident_bytes
            estimate += snapshot.dict_bytes_estimate
            rows.append(
                {
                    "index": snapshot.index,
                    "packed": snapshot.packed,
                    "packed_mmap_shared": snapshot.mmap_shared,
                    "resident_bytes": snapshot.resident_bytes,
                    "dict_bytes_estimate": snapshot.dict_bytes_estimate,
                }
            )
        shared = 0
        if self._packed is not None and packed_bytes:
            shared = self._packed.shared_bytes
            packed_bytes += shared
        return MemoryAccounting(
            packed_bytes=packed_bytes,
            dict_bytes=dict_bytes,
            dict_bytes_estimate=estimate,
            shared_bytes=shared,
            versions=tuple(rows),
        )

    def describe(self, *, limit: int | None = None) -> dict:
        """Registry state in the ``/versions`` wire shape."""
        versions = self._store.versions
        if limit is not None and limit >= 0:
            versions = versions[-limit:] if limit else ()
        return {
            "count": len(self._store),
            "active": self.active.describe(),
            "generation": self.generation,
            "resident": list(self.resident_indexes()),
            "versions": [
                {
                    "index": version.index,
                    "date": version.date.isoformat(),
                    "commit": version.commit[:12],
                    "rule_count": version.rule_count,
                }
                for version in versions
            ],
        }
