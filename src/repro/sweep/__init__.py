"""Parallel delta-driven version sweeps (Figures 5-7 at scale).

Public API:

* :class:`~repro.sweep.engine.SweepEngine` — sweep a hostname/request
  universe across a whole :class:`~repro.history.store.VersionStore`,
  serially or over a process pool;
* :class:`~repro.sweep.engine.SweepSeries` — the per-version series it
  returns;
* the chunking helpers in :mod:`repro.sweep.chunks` for callers that
  manage their own pools.
"""

from repro.sweep.chunks import HostChunk, PairChunk, chunk_hosts, chunk_pairs, prepare_hosts
from repro.sweep.engine import (
    DEFAULT_CHUNK_SIZE,
    SweepEngine,
    SweepFailureReport,
    SweepSeries,
)

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "HostChunk",
    "PairChunk",
    "SweepEngine",
    "SweepFailureReport",
    "SweepSeries",
    "chunk_hosts",
    "chunk_pairs",
    "prepare_hosts",
]
