"""Chunking the hostname and request universes for the sweep engine.

The engine fans work out in *fixed-size* chunks: each worker receives
one self-contained task (its slice of the universe plus the rule
history) and returns a partial result the parent merges.  Chunks carry
hostnames together with their labels pre-split, reversed, and interned
— splitting is paid once per hostname for the whole sweep, and the
interned labels hit the trie's children dictionaries with
pointer-equal keys in every worker lookup.

Partitioning is pure bookkeeping: every merge downstream is a
commutative sum, so results are bit-identical for any chunk size and
any worker count (the property tests pin this down).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.webgraph.sites import reversed_labels_of


@dataclass(frozen=True, slots=True)
class HostChunk:
    """One fixed-size slice of the hostname universe.

    ``entries`` pairs each hostname with its reversed, interned label
    tuple so workers never re-split.
    """

    index: int
    entries: tuple[tuple[str, tuple[str, ...]], ...]

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def task_id(self) -> str:
        """Stable identity for the runtime layer (retry bookkeeping,
        checkpoint file names, quarantine reports)."""
        return f"host-{self.index}"


@dataclass(frozen=True, slots=True)
class PairChunk:
    """One fixed-size slice of the (page_host, request_host) universe."""

    index: int
    pairs: tuple[tuple[str, str], ...]

    def __len__(self) -> int:
        return len(self.pairs)

    @property
    def task_id(self) -> str:
        """Stable identity for the runtime layer."""
        return f"pair-{self.index}"


def prepare_hosts(hostnames: Iterable[str]) -> list[tuple[str, tuple[str, ...]]]:
    """Deduplicate and pre-split a hostname universe, preserving order."""
    prepared: dict[str, tuple[str, ...]] = {}
    for host in hostnames:
        if host not in prepared:
            prepared[host] = reversed_labels_of(host)
    return list(prepared.items())


def chunk_hosts(
    prepared: Sequence[tuple[str, tuple[str, ...]]], chunk_size: int
) -> list[HostChunk]:
    """Cut a prepared universe into fixed-size :class:`HostChunk` slices."""
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    return [
        HostChunk(index=i // chunk_size, entries=tuple(prepared[i : i + chunk_size]))
        for i in range(0, len(prepared), chunk_size)
    ]


def chunk_pairs(
    pairs: Sequence[tuple[str, str]], chunk_size: int
) -> list[PairChunk]:
    """Cut a request-pair universe into fixed-size :class:`PairChunk` slices.

    Pairs keep their multiplicity — every pair lands in exactly one
    chunk, so summing per-chunk third-party counts yields the global
    count.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    return [
        PairChunk(index=i // chunk_size, pairs=tuple(pairs[i : i + chunk_size]))
        for i in range(0, len(pairs), chunk_size)
    ]
