"""The parallel, delta-driven version-sweep engine.

The paper's headline figures interpret one web snapshot under every
version of the Public Suffix List — at the paper's scale ~498M
requests x 1,142 lists.  Rebuilding a trie and re-grouping the full
universe per version costs |universe| x |versions| lookups; this
engine makes the sweep cost

    O(universe)  +  O(sum of hostnames each delta touches)

and splits both terms across a worker pool:

* **one trie per worker, never rebuilt** — each worker replays the
  delta chain in place (:meth:`SuffixTrie.apply_delta`) over its chunk
  of the universe;
* **fixed-size chunks, pre-split labels** — the parent splits and
  interns every hostname's labels once (:mod:`repro.sweep.chunks`) and
  fans chunks out over ``ProcessPoolExecutor``;
* **counter merges** — workers return per-version partial counters and
  deltas (:mod:`repro.sweep.workers`) that merge by commutative
  addition, so serial and parallel runs are bit-identical.

``workers=1`` is the serial fallback: the same chunk tasks run inline
through the same merge, which is what the property tests cross-check
against :func:`~repro.webgraph.sites.group_sites` and
:class:`~repro.webgraph.sites.IncrementalGrouper`.

Chunk execution runs on :mod:`repro.runtime` — the resilient layer
that retries crashed workers, rebuilds a broken pool, quarantines
poisoned chunks after a final serial attempt, and (given
``checkpoint_dir``) spills each completed partial so a killed sweep
resumes from the last completed chunk.  A fault-free run remains
bit-identical to ``workers=1``; a degraded run excludes exactly the
chunks enumerated in its :class:`SweepFailureReport`.
"""

from __future__ import annotations

from collections import Counter
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.fingerprint import fingerprint
from repro.history.store import VersionStore
from repro.runtime import (
    CheckpointStore,
    ExecutionReport,
    FaultPlan,
    ResilientExecutor,
    RetryPolicy,
    TaskFailure,
    merge_reports,
)
from repro.sweep.chunks import chunk_hosts, chunk_pairs, prepare_hosts
from repro.sweep.workers import (
    HostPartial,
    HostTask,
    PairPartial,
    PairTask,
    is_valid_host_partial,
    is_valid_pair_partial,
    run_host_chunk,
    run_pair_chunk,
)

DEFAULT_CHUNK_SIZE = 4096

_Task = TypeVar("_Task")
_Partial = TypeVar("_Partial")


@dataclass(frozen=True, slots=True)
class SweepFailureReport:
    """What a sweep survived: quarantines, retries, resume accounting.

    ``degraded`` sweeps produced a series, but one computed over a
    universe missing the quarantined chunks listed here — callers that
    publish numbers must surface that (the CLI exits nonzero with this
    report's :meth:`summary`).
    """

    quarantined_chunks: tuple[str, ...]
    failures: tuple[TaskFailure, ...]
    retried_chunks: tuple[str, ...]
    resumed_chunks: int
    executed_chunks: int
    total_chunks: int
    pool_rebuilds: int
    quarantined_hostnames: int
    quarantined_pairs: int

    @property
    def degraded(self) -> bool:
        return bool(self.quarantined_chunks)

    def summary(self) -> str:
        """One line fit for a terminal diagnosis."""
        if not self.degraded:
            return (
                f"sweep clean: {self.total_chunks} chunks "
                f"({self.resumed_chunks} resumed, {len(self.retried_chunks)} retried, "
                f"{self.pool_rebuilds} pool rebuilds)"
            )
        return (
            f"sweep degraded: quarantined {', '.join(self.quarantined_chunks)} "
            f"({self.quarantined_hostnames} hostnames, {self.quarantined_pairs} "
            f"request pairs excluded) after {self.pool_rebuilds} pool rebuilds"
        )

    def to_json(self) -> dict[str, Any]:
        """A JSON-serializable dump for the persisted failure report."""
        return {
            "degraded": self.degraded,
            "quarantined_chunks": list(self.quarantined_chunks),
            "failures": [
                {"task_id": f.task_id, "attempts": f.attempts, "error": f.error}
                for f in self.failures
            ],
            "retried_chunks": list(self.retried_chunks),
            "resumed_chunks": self.resumed_chunks,
            "executed_chunks": self.executed_chunks,
            "total_chunks": self.total_chunks,
            "pool_rebuilds": self.pool_rebuilds,
            "quarantined_hostnames": self.quarantined_hostnames,
            "quarantined_pairs": self.quarantined_pairs,
        }


@dataclass(frozen=True, slots=True)
class SweepSeries:
    """Per-version series over one history, index-aligned with
    ``store.versions``.

    Series not requested from :meth:`SweepEngine.sweep` are all-zero
    tuples of the right length, so consumers can index them blindly.
    """

    site_counts: tuple[int, ...]
    third_party: tuple[int, ...]
    divergence: tuple[int, ...]
    hostname_count: int
    request_count: int

    @property
    def version_count(self) -> int:
        return len(self.site_counts)


class SweepEngine:
    """Sweeps hostname/request universes across a whole list history.

    Parameters
    ----------
    store:
        The version history to replay.
    workers:
        Process count; ``1`` (the default) runs every chunk inline —
        same code path, no pool.
    chunk_size:
        Hostnames (or request pairs) per worker task; ``None`` picks
        :data:`DEFAULT_CHUNK_SIZE`, shrunk so a parallel run has at
        least ``4 x workers`` chunks to balance.
    resilience:
        The :class:`~repro.runtime.RetryPolicy` handed to the task
        runtime; ``None`` bypasses the runtime entirely (raw pool, the
        pre-resilience behaviour — the overhead benchmark's baseline).
    checkpoint_dir:
        Spill directory for chunk-granular checkpoints; a killed sweep
        re-run with the same directory resumes from the last completed
        chunk.  ``resume=False`` clears any prior spills first.
    fault_plan:
        Deterministic fault injection (tests only).
    """

    def __init__(
        self,
        store: VersionStore,
        *,
        workers: int = 1,
        chunk_size: int | None = None,
        resilience: RetryPolicy | None = RetryPolicy(),
        checkpoint_dir: str | None = None,
        resume: bool = True,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        if len(store) == 0:
            raise ValueError("cannot sweep an empty history")
        if workers < 1:
            raise ValueError("workers must be positive")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        if resilience is None and (checkpoint_dir is not None or fault_plan is not None):
            raise ValueError("checkpointing and fault injection require the runtime layer")
        self._store = store
        self._workers = workers
        self._chunk_size = chunk_size
        self._resilience = resilience
        self._checkpoint_dir = checkpoint_dir
        self._resume = resume
        self._fault_plan = fault_plan
        self._last_failure_report: SweepFailureReport | None = None
        self._initial_rules = store.rules_at(0)
        self._deltas = tuple(version.delta for version in store.versions[1:])

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def last_failure_report(self) -> SweepFailureReport | None:
        """The resilience outcome of the most recent :meth:`sweep`
        (None before any sweep, or when the runtime is bypassed)."""
        return self._last_failure_report

    @property
    def version_count(self) -> int:
        return len(self._deltas) + 1

    # -- fan-out machinery ---------------------------------------------------

    def _effective_chunk_size(self, universe_size: int) -> int:
        if self._chunk_size is not None:
            return self._chunk_size
        size = min(DEFAULT_CHUNK_SIZE, universe_size) or 1
        if self._workers > 1:
            balanced = -(-universe_size // (self._workers * 4))
            size = max(1, min(size, balanced))
        return size

    def _run_tasks_raw(
        self, function: Callable[[_Task], _Partial], tasks: Sequence[_Task]
    ) -> list[_Partial]:
        """The bypass path (``resilience=None``): a bare pool, no retry
        machinery — kept as the overhead benchmark's baseline.

        The serial fallback is *the same* task list through the same
        function — parallelism changes only where the work executes.
        An empty task list short-circuits before pool construction
        (``max_workers=0`` would raise).
        """
        if not tasks:
            return []
        if self._workers == 1 or len(tasks) <= 1:
            return [function(task) for task in tasks]
        with ProcessPoolExecutor(max_workers=min(self._workers, len(tasks))) as pool:
            futures = [pool.submit(function, task) for task in tasks]
            return [future.result() for future in futures]

    def _sweep_fingerprint(
        self,
        prepared: Sequence[tuple[str, tuple[str, ...]]],
        pairs: Sequence[tuple[str, str]],
        host_chunk: int,
        pair_chunk: int,
        sites: bool,
        divergence: bool,
        baseline_index: int,
        universe_fingerprint: str | None,
    ) -> str:
        """Identity of one sweep's inputs and chunking.

        Checkpoints are only reusable when replaying them is guaranteed
        bit-identical, so the material covers the history tip, the
        universes, the chunk boundaries, and the series flags — keyed
        through the canonical :func:`repro.fingerprint.fingerprint`
        scheme shared with the pipeline's artifact store.  When the
        caller already fingerprinted the universes (the sweep *stage*
        of :mod:`repro.analysis.pipeline` passes its own artifact
        fingerprint), that digest substitutes for hashing the universe
        content again — one keying scheme, not two.
        """
        material: dict[str, Any] = {
            "scheme": "sweep-v2",
            "versions": self.version_count,
            "tip": self._store.latest.set_digest,
            "host_chunk": host_chunk,
            "pair_chunk": pair_chunk,
            "sites": sites,
            "divergence": divergence,
            "baseline": baseline_index,
        }
        if universe_fingerprint is not None:
            material["universe"] = universe_fingerprint
        else:
            material["hostnames"] = [host for host, _labels in prepared]
            material["pairs"] = [list(pair) for pair in pairs]
        return fingerprint(material)

    def _run_resilient(
        self,
        host_tasks: Sequence[HostTask],
        pair_tasks: Sequence[PairTask],
        fingerprint: str,
    ) -> tuple[list[HostPartial | None], list[PairPartial | None], ExecutionReport]:
        """Run both task families on the resilient runtime."""
        checkpoint = None
        if self._checkpoint_dir is not None:
            checkpoint = CheckpointStore(self._checkpoint_dir)
            checkpoint.reconcile(fingerprint, resume=self._resume)
        executor = ResilientExecutor(
            workers=self._workers,
            policy=self._resilience,
            checkpoint=checkpoint,
            fault_plan=self._fault_plan,
        )
        delta_count = len(self._deltas)
        host_partials, host_report = executor.run(
            run_host_chunk,
            host_tasks,
            task_ids=[task.chunk.task_id for task in host_tasks],
            validate=lambda partial: is_valid_host_partial(partial, delta_count),
        )
        pair_partials, pair_report = executor.run(
            run_pair_chunk,
            pair_tasks,
            task_ids=[task.chunk.task_id for task in pair_tasks],
            validate=lambda partial: is_valid_pair_partial(partial, self.version_count),
        )
        return host_partials, pair_partials, merge_reports(host_report, pair_report)

    def _failure_report(
        self,
        report: ExecutionReport,
        host_tasks: Sequence[HostTask],
        pair_tasks: Sequence[PairTask],
    ) -> SweepFailureReport:
        sizes = {task.chunk.task_id: len(task.chunk) for task in host_tasks}
        pair_sizes = {task.chunk.task_id: len(task.chunk) for task in pair_tasks}
        quarantined = report.quarantined_ids
        return SweepFailureReport(
            quarantined_chunks=quarantined,
            failures=report.quarantined,
            retried_chunks=report.retried,
            resumed_chunks=report.resumed,
            executed_chunks=report.executed,
            total_chunks=report.total,
            pool_rebuilds=report.pool_rebuilds,
            quarantined_hostnames=sum(sizes.get(task_id, 0) for task_id in quarantined),
            quarantined_pairs=sum(pair_sizes.get(task_id, 0) for task_id in quarantined),
        )

    # -- the combined sweep --------------------------------------------------

    def sweep(
        self,
        hostnames: Iterable[str] = (),
        pairs: Sequence[tuple[str, str]] = (),
        *,
        sites: bool = True,
        divergence: bool = True,
        baseline_index: int = -1,
        universe_fingerprint: str | None = None,
    ) -> SweepSeries:
        """Evaluate a universe under every version in one fan-out.

        ``hostnames`` drives the site and divergence series (Figures 5
        and 7), ``pairs`` the third-party series (Figure 6);
        ``baseline_index`` is the version the divergence series
        compares against (default: the newest).
        ``universe_fingerprint`` optionally identifies the universes by
        an externally computed digest (the pipeline's sweep-stage
        fingerprint), sparing the checkpoint manifest a second pass
        over the content.
        """
        prepared = prepare_hosts(hostnames)
        baseline_rules = (
            self._store.rules_at(baseline_index) if (divergence and prepared) else None
        )

        host_chunk_size = self._effective_chunk_size(len(prepared))
        pair_chunk_size = self._effective_chunk_size(len(pairs))
        host_tasks = [
            HostTask(
                chunk=chunk,
                initial_rules=self._initial_rules,
                deltas=self._deltas,
                baseline_rules=baseline_rules,
                track_sites=sites,
            )
            for chunk in chunk_hosts(prepared, host_chunk_size)
        ]
        pair_tasks = [
            PairTask(chunk=chunk, initial_rules=self._initial_rules, deltas=self._deltas)
            for chunk in chunk_pairs(pairs, pair_chunk_size)
        ]

        if self._resilience is None:
            host_partials = self._run_tasks_raw(run_host_chunk, host_tasks)
            pair_partials = self._run_tasks_raw(run_pair_chunk, pair_tasks)
            self._last_failure_report = None
        else:
            manifest_key = ""
            if self._checkpoint_dir is not None:
                manifest_key = self._sweep_fingerprint(
                    prepared, pairs, host_chunk_size, pair_chunk_size,
                    sites, divergence, baseline_index, universe_fingerprint,
                )
            maybe_hosts, maybe_pairs, report = self._run_resilient(
                host_tasks, pair_tasks, manifest_key
            )
            # Quarantined chunks leave None slots; the merges fold the
            # survivors in original chunk order, so a clean run stays
            # bit-identical to the serial path.
            host_partials = [partial for partial in maybe_hosts if partial is not None]
            pair_partials = [partial for partial in maybe_pairs if partial is not None]
            self._last_failure_report = self._failure_report(report, host_tasks, pair_tasks)

        return SweepSeries(
            site_counts=self._merge_sites(host_partials) if sites else self._zeros(),
            third_party=self._merge_third_party(pair_partials),
            divergence=(
                self._merge_divergence(host_partials)
                if baseline_rules is not None
                else self._zeros()
            ),
            hostname_count=len(prepared),
            request_count=len(pairs),
        )

    # -- merges ---------------------------------------------------------------

    def _zeros(self) -> tuple[int, ...]:
        return (0,) * self.version_count

    def _merge_sites(self, partials: list[HostPartial]) -> tuple[int, ...]:
        """Fold per-chunk site counters into the global distinct count.

        A site can span chunks (``a.foo.com`` and ``b.foo.com`` may
        land in different workers), so distinctness is only decidable
        after summation — this is the one merge that has to keep a
        live counter across versions.
        """
        counter: Counter[str] = Counter()
        for partial in partials:
            counter.update(partial.initial_sites)
        series = [len(counter)]
        for version in range(len(self._deltas)):
            for partial in partials:
                for site, change in partial.site_deltas[version].items():
                    updated = counter[site] + change
                    if updated:
                        counter[site] = updated
                    else:
                        del counter[site]
            series.append(len(counter))
        return tuple(series)

    def _merge_divergence(self, partials: list[HostPartial]) -> tuple[int, ...]:
        divergent = sum(partial.initial_divergent for partial in partials)
        series = [divergent]
        for version in range(len(self._deltas)):
            divergent += sum(partial.divergence_deltas[version] for partial in partials)
            series.append(divergent)
        return tuple(series)

    def _merge_third_party(self, partials: list[PairPartial]) -> tuple[int, ...]:
        return tuple(
            sum(partial.counts[version] for partial in partials)
            for version in range(self.version_count)
        )

    # -- the narrow entry points ----------------------------------------------

    def sweep_sites(self, hostnames: Iterable[str]) -> tuple[int, ...]:
        """Figure 5's series: distinct sites under each version."""
        return self.sweep(hostnames, (), sites=True, divergence=False).site_counts

    def sweep_third_party(self, pairs: Sequence[tuple[str, str]]) -> tuple[int, ...]:
        """Figure 6's series: third-party requests under each version."""
        return self.sweep((), pairs).third_party

    def sweep_divergence(
        self, hostnames: Iterable[str], *, baseline_index: int = -1
    ) -> tuple[int, ...]:
        """Figure 7's series: hostnames whose site differs from their
        site under the baseline version."""
        return self.sweep(
            hostnames, (), sites=False, divergence=True, baseline_index=baseline_index
        ).divergence
