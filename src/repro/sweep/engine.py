"""The parallel, delta-driven version-sweep engine.

The paper's headline figures interpret one web snapshot under every
version of the Public Suffix List — at the paper's scale ~498M
requests x 1,142 lists.  Rebuilding a trie and re-grouping the full
universe per version costs |universe| x |versions| lookups; this
engine makes the sweep cost

    O(universe)  +  O(sum of hostnames each delta touches)

and splits both terms across a worker pool:

* **one trie per worker, never rebuilt** — each worker replays the
  delta chain in place (:meth:`SuffixTrie.apply_delta`) over its chunk
  of the universe;
* **fixed-size chunks, pre-split labels** — the parent splits and
  interns every hostname's labels once (:mod:`repro.sweep.chunks`) and
  fans chunks out over ``ProcessPoolExecutor``;
* **counter merges** — workers return per-version partial counters and
  deltas (:mod:`repro.sweep.workers`) that merge by commutative
  addition, so serial and parallel runs are bit-identical.

``workers=1`` is the serial fallback: the same chunk tasks run inline
through the same merge, which is what the property tests cross-check
against :func:`~repro.webgraph.sites.group_sites` and
:class:`~repro.webgraph.sites.IncrementalGrouper`.
"""

from __future__ import annotations

from collections import Counter
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeVar

from repro.history.store import VersionStore
from repro.sweep.chunks import chunk_hosts, chunk_pairs, prepare_hosts
from repro.sweep.workers import (
    HostPartial,
    HostTask,
    PairPartial,
    PairTask,
    run_host_chunk,
    run_pair_chunk,
)

DEFAULT_CHUNK_SIZE = 4096

_Task = TypeVar("_Task")
_Partial = TypeVar("_Partial")


@dataclass(frozen=True, slots=True)
class SweepSeries:
    """Per-version series over one history, index-aligned with
    ``store.versions``.

    Series not requested from :meth:`SweepEngine.sweep` are all-zero
    tuples of the right length, so consumers can index them blindly.
    """

    site_counts: tuple[int, ...]
    third_party: tuple[int, ...]
    divergence: tuple[int, ...]
    hostname_count: int
    request_count: int

    @property
    def version_count(self) -> int:
        return len(self.site_counts)


class SweepEngine:
    """Sweeps hostname/request universes across a whole list history.

    Parameters
    ----------
    store:
        The version history to replay.
    workers:
        Process count; ``1`` (the default) runs every chunk inline —
        same code path, no pool.
    chunk_size:
        Hostnames (or request pairs) per worker task; ``None`` picks
        :data:`DEFAULT_CHUNK_SIZE`, shrunk so a parallel run has at
        least ``4 x workers`` chunks to balance.
    """

    def __init__(
        self,
        store: VersionStore,
        *,
        workers: int = 1,
        chunk_size: int | None = None,
    ) -> None:
        if len(store) == 0:
            raise ValueError("cannot sweep an empty history")
        if workers < 1:
            raise ValueError("workers must be positive")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        self._store = store
        self._workers = workers
        self._chunk_size = chunk_size
        self._initial_rules = store.rules_at(0)
        self._deltas = tuple(version.delta for version in store.versions[1:])

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def version_count(self) -> int:
        return len(self._deltas) + 1

    # -- fan-out machinery ---------------------------------------------------

    def _effective_chunk_size(self, universe_size: int) -> int:
        if self._chunk_size is not None:
            return self._chunk_size
        size = min(DEFAULT_CHUNK_SIZE, universe_size) or 1
        if self._workers > 1:
            balanced = -(-universe_size // (self._workers * 4))
            size = max(1, min(size, balanced))
        return size

    def _run_tasks(
        self, function: Callable[[_Task], _Partial], tasks: Sequence[_Task]
    ) -> list[_Partial]:
        """Run chunk tasks, serially or on the pool; order-preserving.

        The serial fallback is *the same* task list through the same
        function — parallelism changes only where the work executes.
        """
        if self._workers == 1 or len(tasks) <= 1:
            return [function(task) for task in tasks]
        with ProcessPoolExecutor(max_workers=min(self._workers, len(tasks))) as pool:
            futures = [pool.submit(function, task) for task in tasks]
            return [future.result() for future in futures]

    # -- the combined sweep --------------------------------------------------

    def sweep(
        self,
        hostnames: Iterable[str] = (),
        pairs: Sequence[tuple[str, str]] = (),
        *,
        sites: bool = True,
        divergence: bool = True,
        baseline_index: int = -1,
    ) -> SweepSeries:
        """Evaluate a universe under every version in one fan-out.

        ``hostnames`` drives the site and divergence series (Figures 5
        and 7), ``pairs`` the third-party series (Figure 6);
        ``baseline_index`` is the version the divergence series
        compares against (default: the newest).
        """
        prepared = prepare_hosts(hostnames)
        baseline_rules = (
            self._store.rules_at(baseline_index) if (divergence and prepared) else None
        )

        host_tasks = [
            HostTask(
                chunk=chunk,
                initial_rules=self._initial_rules,
                deltas=self._deltas,
                baseline_rules=baseline_rules,
                track_sites=sites,
            )
            for chunk in chunk_hosts(prepared, self._effective_chunk_size(len(prepared)))
        ]
        pair_tasks = [
            PairTask(chunk=chunk, initial_rules=self._initial_rules, deltas=self._deltas)
            for chunk in chunk_pairs(pairs, self._effective_chunk_size(len(pairs)))
        ]

        host_partials = self._run_tasks(run_host_chunk, host_tasks)
        pair_partials = self._run_tasks(run_pair_chunk, pair_tasks)

        return SweepSeries(
            site_counts=self._merge_sites(host_partials) if sites else self._zeros(),
            third_party=self._merge_third_party(pair_partials),
            divergence=(
                self._merge_divergence(host_partials)
                if baseline_rules is not None
                else self._zeros()
            ),
            hostname_count=len(prepared),
            request_count=len(pairs),
        )

    # -- merges ---------------------------------------------------------------

    def _zeros(self) -> tuple[int, ...]:
        return (0,) * self.version_count

    def _merge_sites(self, partials: list[HostPartial]) -> tuple[int, ...]:
        """Fold per-chunk site counters into the global distinct count.

        A site can span chunks (``a.foo.com`` and ``b.foo.com`` may
        land in different workers), so distinctness is only decidable
        after summation — this is the one merge that has to keep a
        live counter across versions.
        """
        counter: Counter[str] = Counter()
        for partial in partials:
            counter.update(partial.initial_sites)
        series = [len(counter)]
        for version in range(len(self._deltas)):
            for partial in partials:
                for site, change in partial.site_deltas[version].items():
                    updated = counter[site] + change
                    if updated:
                        counter[site] = updated
                    else:
                        del counter[site]
            series.append(len(counter))
        return tuple(series)

    def _merge_divergence(self, partials: list[HostPartial]) -> tuple[int, ...]:
        divergent = sum(partial.initial_divergent for partial in partials)
        series = [divergent]
        for version in range(len(self._deltas)):
            divergent += sum(partial.divergence_deltas[version] for partial in partials)
            series.append(divergent)
        return tuple(series)

    def _merge_third_party(self, partials: list[PairPartial]) -> tuple[int, ...]:
        return tuple(
            sum(partial.counts[version] for partial in partials)
            for version in range(self.version_count)
        )

    # -- the narrow entry points ----------------------------------------------

    def sweep_sites(self, hostnames: Iterable[str]) -> tuple[int, ...]:
        """Figure 5's series: distinct sites under each version."""
        return self.sweep(hostnames, (), sites=True, divergence=False).site_counts

    def sweep_third_party(self, pairs: Sequence[tuple[str, str]]) -> tuple[int, ...]:
        """Figure 6's series: third-party requests under each version."""
        return self.sweep((), pairs).third_party

    def sweep_divergence(
        self, hostnames: Iterable[str], *, baseline_index: int = -1
    ) -> tuple[int, ...]:
        """Figure 7's series: hostnames whose site differs from their
        site under the baseline version."""
        return self.sweep(
            hostnames, (), sites=False, divergence=True, baseline_index=baseline_index
        ).divergence
