"""Worker-side of the sweep engine: replay one chunk across a history.

Each worker owns **one** :class:`~repro.psl.trie.SuffixTrie` (inside an
:class:`~repro.webgraph.sites.IncrementalGrouper`) for the entire
history and applies :class:`~repro.psl.diff.RuleDelta`\\ s in place —
never rebuilding per version.  What travels back to the parent is
deliberately small:

* for a :class:`~repro.sweep.chunks.HostChunk` — the chunk's initial
  site counter plus, per version, only the *changes* (a site-count
  delta dict and a divergence delta), each proportional to the
  hostnames a delta touched, not to the chunk;
* for a :class:`~repro.sweep.chunks.PairChunk` — one third-party count
  per version.

Everything here is a module-level function operating on picklable
dataclasses, which is what lets ``ProcessPoolExecutor`` ship tasks to
forked workers; the serial path calls the same functions inline.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import FrozenSet, Sequence

from repro.psl.diff import RuleDelta
from repro.psl.rules import Rule
from repro.psl.trie import SuffixTrie
from repro.sweep.chunks import HostChunk, PairChunk
from repro.webgraph.sites import IncrementalGrouper, site_for_reversed
from repro.webgraph.thirdparty import ThirdPartyCounter


@dataclass(frozen=True, slots=True)
class HostTask:
    """One host chunk plus the full rule history to replay over it.

    ``baseline_rules`` being None disables divergence tracking;
    ``track_sites`` disables the site counters (a divergence-only sweep
    ships even less data back).
    """

    chunk: HostChunk
    initial_rules: FrozenSet[Rule]
    deltas: tuple[RuleDelta, ...]
    baseline_rules: FrozenSet[Rule] | None
    track_sites: bool


@dataclass(frozen=True, slots=True)
class HostPartial:
    """What one host chunk contributes to the merged sweep."""

    index: int
    initial_sites: Counter
    site_deltas: tuple[dict[str, int], ...]
    initial_divergent: int
    divergence_deltas: tuple[int, ...]


@dataclass(frozen=True, slots=True)
class PairTask:
    """One request-pair chunk plus the rule history."""

    chunk: PairChunk
    initial_rules: FrozenSet[Rule]
    deltas: tuple[RuleDelta, ...]


@dataclass(frozen=True, slots=True)
class PairPartial:
    """Per-version third-party counts for one pair chunk."""

    index: int
    counts: tuple[int, ...]


def run_host_chunk(task: HostTask) -> HostPartial:
    """Replay the whole history over one host chunk."""
    prepared = dict(task.chunk.entries)
    grouper = IncrementalGrouper(task.initial_rules, (), prepared=prepared)

    initial_sites = Counter(grouper.site_sizes) if task.track_sites else Counter()

    baseline: dict[str, str] | None = None
    initial_divergent = 0
    if task.baseline_rules is not None:
        baseline_trie = SuffixTrie(task.baseline_rules)
        baseline = {
            host: site_for_reversed(baseline_trie, rlabels)
            for host, rlabels in task.chunk.entries
        }
        initial_divergent = sum(
            1 for host, site in baseline.items() if grouper.site_of(host) != site
        )

    site_deltas: list[dict[str, int]] = []
    divergence_deltas: list[int] = []
    for delta in task.deltas:
        changes = grouper.apply_detailed(delta)
        counts: dict[str, int] = {}
        diverged = 0
        for host, old_site, new_site in changes:
            if task.track_sites:
                counts[old_site] = counts.get(old_site, 0) - 1
                counts[new_site] = counts.get(new_site, 0) + 1
            if baseline is not None:
                final_site = baseline[host]
                diverged += (new_site != final_site) - (old_site != final_site)
        site_deltas.append({site: n for site, n in counts.items() if n})
        divergence_deltas.append(diverged)

    return HostPartial(
        index=task.chunk.index,
        initial_sites=initial_sites,
        site_deltas=tuple(site_deltas),
        initial_divergent=initial_divergent,
        divergence_deltas=tuple(divergence_deltas),
    )


def is_valid_host_partial(partial: object, delta_count: int) -> bool:
    """Shape check the runtime uses to reject corrupt host partials.

    A partial that survived pickling but lost its per-version structure
    (wrong type, truncated delta tuples) would silently skew the merge;
    validation turns it into a retryable failure instead.
    """
    return (
        isinstance(partial, HostPartial)
        and isinstance(partial.initial_sites, Counter)
        and len(partial.site_deltas) == delta_count
        and len(partial.divergence_deltas) == delta_count
    )


def is_valid_pair_partial(partial: object, version_count: int) -> bool:
    """Shape check for pair partials: one count per version."""
    return isinstance(partial, PairPartial) and len(partial.counts) == version_count


def run_pair_chunk(task: PairTask) -> PairPartial:
    """Replay the whole history over one request-pair chunk.

    The chunk tracks only the hostnames its own pairs mention; a host
    appearing in several chunks is replayed by each of them, which
    costs a little duplicated lookup work but keeps chunks fully
    independent (no cross-worker assignment sharing).
    """
    hosts = sorted({host for pair in task.chunk.pairs for host in pair})
    grouper = IncrementalGrouper(task.initial_rules, hosts)
    counter = ThirdPartyCounter(grouper.assignment, task.chunk.pairs)
    counts = [counter.count]
    for delta in task.deltas:
        changed = grouper.apply(delta)
        if changed:
            counter.update(grouper.assignment, changed)
        counts.append(counter.count)
    return PairPartial(index=task.chunk.index, counts=tuple(counts))
