"""The live-list update loop: the counterexample to vendored staleness.

The paper's central harm is the *stale vendored copy*: a project
snapshots the Public Suffix List once and silently drifts for years
(EXPERIMENTS.md's refresh-policy counterfactual: a 365-day maximum
list age removes >80% of the measured misclassified hostnames).
:mod:`repro.update` makes our own serving tier the counterexample — a
loop that continuously ingests new list versions, survives every
upstream failure mode, and monitors its *own* staleness as a
first-class SLO.

Layering::

    SyntheticUpstream  (upstream.py)  the version history served as a
         |                            faultable remote: dated patch /
         |                            full-snapshot envelopes behind a
         |                            deterministic UpstreamFaultPlan
    Watcher            (watcher.py)   poll -> validate (checksum,
         |                            parse, clean apply, digest,
         |                            packed CRC) -> atomic hot-swap
         |                            via SnapshotRegistry.ingest;
         |                            quarantine + full-snapshot
         |                            resync; IngestJournal replay log
    SLO layer          (slo.py)       fresh / stale / degraded health
         |                            from age, versions-behind, and
         |                            failed polls; /healthz + gauges
    psl-update         (cli.py)       the fault-plan soak: every
                                      failure mode injected under live
                                      client load, zero failed
                                      requests, exact lineage, replay

See ``docs/runbook.md`` for the operator's view and
``make update-faults`` / ``make bench-update`` for the gates.
"""

from repro.update.slo import HealthState, SloPolicy, UpdateStatus, evaluate
from repro.update.upstream import (
    HeadInfo,
    SyntheticUpstream,
    UpstreamError,
    UpstreamFault,
    UpstreamFaultKind,
    UpstreamFaultPlan,
    UpstreamTimeout,
    UpstreamUnreachable,
    VersionEnvelope,
)
from repro.update.watcher import (
    IngestJournal,
    IngestRecord,
    UpdateValidationError,
    Watcher,
    WatcherConfig,
)

__all__ = [
    "HeadInfo",
    "HealthState",
    "IngestJournal",
    "IngestRecord",
    "SloPolicy",
    "SyntheticUpstream",
    "UpdateStatus",
    "UpdateValidationError",
    "UpstreamError",
    "UpstreamFault",
    "UpstreamFaultKind",
    "UpstreamFaultPlan",
    "UpstreamTimeout",
    "UpstreamUnreachable",
    "VersionEnvelope",
    "Watcher",
    "WatcherConfig",
    "evaluate",
]
