"""``psl-update``: the fault-plan soak for the live-update loop.

One command proves the robustness contract end to end, under live
client load, with every injected upstream failure mode at once::

    python -m repro.update.cli --soak        # (= make update-faults)

The soak builds the synthetic history, starts a real
:class:`~repro.serve.http.PslServer` that is deliberately ``--behind``
versions stale, points a :class:`~repro.update.watcher.Watcher` at a
:class:`~repro.update.upstream.SyntheticUpstream` carrying a fault
plan that injects **unreachable**, **hang**, **truncated body**,
**corrupt patch**, and **bad checksum** faults (both transient and
persistent), and then hammers the server from client threads while the
watcher catches up.  It asserts:

* zero client requests fail during live swaps;
* exactly the persistently-poisoned versions are quarantined, and
  every later version still arrives (full-snapshot resync) — the
  final active snapshot matches the upstream tip rule-for-rule;
* the staleness SLO surface (``/healthz`` + ``/metrics``) agrees
  exactly with what the ingest journal implies;
* replaying the same fault plan against a fresh registry reproduces a
  byte-identical journal and lineage;
* the server drains gracefully at the end.

Exit status 0 means every check passed.
"""

from __future__ import annotations

import argparse
import datetime
import json
import sys
import threading
import time
import urllib.error
import urllib.request

from repro.history.store import VersionStore
from repro.history.synthesis import SynthesisConfig, synthesize_history
from repro.runtime.executor import RetryPolicy
from repro.serve.engine import QueryEngine
from repro.serve.http import PslServer
from repro.serve.snapshots import SnapshotRegistry
from repro.update.slo import SloPolicy
from repro.update.upstream import (
    ALWAYS,
    HEAD_KEY,
    SyntheticUpstream,
    UpstreamFault,
    UpstreamFaultKind,
    UpstreamFaultPlan,
    full_key,
    patch_key,
)
from repro.update.watcher import IngestJournal, Watcher, WatcherConfig

DEFAULT_SEED = 20230701

#: Hostnames the client threads cycle through (a mix of shapes).
PROBE_HOSTS = (
    "www.example.co.uk",
    "cdn.static.example.com",
    "a.b.city.kawasaki.jp",
    "deep.sub.domain.example.org",
    "tracker.ads.example.net",
    "shop.example.io",
)


def build_fault_plan(pending: list[int], *, retry_attempts: int) -> UpstreamFaultPlan:
    """Every failure mode across the pending versions, deterministic.

    Transient faults clear within one retry budget; the two persistent
    (``ALWAYS``) faults force quarantine + full-snapshot resync.  The
    head poll itself fails for exactly one whole poll (all
    ``retry_attempts`` exhausted) before recovering.
    """
    faults: dict[str, UpstreamFault] = {
        # One entire failed poll: attempts == the per-poll retry budget.
        HEAD_KEY: UpstreamFault(UpstreamFaultKind.UNREACHABLE, attempts=retry_attempts),
    }
    if len(pending) >= 8:
        p = pending
        faults[patch_key(p[1])] = UpstreamFault(UpstreamFaultKind.UNREACHABLE, attempts=2)
        faults[patch_key(p[2])] = UpstreamFault(
            UpstreamFaultKind.HANG, attempts=1, hang_seconds=0.25
        )
        faults[patch_key(p[3])] = UpstreamFault(UpstreamFaultKind.TRUNCATE, attempts=1)
        faults[patch_key(p[4])] = UpstreamFault(UpstreamFaultKind.CORRUPT_PATCH, attempts=ALWAYS)
        faults[full_key(p[5])] = UpstreamFault(UpstreamFaultKind.UNREACHABLE, attempts=1)
        faults[patch_key(p[6])] = UpstreamFault(UpstreamFaultKind.BAD_CHECKSUM, attempts=ALWAYS)
        faults[patch_key(p[0])] = UpstreamFault(UpstreamFaultKind.BAD_CHECKSUM, attempts=1)
    return UpstreamFaultPlan(faults=faults)


def prefix_store(full: VersionStore, count: int) -> VersionStore:
    """First ``count`` versions as their own store (vendored-at state)."""
    store = VersionStore()
    for version in full.versions[:count]:
        store.commit(version.date, version.delta, message=version.message)
    return store


def run_watcher(
    truth: VersionStore,
    plan: UpstreamFaultPlan,
    local_count: int,
    polls: int,
    *,
    registry: SnapshotRegistry | None = None,
    today: datetime.date,
    real_sleep: bool,
) -> tuple[Watcher, SyntheticUpstream]:
    """One complete watcher run (the replay harness uses this twice)."""
    if registry is None:
        registry = SnapshotRegistry(prefix_store(truth, local_count))
    sleep = time.sleep if real_sleep else (lambda seconds: None)
    upstream = SyntheticUpstream(truth, plan=plan, client_timeout=0.2, sleep=sleep)
    watcher = Watcher(
        registry,
        upstream,
        config=WatcherConfig(
            poll_interval=0.05,
            retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
            slo=SloPolicy(max_age_days=365, max_versions_behind=1, max_failed_polls=3),
        ),
        sleep=sleep,
        today=lambda: today,
    )
    for _ in range(polls):
        watcher.poll_once()
    return watcher, upstream


def _fetch_json(url: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def soak(args: argparse.Namespace) -> int:
    failures: list[str] = []

    def check(name: str, condition: bool, detail: str = "") -> None:
        line = f"{'ok' if condition else 'FAIL':4s} {name}"
        if detail and not condition:
            line += f" — {detail}"
        print(line)
        if not condition:
            failures.append(name)

    print("synthesizing history…", flush=True)
    truth = synthesize_history(SynthesisConfig(seed=args.seed))
    behind = max(8, args.behind)
    local_count = len(truth) - behind
    pending = list(range(local_count, len(truth)))
    retry_attempts = 3
    plan = build_fault_plan(pending, retry_attempts=retry_attempts)
    today = truth.latest.date + datetime.timedelta(days=1)

    print(
        f"serving {local_count} versions, upstream head v{len(truth) - 1} "
        f"({behind} behind); fault plan: {len(plan.faults)} injected faults"
    )
    registry = SnapshotRegistry(prefix_store(truth, local_count))
    engine = QueryEngine(registry, cache_capacity=16384, shards=4)
    server = PslServer(
        ("127.0.0.1", 0), registry, engine=engine, max_inflight=64, request_timeout=5.0
    )
    upstream = SyntheticUpstream(truth, plan=plan, client_timeout=0.2)
    watcher = Watcher(
        registry,
        upstream,
        config=WatcherConfig(
            poll_interval=0.05,
            retry=RetryPolicy(max_attempts=retry_attempts, backoff_base=0.0),
            slo=SloPolicy(max_age_days=365, max_versions_behind=1, max_failed_polls=3),
        ),
        today=lambda: today,
    )
    server.attach_watcher(watcher)
    server_thread = threading.Thread(target=server.serve_forever, daemon=True)
    server_thread.start()

    # -- client load: hammer /site while the watcher swaps live ------------
    stop_clients = threading.Event()
    client_errors: list[str] = []
    requests_made = [0] * args.clients
    versions_seen: set[int] = set()
    seen_lock = threading.Lock()

    def client(worker: int) -> None:
        opener = urllib.request.build_opener()
        position = worker
        while not stop_clients.is_set():
            host = PROBE_HOSTS[position % len(PROBE_HOSTS)]
            position += 1
            try:
                with opener.open(f"{server.url}/site?host={host}", timeout=10) as response:
                    body = json.loads(response.read())
                    if response.status != 200:
                        client_errors.append(f"status {response.status}")
                    with seen_lock:
                        versions_seen.add(body["version"])
            except Exception as exc:  # any client-visible failure counts
                client_errors.append(repr(exc))
            requests_made[worker] += 1

    threads = [threading.Thread(target=client, args=(i,), daemon=True) for i in range(args.clients)]
    for thread in threads:
        thread.start()

    # -- drive the watcher until it has caught up ---------------------------
    polls = 0
    while polls < 12:
        watcher.poll_once()
        polls += 1
        status = watcher.status()
        if polls >= 2 and status.versions_behind == 0:
            break
        time.sleep(0.05)
    time.sleep(0.2)  # let clients observe the final version
    stop_clients.set()
    for thread in threads:
        thread.join(timeout=5)

    status = watcher.status()
    journal = watcher.journal
    counts = journal.counts()
    total_requests = sum(requests_made)
    quarantined = sorted(watcher.quarantined)
    expected_quarantined = [pending[4], pending[6]]
    expected_resynced = [pending[5], pending[7]]
    expected_accepted = [i for i in pending if i not in quarantined and i not in expected_resynced]

    print(
        f"\n{total_requests} client requests across {args.clients} threads; "
        f"{polls} polls; journal: {counts}"
    )
    check("zero failed client requests", not client_errors, "; ".join(client_errors[:3]))
    check("clients observed live swaps", len(versions_seen) > 1, str(sorted(versions_seen)))
    check(
        "first poll failed (injected head outage)",
        journal.records[0].action == "poll_failed",
        journal.records[0].action,
    )
    check(
        "quarantined exactly the poisoned versions",
        quarantined == expected_quarantined,
        f"{quarantined} != {expected_quarantined}",
    )
    lineage = journal.lineage()
    check(
        "every non-poisoned version ingested in order",
        [index for index, _, _ in lineage] == sorted(expected_accepted + expected_resynced),
        str(lineage),
    )
    check(
        "resync path used after each quarantine",
        [index for index, action, _ in lineage if action == "resynced"] == expected_resynced,
        str(lineage),
    )
    tip_fingerprint = truth.checkout(len(truth) - 1).fingerprint
    check(
        "active snapshot matches upstream tip rule-for-rule",
        registry.active.fingerprint == tip_fingerprint,
        f"{registry.active.fingerprint[:12]} != {tip_fingerprint[:12]}",
    )
    check("caught up: zero versions behind", status.versions_behind == 0, str(status.to_json()))
    check("health state is fresh", status.state.value == "fresh", status.state.value)

    # -- the SLO surface must agree exactly with the journal ----------------
    health_status, health = _fetch_json(server.url + "/healthz")
    update = health.get("update", {})
    check("/healthz carries the update block", health_status == 200 and bool(update), str(health))
    check(
        "/healthz accepted/resynced/quarantined match the journal",
        update.get("accepted") == counts.get("accepted", 0)
        and update.get("resynced") == counts.get("resynced", 0)
        and update.get("quarantined") == len(expected_quarantined),
        str(update),
    )
    with urllib.request.urlopen(server.url + "/metrics", timeout=10) as response:
        metrics_text = response.read().decode()
    expectations = {
        "psl_serve_update_versions_behind 0": True,
        f"psl_serve_update_accepted_total {counts.get('accepted', 0)}": True,
        f"psl_serve_update_resynced_total {counts.get('resynced', 0)}": True,
        f"psl_serve_update_quarantined_total {len(expected_quarantined)}": True,
        f"psl_serve_update_polls_total {polls}": True,
        'psl_serve_update_health{state="fresh"} 1': True,
        'psl_serve_update_health{state="degraded"} 0': True,
    }
    for needle in expectations:
        check(f"/metrics exact: {needle}", needle in metrics_text)
    swaps = len(lineage)
    check(
        "one hot-swap per ingested version",
        f"psl_serve_snapshot_swaps_total {swaps}" in metrics_text,
        f"expected {swaps}",
    )

    # -- deterministic replay ------------------------------------------------
    print("\nreplaying the same fault plan against a fresh registry…")
    replay_watcher, _ = run_watcher(
        truth, plan, local_count, polls, today=today, real_sleep=False
    )
    check(
        "replayed journal is byte-identical",
        replay_watcher.journal.to_json() == journal.to_json(),
        "journals diverge",
    )
    check(
        "replayed lineage is identical",
        replay_watcher.journal.lineage() == lineage,
    )

    # -- graceful drain ------------------------------------------------------
    drained = server.drain(deadline=5.0)
    server_thread.join(timeout=5)
    check("graceful drain completed", drained)
    check("watcher thread stopped", not watcher.running)
    try:
        urllib.request.urlopen(server.url + "/healthz", timeout=2)
        still_up = True
    except Exception:
        still_up = False
    check("server refuses connections after drain", not still_up)

    if args.journal_out:
        with open(args.journal_out, "w", encoding="utf-8") as handle:
            json.dump(
                {"fault_plan": plan.to_json(), "polls": polls, "journal": journal.to_json()},
                handle,
                indent=1,
                sort_keys=True,
            )
        print(f"journal + fault plan written to {args.journal_out}")

    if failures:
        print(f"\nsoak FAILED: {len(failures)} check(s): {', '.join(failures)}")
        return 1
    print(
        f"\nsoak ok: {total_requests} live requests with zero failures while "
        f"{len(lineage)} versions hot-swapped, {len(expected_quarantined)} poisoned "
        "versions quarantined, SLO surface exact, replay identical, drain clean"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="psl-update",
        description="Fault-plan soak for the live-list update loop.",
    )
    parser.add_argument("--soak", action="store_true", help="run the full soak (default action)")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED, help="world seed")
    parser.add_argument(
        "--behind", type=int, default=10,
        help="how many versions behind upstream the server starts (>= 8)",
    )
    parser.add_argument("--clients", type=int, default=4, help="concurrent client threads")
    parser.add_argument(
        "--journal-out", default=None,
        help="write the fault plan + ingest journal as JSON to this path",
    )
    args = parser.parse_args(argv)
    return soak(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
