"""Staleness SLOs: the update loop monitoring its *own* list age.

The paper measures everyone else's staleness; EXPERIMENTS.md's
refresh-policy counterfactual shows a 365-day maximum list age removes
>80% of the measured misclassified hostnames (30 days removes >99%).
This module turns that counterfactual into an operating target for our
own serving tier: an :class:`SloPolicy` declares the freshness budget
and :func:`evaluate` folds the watcher's live measurements into one of
three health states an operator (or a test, or a load balancer) can
gate on:

* ``fresh`` — the active version is within the age budget, ingest is
  keeping up, and polling works;
* ``stale`` — serving still works but the SLO is breached: the active
  version is over the age budget or ingest has fallen more than
  ``max_versions_behind`` versions behind the upstream head;
* ``degraded`` — the loop itself is broken: ``max_failed_polls``
  consecutive polls have failed, so the staleness measurements can no
  longer be trusted (the upstream view is dark).

``degraded`` dominates ``stale`` dominates ``fresh``: a dark upstream
hides how far behind we are, so it must outrank a known lag.  The
state is surfaced through ``/healthz`` (the ``update`` block) and as
the one-hot ``psl_serve_update_health{state=...}`` gauge family.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["HealthState", "SloPolicy", "UpdateStatus", "evaluate"]


class HealthState(enum.Enum):
    """The three-level health verdict of the update loop."""

    FRESH = "fresh"
    STALE = "stale"
    DEGRADED = "degraded"


#: Render order for one-hot state gauges (stable across scrapes).
HEALTH_STATES: tuple[str, ...] = tuple(state.value for state in HealthState)


@dataclass(frozen=True, slots=True)
class SloPolicy:
    """The freshness budget the serving tier holds itself to.

    The default ``max_age_days`` is deliberately the paper's 365-day
    counterfactual bound; a deployment chasing the >99% figure sets 30.
    ``max_versions_behind`` tolerates the race between an upstream
    publish and the next poll; ``max_failed_polls`` is how many dark
    polls are forgiven before the loop declares itself degraded.
    """

    max_age_days: int = 365
    max_versions_behind: int = 1
    max_failed_polls: int = 3

    def __post_init__(self) -> None:
        if self.max_age_days < 0:
            raise ValueError("max_age_days must be non-negative")
        if self.max_versions_behind < 0:
            raise ValueError("max_versions_behind must be non-negative")
        if self.max_failed_polls < 1:
            raise ValueError("max_failed_polls must be positive")


def evaluate(
    policy: SloPolicy,
    *,
    age_days: int,
    versions_behind: int,
    consecutive_failed_polls: int,
) -> HealthState:
    """Fold the three live measurements into one health state.

    Pure and total: the watcher snapshots its counters and calls this;
    tests call it directly to pin the state machine's edges.
    """
    if consecutive_failed_polls >= policy.max_failed_polls:
        return HealthState.DEGRADED
    if versions_behind > policy.max_versions_behind or age_days > policy.max_age_days:
        return HealthState.STALE
    return HealthState.FRESH


@dataclass(frozen=True, slots=True)
class UpdateStatus:
    """One coherent reading of the update loop (the ``/healthz`` block).

    Snapshotted under the watcher's lock so the numbers are mutually
    consistent — the state shown always follows from the measurements
    shown.
    """

    state: HealthState
    active_index: int
    active_date: str
    active_age_days: int
    upstream_head_index: int | None
    versions_behind: int
    consecutive_failed_polls: int
    polls: int
    accepted: int
    resynced: int
    quarantined: int

    def to_json(self) -> dict:
        return {
            "state": self.state.value,
            "active_index": self.active_index,
            "active_date": self.active_date,
            "active_age_days": self.active_age_days,
            "upstream_head_index": self.upstream_head_index,
            "versions_behind": self.versions_behind,
            "consecutive_failed_polls": self.consecutive_failed_polls,
            "polls": self.polls,
            "accepted": self.accepted,
            "resynced": self.resynced,
            "quarantined": self.quarantined,
        }
