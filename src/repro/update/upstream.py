"""A deterministic synthetic upstream for the live-update loop.

The paper's harm model starts where a project's copy of the list and
the upstream repository diverge; to reproduce the *refresh* side of
that story this environment needs an upstream to refresh **from**.
:class:`SyntheticUpstream` plays publicsuffix/list: it owns a full
:class:`~repro.history.store.VersionStore` (the "truth"), publishes
its versions one index at a time, and serves two fetch shapes a real
consumer uses:

* ``patch(index)`` — the version's :class:`~repro.psl.diff.RuleDelta`
  as a ``psl-delta v1`` patch body (the cheap incremental path);
* ``full(index)`` — the complete rule set at ``index`` (the recovery
  path a consumer falls back to when its local tip no longer matches
  the patch chain, e.g. after quarantining a poisoned version).

Every response travels as a :class:`VersionEnvelope` carrying the
declared metadata (date, commit, rule count, order-independent
rule-set digest) and a SHA-256 checksum over the body, so the watcher
can validate end to end before touching its serving state.

**Faults are first-class**, in the style of
:mod:`repro.runtime.faults`: an :class:`UpstreamFaultPlan` keys frozen
:class:`UpstreamFault` records by operation (``head``, ``patch:N``,
``full:N``) and fires them on attempts ``1..attempts`` (or
:data:`~repro.runtime.faults.ALWAYS`).  Attempt counting lives in the
upstream itself, so a plan replays identically for any client that
issues the same call sequence — which is exactly what makes the whole
update loop deterministically replayable from a stored plan.
"""

from __future__ import annotations

import datetime
import enum
import hashlib
import time
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.history.store import VersionStore
from repro.psl.rules import Rule, Section
from repro.runtime.faults import ALWAYS

__all__ = [
    "ALWAYS",
    "HEAD_KEY",
    "HeadInfo",
    "SyntheticUpstream",
    "UpstreamError",
    "UpstreamFault",
    "UpstreamFaultKind",
    "UpstreamFaultPlan",
    "UpstreamTimeout",
    "UpstreamUnreachable",
    "VersionEnvelope",
    "body_checksum",
    "full_body",
    "full_key",
    "parse_full_body",
    "patch_key",
]

HEAD_KEY = "head"


def patch_key(index: int) -> str:
    """The fault-plan / call-log key of one patch fetch."""
    return f"patch:{index}"


def full_key(index: int) -> str:
    """The fault-plan / call-log key of one full-snapshot fetch."""
    return f"full:{index}"


class UpstreamError(RuntimeError):
    """Base class for transport-level upstream failures."""


class UpstreamUnreachable(UpstreamError):
    """The upstream refused the connection (or DNS failed, etc.)."""


class UpstreamTimeout(UpstreamError):
    """The upstream hung past the client's deadline."""


class UpstreamFaultKind(enum.Enum):
    """The injectable upstream failure modes.

    * ``UNREACHABLE`` — raise :class:`UpstreamUnreachable`;
    * ``HANG`` — consume ``hang_seconds`` of (injected) sleep; if that
      meets the client timeout the call raises
      :class:`UpstreamTimeout`, otherwise it is merely slow and then
      succeeds;
    * ``TRUNCATE`` — serve half the body with the checksum of the
      *whole* body (a cut-off download: detectable by checksum);
    * ``CORRUPT_PATCH`` — serve a body whose checksum *matches* but
      whose content cannot apply cleanly (removes a rule that never
      existed), exercising apply-time validation past the checksum;
    * ``BAD_CHECKSUM`` — serve the correct body under a wrong checksum
      (a poisoned metadata channel).
    """

    UNREACHABLE = "unreachable"
    HANG = "hang"
    TRUNCATE = "truncate"
    CORRUPT_PATCH = "corrupt-patch"
    BAD_CHECKSUM = "bad-checksum"


@dataclass(frozen=True, slots=True)
class UpstreamFault:
    """One operation's misbehaviour: ``kind`` on attempts ``1..attempts``."""

    kind: UpstreamFaultKind
    attempts: int = 1
    hang_seconds: float = 10.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("a fault must fire on at least one attempt")
        if self.hang_seconds < 0:
            raise ValueError("hang_seconds must be non-negative")

    def fires_on(self, attempt: int) -> bool:
        return attempt <= self.attempts


@dataclass(frozen=True, slots=True)
class UpstreamFaultPlan:
    """A deterministic schedule of upstream faults, keyed by operation.

    Keys are :data:`HEAD_KEY`, :func:`patch_key`, or :func:`full_key`
    values.  Like :class:`repro.runtime.faults.FaultPlan`, plans are
    frozen plain data: storing one next to a journal is all it takes
    to replay an entire ingest lineage bit-for-bit.
    """

    faults: Mapping[str, UpstreamFault] = field(default_factory=dict)

    def fault_for(self, key: str, attempt: int) -> UpstreamFault | None:
        fault = self.faults.get(key)
        if fault is not None and fault.fires_on(attempt):
            return fault
        return None

    def to_json(self) -> dict:
        """JSON shape for storing a plan beside its journal."""
        return {
            key: {
                "kind": fault.kind.value,
                "attempts": fault.attempts,
                "hang_seconds": fault.hang_seconds,
            }
            for key, fault in sorted(self.faults.items())
        }

    @classmethod
    def from_json(cls, payload: Mapping) -> "UpstreamFaultPlan":
        return cls(
            faults={
                key: UpstreamFault(
                    kind=UpstreamFaultKind(spec["kind"]),
                    attempts=int(spec.get("attempts", 1)),
                    hang_seconds=float(spec.get("hang_seconds", 10.0)),
                )
                for key, spec in payload.items()
            }
        )


@dataclass(frozen=True, slots=True)
class HeadInfo:
    """What a poll of the upstream tip returns."""

    index: int
    date: datetime.date
    commit: str
    rule_count: int
    set_digest: int


@dataclass(frozen=True, slots=True)
class VersionEnvelope:
    """One fetched version: declared metadata + body + checksum.

    ``set_digest`` and ``rule_count`` describe the *post-apply* rule
    set, which is what lets the watcher verify an apply before
    publishing anything.  ``checksum`` is SHA-256 hex over the UTF-8
    body.
    """

    index: int
    date: datetime.date
    commit: str
    rule_count: int
    set_digest: int
    kind: str  # "patch" | "full"
    body: str
    checksum: str


def body_checksum(body: str) -> str:
    """The envelope checksum: SHA-256 hex over the UTF-8 body."""
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


FULL_HEADER = "# psl-full v1"


def full_body(rules: frozenset[Rule]) -> str:
    """Serialize a complete rule set as a canonical full-snapshot body.

    One ``section:rule`` line per rule, sorted — the same canonical
    ordering the patch format uses, so equal rule sets always produce
    byte-identical bodies (and therefore equal checksums).
    """
    lines = [FULL_HEADER]
    for rule in sorted(rules, key=lambda r: (r.section.value, r.labels)):
        lines.append(f"{rule.section.value}:{rule.text}")
    return "\n".join(lines)


def parse_full_body(text: str) -> frozenset[Rule]:
    """Parse a :func:`full_body` snapshot; raises ValueError when malformed."""
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines or lines[0].strip() != FULL_HEADER:
        raise ValueError("not a psl-full v1 snapshot")
    rules: set[Rule] = set()
    for line in lines[1:]:
        section_name, separator, rule_text = line.partition(":")
        if not separator:
            raise ValueError(f"malformed snapshot line {line!r}")
        try:
            section = Section(section_name)
        except ValueError:
            raise ValueError(f"unknown section {section_name!r}") from None
        rules.add(Rule.parse(rule_text, section=section))
    return frozenset(rules)


class SyntheticUpstream:
    """The version history served as a (faultable) remote endpoint.

    ``published`` bounds which versions are visible: a watcher polling
    :meth:`head` sees the upstream grow as the driver calls
    :meth:`publish_next` / :meth:`advance_to`, which is how tests and
    the soak simulate time passing upstream.

    The injected ``sleep`` callable receives every HANG delay, so a
    test can run an entire hang scenario in zero wall-clock time while
    the soak uses real sleeps.
    """

    def __init__(
        self,
        truth: VersionStore,
        *,
        published: int | None = None,
        plan: UpstreamFaultPlan | None = None,
        client_timeout: float = 5.0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if len(truth) == 0:
            raise ValueError("upstream truth history is empty")
        if client_timeout <= 0:
            raise ValueError("client_timeout must be positive")
        self._truth = truth
        self._published = len(truth) - 1 if published is None else published
        if not 0 <= self._published < len(truth):
            raise ValueError(f"published index {self._published} out of range")
        self._plan = plan
        self._client_timeout = client_timeout
        self._sleep = sleep
        self._attempts: dict[str, int] = {}
        #: Every call in order, as ``(key, attempt)`` — the replay log.
        self.calls: list[tuple[str, int]] = []

    # -- publication ---------------------------------------------------------

    @property
    def truth(self) -> VersionStore:
        return self._truth

    @property
    def published(self) -> int:
        """Index of the newest *visible* version."""
        return self._published

    def publish_next(self) -> int:
        """Make one more version visible; returns the new head index."""
        if self._published + 1 >= len(self._truth):
            raise ValueError("no unpublished versions remain")
        self._published += 1
        return self._published

    def advance_to(self, index: int) -> int:
        """Publish every version up to ``index`` (monotone only)."""
        if not self._published <= index < len(self._truth):
            raise ValueError(f"cannot advance publication to {index}")
        self._published = index
        return self._published

    # -- fault plumbing ------------------------------------------------------

    def _attempt(self, key: str) -> int:
        attempt = self._attempts.get(key, 0) + 1
        self._attempts[key] = attempt
        self.calls.append((key, attempt))
        return attempt

    def _transport_fault(self, key: str, attempt: int) -> UpstreamFault | None:
        """Apply transport-level faults; returns a body fault to apply later."""
        fault = self._plan.fault_for(key, attempt) if self._plan is not None else None
        if fault is None:
            return None
        if fault.kind is UpstreamFaultKind.UNREACHABLE:
            raise UpstreamUnreachable(f"upstream unreachable: {key} (attempt {attempt})")
        if fault.kind is UpstreamFaultKind.HANG:
            self._sleep(min(fault.hang_seconds, self._client_timeout))
            if fault.hang_seconds >= self._client_timeout:
                raise UpstreamTimeout(
                    f"upstream hung past {self._client_timeout:.1f}s: {key} (attempt {attempt})"
                )
            return None  # merely slow: the response still arrives
        return fault  # a body fault; the caller mangles the envelope

    @staticmethod
    def _mangle(body: str, checksum: str, fault: UpstreamFault | None, kind: str) -> tuple[str, str]:
        if fault is None:
            return body, checksum
        if fault.kind is UpstreamFaultKind.TRUNCATE:
            return body[: len(body) // 2], checksum
        if fault.kind is UpstreamFaultKind.BAD_CHECKSUM:
            return body, body_checksum(body + "!corrupted")
        if fault.kind is UpstreamFaultKind.CORRUPT_PATCH:
            poison = (
                "-icann:never-vendored-rule.invalid"
                if kind == "patch"
                else "icann:%%%not a rule%%%"
            )
            corrupted = body + "\n" + poison
            return corrupted, body_checksum(corrupted)
        return body, checksum  # pragma: no cover - future kinds

    # -- the served surface --------------------------------------------------

    def head(self) -> HeadInfo:
        """The newest published version's metadata (the poll target)."""
        attempt = self._attempt(HEAD_KEY)
        self._transport_fault(HEAD_KEY, attempt)
        version = self._truth.version(self._published)
        return HeadInfo(
            index=version.index,
            date=version.date,
            commit=version.commit,
            rule_count=version.rule_count,
            set_digest=version.set_digest,
        )

    def _envelope(self, index: int, kind: str, body: str, fault: UpstreamFault | None) -> VersionEnvelope:
        version = self._truth.version(index)
        body, checksum = self._mangle(body, body_checksum(body), fault, kind)
        return VersionEnvelope(
            index=version.index,
            date=version.date,
            commit=version.commit,
            rule_count=version.rule_count,
            set_digest=version.set_digest,
            kind=kind,
            body=body,
            checksum=checksum,
        )

    def _check_visible(self, index: int) -> None:
        if not 0 <= index <= self._published:
            raise UpstreamUnreachable(f"version {index} is not published (head is {self._published})")

    def patch(self, index: int) -> VersionEnvelope:
        """Version ``index`` as a delta patch over version ``index - 1``."""
        self._check_visible(index)
        key = patch_key(index)
        attempt = self._attempt(key)
        fault = self._transport_fault(key, attempt)
        return self._envelope(index, "patch", self._truth.version(index).delta.to_patch(), fault)

    def full(self, index: int) -> VersionEnvelope:
        """The complete rule set at ``index`` (the resync path)."""
        self._check_visible(index)
        key = full_key(index)
        attempt = self._attempt(key)
        fault = self._transport_fault(key, attempt)
        return self._envelope(index, "full", full_body(self._truth.rules_at(index)), fault)
